"""CLI smoke tests."""

import pytest

from repro.cli import main


class TestCli:
    def test_fig7_small(self, capsys):
        assert main(["fig7", "--iterations", "3", "--procs", "2", "4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out and "factor" in out

    def test_fig8_small(self, capsys):
        assert main(["fig8", "--iterations", "25", "--procs", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out

    def test_fig9_and_fig10(self, capsys):
        assert main(["fig9", "--iterations", "25", "--procs", "2"]) == 0
        assert "Figure 9" in capsys.readouterr().out
        assert main(["fig10", "--iterations", "25", "--procs", "2"]) == 0
        assert "Figure 10" in capsys.readouterr().out

    def test_locks_bundle(self, capsys):
        assert main(["locks", "--iterations", "25", "--procs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out and "Figure 9" in out and "Figure 10" in out

    def test_network_preset(self, capsys):
        assert main(["fig7", "--iterations", "2", "--procs", "2",
                     "--network", "quadrics"]) == 0
        assert "Figure 7" in capsys.readouterr().out

    def test_bad_network_preset(self):
        with pytest.raises(ValueError, match="unknown network preset"):
            main(["fig7", "--iterations", "2", "--procs", "2",
                  "--network", "carrier-pigeon"])

    def test_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_ppn_option(self, capsys):
        assert main(["fig8", "--iterations", "20", "--procs", "2",
                     "--ppn", "2"]) == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_csv_export(self, capsys, tmp_path):
        assert main(["fig7", "--iterations", "2", "--procs", "2",
                     "--csv", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "csv written" in out
        assert (tmp_path / "fig7_ga_sync.csv").exists()

    def test_locks_csv_export(self, capsys, tmp_path):
        assert main(["locks", "--iterations", "20", "--procs", "2",
                     "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "figs8_9_10_locks.csv").exists()
        capsys.readouterr()

    def test_app_experiment(self, capsys):
        assert main(["app", "--iterations", "2", "--procs", "2"]) == 0
        assert "Application impact" in capsys.readouterr().out

    def test_microbench_experiment(self, capsys):
        from repro.net.params import quadrics_like  # noqa: F401 - preset sanity
        assert main(["microbench", "--network", "quadrics"]) == 0
        out = capsys.readouterr().out
        assert "microbenchmarks" in out and "barrier" in out

    def test_fairness_experiment(self, capsys):
        assert main(["fairness", "--iterations", "30", "--procs", "2"]) == 0
        out = capsys.readouterr().out
        assert "fairness" in out and "max/min" in out

    def test_validate_experiment(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "ALL CHECKS PASSED" in out
