"""CLI smoke tests."""

import pytest

from repro.cli import main


class TestCli:
    def test_fig7_small(self, capsys):
        assert main(["fig7", "--iterations", "3", "--procs", "2", "4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out and "factor" in out

    def test_fig8_small(self, capsys):
        assert main(["fig8", "--iterations", "25", "--procs", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out

    def test_fig9_and_fig10(self, capsys):
        assert main(["fig9", "--iterations", "25", "--procs", "2"]) == 0
        assert "Figure 9" in capsys.readouterr().out
        assert main(["fig10", "--iterations", "25", "--procs", "2"]) == 0
        assert "Figure 10" in capsys.readouterr().out

    def test_locks_bundle(self, capsys):
        assert main(["locks", "--iterations", "25", "--procs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out and "Figure 9" in out and "Figure 10" in out

    def test_network_preset(self, capsys):
        assert main(["fig7", "--iterations", "2", "--procs", "2",
                     "--network", "quadrics"]) == 0
        assert "Figure 7" in capsys.readouterr().out

    def test_bad_network_preset(self):
        with pytest.raises(ValueError, match="unknown network preset"):
            main(["fig7", "--iterations", "2", "--procs", "2",
                  "--network", "carrier-pigeon"])

    def test_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_ppn_option(self, capsys):
        assert main(["fig8", "--iterations", "20", "--procs", "2",
                     "--ppn", "2"]) == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_csv_export(self, capsys, tmp_path):
        assert main(["fig7", "--iterations", "2", "--procs", "2",
                     "--csv", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "csv written" in out
        assert (tmp_path / "fig7_ga_sync.csv").exists()

    def test_locks_csv_export(self, capsys, tmp_path):
        assert main(["locks", "--iterations", "20", "--procs", "2",
                     "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "figs8_9_10_locks.csv").exists()
        capsys.readouterr()

    def test_app_experiment(self, capsys):
        assert main(["app", "--iterations", "2", "--procs", "2"]) == 0
        assert "Application impact" in capsys.readouterr().out

    def test_microbench_experiment(self, capsys):
        from repro.net.params import quadrics_like  # noqa: F401 - preset sanity
        assert main(["microbench", "--network", "quadrics"]) == 0
        out = capsys.readouterr().out
        assert "microbenchmarks" in out and "barrier" in out

    def test_fairness_experiment(self, capsys):
        assert main(["fairness", "--iterations", "30", "--procs", "2"]) == 0
        out = capsys.readouterr().out
        assert "fairness" in out and "max/min" in out

    def test_validate_experiment(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "ALL CHECKS PASSED" in out


class TestCheckCommand:
    def test_check_single_target(self, capsys):
        assert main(["check", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "[ok] fig7[current]" in out and "[ok] fig7[new]" in out
        assert "FAIL" not in out

    def test_check_unknown_target(self):
        with pytest.raises(ValueError, match="unknown check target"):
            main(["check", "fig99"])

    def test_check_lint_mode(self, capsys):
        assert main(["check", "--lint"]) == 0
        assert "lint: no findings" in capsys.readouterr().out

    def test_trace_out_writes_jsonl(self, capsys, tmp_path):
        import json

        path = tmp_path / "trace.jsonl"
        assert main(["fig7", "--iterations", "2", "--procs", "2",
                     "--trace-out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "trace written" in out
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert any("run" in line for line in lines)
        assert any(line.get("kind") == "barrier_enter" for line in lines)


class TestChaosCommand:
    def test_chaos_default_scenario(self, capsys):
        assert main(["chaos"]) == 0
        out = capsys.readouterr().out
        assert "Chaos: crash-stop failures" in out
        assert "ALL CHECKS PASSED" in out

    def test_chaos_custom_kills_and_lock(self, capsys):
        assert main(["chaos", "--procs", "6", "--lock", "mcs",
                     "--kill", "4:60", "--kill", "5:900",
                     "--kill-seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "mcs lock" in out and "kill seed 7" in out
        assert "dead: [4, 5]" in out

    def test_chaos_bad_kill_spec(self, capsys):
        assert main(["chaos", "--kill", "banana"]) == 2
        assert "bad --kill spec" in capsys.readouterr().err

    def test_check_chaos_target(self, capsys):
        assert main(["check", "chaos"]) == 0
        out = capsys.readouterr().out
        assert "[ok] chaos[hybrid]" in out and "[ok] chaos[mcs]" in out
        assert "FAIL" not in out

    def test_chaos_partition_mode(self, capsys):
        assert main(["chaos", "--procs", "6",
                     "--partition", "4,5:200:1400"]) == 0
        out = capsys.readouterr().out
        assert "ALL CHECKS PASSED" in out
        assert "check partition healed: ok" in out
        assert "freeze duration" in out
        assert "heal: cut [4, 5]" in out and "rejoined ranks [4, 5]" in out
        # Transient-only runs drop the stock kill schedule.
        assert "dead: []" in out

    def test_chaos_stall_mode(self, capsys):
        assert main(["chaos", "--procs", "6", "--stall", "3:300:900"]) == 0
        out = capsys.readouterr().out
        assert "ALL CHECKS PASSED" in out
        assert "rejoin: rank 3" in out

    def test_chaos_partition_composes_with_kills(self, capsys):
        assert main(["chaos", "--procs", "6", "--lock", "naimi",
                     "--kill", "3:900", "--partition", "5:200:1400"]) == 0
        out = capsys.readouterr().out
        assert "ALL CHECKS PASSED" in out
        assert "dead: [3]" in out
        assert "check partition healed: ok" in out

    def test_chaos_partition_byte_identical(self, capsys):
        argv = ["chaos", "--procs", "6", "--partition", "4:250:1200",
                "--stall", "2:300:700"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_chaos_same_kill_seed_byte_identical(self, capsys):
        argv = ["chaos", "--kill-seed", "7"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "ALL CHECKS PASSED" in first


class TestNicCommand:
    def test_nic_small(self, capsys):
        assert main(["nic", "--iterations", "3", "--procs", "2", "4"]) == 0
        out = capsys.readouterr().out
        assert "NIC ablation" in out
        for column in ("host-exchange", "nic-exchange", "nic-tree"):
            assert column in out

    def test_check_nic_target(self, capsys):
        assert main(["check", "nic"]) == 0
        out = capsys.readouterr().out
        assert "[ok] nic[exchange]" in out and "[ok] nic[tree]" in out
        assert "FAIL" not in out


class TestCrashPathsConstructFree:
    """Guard: with no crash plan, the crash-stop machinery must not even
    be constructed, and experiment output must be byte-identical run to
    run (the crash subsystem contributes nothing when disabled)."""

    @pytest.fixture
    def membership_forbidden(self, monkeypatch):
        from repro.runtime import membership as m

        def boom(*_a, **_k):  # pragma: no cover - triggers only on a bug
            raise AssertionError(
                "MembershipService constructed without a crash plan"
            )

        monkeypatch.setattr(m.MembershipService, "__init__", boom)

    @pytest.mark.parametrize(
        "argv",
        [
            ["fig7", "--iterations", "2", "--procs", "2"],
            ["fig8", "--iterations", "20", "--procs", "2"],
            ["fig9", "--iterations", "20", "--procs", "2"],
            ["fig10", "--iterations", "20", "--procs", "2"],
            ["locks", "--iterations", "20", "--procs", "2"],
            ["faults", "--procs", "4"],
            ["nic", "--iterations", "2", "--procs", "2", "4"],
        ],
        ids=["fig7", "fig8", "fig9", "fig10", "locks", "faults", "nic"],
    )
    def test_output_identical_and_membership_never_built(
        self, capsys, membership_forbidden, argv
    ):
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second


class TestCliRobustness:
    """Satellite: malformed fault/kill options exit 2 with one stderr line."""

    @pytest.mark.parametrize(
        "spec, phrase",
        [
            ("banana", "expected RANK:AT_US"),
            ("3", "expected RANK:AT_US"),
            ("3:abc", "expected RANK:AT_US"),
            ("-1:50", "RANK must be >= 0"),
            ("3:0", "AT_US must be > 0"),
            ("3:-5", "AT_US must be > 0"),
        ],
        ids=["word", "no-colon", "bad-time", "neg-rank", "zero-time",
             "neg-time"],
    )
    def test_bad_kill_specs(self, capsys, spec, phrase):
        # --kill=SPEC form so argparse does not mistake "-1:50" for a flag.
        assert main(["chaos", f"--kill={spec}"]) == 2
        captured = capsys.readouterr()
        assert phrase in captured.err
        # One line, no traceback.
        assert captured.err.strip().count("\n") == 0
        assert "Traceback" not in captured.err

    @pytest.mark.parametrize(
        "spec, phrase",
        [
            ("banana", "expected NODES:FROM_US:UNTIL_US"),
            ("1:50", "expected NODES:FROM_US:UNTIL_US"),
            ("1:abc:50", "expected NODES:FROM_US:UNTIL_US"),
            ("1:50:50", "need 0 <= FROM_US < UNTIL_US"),
            ("1:-5:50", "need 0 <= FROM_US < UNTIL_US"),
            ("x,y:10:50", "NODES must be comma-separated ints"),
            (",:10:50", "empty node group"),
            ("0:10:50", "node 0"),
            ("1,2,3,4:10:50", "majority"),
        ],
        ids=["word", "two-fields", "bad-time", "empty-window", "neg-start",
             "bad-nodes", "empty-group", "cuts-node0", "no-majority"],
    )
    def test_bad_partition_specs(self, capsys, spec, phrase):
        assert main(["chaos", f"--partition={spec}"]) == 2
        captured = capsys.readouterr()
        assert phrase in captured.err
        assert "Traceback" not in captured.err

    @pytest.mark.parametrize(
        "spec, phrase",
        [
            ("banana", "expected RANK:FROM_US:UNTIL_US"),
            ("1.5:10:50", "RANK must be an int"),
            ("-1:10:50", "RANK must be >= 0"),
            ("0:10:50", "rank 0"),
        ],
        ids=["word", "float-rank", "neg-rank", "stalls-rank0"],
    )
    def test_bad_stall_specs(self, capsys, spec, phrase):
        assert main(["chaos", f"--stall={spec}"]) == 2
        captured = capsys.readouterr()
        assert phrase in captured.err
        assert "Traceback" not in captured.err

    @pytest.mark.parametrize("experiment", ["faults", "fig7"])
    @pytest.mark.parametrize("rate", ["15", "1.0", "-0.1"])
    def test_drop_rate_out_of_range(self, capsys, experiment, rate):
        assert main([experiment, "--drop-rate", rate]) == 2
        captured = capsys.readouterr()
        assert "--drop-rate must be a probability" in captured.err
        assert "Traceback" not in captured.err

    def test_retry_timeout_nonpositive(self, capsys):
        assert main(["faults", "--retry-timeout", "0"]) == 2
        assert "--retry-timeout must be > 0" in capsys.readouterr().err

    def test_fault_seed_non_integer_is_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["faults", "--fault-seed", "seven"])
        assert excinfo.value.code == 2
        assert "invalid int value" in capsys.readouterr().err

    def test_drop_rate_non_float_is_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["faults", "--drop-rate", "lossy"])
        assert excinfo.value.code == 2
        assert "invalid float value" in capsys.readouterr().err


class TestFuzzCommand:
    def test_small_campaign_clean(self, capsys):
        assert main(["fuzz", "--seeds", "3"]) == 0
        out = capsys.readouterr().out
        assert "Fuzz campaign: 3 seed(s)" in out
        assert "no invariant violations found" in out

    def test_replay_deterministic(self, capsys):
        assert main(["fuzz", "--replay", "20"]) == 0
        first = capsys.readouterr().out
        assert main(["fuzz", "--replay", "20"]) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_self_test_catches_all_mutants(self, capsys):
        assert main(["fuzz", "--self-test", "--self-test-budget", "6"]) == 0
        out = capsys.readouterr().out
        assert "ORACLE VALIDATED" in out
        assert "MISSED" not in out

    def test_corpus_replay(self, capsys):
        import pathlib

        corpus = pathlib.Path(__file__).parent / "fuzz" / "corpus"
        assert main(["fuzz", "--corpus", str(corpus)]) == 0
        out = capsys.readouterr().out
        assert "[ok]" in out and "FAIL" not in out

    def test_corpus_missing_dir(self, capsys):
        assert main(["fuzz", "--corpus", "/does/not/exist"]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_json_out(self, capsys, tmp_path):
        out_path = tmp_path / "campaign.json"
        assert main(["fuzz", "--seeds", "2", "--json-out", str(out_path)]) == 0
        import json

        data = json.loads(out_path.read_text())
        assert data["ok"] is True and data["seeds_run"] == 2


class TestLintStrict:
    def test_clean_repo_passes_strict(self, capsys):
        assert main(["check", "--lint", "--strict"]) == 0
        assert "lint: no findings" in capsys.readouterr().out

    def test_findings_are_report_only_without_strict(self, capsys, monkeypatch):
        import repro.analysis
        from repro.analysis.lint import LintFinding

        finding = LintFinding("x.py", 1, "op-done-mutation", "planted")
        monkeypatch.setattr(
            repro.analysis, "run_lint", lambda root=None: [finding]
        )
        assert main(["check", "--lint"]) == 0
        assert "planted" in capsys.readouterr().out
        assert main(["check", "--lint", "--strict"]) == 1


class TestMcCommand:
    def test_named_target(self, capsys):
        assert main(["mc", "ticket-handoff"]) == 0
        out = capsys.readouterr().out
        assert "RMCheck ticket-handoff" in out
        assert "OK: every explored schedule satisfies the oracle" in out

    def test_unknown_target_is_cli_error(self, capsys):
        assert main(["mc", "no-such-target"]) == 2
        assert "unknown mc target" in capsys.readouterr().err

    def test_json_out(self, capsys, tmp_path):
        import json

        path = tmp_path / "mc.json"
        assert main(
            ["mc", "ticket-handoff", "--json-out", str(path)]
        ) == 0
        [entry] = json.loads(path.read_text())
        assert entry["target"] == "ticket-handoff"
        assert entry["ok"] is True and entry["exhausted"] is True

    def test_schedule_replay_of_clean_counterexample(self, capsys, tmp_path):
        import json

        from repro.fuzz.scenario import scenario_to_json
        from repro.mc import get_target
        from repro.mc.explore import COUNTEREXAMPLE_FORMAT

        ce = {
            "format": COUNTEREXAMPLE_FORMAT,
            "scenario": json.loads(
                scenario_to_json(get_target("ticket-handoff").scenario)
            ),
            "window": 0.0,
            "sim_cap_us": 20_000.0,
            "schedule": [],
            "violation_kinds": [],
        }
        path = tmp_path / "ce.json"
        path.write_text(json.dumps(ce))
        assert main(["mc", "--schedule", str(path)]) == 0
        assert "[ok]" in capsys.readouterr().out

    def test_schedule_rejects_foreign_json(self, tmp_path):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "nope"}))
        with pytest.raises(ValueError, match="not an RMCheck counterexample"):
            main(["mc", "--schedule", str(path)])

    def test_scenario_seed_exploration(self, capsys):
        assert main(
            ["mc", "--scenario", "0", "--budget", "5", "--cap", "20000"]
        ) == 0
        assert "RMCheck seed 0" in capsys.readouterr().out


class TestScalebenchCommand:
    def test_flat_run(self, capsys):
        assert main(["scalebench", "--procs", "8", "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "Barrier scaling" in out and "host-exchange" in out

    def test_topo_run_selects_topology_variants(self, capsys):
        assert main(["scalebench", "--procs", "8", "--iterations", "1",
                     "--ppn", "4", "--topo", "switch:2"]) == 0
        out = capsys.readouterr().out
        assert "hierarchical topology" in out
        assert "twolevel" in out and "dissemination" in out

    def test_csv_and_json_export(self, capsys, tmp_path):
        import json

        json_path = tmp_path / "sb.json"
        assert main(["scalebench", "--procs", "8", "--iterations", "1",
                     "--ppn", "4", "--topo", "switch:2",
                     "--csv", str(tmp_path), "--json-out", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "csv written" in out and "json written" in out
        csv_text = (tmp_path / "scalebench.csv").read_text()
        assert csv_text.startswith("variant,nprocs,sync_us,events,wall_s")
        data = json.loads(json_path.read_text())
        assert data["nprocs"] == [8]
        assert any(c["variant"] == "twolevel" for c in data["cells"])

    def test_coalesced_run(self, capsys):
        assert main(["scalebench", "--procs", "32", "--iterations", "1",
                     "--ppn", "4", "--topo", "switch:4", "--coalesce"]) == 0
        out = capsys.readouterr().out
        assert "coalesced" in out

    def test_bad_topo_spec_is_cli_error(self, capsys):
        assert main(["scalebench", "--topo", "banana"]) == 2
        err = capsys.readouterr().err
        assert "bad --topo spec" in err and err.count("\n") == 1

    def test_bad_topo_arity_is_cli_error(self, capsys):
        assert main(["scalebench", "--topo", "switch:1"]) == 2
        assert "arity must be >= 2" in capsys.readouterr().err

    def test_coalesce_requires_ppn(self, capsys):
        assert main(["scalebench", "--coalesce"]) == 2
        assert "--coalesce requires --ppn > 1" in capsys.readouterr().err

    def test_coalesce_requires_divisible_procs(self, capsys):
        assert main(["scalebench", "--procs", "10", "--ppn", "4",
                     "--topo", "switch:2", "--coalesce"]) == 2
        assert "divisible" in capsys.readouterr().err

    def test_bad_radix_is_cli_error(self, capsys):
        assert main(["scalebench", "--procs", "8", "--radix", "1"]) == 2
        assert "--radix must be >= 2" in capsys.readouterr().err

    def test_topo_applies_to_other_experiments(self, capsys):
        # --topo flows through _network_params, so fig7 accepts it too.
        assert main(["fig7", "--iterations", "2", "--procs", "4",
                     "--topo", "switch:2", "--ppn", "2"]) == 0
        assert "Figure 7" in capsys.readouterr().out

    def test_time_budget_skips_cells(self, capsys):
        assert main(["scalebench", "--procs", "8", "16", "--iterations", "1",
                     "--time-budget", "0"]) == 0
        assert "wall budget" in capsys.readouterr().out
