"""Unit tests for SMP node placement."""

import pytest

from repro.net.topology import Topology


class TestBlockPlacement:
    def test_one_proc_per_node(self):
        topo = Topology(4)
        assert topo.nnodes == 4
        assert [topo.node_of(r) for r in range(4)] == [0, 1, 2, 3]

    def test_dual_smp_placement(self):
        topo = Topology(8, procs_per_node=2)
        assert topo.nnodes == 4
        assert topo.ranks_on(0) == (0, 1)
        assert topo.ranks_on(3) == (6, 7)

    def test_partial_last_node(self):
        topo = Topology(5, procs_per_node=2)
        assert topo.nnodes == 3
        assert topo.ranks_on(2) == (4,)

    def test_same_node(self):
        topo = Topology(8, procs_per_node=2)
        assert topo.same_node(0, 1)
        assert not topo.same_node(1, 2)
        assert topo.same_node(6, 7)

    def test_all_ranks_on_one_node(self):
        topo = Topology(6, procs_per_node=6)
        assert topo.nnodes == 1
        assert topo.ranks_on(0) == (0, 1, 2, 3, 4, 5)


class TestExplicitPlacement:
    def test_placement_list(self):
        topo = Topology(4, placement=[0, 1, 0, 1])
        assert topo.nnodes == 2
        assert topo.ranks_on(0) == (0, 2)
        assert topo.same_node(0, 2)

    def test_placement_overrides_ppn(self):
        topo = Topology(3, procs_per_node=99, placement=[0, 0, 1])
        assert topo.nnodes == 2

    def test_placement_wrong_length(self):
        with pytest.raises(ValueError, match="entries"):
            Topology(3, placement=[0, 1])

    def test_placement_non_dense_node_ids(self):
        with pytest.raises(ValueError, match="dense"):
            Topology(3, placement=[0, 2, 2])

    def test_placement_negative_node(self):
        with pytest.raises(ValueError, match="non-negative"):
            Topology(2, placement=[0, -1])


class TestValidation:
    def test_zero_procs_rejected(self):
        with pytest.raises(ValueError):
            Topology(0)

    def test_zero_ppn_rejected(self):
        with pytest.raises(ValueError):
            Topology(4, procs_per_node=0)

    def test_rank_out_of_range(self):
        topo = Topology(4)
        with pytest.raises(ValueError):
            topo.node_of(4)
        with pytest.raises(ValueError):
            topo.node_of(-1)
        with pytest.raises(ValueError):
            topo.same_node(0, 99)

    def test_node_out_of_range(self):
        with pytest.raises(ValueError):
            Topology(4).ranks_on(7)
