"""Unit tests for the reliable-delivery layer (repro.net.reliable)."""

import pytest

from repro.net.fabric import Fabric
from repro.net.faults import FaultPlan, LinkFaults, StallWindow
from repro.net.message import server_endpoint
from repro.net.params import NetworkParams
from repro.net.reliable import ReliabilityError
from repro.net.topology import Topology
from repro.sim.core import Environment, Event
from repro.sim.primitives import Store


def make_fabric(plan, nprocs=4, **overrides):
    overrides.setdefault("jitter_us", 0.0)
    overrides.setdefault("per_byte_us", 0.0)
    overrides.setdefault("inter_latency_us", 1.0)
    overrides.setdefault("retry_timeout_us", 20.0)
    env = Environment()
    params = NetworkParams(faults=plan, **overrides)
    topo = Topology(nprocs, procs_per_node=1)
    fabric = Fabric(env, topo, params)
    boxes = {}
    for node in range(topo.nnodes):
        boxes[("srv", node)] = Store(env, name=f"s{node}")
        fabric.register(server_endpoint(node), boxes[("srv", node)])
    return env, fabric, boxes


def payloads(box):
    count = len(box)
    return [box.try_get().payload for _ in range(count)]


class TestInOrderExactlyOnce:
    def test_lossy_reordering_link_restored_to_fifo(self):
        plan = FaultPlan.uniform(
            drop_rate=0.3,
            dup_rate=0.2,
            reorder_rate=0.4,
            reorder_window_us=30.0,
            seed=11,
        )
        env, fabric, boxes = make_fabric(plan)
        for i in range(30):
            fabric.post(0, server_endpoint(1), i)
        env.run()
        assert payloads(boxes[("srv", 1)]) == list(range(30))
        assert fabric.stats.retransmits > 0
        assert fabric.faults.stats.dropped > 0
        assert fabric.reliable.in_flight() == 0
        assert fabric.reliable.resequencer_depth() == 0

    def test_channels_are_independent(self):
        plan = FaultPlan.uniform(drop_rate=0.3, seed=4)
        env, fabric, boxes = make_fabric(plan)
        for i in range(10):
            fabric.post(0, server_endpoint(1), ("a", i))
            fabric.post(2, server_endpoint(1), ("b", i))
        env.run()
        arrived = payloads(boxes[("srv", 1)])
        assert [p for p in arrived if p[0] == "a"] == [("a", i) for i in range(10)]
        assert [p for p in arrived if p[0] == "b"] == [("b", i) for i in range(10)]

    def test_lost_acks_cause_suppressed_duplicates(self):
        # Forward link clean, reverse (ACK) link lossy: every lost ACK
        # forces a retransmission the receiver must suppress.
        plan = FaultPlan(
            links=(((1, 0), LinkFaults(drop_rate=0.5)),),
            seed=3,
        )
        env, fabric, boxes = make_fabric(plan)
        for i in range(20):
            fabric.post(0, server_endpoint(1), i)
        env.run()
        assert payloads(boxes[("srv", 1)]) == list(range(20))
        assert fabric.stats.retransmits > 0
        assert fabric.stats.dup_suppressed > 0
        assert fabric.reliable.in_flight() == 0

    def test_crash_window_recovered_by_retransmission(self):
        # Everything in flight to node 1 during [0, 50) is lost; the
        # retransmit timer re-sends until deliveries land past the window.
        plan = FaultPlan(
            stalls=(StallWindow(node=1, start_us=0.0, end_us=50.0, mode="crash"),),
        )
        env, fabric, boxes = make_fabric(plan)
        for i in range(5):
            fabric.post(0, server_endpoint(1), i)
        env.run()
        assert payloads(boxes[("srv", 1)]) == list(range(5))
        assert fabric.faults.stats.crash_dropped >= 5
        assert fabric.stats.retransmits >= 5


class TestRetryCap:
    def test_retry_exhaustion_declares_peer_dead(self):
        """Exhausting the retry budget no longer raises: the peer is
        declared dead, the channel backlog is dropped, and the simulation
        keeps running (the membership detector owns what happens next)."""
        plan = FaultPlan.uniform(drop_rate=1.0, seed=1)
        env, fabric, boxes = make_fabric(plan, max_retries=2, retry_timeout_us=10.0)
        fabric.post(0, server_endpoint(1), "doomed")
        env.run()  # must complete without ReliabilityError
        assert fabric.stats.timeouts == 3  # 2 retries + the fatal expiry
        assert fabric.stats.links_declared_dead == 1
        assert fabric.reliable.in_flight() == 0  # backlog abandoned
        assert fabric.endpoint_dead(server_endpoint(1))
        assert len(boxes[("srv", 1)]) == 0
        # Follow-up traffic to the dead endpoint is refused at post time.
        fabric.post(0, server_endpoint(1), "late")
        env.run()
        assert fabric.stats.dropped_dead >= 1
        assert len(boxes[("srv", 1)]) == 0
        # The declaration is per-endpoint, not global.
        assert not fabric.endpoint_dead(server_endpoint(2))

    def test_reliability_error_still_importable(self):
        # Kept for API compatibility with pre-crash-model callers.
        assert issubclass(ReliabilityError, Exception)


class TestReliableReplies:
    def test_reply_delivered_exactly_once_over_lossy_link(self):
        plan = FaultPlan.uniform(drop_rate=0.4, dup_rate=0.3, seed=9)
        env, fabric, _boxes = make_fabric(plan)
        events = [Event(env) for _ in range(10)]
        for i, event in enumerate(events):
            fabric.post_reply(1, 0, event, value=i)
        env.run()
        for i, event in enumerate(events):
            assert event.processed and event.value == i
        assert fabric.reliable.in_flight() == 0

    def test_intra_node_reply_bypasses_transport(self):
        plan = FaultPlan.uniform(drop_rate=1.0, seed=2)
        env = Environment()
        params = NetworkParams(
            faults=plan, intra_latency_us=0.5, shm_access_us=0.1, o_recv_us=1.0
        )
        fabric = Fabric(env, Topology(4, procs_per_node=2), params)
        reply = Event(env)
        fabric.post_reply(0, 1, reply, value="local")  # rank 1 on node 0
        env.run()
        assert reply.processed and reply.value == "local"
        assert env.now == pytest.approx(0.6)
