"""Adaptive retransmission timeout: Jacobson estimator, Karn's rule, cap.

With ``adaptive_retry=True`` the reliable layer estimates the RTO per
send channel (``srtt + 4 * rttvar``, RFC 6298 gains) instead of using the
fixed ``retry_timeout_us``.  Only first-attempt ACKs feed the estimator
(Karn's rule), and the timeout is clamped to
``[adaptive_rto_min_us, adaptive_rto_max_us]`` with a deterministic
per-channel jitter of up to +10% on the cap so channels backed off
against a partitioned peer do not re-probe in lockstep at heal.
"""

from repro.net.fabric import Fabric
from repro.net.faults import FaultPlan, LinkFaults
from repro.net.message import server_endpoint
from repro.net.params import NetworkParams
from repro.net.topology import Topology
from repro.sim.core import Environment
from repro.sim.primitives import Store


def make_fabric(plan, nprocs=4, **overrides):
    overrides.setdefault("jitter_us", 0.0)
    overrides.setdefault("per_byte_us", 0.0)
    overrides.setdefault("inter_latency_us", 1.0)
    overrides.setdefault("retry_timeout_us", 20.0)
    overrides.setdefault("adaptive_retry", True)
    env = Environment()
    params = NetworkParams(faults=plan, **overrides)
    topo = Topology(nprocs, procs_per_node=1)
    fabric = Fabric(env, topo, params)
    boxes = {}
    for node in range(topo.nnodes):
        boxes[("srv", node)] = Store(env, name=f"s{node}")
        fabric.register(server_endpoint(node), boxes[("srv", node)])
    return env, fabric, boxes


def channel_of(fabric, key_pred):
    for key, channel in fabric.reliable._send_channels.items():
        if key_pred(key):
            return key, channel
    raise AssertionError("no matching send channel")


class TestEstimator:
    def test_clean_link_samples_every_frame(self):
        plan = FaultPlan.uniform(seed=1)
        env, fabric, boxes = make_fabric(plan)
        for i in range(10):
            fabric.post(0, server_endpoint(1), i)
        env.run()
        assert [e.payload for e in boxes[("srv", 1)].items] == list(range(10))
        assert fabric.stats.rtt_samples == 10
        _, channel = channel_of(fabric, lambda k: True)
        # On a jitter-free link every sample equals the true round trip,
        # so the smoothed estimate converges to it exactly.
        assert channel.srtt is not None and channel.srtt > 0.0

    def test_initial_rto_is_the_fixed_timeout(self):
        plan = FaultPlan.uniform(seed=1)
        env, fabric, _ = make_fabric(plan, retry_timeout_us=44.0)
        fabric.post(0, server_endpoint(1), "x")
        key, channel = channel_of(fabric, lambda k: True)
        # No RTT sample yet: the configured fixed timeout seeds the RTO
        # (clamped to the adaptive floor).
        assert channel.srtt is None
        rto = fabric.reliable._adaptive_rto(key, channel, attempt=1)
        assert rto == 44.0
        env.run()

    def test_estimated_rto_tracks_the_channel_rtt(self):
        plan = FaultPlan.uniform(seed=1)
        env, fabric, _ = make_fabric(
            plan, inter_latency_us=30.0, retry_timeout_us=500.0,
            adaptive_rto_min_us=1.0,
        )
        for i in range(10):
            fabric.post(0, server_endpoint(1), i)
        env.run()
        key, channel = channel_of(fabric, lambda k: True)
        rto = fabric.reliable._adaptive_rto(key, channel, attempt=1)
        # srtt ~= 60us round trip; the RTO must be of that order, far from
        # the 500us fixed setting it replaced.
        assert rto < 500.0
        assert channel.srtt <= rto <= 8.0 * channel.srtt

    def test_karn_rule_skips_retransmitted_frames(self):
        # Every ACK arrives long after the RTO (delay spike on the reverse
        # link), so every frame is retransmitted before its ACK lands —
        # none of those ACKs give an unambiguous RTT sample.
        plan = FaultPlan(
            links=(((1, 0), LinkFaults(delay_rate=1.0, delay_spike_us=300.0)),),
            seed=2,
        )
        env, fabric, boxes = make_fabric(plan, retry_timeout_us=20.0)
        for i in range(5):
            fabric.post(0, server_endpoint(1), i)
        env.run()
        assert [e.payload for e in boxes[("srv", 1)].items] == list(range(5))
        assert fabric.stats.retransmits > 0
        assert fabric.stats.rtt_samples == 0


class TestCap:
    def test_backoff_is_capped_with_deterministic_jitter(self):
        plan = FaultPlan.uniform(seed=3)
        env, fabric, _ = make_fabric(plan, adaptive_rto_max_us=200.0)
        fabric.post(0, server_endpoint(1), "x")
        fabric.post(0, server_endpoint(2), "y")
        env.run()
        reliable = fabric.reliable
        rtos = []
        for key, channel in sorted(reliable._send_channels.items()):
            rto = reliable._adaptive_rto(key, channel, attempt=30)
            assert 200.0 <= rto <= 220.0  # cap * [1.0, 1.1)
            rtos.append(rto)
        # Different channels jitter differently (no lockstep re-probe)...
        assert len(set(rtos)) == len(rtos)
        # ...but each channel's jitter is a pure function of seed + key.
        env2, fabric2, _ = make_fabric(plan, adaptive_rto_max_us=200.0)
        fabric2.post(0, server_endpoint(1), "x")
        fabric2.post(0, server_endpoint(2), "y")
        env2.run()
        again = [
            fabric2.reliable._adaptive_rto(key, channel, attempt=30)
            for key, channel in sorted(fabric2.reliable._send_channels.items())
        ]
        assert again == rtos

    def test_floor_guards_degenerate_estimates(self):
        plan = FaultPlan.uniform(seed=4)
        env, fabric, _ = make_fabric(
            plan, inter_latency_us=0.001, adaptive_rto_min_us=15.0
        )
        for i in range(5):
            fabric.post(0, server_endpoint(1), i)
        env.run()
        key, channel = channel_of(fabric, lambda k: True)
        assert channel.srtt is not None and channel.srtt < 1.0
        assert fabric.reliable._adaptive_rto(key, channel, attempt=1) >= 15.0


class TestDisabledMeansAbsent:
    def test_fixed_timeout_unchanged_without_the_flag(self):
        # adaptive_retry=False: the timer math is the pre-existing fixed
        # backoff, and no RTT samples are ever taken.
        plan = FaultPlan.uniform(drop_rate=0.2, seed=5)
        env, fabric, boxes = make_fabric(plan, adaptive_retry=False)
        for i in range(10):
            fabric.post(0, server_endpoint(1), i)
        env.run()
        assert [e.payload for e in boxes[("srv", 1)].items] == list(range(10))
        assert fabric.stats.rtt_samples == 0
        for _key, channel in fabric.reliable._send_channels.items():
            assert channel.srtt is None
