"""Unit tests for the transient fault model: partitions and process stalls.

These cover the :mod:`repro.net.faults` layer only — deterministic cuts,
held deliveries, plan normalization, and connectivity components.  The
membership-level consequences (exclusion, freezing, rejoin) live in
tests/runtime/test_partitions.py.
"""

import pytest

from repro.net.fabric import Fabric
from repro.net.faults import (
    FaultPlan,
    Partition,
    ProcessStall,
)
from repro.net.message import mp_endpoint, server_endpoint
from repro.net.params import NetworkParams
from repro.net.topology import Topology
from repro.sim.core import Environment
from repro.sim.primitives import Store


def make_fabric(plan, nprocs=4, ppn=1, **overrides):
    overrides.setdefault("jitter_us", 0.0)
    overrides.setdefault("per_byte_us", 0.0)
    overrides.setdefault("inter_latency_us", 1.0)
    overrides.setdefault("retry_timeout_us", 20.0)
    env = Environment()
    params = NetworkParams(faults=plan, **overrides)
    topo = Topology(nprocs, procs_per_node=ppn)
    fabric = Fabric(env, topo, params)
    boxes = {}
    for node in range(topo.nnodes):
        boxes[("srv", node)] = Store(env, name=f"s{node}")
        fabric.register(server_endpoint(node), boxes[("srv", node)])
    for rank in range(nprocs):
        boxes[("mp", rank)] = Store(env, name=f"m{rank}")
        fabric.register(mp_endpoint(rank), boxes[("mp", rank)])
    return env, fabric, boxes


class TestValidation:
    def test_partition_needs_nodes(self):
        with pytest.raises(ValueError, match="at least one node"):
            Partition(nodes=(), from_us=0.0, until_us=10.0)

    def test_partition_window_ordering(self):
        with pytest.raises(ValueError, match="from_us < until_us"):
            Partition(nodes=(1,), from_us=50.0, until_us=50.0)
        with pytest.raises(ValueError, match="from_us < until_us"):
            Partition(nodes=(1,), from_us=-1.0, until_us=10.0)

    def test_partition_nodes_normalized(self):
        part = Partition(nodes=(3, 1, 3), from_us=0.0, until_us=10.0)
        assert part.nodes == (1, 3)

    def test_partition_rejects_negative_nodes(self):
        with pytest.raises(ValueError, match="non-negative"):
            Partition(nodes=(-1,), from_us=0.0, until_us=10.0)

    def test_stall_window_ordering(self):
        with pytest.raises(ValueError, match="from_us < until_us"):
            ProcessStall(rank=1, from_us=20.0, until_us=5.0)
        with pytest.raises(ValueError, match="non-negative"):
            ProcessStall(rank=-2, from_us=0.0, until_us=5.0)

    def test_partitions_require_reliable_transport(self):
        with pytest.raises(ValueError, match="require reliable"):
            FaultPlan(
                partitions=(Partition(nodes=(1,), from_us=0.0, until_us=5.0),),
                reliable=False,
            )

    def test_plan_type_checks_transient_entries(self):
        with pytest.raises(TypeError, match="Partition"):
            FaultPlan(partitions=(((1,), 0.0, 5.0),))
        with pytest.raises(TypeError, match="ProcessStall"):
            FaultPlan(pauses=((1, 0.0, 5.0),))


class TestPlanQueries:
    def test_transient_flag(self):
        assert not FaultPlan().transient
        assert FaultPlan(
            partitions=(Partition(nodes=(1,), from_us=0.0, until_us=5.0),)
        ).transient
        assert FaultPlan(
            pauses=(ProcessStall(rank=2, from_us=0.0, until_us=5.0),)
        ).transient

    def test_transient_end_is_last_window_close(self):
        plan = FaultPlan(
            partitions=(Partition(nodes=(1,), from_us=0.0, until_us=50.0),),
            pauses=(ProcessStall(rank=2, from_us=10.0, until_us=90.0),),
        )
        assert plan.transient_end_us == 90.0
        assert FaultPlan().transient_end_us == 0.0

    def test_windows_sorted_chronologically(self):
        plan = FaultPlan(
            partitions=(
                Partition(nodes=(2,), from_us=60.0, until_us=90.0),
                Partition(nodes=(1,), from_us=10.0, until_us=40.0),
            ),
            pauses=(
                ProcessStall(rank=3, from_us=50.0, until_us=80.0),
                ProcessStall(rank=1, from_us=5.0, until_us=30.0),
            ),
        )
        assert [p.from_us for p in plan.partitions] == [10.0, 60.0]
        assert [s.rank for s in plan.pauses] == [1, 3]

    def test_partitioned_is_directionless_and_timed(self):
        plan = FaultPlan(
            partitions=(Partition(nodes=(1,), from_us=10.0, until_us=20.0),)
        )
        assert plan.partitioned(0, 1, 15.0)
        assert plan.partitioned(1, 0, 15.0)
        assert not plan.partitioned(0, 1, 5.0)
        assert not plan.partitioned(0, 1, 20.0)  # half-open window
        assert not plan.partitioned(0, 2, 15.0)  # same (majority) side

    def test_components_group_by_cut_signature(self):
        plan = FaultPlan(
            partitions=(
                Partition(nodes=(2, 3), from_us=0.0, until_us=100.0),
                Partition(nodes=(3,), from_us=50.0, until_us=100.0),
            )
        )
        # One cut active: {0, 1} | {2, 3}.
        assert plan.components((0, 1, 2, 3), 10.0) == [(0, 1), (2, 3)]
        # Both cuts active: node 3 separates from node 2 as well.
        assert plan.components((0, 1, 2, 3), 60.0) == [(0, 1), (2,), (3,)]
        # No cut active: one component.
        assert plan.components((0, 1, 2, 3), 100.0) == [(0, 1, 2, 3)]


class TestPartitionInjection:
    def plan(self):
        return FaultPlan(
            partitions=(Partition(nodes=(1,), from_us=0.0, until_us=50.0),)
        )

    def test_cut_drops_cross_traffic_both_directions(self):
        env, fabric, boxes = make_fabric(self.plan(), max_retries=2)
        fabric.post(0, server_endpoint(1), "a->b")
        fabric.post(2, server_endpoint(0), "b->a")  # rank 2 lives on node 2
        env.run(until=40.0)
        assert len(boxes[("srv", 1)]) == 0
        assert fabric.faults.stats.partition_dropped > 0

    def test_within_side_traffic_unaffected(self):
        env, fabric, boxes = make_fabric(self.plan(), nprocs=6, max_retries=2)
        fabric.post(0, server_endpoint(2), "majority-internal")
        env.run(until=40.0)
        assert len(boxes[("srv", 2)]) == 1

    def test_heal_lets_retransmits_through(self):
        env, fabric, boxes = make_fabric(
            self.plan(), retry_timeout_us=20.0, max_retries=10
        )
        fabric.post(0, server_endpoint(1), "queued")
        env.run()
        assert [e.payload for e in boxes[("srv", 1)].items] == ["queued"]
        assert fabric.stats.retransmits > 0

    def test_cut_is_deterministic_and_rng_free(self):
        # A partition never draws from the fault RNG, so adding one leaves
        # the probabilistic drop stream untouched.
        def drops(partitions):
            plan = FaultPlan.uniform(drop_rate=0.3, seed=5, partitions=partitions)
            env, fabric, _ = make_fabric(plan, nprocs=6, max_retries=3)
            for i in range(20):
                fabric.post(0, server_endpoint(2), i)
            env.run(until=30.0)
            return fabric.faults.stats.dropped

        cut = (Partition(nodes=(1,), from_us=0.0, until_us=50.0),)
        assert drops(()) == drops(cut)


class TestPauseInjection:
    def test_pause_holds_mailbox_delivery_until_resume(self):
        plan = FaultPlan(
            pauses=(ProcessStall(rank=1, from_us=0.0, until_us=80.0),)
        )
        env, fabric, boxes = make_fabric(plan)
        arrivals = []

        def watch():
            item = yield boxes[("mp", 1)].get()
            arrivals.append((env.now, item.payload))

        env.process(watch())
        fabric.post(0, mp_endpoint(1), "held")
        env.run()
        assert arrivals and arrivals[0][1] == "held"
        assert arrivals[0][0] >= 80.0
        assert fabric.faults.stats.pause_held > 0

    def test_pause_covers_intra_node_queue_too(self):
        # A descheduled process receives nothing, local senders included.
        plan = FaultPlan(
            pauses=(ProcessStall(rank=1, from_us=0.0, until_us=60.0),)
        )
        env, fabric, boxes = make_fabric(plan, nprocs=4, ppn=2)
        fabric.post(0, mp_endpoint(1), "local")  # ranks 0, 1 share node 0
        env.run(until=30.0)
        assert len(boxes[("mp", 1)]) == 0
        env.run()
        assert [e.payload for e in boxes[("mp", 1)].items] == ["local"]

    def test_other_ranks_unaffected(self):
        plan = FaultPlan(
            pauses=(ProcessStall(rank=1, from_us=0.0, until_us=80.0),)
        )
        env, fabric, boxes = make_fabric(plan)
        fabric.post(0, mp_endpoint(2), "prompt")
        env.run(until=30.0)
        assert len(boxes[("mp", 2)]) == 1
