"""Property-based timing invariants of the message fabric."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.fabric import Fabric
from repro.net.message import server_endpoint
from repro.net.params import MSG_HEADER_BYTES, NetworkParams
from repro.net.topology import Topology
from repro.sim.core import Environment
from repro.sim.primitives import Store


def rig(nprocs=2, **overrides):
    env = Environment()
    overrides.setdefault("jitter_us", 0.0)
    params = NetworkParams(**overrides)
    topo = Topology(nprocs)
    fabric = Fabric(env, topo, params)
    boxes = {}
    for node in range(topo.nnodes):
        boxes[node] = Store(env)
        fabric.register(server_endpoint(node), boxes[node])
    return env, fabric, boxes


@given(
    sizes=st.lists(st.integers(min_value=0, max_value=65536),
                   min_size=1, max_size=30),
    latency=st.floats(min_value=0.0, max_value=100.0),
    per_byte=st.floats(min_value=0.0, max_value=0.1),
)
@settings(max_examples=80, deadline=None)
def test_delivery_never_beats_physics(sizes, latency, per_byte):
    """Every delivery happens no earlier than wire latency + its own
    serialization, and NIC backlog only ever delays, never reorders."""
    env, fabric, boxes = rig(inter_latency_us=latency, per_byte_us=per_byte)
    for i, size in enumerate(sizes):
        fabric.post(0, server_endpoint(1), i, payload_bytes=size)
    env.run()
    deliveries = []
    while True:
        envelope = boxes[1].try_get()
        if envelope is None:
            break
        deliveries.append(envelope)
    assert len(deliveries) == len(sizes)
    for envelope in deliveries:
        floor = latency + envelope.size_bytes * per_byte
        assert envelope.deliver_at >= floor - 1e-9
    # In-order: same-pair messages arrive in post order.
    assert [e.payload for e in deliveries] == list(range(len(sizes)))
    arrival_times = [e.deliver_at for e in deliveries]
    assert arrival_times == sorted(arrival_times)


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=4096),
                   min_size=2, max_size=20)
)
@settings(max_examples=60, deadline=None)
def test_nic_serialization_conserves_work(sizes):
    """The NIC finishes its backlog exactly at the sum of transfer times
    when all messages are posted at t=0."""
    per_byte = 0.01
    env, fabric, _boxes = rig(per_byte_us=per_byte)
    for i, size in enumerate(sizes):
        fabric.post(0, server_endpoint(1), i, payload_bytes=size)
    total_bytes = sum(size + MSG_HEADER_BYTES for size in sizes)
    assert fabric.nic_busy_until(0) == _approx(total_bytes * per_byte)
    env.run()


def _approx(x, eps=1e-6):
    class _A:
        def __eq__(self, other):
            return abs(other - x) < eps

    return _A()


@given(
    jitter=st.floats(min_value=0.1, max_value=200.0),
    seed=st.integers(0, 9999),
)
@settings(max_examples=60, deadline=None)
def test_jitter_only_adds_delay(jitter, seed):
    """Jitter may reorder but never delivers earlier than the jitter-free
    lower bound."""
    env, fabric, boxes = rig(jitter_us=jitter, seed=seed)
    params = fabric.params
    for i in range(10):
        fabric.post(0, server_endpoint(1), i, payload_bytes=0)
    env.run()
    while True:
        envelope = boxes[1].try_get()
        if envelope is None:
            break
        floor = params.inter_latency_us + envelope.size_bytes * params.per_byte_us
        assert envelope.deliver_at >= envelope.sent_at + floor - 1e-9
        assert envelope.deliver_at <= envelope.sent_at + floor + jitter + \
            fabric.nic_busy_until(0) + 1e-9
