"""Unit tests for message delivery timing and the NIC model."""

import pytest

from repro.net.fabric import Fabric
from repro.net.faults import FaultPlan
from repro.net.message import mp_endpoint, server_endpoint
from repro.net.params import MSG_HEADER_BYTES, NetworkParams
from repro.net.topology import Topology
from repro.sim.core import Environment, Event
from repro.sim.primitives import Store


def make_fabric(nprocs=4, ppn=1, **param_overrides):
    env = Environment()
    params = NetworkParams(**param_overrides) if param_overrides else NetworkParams()
    topo = Topology(nprocs, procs_per_node=ppn)
    fabric = Fabric(env, topo, params)
    boxes = {}
    for node in range(topo.nnodes):
        boxes[("srv", node)] = Store(env, name=f"s{node}")
        fabric.register(server_endpoint(node), boxes[("srv", node)])
    return env, fabric, boxes


class TestRegistry:
    def test_duplicate_endpoint_rejected(self):
        env, fabric, _ = make_fabric()
        with pytest.raises(ValueError, match="already registered"):
            fabric.register(server_endpoint(0), Store(env))

    def test_unknown_endpoint_lookup(self):
        _env, fabric, _ = make_fabric()
        with pytest.raises(KeyError, match="no mailbox"):
            fabric.mailbox(("srv", 99))

    def test_non_store_mailbox_rejected(self):
        env, fabric, _ = make_fabric()
        with pytest.raises(TypeError):
            fabric.register(("mp", 0), object())

    def test_unknown_endpoint_kind(self):
        _env, fabric, _ = make_fabric()
        with pytest.raises(ValueError, match="endpoint kind"):
            fabric.post(0, ("weird", 0), "x")


class TestDeliveryTiming:
    def test_inter_node_delay(self):
        env, fabric, boxes = make_fabric(
            inter_latency_us=10.0, per_byte_us=0.0, jitter_us=0.0
        )
        fabric.post(0, server_endpoint(1), "hello", payload_bytes=0)
        env.run()
        box = boxes[("srv", 1)]
        assert len(box) == 1
        envelope = box.try_get()
        assert envelope.deliver_at == pytest.approx(10.0)
        assert not envelope.intra_node

    def test_intra_node_delay(self):
        env, fabric, boxes = make_fabric(
            ppn=2, intra_latency_us=0.5, inter_latency_us=10.0
        )
        # rank 1 lives on node 0
        fabric.post(1, server_endpoint(0), "hi")
        env.run()
        envelope = boxes[("srv", 0)].try_get()
        assert envelope.deliver_at == pytest.approx(0.5)
        assert envelope.intra_node

    def test_per_byte_serialization(self):
        env, fabric, boxes = make_fabric(
            inter_latency_us=0.0, per_byte_us=0.1, jitter_us=0.0
        )
        fabric.post(0, server_endpoint(1), "x", payload_bytes=68)
        env.run()
        envelope = boxes[("srv", 1)].try_get()
        assert envelope.size_bytes == 68 + MSG_HEADER_BYTES
        assert envelope.deliver_at == pytest.approx(0.1 * (68 + MSG_HEADER_BYTES))

    def test_nic_backlog_serializes_consecutive_sends(self):
        env, fabric, boxes = make_fabric(
            inter_latency_us=1.0, per_byte_us=0.01, jitter_us=0.0
        )
        # Two 1000-byte messages posted at t=0 from the same node: the second
        # waits for the first's DMA.
        fabric.post(0, server_endpoint(1), "a", payload_bytes=1000 - MSG_HEADER_BYTES)
        fabric.post(0, server_endpoint(1), "b", payload_bytes=1000 - MSG_HEADER_BYTES)
        env.run()
        box = boxes[("srv", 1)]
        first = box.try_get()
        second = box.try_get()
        assert first.deliver_at == pytest.approx(10.0 + 1.0)
        assert second.deliver_at == pytest.approx(20.0 + 1.0)
        assert fabric.nic_busy_until(0) == pytest.approx(20.0)

    def test_different_nodes_do_not_share_nic(self):
        env, fabric, boxes = make_fabric(
            inter_latency_us=1.0, per_byte_us=0.01, jitter_us=0.0
        )
        fabric.post(0, server_endpoint(2), "a", payload_bytes=1000 - MSG_HEADER_BYTES)
        fabric.post(1, server_endpoint(2), "b", payload_bytes=1000 - MSG_HEADER_BYTES)
        env.run()
        box = boxes[("srv", 2)]
        assert box.try_get().deliver_at == pytest.approx(11.0)
        assert box.try_get().deliver_at == pytest.approx(11.0)

    def test_send_charges_sender_overhead(self):
        env, fabric, _boxes = make_fabric(o_send_us=2.5)
        times = []

        def sender():
            yield from fabric.send(0, server_endpoint(1), "msg")
            times.append(env.now)

        env.process(sender())
        env.run()
        assert times == [2.5]

    def test_intra_send_charges_shm_cost(self):
        env, fabric, _boxes = make_fabric(
            ppn=2, o_send_us=2.5, shm_access_us=0.25
        )
        times = []

        def sender():
            yield from fabric.send(1, server_endpoint(0), "msg")
            times.append(env.now)

        env.process(sender())
        env.run()
        assert times == [0.25]


class TestReplies:
    def test_post_reply_delivers_value_with_path_delay(self):
        env, fabric, _ = make_fabric(
            inter_latency_us=5.0, per_byte_us=0.0, o_recv_us=1.0
        )
        reply = Event(env)
        fabric.post_reply(1, 0, reply, value="result")
        env.run()
        assert reply.processed and reply.value == "result"
        assert env.now == pytest.approx(6.0)

    def test_intra_reply_cheaper(self):
        env, fabric, _ = make_fabric(
            ppn=2, intra_latency_us=0.5, shm_access_us=0.1, o_recv_us=1.0
        )
        reply = Event(env)
        fabric.post_reply(0, 1, reply, value=None)  # rank 1 on node 0
        env.run()
        assert env.now == pytest.approx(0.6)


class TestStats:
    def test_counters(self):
        env, fabric, _ = make_fabric(ppn=2)
        fabric.post(0, server_endpoint(1), "inter")
        fabric.post(1, server_endpoint(0), "intra")
        env.run()
        assert fabric.stats.messages == 2
        assert fabric.stats.inter_node == 1
        assert fabric.stats.intra_node == 1
        assert fabric.stats.by_payload == {"str": 2}
        assert fabric.stats.bytes > 0

    def test_reply_counter(self):
        env, fabric, _ = make_fabric()
        fabric.post_reply(0, 1, Event(env))
        assert fabric.stats.replies == 1
        env.run()

    def test_reply_counts_message_bytes_and_payload(self):
        # Regression: replies used to bump only `replies`, undercounting
        # messages/bytes/by_payload relative to the traffic on the wire.
        env, fabric, _ = make_fabric()
        fabric.post_reply(0, 1, Event(env), payload_bytes=100)
        assert fabric.stats.messages == 1
        assert fabric.stats.bytes == 100 + MSG_HEADER_BYTES
        assert fabric.stats.inter_node == 1
        assert fabric.stats.by_payload == {"Reply": 1}
        env.run()

    def test_intra_reply_counts_as_intra_node(self):
        env, fabric, _ = make_fabric(ppn=2)
        fabric.post_reply(0, 1, Event(env))  # rank 1 lives on node 0
        assert fabric.stats.intra_node == 1
        assert fabric.stats.inter_node == 0
        env.run()

    def test_reliability_counters_zero_without_faults(self):
        env, fabric, _ = make_fabric()
        fabric.post(0, server_endpoint(1), "x")
        fabric.post_reply(1, 0, Event(env))
        env.run()
        assert fabric.stats.timeouts == 0
        assert fabric.stats.retransmits == 0
        assert fabric.stats.dup_suppressed == 0
        assert fabric.stats.acks == 0


class TestJitter:
    def test_jitter_can_reorder_messages(self):
        env, fabric, boxes = make_fabric(
            inter_latency_us=1.0, per_byte_us=0.0, jitter_us=50.0, seed=7
        )
        for i in range(20):
            fabric.post(0, server_endpoint(1), i, payload_bytes=0)
        env.run()
        box = boxes[("srv", 1)]
        order = [box.try_get().payload for _ in range(20)]
        assert sorted(order) == list(range(20))
        assert order != list(range(20)), "jitter should reorder some pair"

    def test_jitter_deterministic_per_seed(self):
        def run(seed):
            env, fabric, boxes = make_fabric(jitter_us=20.0, seed=seed)
            for i in range(10):
                fabric.post(0, server_endpoint(1), i, payload_bytes=0)
            env.run()
            box = boxes[("srv", 1)]
            return [box.try_get().payload for _ in range(10)]

        assert run(3) == run(3)

    def test_no_jitter_preserves_order(self):
        env, fabric, boxes = make_fabric(jitter_us=0.0)
        for i in range(20):
            fabric.post(0, server_endpoint(1), i, payload_bytes=0)
        env.run()
        box = boxes[("srv", 1)]
        assert [box.try_get().payload for _ in range(20)] == list(range(20))


class TestRngStreamSplit:
    """The jitter and fault RNG streams must be independent (same seed)."""

    def _jittered_arrivals(self, faults):
        env, fabric, boxes = make_fabric(
            inter_latency_us=1.0,
            per_byte_us=0.0,
            jitter_us=50.0,
            seed=7,
            faults=faults,
        )
        for i in range(20):
            fabric.post(0, server_endpoint(1), i, payload_bytes=0)
        env.run()
        box = boxes[("srv", 1)]
        count = len(box)
        out = [box.try_get() for _ in range(count)]
        return [(e.payload, e.deliver_at) for e in out]

    def test_inactive_fault_plan_leaves_jitter_sequence_unchanged(self):
        # A present-but-all-zero plan routes through the injector yet must
        # not perturb the jitter draws: identical payload/time schedule.
        baseline = self._jittered_arrivals(None)
        with_plan = self._jittered_arrivals(FaultPlan.uniform(reliable=False))
        assert with_plan == baseline

    def test_drops_do_not_shift_surviving_jitter_draws(self):
        # Fault decisions come from their own stream, so the messages that
        # survive a lossy plan keep the exact delivery times they had in the
        # fault-free run.
        baseline = dict(self._jittered_arrivals(None))
        lossy = self._jittered_arrivals(
            FaultPlan.uniform(drop_rate=0.3, seed=3, reliable=False)
        )
        assert 0 < len(lossy) < 20
        for payload, deliver_at in lossy:
            assert deliver_at == pytest.approx(baseline[payload])
