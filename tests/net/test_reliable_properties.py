"""Property test: reliable delivery makes link faults invisible upstream.

For each seed, a randomized put/acc/barrier SPMD workload runs twice — once
fault-free, once under seeded drops and duplications with the reliable
layer on — and the final memory state plus per-rank ``op_done`` counters
must match exactly.  The workload is built to have an
interleaving-independent correct answer: each rank puts only into its own
(disjoint) slot, accumulates are commutative, and barriers separate rounds,
so any divergence is a genuine delivery bug (lost, duplicated, reordered,
or double-applied operation).
"""

import random

import pytest

from repro.net.faults import FaultPlan
from repro.net.params import myrinet2000
from repro.runtime.cluster import ClusterRuntime
from repro.runtime.memory import GlobalAddress

NPROCS = 4
SLOT_CELLS = 3
SEEDS = list(range(20))

DROP_RATE = 0.1
DUP_RATE = 0.05


def randomized_workload(ctx, seed):
    # Shared stream: decisions every rank must agree on (collective counts).
    shared = random.Random(f"prop:{seed}")
    # Per-rank stream: this rank's own operation mix.
    rng = random.Random(f"prop:{seed}:{ctx.rank}")
    base = ctx.region.alloc_named("prop.slots", ctx.nprocs * SLOT_CELLS, initial=0)
    acc_addr = ctx.region.alloc_named("prop.acc", 1, initial=0)
    rounds = shared.randint(2, 3)
    for _round in range(rounds):
        for _op in range(rng.randint(2, 5)):
            peer = rng.randrange(ctx.nprocs)
            if peer == ctx.rank:
                continue
            if rng.random() < 0.5:
                slot = base + ctx.rank * SLOT_CELLS
                values = [rng.randint(1, 99)] * SLOT_CELLS
                yield from ctx.armci.put(GlobalAddress(peer, slot), values)
            else:
                yield from ctx.armci.acc(GlobalAddress(peer, acc_addr), [rng.randint(1, 9)])
        yield from ctx.armci.barrier()
    return (
        tuple(ctx.region.read_many(base, ctx.nprocs * SLOT_CELLS)),
        ctx.region.read(acc_addr),
        ctx.armci.server.op_done(ctx.rank),
    )


def run_once(seed, plan):
    params = myrinet2000()
    if plan is not None:
        params = params.with_(faults=plan, retry_timeout_us=30.0)
    runtime = ClusterRuntime(NPROCS, params=params)
    states = runtime.run_spmd(randomized_workload, seed)
    return states, runtime


@pytest.mark.parametrize("seed", SEEDS)
def test_faulty_run_matches_fault_free_state(seed):
    clean_states, _ = run_once(seed, None)
    plan = FaultPlan.uniform(drop_rate=DROP_RATE, dup_rate=DUP_RATE, seed=seed)
    faulty_states, runtime = run_once(seed, plan)
    assert faulty_states == clean_states
    # The transport finished its job: nothing stuck in flight or buffered.
    assert runtime.fabric.reliable.in_flight() == 0
    assert runtime.fabric.reliable.resequencer_depth() == 0


def test_faults_were_actually_exercised():
    # Across the seed set the injector must have really dropped and
    # duplicated traffic (per-seed counts can legitimately be zero).
    dropped = retransmits = suppressed = 0
    for seed in SEEDS:
        plan = FaultPlan.uniform(drop_rate=DROP_RATE, dup_rate=DUP_RATE, seed=seed)
        _states, runtime = run_once(seed, plan)
        dropped += runtime.fabric.faults.stats.dropped
        retransmits += runtime.fabric.stats.retransmits
        suppressed += runtime.fabric.stats.dup_suppressed
    assert dropped > 0
    assert retransmits > 0
    assert suppressed > 0
