"""Unit tests for the fault-injection fabric (repro.net.faults)."""

import pytest

from repro.net.fabric import Fabric
from repro.net.faults import (
    FaultInjector,
    FaultPlan,
    LinkFaults,
    ProcessCrash,
    StallWindow,
)
from repro.net.message import server_endpoint
from repro.net.params import NetworkParams
from repro.net.topology import Topology
from repro.sim.core import Environment
from repro.sim.primitives import Store


def make_fabric(plan, nprocs=4, ppn=1, **overrides):
    """Fabric with a fault plan and deterministic (jitter-free) timing."""
    overrides.setdefault("jitter_us", 0.0)
    overrides.setdefault("per_byte_us", 0.0)
    overrides.setdefault("inter_latency_us", 1.0)
    env = Environment()
    params = NetworkParams(faults=plan, **overrides)
    topo = Topology(nprocs, procs_per_node=ppn)
    fabric = Fabric(env, topo, params)
    boxes = {}
    for node in range(topo.nnodes):
        boxes[("srv", node)] = Store(env, name=f"s{node}")
        fabric.register(server_endpoint(node), boxes[("srv", node)])
    return env, fabric, boxes


def drain(box):
    count = len(box)
    return [box.try_get() for _ in range(count)]


class TestValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError, match="drop_rate"):
            LinkFaults(drop_rate=1.5)
        with pytest.raises(ValueError, match="dup_rate"):
            LinkFaults(dup_rate=-0.1)

    def test_magnitudes_must_be_non_negative(self):
        with pytest.raises(ValueError, match="delay_spike_us"):
            LinkFaults(delay_spike_us=-1.0)
        with pytest.raises(ValueError, match="dup_lag_us"):
            LinkFaults(dup_lag_us=-1.0)

    def test_stall_window_ordering(self):
        with pytest.raises(ValueError, match="start_us < end_us"):
            StallWindow(node=0, start_us=5.0, end_us=5.0)

    def test_stall_window_mode(self):
        with pytest.raises(ValueError, match="stall.*crash"):
            StallWindow(node=0, start_us=0.0, end_us=1.0, mode="reboot")

    def test_params_reject_non_plan(self):
        with pytest.raises((TypeError, ValueError)):
            NetworkParams(faults="drop everything")


class TestPlan:
    def test_inactive_by_default(self):
        assert not LinkFaults().active
        assert LinkFaults(drop_rate=0.1).active
        assert LinkFaults(reorder_rate=0.1).active

    def test_per_link_override(self):
        special = LinkFaults(drop_rate=0.9)
        plan = FaultPlan(links=(((0, 1), special),))
        assert plan.link(0, 1) is special
        assert plan.link(1, 0) == plan.default

    def test_uniform_builder(self):
        plan = FaultPlan.uniform(drop_rate=0.2, dup_rate=0.1, seed=5)
        assert plan.default.drop_rate == 0.2
        assert plan.default.dup_rate == 0.1
        assert plan.seed == 5 and plan.reliable

    def test_plan_seed_overrides_network_seed(self):
        pinned = FaultInjector(FaultPlan(seed=5), fallback_seed=999)
        fallback = FaultInjector(FaultPlan(seed=None), fallback_seed=5)
        draws = lambda inj: [inj._rng.random() for _ in range(4)]
        assert draws(pinned) == draws(fallback)


class TestInjection:
    def test_drop_everything(self):
        plan = FaultPlan.uniform(drop_rate=1.0, reliable=False)
        env, fabric, boxes = make_fabric(plan)
        for i in range(5):
            fabric.post(0, server_endpoint(1), i)
        env.run()
        assert len(boxes[("srv", 1)]) == 0
        assert fabric.faults.stats.dropped == 5

    def test_duplicate_keeps_fabric_seq(self):
        plan = FaultPlan.uniform(dup_rate=1.0, reliable=False)
        env, fabric, boxes = make_fabric(plan)
        fabric.post(0, server_endpoint(1), "msg")
        env.run()
        copies = drain(boxes[("srv", 1)])
        assert len(copies) == 2
        assert copies[0].seq == copies[1].seq  # same logical message
        assert copies[1].deliver_at >= copies[0].deliver_at
        assert fabric.faults.stats.duplicated == 1

    def test_delay_spike(self):
        plan = FaultPlan.uniform(delay_rate=1.0, delay_spike_us=100.0, reliable=False)
        env, fabric, boxes = make_fabric(plan)
        fabric.post(0, server_endpoint(1), "late", payload_bytes=0)
        env.run()
        envelope = boxes[("srv", 1)].try_get()
        assert envelope.deliver_at == pytest.approx(101.0)
        assert fabric.faults.stats.delay_spikes == 1

    def test_intra_node_queue_is_reliable(self):
        plan = FaultPlan.uniform(drop_rate=1.0, dup_rate=1.0, reliable=False)
        env, fabric, boxes = make_fabric(plan, ppn=2)
        fabric.post(1, server_endpoint(0), "local")  # rank 1 lives on node 0
        env.run()
        assert len(boxes[("srv", 0)]) == 1
        assert fabric.faults.stats.dropped == 0

    def test_deterministic_per_seed(self):
        def delivered(seed):
            plan = FaultPlan.uniform(drop_rate=0.4, seed=seed, reliable=False)
            env, fabric, boxes = make_fabric(plan)
            for i in range(40):
                fabric.post(0, server_endpoint(1), i)
            env.run()
            return [e.payload for e in drain(boxes[("srv", 1)])]

        assert delivered(11) == delivered(11)
        assert delivered(11) != delivered(12)


class TestStallWindows:
    def test_stall_holds_delivery_until_window_end(self):
        plan = FaultPlan(
            stalls=(StallWindow(node=1, start_us=0.0, end_us=50.0),),
            reliable=False,
        )
        env, fabric, boxes = make_fabric(plan)
        fabric.post(0, server_endpoint(1), "held", payload_bytes=0)
        env.run()
        envelope = boxes[("srv", 1)].try_get()
        assert envelope.deliver_at == pytest.approx(50.0)
        assert fabric.faults.stats.stall_held == 1

    def test_crash_drops_in_flight(self):
        plan = FaultPlan(
            stalls=(StallWindow(node=1, start_us=0.0, end_us=50.0, mode="crash"),),
            reliable=False,
        )
        env, fabric, boxes = make_fabric(plan)
        fabric.post(0, server_endpoint(1), "lost", payload_bytes=0)
        env.run()
        assert len(boxes[("srv", 1)]) == 0
        assert fabric.faults.stats.crash_dropped == 1

    def test_window_is_per_node_and_timed(self):
        plan = FaultPlan(
            stalls=(StallWindow(node=1, start_us=0.0, end_us=50.0),),
            reliable=False,
        )
        env, fabric, boxes = make_fabric(plan)
        fabric.post(0, server_endpoint(2), "other-node", payload_bytes=0)

        # After the window closes, node 1 delivers normally again.
        def late_sender():
            yield env.timeout(60.0)
            fabric.post(0, server_endpoint(1), "after", payload_bytes=0)

        env.process(late_sender())
        env.run()
        assert boxes[("srv", 2)].try_get().deliver_at == pytest.approx(1.0)
        assert boxes[("srv", 1)].try_get().deliver_at == pytest.approx(61.0)
        assert fabric.faults.stats.stall_held == 0


class TestCrashScheduleNormalization:
    """FaultPlan crash schedules are validated and normalized (PR 6)."""

    def test_crash_at_zero_rejected(self):
        with pytest.raises(ValueError, match="at_us must be positive"):
            ProcessCrash(at_us=0.0, rank=1)

    def test_negative_crash_time_rejected(self):
        with pytest.raises(ValueError, match="at_us must be positive"):
            ProcessCrash(at_us=-5.0, node=0)

    def test_exactly_one_target(self):
        with pytest.raises(ValueError, match="exactly one"):
            ProcessCrash(at_us=1.0)
        with pytest.raises(ValueError, match="exactly one"):
            ProcessCrash(at_us=1.0, rank=1, node=0)
        with pytest.raises(ValueError, match="exactly one"):
            ProcessCrash(at_us=1.0, rank=1, nic=0)

    def test_nic_target_accepted(self):
        crash = ProcessCrash(at_us=10.0, nic=3)
        assert crash.target == ("nic", 3)

    def test_duplicate_rank_entries_keep_earliest(self):
        plan = FaultPlan(
            crashes=(
                ProcessCrash(at_us=50.0, rank=2),
                ProcessCrash(at_us=20.0, rank=2),
                ProcessCrash(at_us=80.0, rank=2),
            )
        )
        assert plan.crashes == (ProcessCrash(at_us=20.0, rank=2),)

    def test_schedule_sorted_chronologically(self):
        plan = FaultPlan(
            crashes=(
                ProcessCrash(at_us=90.0, node=1),
                ProcessCrash(at_us=10.0, rank=3),
                ProcessCrash(at_us=40.0, nic=2),
            )
        )
        assert [c.at_us for c in plan.crashes] == [10.0, 40.0, 90.0]

    def test_rank_and_node_targets_are_distinct(self):
        # A node crash and a crash of one of its ranks are different
        # targets; both survive normalization (kill-time idempotency
        # resolves the overlap — see tests/runtime/test_membership.py).
        plan = FaultPlan(
            crashes=(
                ProcessCrash(at_us=30.0, node=1),
                ProcessCrash(at_us=10.0, rank=1),
            )
        )
        assert len(plan.crashes) == 2

    def test_normalization_is_deterministic(self):
        entries = (
            ProcessCrash(at_us=50.0, rank=2),
            ProcessCrash(at_us=50.0, node=1),
            ProcessCrash(at_us=50.0, nic=0),
        )
        import itertools

        schedules = {
            FaultPlan(crashes=perm).crashes
            for perm in itertools.permutations(entries)
        }
        assert len(schedules) == 1  # same normal form from any input order
