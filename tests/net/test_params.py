"""Unit tests for network parameter sets."""

import pytest

from repro.net.params import (
    MSG_HEADER_BYTES,
    SMALL_MSG_BYTES,
    NetworkParams,
    _preset,
    gige,
    myrinet2000,
    quadrics_like,
)


class TestValidation:
    @pytest.mark.parametrize(
        "field",
        [
            "inter_latency_us",
            "per_byte_us",
            "o_send_us",
            "o_recv_us",
            "intra_latency_us",
            "shm_access_us",
            "shm_atomic_us",
            "poll_detect_us",
            "server_proc_us",
            "server_wake_us",
            "mem_copy_per_byte_us",
            "server_fence_check_us",
            "server_lock_op_us",
            "api_call_us",
            "mp_call_us",
            "jitter_us",
        ],
    )
    def test_negative_values_rejected(self, field):
        with pytest.raises(ValueError, match=field):
            NetworkParams(**{field: -0.1})

    def test_zero_costs_allowed(self):
        params = NetworkParams(
            inter_latency_us=0.0, o_send_us=0.0, server_wake_us=0.0
        )
        assert params.inter_latency_us == 0.0

    def test_frozen(self):
        with pytest.raises(Exception):
            myrinet2000().inter_latency_us = 5.0


class TestDerivedCosts:
    def test_xfer_time_linear_in_bytes(self):
        params = NetworkParams(per_byte_us=0.01)
        assert params.xfer_time(100) == pytest.approx(1.0)
        assert params.xfer_time(0) == 0.0

    def test_one_way_includes_all_terms(self):
        params = NetworkParams(
            inter_latency_us=10.0, per_byte_us=0.0, o_send_us=1.0, o_recv_us=2.0
        )
        assert params.one_way(0) == pytest.approx(13.0)

    def test_one_way_charges_header(self):
        params = NetworkParams(
            inter_latency_us=0.0, per_byte_us=1.0, o_send_us=0.0, o_recv_us=0.0
        )
        assert params.one_way(8) == pytest.approx(8 + MSG_HEADER_BYTES)

    def test_with_replaces_fields(self):
        params = myrinet2000().with_(inter_latency_us=99.0)
        assert params.inter_latency_us == 99.0
        # other fields untouched
        assert params.o_send_us == myrinet2000().o_send_us


class TestPresets:
    def test_myrinet_default_is_networkparams_default(self):
        assert myrinet2000() == NetworkParams()

    def test_gige_is_slower_than_myrinet(self):
        assert gige().inter_latency_us > myrinet2000().inter_latency_us
        assert gige().one_way() > myrinet2000().one_way()

    def test_quadrics_is_faster_than_myrinet(self):
        assert quadrics_like().one_way() < myrinet2000().one_way()

    def test_preset_overrides(self):
        assert myrinet2000(server_wake_us=1.0).server_wake_us == 1.0
        assert gige(o_send_us=0.5).o_send_us == 0.5

    def test_preset_lookup_by_name(self):
        assert _preset("gige") == gige()
        assert _preset("myrinet2000") == myrinet2000()
        assert _preset("quadrics") == quadrics_like()

    def test_preset_unknown_name(self):
        with pytest.raises(ValueError, match="unknown network preset"):
            _preset("infiniband")

    def test_small_msg_constant_sane(self):
        assert 0 < SMALL_MSG_BYTES <= 256
