"""Tests for fabric envelopes and endpoint addressing."""

from repro.net.message import Envelope, mp_endpoint, server_endpoint


class TestEndpoints:
    def test_server_endpoint(self):
        assert server_endpoint(3) == ("srv", 3)

    def test_mp_endpoint(self):
        assert mp_endpoint(7) == ("mp", 7)

    def test_endpoints_hashable_and_distinct(self):
        table = {server_endpoint(0): "a", mp_endpoint(0): "b"}
        assert len(table) == 2


class TestEnvelope:
    def make(self, **kw):
        defaults = dict(
            src_rank=1, dst=server_endpoint(2), payload="data",
            size_bytes=96, sent_at=5.0, deliver_at=12.5, seq=42,
            intra_node=False,
        )
        defaults.update(kw)
        return Envelope(**defaults)

    def test_fields(self):
        env = self.make()
        assert env.src_rank == 1 and env.dst == ("srv", 2)
        assert env.deliver_at == 12.5

    def test_repr_shows_path_kind(self):
        assert "inter" in repr(self.make())
        assert "intra" in repr(self.make(intra_node=True))

    def test_repr_shows_payload_type(self):
        assert "str" in repr(self.make())
