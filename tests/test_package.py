"""Package-level contract tests: exports, versioning, registry coherence."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_matches_packaging(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.sim",
            "repro.net",
            "repro.runtime",
            "repro.mp",
            "repro.armci",
            "repro.locks",
            "repro.ga",
            "repro.experiments",
            "repro.cli",
        ],
    )
    def test_subpackage_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"


class TestLockRegistry:
    def test_every_kind_constructs_and_runs(self, make_cluster):
        from repro.locks import LOCK_KINDS, make_lock

        local_only = {"ticket", "lh"}

        def main(ctx, kind):
            lock = make_lock(kind, ctx, home_rank=0, name=f"reg-{kind}")
            yield from lock.acquire()
            yield from lock.release()
            yield from ctx.armci.barrier()
            return lock.kind

        for kind in LOCK_KINDS:
            ppn = 2 if kind in local_only else 1
            rt = make_cluster(nprocs=2, procs_per_node=ppn)
            kinds = rt.run_spmd(main, kind)
            assert kinds == [kind, kind]

    def test_kind_attribute_matches_registry_key(self):
        from repro.locks import LOCK_KINDS

        for key, cls in LOCK_KINDS.items():
            assert cls.kind == key, (key, cls.kind)

    def test_unknown_kind_message_lists_choices(self, make_cluster):
        from repro.locks import make_lock

        rt = make_cluster(nprocs=1)
        with pytest.raises(ValueError, match="mcs"):
            make_lock("spinlock9000", rt.context(0), home_rank=0)


class TestMultiProgramSpawn:
    def test_two_independent_programs_one_cluster(self, make_cluster):
        """spawn() supports heterogeneous programs sharing the substrate."""

        def producer(ctx):
            base = ctx.regions[1].alloc_named("mp1", 1, 0)
            yield from ctx.armci.put(ctx.ga(1, base), [41])
            yield from ctx.armci.fence(1)
            yield from ctx.comm.send(1, "ready", tag=5)
            return "produced"

        def consumer(ctx):
            base = ctx.regions[1].alloc_named("mp1", 1, 0)
            yield from ctx.comm.recv(source=0, tag=5)
            return ctx.region.read(base)

        rt = make_cluster(nprocs=2)
        procs = {}
        procs.update(rt.spawn(producer, ranks=[0]))
        procs.update(rt.spawn(consumer, ranks=[1]))
        rt.run()
        assert procs[0].value == "produced"
        assert procs[1].value == 41

    def test_mismatched_collective_order_is_detected(self, make_cluster):
        """SPMD misuse (ranks calling different collectives) surfaces as a
        DeadlockError naming the stuck programs, not a silent hang."""
        from repro.mp import collectives
        from repro.runtime.cluster import DeadlockError

        def main(ctx):
            if ctx.rank == 0:
                yield from collectives.barrier(ctx.comm)
            else:
                yield from collectives.allreduce_sum(ctx.comm, [1])

        rt = make_cluster(nprocs=2)
        with pytest.raises(DeadlockError, match="main"):
            rt.run_spmd(main)
