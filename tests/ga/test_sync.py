"""Function-level tests for the standalone ga_sync entry point."""

import pytest

from repro.ga.sync import ga_sync
from repro.runtime.memory import GlobalAddress


class TestGaSyncFunction:
    @pytest.mark.parametrize("mode", ["current", "new", "auto"])
    def test_completes_outstanding_puts(self, make_cluster, mode):
        """ga_sync works without any GlobalArray — it is the context-level
        GA_Sync over whatever ARMCI traffic is outstanding."""

        def main(ctx):
            base = ctx.region.alloc(1, initial=0)
            peer = (ctx.rank + 1) % ctx.nprocs
            yield from ctx.armci.put(GlobalAddress(peer, base), [ctx.rank + 1])
            yield from ga_sync(ctx, mode)
            return ctx.region.read(base)

        rt = make_cluster(nprocs=4)
        assert rt.run_spmd(main) == [4, 1, 2, 3]

    def test_unknown_mode_rejected(self, make_cluster):
        def main(ctx):
            yield from ga_sync(ctx, "turbo")

        rt = make_cluster(nprocs=2)
        with pytest.raises(ValueError, match="GA_Sync mode"):
            rt.run_spmd(main)

    def test_current_mode_uses_allfence(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1)
            peer = (ctx.rank + 1) % ctx.nprocs
            yield from ctx.armci.put(GlobalAddress(peer, base), [1])
            yield from ga_sync(ctx, "current")

        rt = make_cluster(nprocs=4)
        rt.run_spmd(main)
        total_fences = sum(s.stats.fences for s in rt.servers.values())
        assert total_fences == 4  # one dirty server per rank

    def test_new_mode_sends_no_fence_requests(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1)
            peer = (ctx.rank + 1) % ctx.nprocs
            yield from ctx.armci.put(GlobalAddress(peer, base), [1])
            yield from ga_sync(ctx, "new")

        rt = make_cluster(nprocs=4)
        rt.run_spmd(main)
        assert sum(s.stats.fences for s in rt.servers.values()) == 0
