"""Tests for ghost-cell (halo) support."""

import numpy as np
import pytest

from repro.ga.ghosts import GhostArray, _edge_range, _halo_range


class TestRanges:
    def test_edge_ranges(self):
        assert _edge_range(-1, 10, 2) == (0, 2)
        assert _edge_range(1, 10, 2) == (8, 10)
        assert _edge_range(0, 10, 2) == (0, 10)

    def test_halo_ranges(self):
        assert _halo_range(-1, 10, 2) == (0, 2)
        assert _halo_range(1, 10, 2) == (12, 14)
        assert _halo_range(0, 10, 2) == (2, 12)


def reference_halo(global_array, r0, r1, c0, c1, width, boundary):
    """The halo-extended view a block should see after update_ghosts."""
    rows, cols = global_array.shape
    out = np.full((r1 - r0 + 2 * width, c1 - c0 + 2 * width), boundary)
    for i in range(r0 - width, r1 + width):
        for j in range(c0 - width, c1 + width):
            if 0 <= i < rows and 0 <= j < cols:
                out[i - (r0 - width), j - (c0 - width)] = global_array[i, j]
    return out


def make_global(shape, seed=3):
    rng = np.random.default_rng(seed)
    return rng.integers(1, 100, size=shape).astype(float)


class TestUpdateGhosts:
    @pytest.mark.parametrize("nprocs", [1, 2, 4, 6])
    @pytest.mark.parametrize("width", [1, 2])
    def test_halos_match_reference(self, make_cluster, nprocs, width):
        shape = (12, 12)
        reference = make_global(shape)

        def main(ctx):
            gh = GhostArray(ctx, "G", shape, width=width, boundary=-5.0)
            blk = gh.dist.block(ctx.rank)
            yield from gh.set_local(
                reference[blk.row0 : blk.row1, blk.col0 : blk.col1]
            )
            yield from gh.update_ghosts()
            return gh.local_with_ghosts(), (blk.row0, blk.row1, blk.col0, blk.col1)

        rt = make_cluster(nprocs=nprocs)
        for got, (r0, r1, c0, c1) in rt.run_spmd(main):
            want = reference_halo(reference, r0, r1, c0, c1, width, -5.0)
            np.testing.assert_array_equal(got, want)

    def test_interior_preserved(self, make_cluster):
        shape = (8, 8)
        reference = make_global(shape)

        def main(ctx):
            gh = GhostArray(ctx, "G2", shape)
            blk = gh.dist.block(ctx.rank)
            yield from gh.set_local(
                reference[blk.row0 : blk.row1, blk.col0 : blk.col1]
            )
            yield from gh.update_ghosts()
            return gh.local_interior(), (blk.row0, blk.row1, blk.col0, blk.col1)

        rt = make_cluster(nprocs=4)
        for got, (r0, r1, c0, c1) in rt.run_spmd(main):
            np.testing.assert_array_equal(got, reference[r0:r1, c0:c1])

    @pytest.mark.parametrize("sync", ["current", "new"])
    def test_sync_modes_equivalent(self, make_cluster, sync):
        shape = (8, 8)
        reference = make_global(shape)

        def main(ctx):
            gh = GhostArray(ctx, "G3", shape)
            blk = gh.dist.block(ctx.rank)
            yield from gh.set_local(
                reference[blk.row0 : blk.row1, blk.col0 : blk.col1]
            )
            yield from gh.update_ghosts(sync=sync)
            return float(gh.local_with_ghosts().sum())

        rt = make_cluster(nprocs=4)
        sums = rt.run_spmd(main)
        assert len(sums) == 4

    def test_repeated_updates_track_changes(self, make_cluster):
        shape = (6, 6)

        def main(ctx):
            gh = GhostArray(ctx, "G4", shape)
            blk = gh.dist.block(ctx.rank)
            seen = []
            for step in (1.0, 2.0):
                yield from gh.set_local(
                    np.full((blk.nrows, blk.ncols), step * (ctx.rank + 1))
                )
                yield from gh.update_ghosts()
                seen.append(gh.local_with_ghosts().max())
            return seen

        rt = make_cluster(nprocs=4)
        results = rt.run_spmd(main)
        # Max visible value doubles between steps for every rank that can
        # see rank 3's block (value 4 then 8).
        assert results[3] == [4.0, 8.0]

    def test_width_validation(self, make_cluster):
        rt = make_cluster(nprocs=1)

        def main(ctx):
            GhostArray(ctx, "bad", (4, 4), width=0)
            yield ctx.compute(0)

        with pytest.raises(ValueError, match="width"):
            rt.run_spmd(main)

    def test_set_local_shape_checked(self, make_cluster):
        def main(ctx):
            gh = GhostArray(ctx, "G5", (8, 8))
            yield from gh.set_local(np.zeros((1, 1)))

        rt = make_cluster(nprocs=4)
        with pytest.raises(ValueError, match="block shape"):
            rt.run_spmd(main)

    def test_jacobi_against_numpy(self, make_cluster):
        """A 3-step Jacobi on ghosts must equal the sequential stencil."""
        shape = (10, 10)
        initial = make_global(shape, seed=9)
        steps = 3

        def seq_jacobi(grid):
            for _ in range(steps):
                padded = np.zeros((grid.shape[0] + 2, grid.shape[1] + 2))
                padded[1:-1, 1:-1] = grid
                grid = 0.25 * (
                    padded[:-2, 1:-1] + padded[2:, 1:-1]
                    + padded[1:-1, :-2] + padded[1:-1, 2:]
                )
            return grid

        def main(ctx):
            gh = GhostArray(ctx, "J", shape, width=1, boundary=0.0)
            blk = gh.dist.block(ctx.rank)
            yield from gh.set_local(
                initial[blk.row0 : blk.row1, blk.col0 : blk.col1]
            )
            for _ in range(steps):
                yield from gh.update_ghosts()
                halo = gh.local_with_ghosts()
                relaxed = 0.25 * (
                    halo[:-2, 1:-1] + halo[2:, 1:-1]
                    + halo[1:-1, :-2] + halo[1:-1, 2:]
                )
                yield from gh.set_local(relaxed)
            return gh.local_interior(), (blk.row0, blk.row1, blk.col0, blk.col1)

        rt = make_cluster(nprocs=4)
        expected = seq_jacobi(initial)
        for got, (r0, r1, c0, c1) in rt.run_spmd(main):
            np.testing.assert_allclose(got, expected[r0:r1, c0:c1])
