"""Tests for the whole-array Global Arrays operations."""

import numpy as np
import pytest

from repro.ga import GlobalArray, add, copy, dot, fill, scale


def spmd_ga(make_cluster, nprocs, body, shape=(8, 8)):
    def main(ctx):
        result = yield from body(ctx)
        return result

    rt = make_cluster(nprocs=nprocs)
    return rt, rt.run_spmd(main)


class TestFillScale:
    @pytest.mark.parametrize("sync", ["current", "new"])
    def test_fill_sets_every_element(self, make_cluster, sync):
        def body(ctx):
            ga = GlobalArray(ctx, "F", (8, 8))
            yield from fill(ga, 2.5, sync=sync)
            got = yield from ga.get((0, 8, 0, 8))
            return got

        _rt, results = spmd_ga(make_cluster, 4, body)
        for got in results:
            np.testing.assert_array_equal(got, np.full((8, 8), 2.5))

    def test_scale(self, make_cluster):
        def body(ctx):
            ga = GlobalArray(ctx, "S", (6, 6))
            yield from fill(ga, 3.0)
            yield from scale(ga, -2.0)
            got = yield from ga.get((0, 6, 0, 6))
            return float(got.sum())

        _rt, results = spmd_ga(make_cluster, 4, body)
        assert results == [-6.0 * 36] * 4


class TestAddCopy:
    def test_add_alpha_beta(self, make_cluster):
        def body(ctx):
            a = GlobalArray(ctx, "A", (6, 6))
            b = GlobalArray(ctx, "B", (6, 6))
            out = GlobalArray(ctx, "O", (6, 6))
            yield from fill(a, 2.0)
            yield from fill(b, 10.0)
            yield from add(out, a, b, alpha=3.0, beta=0.5)
            got = yield from out.get((0, 6, 0, 6))
            return float(got[0, 0])

        _rt, results = spmd_ga(make_cluster, 4, body)
        assert results == [11.0] * 4  # 3*2 + 0.5*10

    def test_copy(self, make_cluster):
        def body(ctx):
            src = GlobalArray(ctx, "src", (6, 6))
            dst = GlobalArray(ctx, "dst", (6, 6))
            yield from fill(src, 7.0)
            yield from copy(src, dst)
            got = yield from dst.get((2, 4, 2, 4))
            return float(got.sum())

        _rt, results = spmd_ga(make_cluster, 4, body)
        assert results == [7.0 * 4] * 4

    def test_distribution_mismatch_rejected(self, make_cluster):
        def body(ctx):
            a = GlobalArray(ctx, "A2", (6, 6))
            b = GlobalArray(ctx, "B2", (8, 8))
            yield from copy(a, b)

        rt = make_cluster(nprocs=4)

        def main(ctx):
            yield from body(ctx)

        with pytest.raises(ValueError, match="distribution mismatch"):
            rt.run_spmd(main)


class TestDot:
    def test_dot_product_matches_numpy(self, make_cluster):
        def body(ctx):
            a = GlobalArray(ctx, "DA", (6, 4))
            b = GlobalArray(ctx, "DB", (6, 4))
            if ctx.rank == 0:
                data_a = np.arange(24, dtype=float).reshape(6, 4)
                data_b = np.arange(24, 48, dtype=float).reshape(6, 4)
                yield from a.put((0, 6, 0, 4), data_a)
                yield from b.put((0, 6, 0, 4), data_b)
            yield from a.sync("new")
            result = yield from dot(a, b)
            return result

        _rt, results = spmd_ga(make_cluster, 4, body)
        expected = float(
            (np.arange(24) * np.arange(24, 48)).sum()
        )
        assert all(r == pytest.approx(expected) for r in results)

    def test_same_value_on_every_rank(self, make_cluster):
        def body(ctx):
            a = GlobalArray(ctx, "DD", (5, 5))
            yield from fill(a, 2.0)
            result = yield from dot(a, a)
            return result

        _rt, results = spmd_ga(make_cluster, 5, body)
        assert results == [pytest.approx(100.0)] * 5

    def test_mismatch_rejected(self, make_cluster):
        def main(ctx):
            a = GlobalArray(ctx, "DX", (4, 4))
            b = GlobalArray(ctx, "DY", (4, 6))
            yield from dot(a, b)

        rt = make_cluster(nprocs=2)
        with pytest.raises(ValueError, match="distribution mismatch"):
            rt.run_spmd(main)
