"""Unit and property tests for the 2-D block distribution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ga.distribution import BlockDistribution, default_pgrid


class TestDefaultPgrid:
    @pytest.mark.parametrize(
        "nprocs,expected",
        [(1, (1, 1)), (2, (1, 2)), (4, (2, 2)), (6, (2, 3)), (8, (2, 4)),
         (9, (3, 3)), (12, (3, 4)), (16, (4, 4)), (7, (1, 7))],
    )
    def test_near_square_factorization(self, nprocs, expected):
        assert default_pgrid(nprocs) == expected

    def test_invalid(self):
        with pytest.raises(ValueError):
            default_pgrid(0)


class TestBlocks:
    def test_even_split(self):
        dist = BlockDistribution((8, 8), (2, 2))
        blk = dist.block(0)
        assert (blk.row0, blk.row1, blk.col0, blk.col1) == (0, 4, 0, 4)
        blk = dist.block(3)
        assert (blk.row0, blk.row1, blk.col0, blk.col1) == (4, 8, 4, 8)

    def test_uneven_split_front_loaded(self):
        dist = BlockDistribution((5, 5), (2, 2))
        assert dist.block(0).nrows == 3  # extra row to early blocks
        assert dist.block(2).nrows == 2

    def test_blocks_partition_the_array(self):
        dist = BlockDistribution((7, 9), (2, 3))
        cells = set()
        for rank in range(6):
            blk = dist.block(rank)
            for i in range(blk.row0, blk.row1):
                for j in range(blk.col0, blk.col1):
                    assert (i, j) not in cells
                    cells.add((i, j))
        assert len(cells) == 63

    def test_owner_consistent_with_block(self):
        dist = BlockDistribution((7, 9), (2, 3))
        for i in range(7):
            for j in range(9):
                rank = dist.owner(i, j)
                blk = dist.block(rank)
                assert blk.row0 <= i < blk.row1
                assert blk.col0 <= j < blk.col1

    def test_owner_out_of_range(self):
        dist = BlockDistribution((4, 4), (2, 2))
        with pytest.raises(IndexError):
            dist.owner(4, 0)
        with pytest.raises(IndexError):
            dist.owner(0, -1)

    def test_local_offset_row_major(self):
        dist = BlockDistribution((4, 6), (2, 2))
        blk = dist.block(3)  # rows 2..4, cols 3..6
        assert dist.local_offset(3, 2, 3) == 0
        assert dist.local_offset(3, 2, 5) == 2
        assert dist.local_offset(3, 3, 3) == 3

    def test_local_offset_foreign_cell_rejected(self):
        dist = BlockDistribution((4, 4), (2, 2))
        with pytest.raises(IndexError):
            dist.local_offset(0, 3, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockDistribution((0, 4), (1, 1))
        with pytest.raises(ValueError):
            BlockDistribution((4, 4), (0, 2))
        with pytest.raises(ValueError):
            BlockDistribution((2, 2), (3, 1))  # more rows of procs than rows


class TestDecompose:
    def test_section_within_one_block(self):
        dist = BlockDistribution((8, 8), (2, 2))
        parts = dist.decompose((1, 3, 1, 3))
        assert list(parts) == [0]
        runs = parts[0]
        assert [(addr, count) for addr, count, _sec in runs] == [(5, 2), (9, 2)]

    def test_empty_section(self):
        dist = BlockDistribution((8, 8), (2, 2))
        assert dist.decompose((2, 2, 0, 8)) == {}
        assert dist.decompose((0, 8, 3, 3)) == {}

    def test_out_of_bounds_section(self):
        dist = BlockDistribution((8, 8), (2, 2))
        with pytest.raises(IndexError):
            dist.decompose((0, 9, 0, 1))

    def test_full_array_touches_all_ranks(self):
        dist = BlockDistribution((8, 8), (2, 2))
        parts = dist.decompose((0, 8, 0, 8))
        assert sorted(parts) == [0, 1, 2, 3]

    @given(
        rows=st.integers(2, 12),
        cols=st.integers(2, 12),
        pr=st.integers(1, 3),
        pc=st.integers(1, 3),
        data=st.data(),
    )
    @settings(max_examples=120, deadline=None)
    def test_decomposition_is_exact_partition(self, rows, cols, pr, pc, data):
        """Every decomposed run covers each section cell exactly once, with
        the correct owner and a valid local offset."""
        if pr > rows or pc > cols:
            return
        dist = BlockDistribution((rows, cols), (pr, pc))
        r0 = data.draw(st.integers(0, rows))
        r1 = data.draw(st.integers(r0, rows))
        c0 = data.draw(st.integers(0, cols))
        c1 = data.draw(st.integers(c0, cols))
        covered = {}
        for rank, runs in dist.decompose((r0, r1, c0, c1)).items():
            for addr, count, (i, i1, j0, j1) in runs:
                assert i1 == i + 1 and count == j1 - j0 > 0
                for off, j in enumerate(range(j0, j1)):
                    assert dist.owner(i, j) == rank
                    assert dist.local_offset(rank, i, j) == addr + off
                    key = (i, j)
                    assert key not in covered
                    covered[key] = rank
        expected = {(i, j) for i in range(r0, r1) for j in range(c0, c1)}
        assert set(covered) == expected
