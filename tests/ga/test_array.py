"""Integration tests for the Global Arrays layer."""

import numpy as np
import pytest

from repro.ga.array import GlobalArray


def make_ga_program(shape, body):
    def main(ctx):
        ga = GlobalArray(ctx, "T", shape)
        result = yield from body(ctx, ga)
        return result

    return main


class TestCreation:
    def test_explicit_pgrid_must_cover_procs(self, make_cluster):
        def main(ctx):
            GlobalArray(ctx, "X", (8, 8), pgrid=(3, 1))
            yield ctx.compute(0)

        rt = make_cluster(nprocs=4)
        with pytest.raises(ValueError, match="does not cover"):
            rt.run_spmd(main)

    def test_local_block_shape(self, make_cluster):
        def body(ctx, ga):
            yield ctx.compute(0)
            return ga.local_block().shape

        rt = make_cluster(nprocs=4)
        shapes = rt.run_spmd(make_ga_program((8, 12), body))
        assert shapes == [(4, 6)] * 4

    def test_same_name_same_cells(self, make_cluster):
        """Two handles with the same name alias the same storage."""

        def main(ctx):
            a = GlobalArray(ctx, "same", (4, 4))
            b = GlobalArray(ctx, "same", (4, 4))
            yield from a.put(a.my_block_section(), np.ones(a.local_block().shape))
            yield from a.sync("new")
            return float(b.local_block().sum())

        rt = make_cluster(nprocs=4)
        sums = rt.run_spmd(main)
        assert sums == [4.0] * 4


class TestPutGet:
    @pytest.mark.parametrize("nprocs", [1, 2, 4, 6])
    def test_full_array_roundtrip(self, make_cluster, nprocs):
        rows, cols = 12, 10
        reference = np.arange(rows * cols, dtype=float).reshape(rows, cols)

        def body(ctx, ga):
            if ctx.rank == 0:
                yield from ga.put((0, rows, 0, cols), reference)
            yield from ga.sync("new")
            result = yield from ga.get((0, rows, 0, cols))
            return result

        rt = make_cluster(nprocs=nprocs)
        for got in rt.run_spmd(make_ga_program((rows, cols), body)):
            np.testing.assert_array_equal(got, reference)

    def test_section_roundtrip_crossing_blocks(self, make_cluster):
        def body(ctx, ga):
            if ctx.rank == 1:
                data = np.full((4, 6), 3.5)
                yield from ga.put((2, 6, 1, 7), data)
            yield from ga.sync("new")
            got = yield from ga.get((2, 6, 1, 7))
            return float(got.sum())

        rt = make_cluster(nprocs=4)
        sums = rt.run_spmd(make_ga_program((8, 8), body))
        assert sums == [4 * 6 * 3.5] * 4

    def test_put_shape_mismatch(self, make_cluster):
        def body(ctx, ga):
            yield from ga.put((0, 2, 0, 2), np.zeros((3, 3)))

        rt = make_cluster(nprocs=1)
        with pytest.raises(ValueError, match="shape"):
            rt.run_spmd(make_ga_program((4, 4), body))

    def test_section_bounds_checked(self, make_cluster):
        def body(ctx, ga):
            result = yield from ga.get((0, 99, 0, 1))
            return result

        rt = make_cluster(nprocs=1)
        with pytest.raises(IndexError):
            rt.run_spmd(make_ga_program((4, 4), body))

    def test_put_without_sync_not_guaranteed_then_sync_completes(self, make_cluster):
        def body(ctx, ga):
            rows, cols = ga.shape
            if ctx.rank == 0:
                yield from ga.put((0, rows, 0, cols), np.ones((rows, cols)))
            yield from ga.sync("new")
            return float(ga.local_block().sum())

        rt = make_cluster(nprocs=4)
        sums = rt.run_spmd(make_ga_program((8, 8), body))
        assert sum(sums) == 64.0


class TestAcc:
    def test_concurrent_accumulates_sum(self, make_cluster):
        def body(ctx, ga):
            rows, cols = ga.shape
            yield from ga.acc((0, rows, 0, cols), np.ones((rows, cols)), scale=2.0)
            yield from ga.sync("new")
            return float(ga.local_block().sum())

        rt = make_cluster(nprocs=4)
        sums = rt.run_spmd(make_ga_program((6, 6), body))
        # 4 procs x 2.0 in every cell: each block sums to 8 * cells.
        assert sum(sums) == 4 * 2.0 * 36

    def test_acc_shape_mismatch(self, make_cluster):
        def body(ctx, ga):
            yield from ga.acc((0, 1, 0, 1), np.zeros((2, 2)))

        rt = make_cluster(nprocs=1)
        with pytest.raises(ValueError, match="shape"):
            rt.run_spmd(make_ga_program((4, 4), body))


class TestReadInc:
    def test_counter_semantics(self, make_cluster):
        """Every rank draws unique, gapless values (the NXTVAL contract)."""

        def body(ctx, ga):
            drawn = []
            for _ in range(5):
                value = yield from ga.read_inc(0, 0)
                drawn.append(value)
            yield from ga.sync("new")
            return drawn

        rt = make_cluster(nprocs=4)
        results = rt.run_spmd(make_ga_program((4, 4), body))
        all_drawn = sorted(v for per_rank in results for v in per_rank)
        assert all_drawn == list(range(20))

    def test_increment_amount(self, make_cluster):
        def body(ctx, ga):
            if ctx.rank == 0:
                first = yield from ga.read_inc(1, 1, inc=10)
                second = yield from ga.read_inc(1, 1, inc=10)
                return (first, second)
            yield ctx.compute(1)
            return None

        rt = make_cluster(nprocs=2)
        assert rt.run_spmd(make_ga_program((4, 4), body))[0] == (0, 10)

    def test_targets_owner_element(self, make_cluster):
        """read_inc on an element owned by another rank updates it there."""

        def body(ctx, ga):
            rows, cols = ga.shape
            i, j = rows - 1, cols - 1  # owned by the last grid process
            yield from ga.read_inc(i, j)
            yield from ga.sync("new")
            got = yield from ga.get((i, i + 1, j, j + 1))
            return float(got[0, 0])

        rt = make_cluster(nprocs=4)
        results = rt.run_spmd(make_ga_program((4, 4), body))
        assert results == [4.0] * 4  # all four increments landed


class TestSyncModes:
    @pytest.mark.parametrize("mode", ["current", "new", "auto"])
    def test_all_modes_complete_all_puts(self, make_cluster, mode):
        def body(ctx, ga):
            # everyone scatters its rank into every other block's corner
            for rank in range(ctx.nprocs):
                if rank == ctx.rank:
                    continue
                blk = ga.dist.block(rank)
                yield from ga.put(
                    (blk.row0, blk.row0 + 1, blk.col0, blk.col0 + 1),
                    np.array([[float(ctx.rank + 1)]]),
                )
            yield from ga.sync(mode)
            return float(ga.local_block()[0, 0])

        rt = make_cluster(nprocs=4)
        corners = rt.run_spmd(make_ga_program((8, 8), body))
        assert all(c in {1.0, 2.0, 3.0, 4.0} for c in corners)

    def test_modes_produce_identical_data(self, make_cluster):
        def body_factory(mode):
            def body(ctx, ga):
                rows, cols = ga.shape
                slab = rows // ctx.nprocs
                r0 = ctx.rank * slab
                data = np.full((slab, cols), float(ctx.rank + 1))
                yield from ga.put((r0, r0 + slab, 0, cols), data)
                yield from ga.sync(mode)
                result = yield from ga.get((0, rows, 0, cols))
                return result

            return body

        snapshots = {}
        for mode in ("current", "new", "auto"):
            rt = make_cluster(nprocs=4)
            results = rt.run_spmd(make_ga_program((8, 8), body_factory(mode)))
            snapshots[mode] = results[0]
        np.testing.assert_array_equal(snapshots["current"], snapshots["new"])
        np.testing.assert_array_equal(snapshots["current"], snapshots["auto"])

    def test_unknown_mode_rejected(self, make_cluster):
        def body(ctx, ga):
            yield from ga.sync("warp")

        rt = make_cluster(nprocs=2)
        with pytest.raises(ValueError, match="GA_Sync mode"):
            rt.run_spmd(make_ga_program((4, 4), body))
