"""The paper's §3 design claims, one executable assertion each.

Each test quotes the claim it verifies.  This file is the narrative spine
of the reproduction: if it passes, the implemented system behaves the way
the paper *says* its system behaves, mechanism by mechanism.
"""

import pytest

from repro.locks import HybridLock, MCSLock
from repro.mp import collectives
from repro.net.params import myrinet2000
from repro.runtime.memory import GlobalAddress


class TestSection2Architecture:
    def test_server_thread_per_node_performs_remote_ops(self, make_cluster):
        """'Each node has a server thread which handles remote memory
        operations for each of the user processes running on the node.'"""
        rt = make_cluster(nprocs=4, procs_per_node=2)
        assert len(rt.servers) == 2

        def main(ctx):
            base = ctx.region.alloc(1, 0)
            if ctx.rank == 0:
                yield from ctx.armci.put(GlobalAddress(3, base), [1])
                yield from ctx.armci.fence(3)
            else:
                yield ctx.compute(1)

        rt.run_spmd(main)
        assert rt.servers[1].stats.puts == 1  # node 1 hosts rank 3
        assert rt.servers[0].stats.puts == 0

    def test_server_sleeps_in_blocking_receive(self, make_cluster):
        """'the server will use blocking receives and sleep while waiting
        for incoming requests.'"""

        def main(ctx):
            base = ctx.region.alloc(1)
            if ctx.rank == 0:
                yield ctx.compute(500)  # let everything go idle
                yield from ctx.armci.get(GlobalAddress(1, base), 1)
            else:
                yield ctx.compute(1)

        rt = make_cluster(nprocs=2)
        rt.run_spmd(main)
        assert rt.servers[1].stats.sleeps >= 1
        assert rt.servers[1].stats.wakes >= 1

    def test_puts_are_truly_one_sided(self, make_cluster):
        """'the ARMCI remote copy operations are truly one sided, and
        complete regardless of the actions taken by the remote process.'"""

        def main(ctx):
            base = ctx.region.alloc(1, 0)
            if ctx.rank == 0:
                yield from ctx.armci.put(GlobalAddress(1, base), [7])
                yield from ctx.armci.fence(1)
                return ctx.now
            # Rank 1 never calls any communication routine at all.
            yield ctx.compute(10_000.0)
            return ctx.region.read(base)

        rt = make_cluster(nprocs=2)
        results = rt.run_spmd(main)
        assert results[1] == 7  # completed with zero target-side calls
        assert results[0] < 10_000.0  # and long before the target "noticed"


class TestSection31Barrier:
    def test_allfence_cost_is_linear_claim(self, make_cluster):
        """'The communication time a process spends to perform this
        operation can be as high as 2(N-1) one-way message latencies.'"""
        latency = 10.0
        params = myrinet2000().with_(
            inter_latency_us=latency, per_byte_us=0.0, o_send_us=0.0,
            o_recv_us=0.0, server_proc_us=0.0, server_wake_us=0.0,
            server_fence_check_us=0.0, api_call_us=0.0, mp_call_us=0.0,
            shm_access_us=0.0, intra_latency_us=0.0,
            mem_copy_per_byte_us=0.0, poll_detect_us=0.0,
        )

        def main(ctx):
            base = ctx.region.alloc(1)
            for peer in range(ctx.nprocs):
                if peer != ctx.rank:
                    yield from ctx.armci.put(GlobalAddress(peer, base), [1])
            yield from collectives.barrier(ctx.comm)
            t0 = ctx.now
            yield from ctx.armci.allfence()
            return ctx.now - t0

        n = 8
        rt = make_cluster(nprocs=n, params=params)
        worst = max(rt.run_spmd(main))
        assert worst >= 2 * (n - 1) * latency - 1e-9

    def test_new_barrier_cost_is_two_log_n(self, make_cluster):
        """'The total communication time of the ARMCI_Barrier() function is
        2 log2(N) message latencies.'"""
        latency = 10.0
        params = myrinet2000().with_(
            inter_latency_us=latency, per_byte_us=0.0, o_send_us=0.0,
            o_recv_us=0.0, server_proc_us=0.0, server_wake_us=0.0,
            api_call_us=0.0, mp_call_us=0.0, shm_access_us=0.0,
            intra_latency_us=0.0, mem_copy_per_byte_us=0.0,
            poll_detect_us=0.0,
        )

        def main(ctx):
            t0 = ctx.now
            yield from ctx.armci.barrier(algorithm="exchange")
            return ctx.now - t0

        for n, log_n in ((4, 2), (16, 4)):
            rt = make_cluster(nprocs=n, params=params)
            elapsed = max(rt.run_spmd(main))
            assert elapsed == pytest.approx(2 * log_n * latency)

    def test_op_init_distribution_invariant(self, make_cluster):
        """'the value of the i-th element of the op_init[] array at process
        i is equal to the number of put requests sent to the server thread
        of process i by all processes in the system.'"""
        totals = {}

        def main(ctx):
            base = ctx.region.alloc(1, 0)
            # Each rank puts rank+1 times to its right neighbor.
            peer = (ctx.rank + 1) % ctx.nprocs
            for _ in range(ctx.rank + 1):
                yield from ctx.armci.put(GlobalAddress(peer, base), [1])
            summed = yield from collectives.allreduce_sum(
                ctx.comm, ctx.armci.op_init
            )
            totals[ctx.rank] = summed[ctx.rank]
            yield from ctx.armci.barrier()

        rt = make_cluster(nprocs=4)
        rt.run_spmd(main)
        # Rank i receives from its left neighbor (i-1), which put i times
        # (left neighbor's rank+1 = i).
        assert totals == {0: 4, 1: 1, 2: 2, 3: 3}

    def test_op_done_matches_server_completions(self, make_cluster):
        """'The server thread of a process will increment the op_done
        variable as it completes incoming send requests.'"""

        def main(ctx):
            base = ctx.region.alloc(1, 0)
            if ctx.rank != 0:
                for _ in range(3):
                    yield from ctx.armci.put(GlobalAddress(0, base), [1])
            yield from ctx.armci.barrier()

        rt = make_cluster(nprocs=4)
        rt.run_spmd(main)
        assert rt.servers[0].op_done(0) == 9  # 3 ranks x 3 puts


class TestSection32Locks:
    def test_hybrid_local_lock_uses_ticket_directly(self, make_cluster):
        """Figure 3(a): the local requester performs the atomic
        fetch-and-increment itself; no lock request message."""

        def main(ctx):
            lock = HybridLock(ctx, home_rank=0)
            yield from lock.acquire()
            yield from lock.release()
            yield ctx.compute(100)

        rt = make_cluster(nprocs=1)
        rt.run_spmd(main)
        assert rt.servers[0].stats.locks == 0
        assert rt.regions[0].read(0) == 1  # ticket was taken in memory

    def test_hybrid_release_always_contacts_server(self, make_cluster):
        """'the existing lock mechanism requires that the server thread be
        contacted whenever a lock is released, even if the lock is local.'"""

        def main(ctx):
            lock = HybridLock(ctx, home_rank=0)
            yield from lock.acquire()
            yield from lock.release()
            yield ctx.compute(200)

        rt = make_cluster(nprocs=1)
        rt.run_spmd(main)
        assert rt.servers[0].stats.unlocks == 1

    def test_mcs_handoff_is_one_message(self, make_cluster):
        """'In software queuing locks, the process releasing the lock
        directly contacts the next waiting process, so the synchronization
        time is one message latency.'"""

        def main(ctx):
            lock = MCSLock(ctx, home_rank=0)
            if ctx.rank == 1:
                yield from lock.acquire()
                yield from ctx.comm.send(2, "queued-up")
                yield ctx.compute(80)
                release_started = ctx.now
                yield from lock.release()
                yield from ctx.armci.barrier()
                return release_started
            if ctx.rank == 2:
                yield from ctx.comm.recv(source=1)
                yield from lock.acquire()
                acquired = ctx.now
                yield from lock.release()
                yield from ctx.armci.barrier()
                return acquired
            yield from ctx.armci.barrier()
            return None

        rt = make_cluster(nprocs=3)
        results = rt.run_spmd(main)
        handoff = results[2] - results[1]
        p = rt.params
        # One message latency plus bounded local costs — far below the
        # hybrid's two-message (via-server) handoff.
        assert handoff < 2 * p.inter_latency_us + p.server_wake_us + 10.0

    def test_mcs_zero_messages_same_node(self, make_cluster):
        """'or even zero messages, if the next waiting process is on the
        same node as the process holding the lock.'"""

        def main(ctx):
            lock = MCSLock(ctx, home_rank=0)
            for _ in range(5):
                yield from lock.acquire()
                yield ctx.compute(2)
                yield from lock.release()
            yield ctx.compute(100)

        rt = make_cluster(nprocs=4, procs_per_node=4)
        rt.run_spmd(main)
        assert rt.fabric.stats.inter_node == 0

    def test_pair_atomics_were_added_for_global_pointers(self, make_cluster):
        """'the atomic memory operations in ARMCI only support integer or
        long operands.  In order to implement the software queuing locks,
        we added new atomic memory operations which operate on pairs of
        long variables.  Since ARMCI did not have an atomic compare&swap
        operation we also added this function.'"""
        from repro.armci.requests import RMW_OPS

        assert "swap_pair" in RMW_OPS
        assert "cas_pair" in RMW_OPS
        assert "cas" in RMW_OPS

    def test_one_node_structure_per_process(self, make_cluster):
        """'only one node structure is needed per process regardless of how
        many Lock variables are allocated.'"""

        def main(ctx):
            a = MCSLock(ctx, home_rank=0, name="lockA")
            b = MCSLock(ctx, home_rank=1, name="lockB")
            assert a.node_struct is b.node_struct
            yield ctx.compute(0)

        rt = make_cluster(nprocs=2)
        rt.run_spmd(main)

    def test_uncontended_remote_release_needs_reply(self, make_cluster):
        """'For remote locks, this means that the process must contact the
        server at a remote node, and then wait for a response.  The
        existing algorithm does not have to wait for a response.'"""

        def main(ctx, kind):
            lock = (MCSLock if kind == "mcs" else HybridLock)(ctx, home_rank=1)
            yield from lock.acquire()
            t0 = ctx.now
            yield from lock.release()
            elapsed = ctx.now - t0
            yield from ctx.armci.barrier()
            return elapsed

        rt = make_cluster(nprocs=2)
        mcs_release = rt.run_spmd(main, "mcs")[0]
        rt = make_cluster(nprocs=2)
        hybrid_release = rt.run_spmd(main, "hybrid")[0]
        latency = rt.params.inter_latency_us
        assert mcs_release > 2 * latency  # blocking round trip
        assert hybrid_release < latency  # fire-and-forget
