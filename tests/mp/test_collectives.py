"""Unit and property tests for the collective operations."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mp import collectives
from repro.net.params import myrinet2000
from repro.runtime.cluster import ClusterRuntime

ALL_SIZES = [1, 2, 3, 4, 5, 6, 7, 8, 9, 16]


def spmd(nprocs, main, *args):
    rt = ClusterRuntime(nprocs, params=myrinet2000())
    return rt, rt.run_spmd(main, *args)


class TestBarrier:
    @pytest.mark.parametrize("nprocs", ALL_SIZES)
    def test_no_rank_exits_before_all_enter(self, nprocs):
        def main(ctx):
            # Stagger arrivals heavily.
            yield ctx.compute(100.0 * ctx.rank)
            entered = ctx.now
            yield from collectives.barrier(ctx.comm)
            return (entered, ctx.now)

        _rt, results = spmd(nprocs, main)
        last_entry = max(r[0] for r in results)
        first_exit = min(r[1] for r in results)
        assert first_exit >= last_entry

    def test_single_process_barrier_is_free(self):
        def main(ctx):
            yield from collectives.barrier(ctx.comm)
            return ctx.now

        _rt, results = spmd(1, main)
        assert results == [0.0]

    def test_barrier_scales_logarithmically(self):
        """Barrier time grows ~log2(N), not linearly (paper §3.1.2)."""

        def main(ctx):
            t0 = ctx.now
            yield from collectives.barrier(ctx.comm)
            return ctx.now - t0

        times = {}
        for n in (2, 4, 16):
            _rt, results = spmd(n, main)
            times[n] = max(results)
        # 16 procs has 4 rounds vs 1 round at 2 procs: ratio ~4, never ~8.
        assert times[16] < 6 * times[2]
        assert times[16] > times[4] > times[2]

    def test_repeated_barriers_do_not_cross_match(self):
        def main(ctx):
            stamps = []
            for _ in range(5):
                yield ctx.compute(10.0 * ctx.rank)
                yield from collectives.barrier(ctx.comm)
                stamps.append(ctx.now)
            return stamps

        _rt, results = spmd(5, main)
        # After each barrier all ranks agree on a lower bound: each barrier's
        # exit must come after every rank's entry into that same round.
        for round_idx in range(5):
            exits = [r[round_idx] for r in results]
            assert max(exits) - min(exits) < 50.0


class TestAllreduceSum:
    @pytest.mark.parametrize("nprocs", ALL_SIZES)
    def test_vector_sum_correct(self, nprocs):
        def main(ctx):
            vec = [ctx.rank, 1, ctx.rank * ctx.rank]
            result = yield from collectives.allreduce_sum(ctx.comm, vec)
            return result

        _rt, results = spmd(nprocs, main)
        ranks = range(nprocs)
        expected = [sum(ranks), nprocs, sum(r * r for r in ranks)]
        for result in results:
            assert result == expected

    def test_empty_vector(self):
        def main(ctx):
            result = yield from collectives.allreduce_sum(ctx.comm, [])
            return result

        _rt, results = spmd(4, main)
        assert results == [[], [], [], []]

    def test_input_not_mutated(self):
        def main(ctx):
            vec = [ctx.rank]
            yield from collectives.allreduce_sum(ctx.comm, vec)
            return vec

        _rt, results = spmd(4, main)
        assert results == [[0], [1], [2], [3]]

    def test_float_vectors(self):
        def main(ctx):
            result = yield from collectives.allreduce_sum(ctx.comm, [0.5])
            return result[0]

        _rt, results = spmd(8, main)
        assert all(r == pytest.approx(4.0) for r in results)

    @given(
        nprocs=st.integers(min_value=1, max_value=9),
        length=st.integers(min_value=0, max_value=6),
        seed=st.integers(min_value=0, max_value=999),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_random_vectors(self, nprocs, length, seed):
        import random

        rng = random.Random(seed)
        vectors = [
            [rng.randint(-100, 100) for _ in range(length)] for _ in range(nprocs)
        ]

        def main(ctx):
            result = yield from collectives.allreduce_sum(ctx.comm, vectors[ctx.rank])
            return result

        _rt, results = spmd(nprocs, main)
        expected = [sum(v[i] for v in vectors) for i in range(length)]
        for result in results:
            assert result == expected


class TestBcast:
    @pytest.mark.parametrize("nprocs", ALL_SIZES)
    def test_all_ranks_receive(self, nprocs):
        def main(ctx):
            value = {"data": 42} if ctx.rank == 0 else None
            result = yield from collectives.bcast(ctx.comm, value, root=0)
            return result

        _rt, results = spmd(nprocs, main)
        assert all(r == {"data": 42} for r in results)

    @pytest.mark.parametrize("root", [0, 1, 2, 4])
    def test_nonzero_roots(self, root):
        nprocs = 5

        def main(ctx):
            value = f"from-{ctx.rank}" if ctx.rank == root else None
            result = yield from collectives.bcast(ctx.comm, value, root=root)
            return result

        _rt, results = spmd(nprocs, main)
        assert all(r == f"from-{root}" for r in results)

    def test_invalid_root(self):
        def main(ctx):
            yield from collectives.bcast(ctx.comm, 1, root=9)

        with pytest.raises(ValueError, match="root"):
            spmd(2, main)


class TestGather:
    @pytest.mark.parametrize("nprocs", [1, 2, 5, 8])
    def test_root_collects_in_rank_order(self, nprocs):
        def main(ctx):
            result = yield from collectives.gather(ctx.comm, ctx.rank * 2, root=0)
            return result

        _rt, results = spmd(nprocs, main)
        assert results[0] == [r * 2 for r in range(nprocs)]
        assert all(r is None for r in results[1:])

    def test_nonzero_root(self):
        def main(ctx):
            result = yield from collectives.gather(ctx.comm, ctx.rank, root=2)
            return result

        _rt, results = spmd(4, main)
        assert results[2] == [0, 1, 2, 3]


class TestAllgather:
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 7, 8])
    def test_everyone_gets_everything(self, nprocs):
        def main(ctx):
            result = yield from collectives.allgather(ctx.comm, chr(65 + ctx.rank))
            return result

        _rt, results = spmd(nprocs, main)
        expected = [chr(65 + r) for r in range(nprocs)]
        assert all(r == expected for r in results)


class TestAlltoall:
    @pytest.mark.parametrize("nprocs", [1, 2, 4, 8, 3, 5])
    def test_personalized_exchange(self, nprocs):
        def main(ctx):
            outgoing = [(ctx.rank, dst) for dst in range(ctx.nprocs)]
            result = yield from collectives.alltoall(ctx.comm, outgoing)
            return result

        _rt, results = spmd(nprocs, main)
        for rank, received in enumerate(results):
            assert received == [(src, rank) for src in range(nprocs)]

    def test_wrong_length_rejected(self):
        def main(ctx):
            yield from collectives.alltoall(ctx.comm, [1])

        with pytest.raises(ValueError, match="items"):
            spmd(3, main)


class TestChaosTag:
    def test_epoch_field_wide_enough_for_node_crash(self):
        """Regression: the epoch field kept only 2 bits, so a node crash
        declaring 4+ hosted ranks during one barrier instance aliased the
        abandoned attempt's tags onto the restarted exchange (stale sums
        silently folded into the wrong accumulator)."""
        inst, round_no = 3, 2
        tags = [collectives._chaos_tag(inst, e, round_no) for e in range(256)]
        assert len(set(tags)) == 256

    def test_fields_do_not_collide(self):
        base = collectives._chaos_tag(5, 7, 9)
        assert collectives._chaos_tag(6, 7, 9) != base
        assert collectives._chaos_tag(5, 8, 9) != base
        assert collectives._chaos_tag(5, 7, 10) != base
        # Distinct instances never share a tag regardless of epoch/round.
        a = {collectives._chaos_tag(1, e, r) for e in range(256) for r in range(64)}
        b = {collectives._chaos_tag(2, e, r) for e in range(256) for r in range(64)}
        assert not (a & b)
