"""The paper's Figure 2 algorithm, verbatim, vs the production allreduce."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mp import collectives
from repro.net.params import myrinet2000
from repro.runtime.cluster import ClusterRuntime


class TestFig2:
    @pytest.mark.parametrize("nprocs", [1, 2, 4, 8, 16])
    def test_correct_sums(self, nprocs):
        def main(ctx):
            vec = [ctx.rank + 1, ctx.rank * 3]
            result = yield from collectives.allreduce_sum_fig2(ctx.comm, vec)
            return result

        rt = ClusterRuntime(nprocs, params=myrinet2000())
        expected = [sum(r + 1 for r in range(nprocs)),
                    sum(r * 3 for r in range(nprocs))]
        for result in rt.run_spmd(main):
            assert result == expected

    def test_rejects_non_power_of_two(self):
        def main(ctx):
            yield from collectives.allreduce_sum_fig2(ctx.comm, [1])

        rt = ClusterRuntime(3, params=myrinet2000())
        with pytest.raises(ValueError, match="power-of-two"):
            rt.run_spmd(main)

    @given(
        nprocs_log=st.integers(min_value=0, max_value=3),
        length=st.integers(min_value=0, max_value=5),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=25, deadline=None)
    def test_equivalent_to_production_allreduce(self, nprocs_log, length, seed):
        """Same values AND same virtual completion time: the production
        algorithm reduces to Figure 2's exchanges for powers of two."""
        import random

        nprocs = 2 ** nprocs_log
        rng = random.Random(seed)
        vectors = [[rng.randint(-50, 50) for _ in range(length)]
                   for _ in range(nprocs)]

        def run(which):
            def main(ctx):
                fn = (collectives.allreduce_sum_fig2 if which == "fig2"
                      else collectives.allreduce_sum)
                result = yield from fn(ctx.comm, vectors[ctx.rank])
                return (result, ctx.now)

            rt = ClusterRuntime(nprocs, params=myrinet2000())
            return rt.run_spmd(main)

        fig2 = run("fig2")
        prod = run("prod")
        for (v1, t1), (v2, t2) in zip(fig2, prod):
            assert v1 == v2
            assert t1 == pytest.approx(t2)

    def test_phase_count_is_log2(self):
        """Communication time = log2(N) overlapped phases (paper's claim)."""

        def main(ctx):
            t0 = ctx.now
            yield from collectives.allreduce_sum_fig2(ctx.comm, [1.0])
            return ctx.now - t0

        times = {}
        for nprocs in (2, 4, 8, 16):
            rt = ClusterRuntime(nprocs, params=myrinet2000())
            times[nprocs] = max(rt.run_spmd(main))
        # Doubling N adds exactly one phase: differences are constant.
        d1 = times[4] - times[2]
        d2 = times[8] - times[4]
        d3 = times[16] - times[8]
        assert d1 == pytest.approx(d2, rel=0.05)
        assert d2 == pytest.approx(d3, rel=0.05)
