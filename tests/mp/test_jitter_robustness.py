"""Collectives under message reordering.

The MP layer matches by (source, tag), so — unlike the confirm-mode fence,
which the failure-injection tests show *does* depend on in-order delivery —
every collective must produce correct results under arbitrary delivery
jitter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mp import collectives
from repro.net.params import myrinet2000
from repro.runtime.cluster import ClusterRuntime


def jittery_cluster(nprocs, seed, jitter=60.0):
    return ClusterRuntime(
        nprocs, params=myrinet2000(jitter_us=jitter, seed=seed)
    )


@given(seed=st.integers(0, 5000), nprocs=st.integers(2, 8))
@settings(max_examples=30, deadline=None)
def test_allreduce_correct_under_jitter(seed, nprocs):
    def main(ctx):
        result = yield from collectives.allreduce_sum(
            ctx.comm, [ctx.rank, ctx.rank * 2]
        )
        return result

    rt = jittery_cluster(nprocs, seed)
    expected = [sum(range(nprocs)), 2 * sum(range(nprocs))]
    for result in rt.run_spmd(main):
        assert result == expected


@given(seed=st.integers(0, 5000), nprocs=st.integers(2, 8))
@settings(max_examples=30, deadline=None)
def test_barrier_holds_under_jitter(seed, nprocs):
    def main(ctx):
        yield ctx.compute(25.0 * ctx.rank)
        entered = ctx.now
        yield from collectives.barrier(ctx.comm)
        return (entered, ctx.now)

    rt = jittery_cluster(nprocs, seed)
    results = rt.run_spmd(main)
    assert min(r[1] for r in results) >= max(r[0] for r in results)


@given(seed=st.integers(0, 5000))
@settings(max_examples=20, deadline=None)
def test_repeated_collectives_under_jitter(seed):
    """Back-to-back collectives must not cross-match even when reordered."""

    def main(ctx):
        outputs = []
        for round_no in range(4):
            result = yield from collectives.allreduce_sum(ctx.comm, [round_no])
            outputs.append(result[0])
        value = yield from collectives.bcast(
            ctx.comm, "payload" if ctx.rank == 1 else None, root=1
        )
        outputs.append(value)
        gathered = yield from collectives.allgather(ctx.comm, ctx.rank)
        outputs.append(tuple(gathered))
        return outputs

    nprocs = 5
    rt = jittery_cluster(nprocs, seed)
    expected = [0, 5, 10, 15, "payload", tuple(range(nprocs))]
    for result in rt.run_spmd(main):
        assert result == expected


@given(seed=st.integers(0, 5000))
@settings(max_examples=15, deadline=None)
def test_new_barrier_correct_under_jitter_in_ack_mode(seed):
    """The full combined ARMCI_Barrier is reordering-safe in ack mode
    (completion is counted per-operation, not inferred from order)."""
    from repro.runtime.memory import GlobalAddress

    def main(ctx):
        base = ctx.region.alloc(1, initial=0)
        peer = (ctx.rank + 1) % ctx.nprocs
        yield from ctx.armci.put(GlobalAddress(peer, base), [ctx.rank + 1])
        yield from ctx.armci.barrier()
        return ctx.region.read(base)

    rt = ClusterRuntime(
        4, params=myrinet2000(jitter_us=60.0, seed=seed), fence_mode="ack"
    )
    assert rt.run_spmd(main) == [4, 1, 2, 3]


@given(seed=st.integers(0, 5000))
@settings(max_examples=15, deadline=None)
def test_new_barrier_reordering_safe_even_in_confirm_mode(seed):
    """A bonus property the paper doesn't point out: the new barrier counts
    completions (op_init vs op_done) instead of inferring them from message
    order, so it stays correct under reordering even on the GM-style
    subsystem — where the *old* AllFence provably breaks (see the fence
    failure-injection tests)."""
    from repro.runtime.memory import GlobalAddress

    def main(ctx):
        base = ctx.region.alloc(1, initial=0)
        peer = (ctx.rank + 1) % ctx.nprocs
        yield from ctx.armci.put(GlobalAddress(peer, base), [ctx.rank + 1])
        yield from ctx.armci.barrier(algorithm="exchange")
        return ctx.region.read(base)

    rt = ClusterRuntime(
        4, params=myrinet2000(jitter_us=60.0, seed=seed), fence_mode="confirm"
    )
    assert rt.run_spmd(main) == [4, 1, 2, 3]
