"""Unit tests for point-to-point messaging."""

import pytest

from repro.mp.comm import ANY_SOURCE, ANY_TAG, Comm, _estimate_bytes


class TestSendRecv:
    def test_basic_roundtrip(self, make_cluster):
        def main(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(1, {"k": 1}, tag=5)
                return None
            msg = yield from ctx.comm.recv(source=0, tag=5)
            return (msg.src, msg.tag, msg.payload)

        rt = make_cluster(nprocs=2)
        results = rt.run_spmd(main)
        assert results[1] == (0, 5, {"k": 1})

    def test_recv_any_source(self, make_cluster):
        def main(ctx):
            if ctx.rank == 0:
                got = []
                for _ in range(2):
                    msg = yield from ctx.comm.recv(source=ANY_SOURCE, tag=1)
                    got.append(msg.src)
                return sorted(got)
            yield from ctx.comm.send(0, ctx.rank, tag=1)

        rt = make_cluster(nprocs=3)
        assert rt.run_spmd(main)[0] == [1, 2]

    def test_recv_any_tag(self, make_cluster):
        def main(ctx):
            if ctx.rank == 0:
                msg = yield from ctx.comm.recv(source=1, tag=ANY_TAG)
                return msg.tag
            yield from ctx.comm.send(0, "x", tag=77)

        rt = make_cluster(nprocs=2)
        assert rt.run_spmd(main)[0] == 77

    def test_tag_filtering_keeps_unmatched(self, make_cluster):
        def main(ctx):
            if ctx.rank == 1:
                yield from ctx.comm.send(0, "first", tag=1)
                yield from ctx.comm.send(0, "second", tag=2)
                return None
            msg2 = yield from ctx.comm.recv(source=1, tag=2)
            msg1 = yield from ctx.comm.recv(source=1, tag=1)
            return (msg2.payload, msg1.payload)

        rt = make_cluster(nprocs=2)
        assert rt.run_spmd(main)[0] == ("second", "first")

    def test_same_tag_fifo_order(self, make_cluster):
        def main(ctx):
            if ctx.rank == 1:
                for i in range(5):
                    yield from ctx.comm.send(0, i, tag=3)
                return None
            got = []
            for _ in range(5):
                msg = yield from ctx.comm.recv(source=1, tag=3)
                got.append(msg.payload)
            return got

        rt = make_cluster(nprocs=2)
        assert rt.run_spmd(main)[0] == [0, 1, 2, 3, 4]

    def test_send_to_invalid_rank(self, make_cluster):
        def main(ctx):
            yield from ctx.comm.send(99, "x")

        rt = make_cluster(nprocs=2)
        with pytest.raises(ValueError, match="out of range"):
            rt.run_spmd(main)

    def test_counters(self, make_cluster):
        def main(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(1, "a")
            else:
                yield from ctx.comm.recv(source=0)

        rt = make_cluster(nprocs=2)
        rt.run_spmd(main)
        assert rt.comms[0].sent == 1
        assert rt.comms[1].received == 1


class TestSendrecvOverlap:
    def test_exchange_costs_one_latency(self, make_cluster):
        """An overlapped exchange phase costs ~one one-way latency, not two
        (the property behind the paper's log2(N) barrier analysis)."""

        def main(ctx):
            peer = ctx.rank ^ 1
            t0 = ctx.now
            yield from ctx.comm.sendrecv(peer, "x", tag=9)
            return ctx.now - t0

        rt = make_cluster(nprocs=2)
        exchange_time = max(rt.run_spmd(main))
        p = rt.params
        one_way_floor = p.inter_latency_us
        # Must be far closer to 1x than 2x the one-way wire latency + overheads.
        assert exchange_time < 2 * one_way_floor + 4 * p.mp_call_us
        assert exchange_time >= one_way_floor

    def test_sendrecv_distinct_source(self, make_cluster):
        def main(ctx):
            right = (ctx.rank + 1) % ctx.nprocs
            left = (ctx.rank - 1) % ctx.nprocs
            msg = yield from ctx.comm.sendrecv(right, ctx.rank, source=left, tag=4)
            return msg.payload

        rt = make_cluster(nprocs=4)
        assert rt.run_spmd(main) == [3, 0, 1, 2]


class TestEstimateBytes:
    def test_scalars(self):
        assert _estimate_bytes(1) == 8
        assert _estimate_bytes(2.5) == 8
        assert _estimate_bytes(True) == 8

    def test_sequences(self):
        assert _estimate_bytes([1, 2, 3]) == 24
        assert _estimate_bytes(()) == 8

    def test_none_and_bytes(self):
        assert _estimate_bytes(None) == 0
        assert _estimate_bytes(b"abcd") == 4

    def test_fallback(self):
        assert _estimate_bytes(object()) > 0
