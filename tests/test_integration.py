"""Cross-module integration tests: whole-cluster programs combining
one-sided data movement, locks, collectives, and both sync algorithms."""

import numpy as np
import pytest

from repro.ga import GlobalArray, dot, fill
from repro.locks import make_lock
from repro.mp import collectives
from repro.runtime.memory import GlobalAddress


class TestMixedWorkloads:
    @pytest.mark.parametrize("sync_mode", ["current", "new"])
    @pytest.mark.parametrize("lock_kind", ["hybrid", "mcs"])
    def test_locked_updates_plus_ga_assembly(self, make_cluster, sync_mode, lock_kind):
        """A program mixing a critical-section counter with GA assembly must
        produce identical results under old and new primitives."""

        def main(ctx):
            ga = GlobalArray(ctx, "mix", (16, 16))
            lock = make_lock(lock_kind, ctx, home_rank=0, name="mix")
            counter = ctx.regions[0].alloc_named("mix_counter", 1, 0)
            for _round in range(3):
                blk = ga.dist.block((ctx.rank + 1) % ctx.nprocs)
                yield from ga.put(
                    (blk.row0, blk.row1, blk.col0, blk.col1),
                    np.full((blk.nrows, blk.ncols), float(ctx.rank + 1)),
                )
                yield from lock.acquire()
                v = yield from ctx.armci.get(ctx.ga(0, counter))
                yield from ctx.armci.put(ctx.ga(0, counter), [v[0] + 1])
                yield from ctx.armci.fence(0)
                yield from lock.release()
                yield from ga.sync(sync_mode)
            total = yield from dot(ga, ga)
            count = yield from ctx.armci.get(ctx.ga(0, counter))
            return total, count[0]

        rt = make_cluster(nprocs=4)
        results = rt.run_spmd(main)
        totals = {r[0] for r in results}
        assert len(totals) == 1  # all ranks agree on the final dot
        assert results[0][1] == 12  # 4 ranks x 3 rounds

    def test_results_identical_across_sync_modes(self, make_cluster):
        """The full mixed program is deterministic per mode, and both modes
        end with byte-identical global state."""

        def main(ctx, mode):
            ga = GlobalArray(ctx, "det", (12, 12))
            yield from fill(ga, float(ctx.nprocs), sync=mode)
            for peer in range(ctx.nprocs):
                if peer != ctx.rank:
                    # Disjoint target cells per writer (same-cell writes
                    # would be a last-writer-wins race in any RMA system).
                    blk = ga.dist.block(peer)
                    col = blk.col0 + (ctx.rank % blk.ncols)
                    yield from ga.put(
                        (blk.row0, blk.row0 + 1, col, col + 1),
                        np.array([[float(ctx.rank)]]),
                    )
            yield from ga.sync(mode)
            snapshot = yield from ga.get((0, 12, 0, 12))
            return snapshot

        snapshots = {}
        for mode in ("current", "new"):
            rt = make_cluster(nprocs=4)
            snapshots[mode] = rt.run_spmd(main, mode)[0]
        np.testing.assert_array_equal(snapshots["current"], snapshots["new"])

    def test_fence_modes_agree_on_final_state(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(ctx.nprocs, initial=0)
            for peer in range(ctx.nprocs):
                if peer != ctx.rank:
                    yield from ctx.armci.acc(
                        GlobalAddress(peer, base + ctx.rank), [ctx.rank + 1]
                    )
            yield from ctx.armci.barrier()
            return ctx.region.read_many(base, ctx.nprocs)

        outcomes = {}
        for fence_mode in ("confirm", "ack"):
            rt = make_cluster(nprocs=4, fence_mode=fence_mode)
            outcomes[fence_mode] = rt.run_spmd(main)
        assert outcomes["confirm"] == outcomes["ack"]


class TestDeterminism:
    def test_identical_runs_identical_virtual_times(self, make_cluster):
        def program(ctx):
            ga = GlobalArray(ctx, "d2", (8, 8))
            lock = make_lock("mcs", ctx, home_rank=0, name="d2")
            for _ in range(3):
                yield from lock.acquire()
                yield from lock.release()
            yield from fill(ga, 1.0)
            yield from ctx.armci.barrier()
            return ctx.now

        times = []
        for _run in range(2):
            rt = make_cluster(nprocs=4)
            times.append((rt.run_spmd(program), rt.env.now, rt.env.events_processed))
        assert times[0] == times[1]

    def test_seed_only_affects_jittered_runs(self, make_cluster):
        from repro.net.params import myrinet2000

        def program(ctx):
            base = ctx.region.alloc(1)
            peer = (ctx.rank + 1) % ctx.nprocs
            yield from ctx.armci.put(GlobalAddress(peer, base), [1])
            yield from ctx.armci.barrier()
            return ctx.now

        def run(seed, jitter):
            rt = make_cluster(
                nprocs=4, params=myrinet2000(seed=seed, jitter_us=jitter)
            )
            rt.run_spmd(program)
            return rt.env.now

        assert run(1, 0.0) == run(2, 0.0)  # seed irrelevant without jitter
        assert run(1, 30.0) != run(2, 30.0)  # jitter draws differ by seed


class TestScaleSmoke:
    def test_thirty_two_processes_all_machinery(self, make_cluster):
        """A larger configuration exercising every subsystem at once."""

        def main(ctx):
            ga = GlobalArray(ctx, "big", (64, 64))
            lock = make_lock("mcs", ctx, home_rank=3, name="big")
            peer = (ctx.rank + 7) % ctx.nprocs
            # Cross-rank addressing needs the collective allocation: raw
            # alloc() offsets differ across ranks because constructors
            # (e.g. the lock home's cells) interleave.
            table = yield from ctx.armci.malloc(4, key="slab")
            yield from ctx.armci.put(table[peer], [ctx.rank] * 4)
            yield from lock.acquire()
            yield from lock.release()
            # "auto" would be unsafe here: MCS protocol puts make the
            # per-rank dirty counts asymmetric (see armci.barrier docs).
            yield from ga.sync("new")
            total = yield from collectives.allreduce_sum(ctx.comm, [1])
            return total[0]

        rt = make_cluster(nprocs=32, procs_per_node=2)
        assert rt.run_spmd(main) == [32] * 32
