"""Examples must run and validate themselves (each asserts its own output)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "ga_matrix_update.py", "lock_counter.py",
     "stencil_exchange.py", "mutex_showdown.py", "pipeline_notify.py",
     "dynamic_load_balance.py", "armci_testsuite.py"],
)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples should print their findings"


def test_examples_directory_complete():
    scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 3
