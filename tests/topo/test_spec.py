"""``--topo`` spec parsing: grammar, inheritance, and rejection."""

from __future__ import annotations

import pytest

from repro.topo import parse_topo_spec


class TestGoodSpecs:
    def test_minimal(self):
        h = parse_topo_spec("switch:8")
        assert h.nlevels == 1
        assert h.levels[0].name == "switch"
        assert h.levels[0].arity == 8
        assert h.levels[0].latency_us is None

    def test_full_fields(self):
        h = parse_topo_spec("switch:8:26.0:0.008:2.0")
        lv = h.levels[0]
        assert (lv.latency_us, lv.per_byte_us, lv.contention) == (26.0, 0.008, 2.0)

    def test_empty_fields_inherit(self):
        h = parse_topo_spec("switch:8::0.008")
        lv = h.levels[0]
        assert lv.latency_us is None
        assert lv.per_byte_us == 0.008
        assert lv.contention == 1.0

    def test_multi_level_innermost_first(self):
        h = parse_topo_spec("switch:8:26,spine:512:48::2.0")
        assert [lv.name for lv in h.levels] == ["switch", "spine"]
        assert h.caps == (8, 4096)
        assert h.levels[1].contention == 2.0

    def test_whitespace_tolerated(self):
        h = parse_topo_spec(" switch:4 , rack:8 ")
        assert h.caps == (4, 32)


class TestBadSpecs:
    @pytest.mark.parametrize(
        "spec, match",
        [
            ("", "empty"),
            ("   ", "empty"),
            ("bogus", "must be NAME:ARITY"),
            ("switch:8:1:2:3:4", "must be NAME:ARITY"),
            (":8", "needs a name"),
            ("switch:eight", "arity must be an int"),
            ("switch:1", "arity must be >= 2"),
            ("switch:8:abc", "latency_us must be a number"),
            ("switch:8::xyz", "per_byte_us must be a number"),
            ("switch:8:::0.5", "contention must be >= 1"),
            ("switch:8,", "empty level entry"),
            ("switch:8,switch:4", "duplicate level names"),
            ("switch:8:-1", "latency_us must be non-negative"),
        ],
    )
    def test_rejected_with_one_line_message(self, spec, match):
        with pytest.raises(ValueError, match=match) as excinfo:
            parse_topo_spec(spec)
        assert "\n" not in str(excinfo.value)
