"""Topology-aware barrier algorithms: correctness across (N, ppn) grids.

Each algorithm is a drop-in ``armci.barrier(algorithm=...)``: after it
returns, every previously-issued put must be applied (combined fence
semantics) and all ranks must have passed the same epoch (barrier
semantics).  The workload below checks both: every rank writes its slot
on every peer before the barrier, then reads its full local window after
— any unapplied put or early exit shows up as a zero.
"""

from __future__ import annotations

import pytest

from repro.analysis import SyncMonitor
from repro.armci.barrier import ALGORITHMS
from repro.net.params import myrinet2000
from repro.runtime.cluster import ClusterRuntime
from repro.runtime.memory import GlobalAddress
from repro.topo import two_level

ALGS = ("kary", "dissemination", "twolevel")


def all_to_all_workload(ctx, algorithm, rounds=2):
    base = ctx.region.alloc(ctx.nprocs, initial=0)
    seen = []
    for round_no in range(1, rounds + 1):
        for peer in range(ctx.nprocs):
            if peer != ctx.rank:
                yield from ctx.armci.put(
                    GlobalAddress(peer, base + ctx.rank), [round_no]
                )
        ctx.region.write(base + ctx.rank, round_no)
        yield from ctx.armci.barrier(algorithm=algorithm)
        seen.append(ctx.region.read_many(base, ctx.nprocs))
        # Second barrier quiesces the read: without it the snapshot races
        # with faster ranks' next-round puts.
        yield from ctx.armci.barrier(algorithm=algorithm)
    return seen


def run_grid(algorithm, nprocs, ppn, params=None):
    params = params or myrinet2000()
    runtime = ClusterRuntime(nprocs, procs_per_node=ppn, params=params)
    return runtime.run_spmd(all_to_all_workload, algorithm)


class TestAlgorithmsRegistered:
    def test_first_class_entries(self):
        for alg in ALGS:
            assert alg in ALGORITHMS

    def test_unknown_rejected(self):
        runtime = ClusterRuntime(2, params=myrinet2000())

        def bad(ctx):
            yield from ctx.armci.barrier(algorithm="hypercube")

        with pytest.raises(ValueError, match="algorithm must be one of"):
            runtime.run_spmd(bad)


class TestFenceAndBarrierSemantics:
    @pytest.mark.parametrize("alg", ALGS)
    @pytest.mark.parametrize(
        "nprocs, ppn",
        [(4, 1), (8, 2), (6, 3), (16, 4), (5, 1), (9, 3)],
    )
    def test_every_put_fenced_every_round(self, alg, nprocs, ppn):
        per_rank = run_grid(alg, nprocs, ppn)
        for rank, seen in enumerate(per_rank):
            for round_idx, window in enumerate(seen, start=1):
                assert window == [round_idx] * nprocs, (
                    f"{alg} N={nprocs} ppn={ppn} rank={rank} "
                    f"round={round_idx}: {window}"
                )

    @pytest.mark.parametrize("alg", ALGS)
    def test_under_hierarchy(self, alg):
        params = myrinet2000().with_(hierarchy=two_level(2), tree_radix=3)
        per_rank = run_grid(alg, 8, 2, params=params)
        for seen in per_rank:
            assert seen[-1] == [2] * 8

    @pytest.mark.parametrize("alg", ALGS)
    def test_deterministic(self, alg):
        params = myrinet2000().with_(hierarchy=two_level(2))

        def once():
            monitor = SyncMonitor()
            runtime = ClusterRuntime(
                6, procs_per_node=2, monitor=monitor, params=params
            )
            runtime.run_spmd(all_to_all_workload, alg)
            return list(monitor.events), runtime.env.now

        assert once() == once()


class TestSanitized:
    @pytest.mark.parametrize("alg", ALGS)
    def test_clean_under_rmcsan(self, alg):
        monitor = SyncMonitor()
        runtime = ClusterRuntime(
            6,
            procs_per_node=2,
            monitor=monitor,
            params=myrinet2000().with_(hierarchy=two_level(2)),
        )
        runtime.run_spmd(all_to_all_workload, alg)
        report = monitor.analyze()
        assert report.ok(), report.render()
        kinds = {e.kind for e in monitor.events}
        # The algorithms bracket themselves as collectives on top of the
        # generic barrier_enter/exit instrumentation.
        assert "coll_enter" in kinds and "barrier_enter" in kinds


class TestCrashIntegration:
    @pytest.mark.parametrize("alg", ALGS)
    def test_survivors_complete_after_crash(self, alg):
        """With a crash schedule, membership routes every host algorithm
        (topology-aware ones included) to the resilient exchange: the
        survivors must still terminate and agree."""
        from repro.fuzz.runner import run_scenario
        from repro.fuzz.scenario import Scenario

        scenario = Scenario(
            seed=7,
            nprocs=6,
            procs_per_node=2,
            workload="strips",
            barrier_algorithm=alg,
            phases=("puts", "barrier", "puts", "barrier"),
            cells=2,
            crashes=(("rank", 5, 60.0),),
            hier_arity=2,
        )
        outcome = run_scenario(scenario)
        assert outcome.ok(), outcome.render()


class TestGaSyncModes:
    @pytest.mark.parametrize("alg", ALGS)
    def test_mode_routes(self, alg):
        from repro.ga.sync import ga_sync

        def program(ctx):
            yield from ga_sync(ctx, alg)
            return True

        runtime = ClusterRuntime(4, procs_per_node=2, params=myrinet2000())
        assert runtime.run_spmd(program) == [True] * 4
