"""Calibrated cost model over the algorithm × topology grid.

The estimates drive ``algorithm="auto"``: under a hierarchy the winner
they pick must match the simulation's at representative (N, ppn) points,
and the flat closed forms must be untouched (auto-selection on a flat
network is part of the byte-identical surface).
"""

from __future__ import annotations

import pytest

from repro.armci.barrier import (
    _auto_select,
    estimate_dissemination_us,
    estimate_exchange_us,
    estimate_kary_us,
    estimate_twolevel_us,
)
from repro.experiments.scalebench import ScaleBenchConfig, run_scalebench
from repro.net.params import myrinet2000
from repro.topo import two_level


def hier_params(arity=8, contention=2.0):
    return myrinet2000().with_(
        hierarchy=two_level(
            arity, uplink_latency_us=26.0, uplink_contention=contention
        ),
        tree_radix=8,
    )


class TestFlatFormsUnchanged:
    def test_exchange_flat_matches_historical_form(self):
        """ppn<=1 + no hierarchy keeps the exact pre-topology closed form
        (bit-for-bit, not approximately: auto-selection depends on it)."""
        import math

        from repro.armci.barrier import _mp_barrier_estimate_us

        params = myrinet2000()
        for nprocs in (2, 4, 16, 64):
            phases = math.ceil(math.log2(nprocs))
            expected = (
                phases * (2 * params.mp_call_us + params.one_way(8 * nprocs))
                + params.poll_detect_us
                + _mp_barrier_estimate_us(params, nprocs)
            )
            assert estimate_exchange_us(params, nprocs) == expected
            assert estimate_exchange_us(params, nprocs, ppn=1) == expected

    def test_ppn_aware_estimate_grows_with_ppn(self):
        params = hier_params()
        assert estimate_exchange_us(params, 256, ppn=8) > estimate_exchange_us(
            params, 256, ppn=1
        )


class TestCrossoverGrid:
    """Estimates must crown the same winner as the simulation."""

    @pytest.mark.parametrize("nprocs", [64, 256])
    def test_exchange_vs_twolevel(self, nprocs):
        ppn = 8
        params = hier_params()
        cfg = ScaleBenchConfig(
            nprocs_list=(nprocs,),
            iterations=2,
            procs_per_node=ppn,
            params=params,
            variants=("host-exchange", "twolevel"),
        )
        result = run_scalebench(cfg)
        sim_flat = result.get("host-exchange", nprocs).sync_us
        sim_two = result.get("twolevel", nprocs).sync_us
        est_flat = estimate_exchange_us(params, nprocs, ppn=ppn)
        est_two = estimate_twolevel_us(params, nprocs, ppn=ppn)
        assert (est_two < est_flat) == (sim_two < sim_flat), (
            f"N={nprocs}: sim ({sim_two:.1f} vs {sim_flat:.1f}) and "
            f"est ({est_two:.1f} vs {est_flat:.1f}) disagree on the winner"
        )

    def test_twolevel_wins_at_scale(self):
        params = hier_params()
        assert estimate_twolevel_us(params, 1024, ppn=8) < estimate_exchange_us(
            params, 1024, ppn=8
        )

    def test_exchange_wins_small_flatish(self):
        params = hier_params(contention=1.0)
        assert estimate_exchange_us(params, 8, ppn=1) < estimate_twolevel_us(
            params, 8, ppn=1
        )

    def test_estimates_monotone_in_n(self):
        params = hier_params()
        for est in (
            estimate_exchange_us,
            estimate_dissemination_us,
            estimate_kary_us,
            estimate_twolevel_us,
        ):
            values = [est(params, n, ppn=8) for n in (64, 256, 1024, 4096)]
            assert values == sorted(values), (est.__name__, values)


class _FakeArmci:
    """The duck-typed slice of Armci that _auto_select consults."""

    def __init__(self, params, nprocs, ppn, dirty_count):
        from repro.net.topology import Topology

        self.params = params
        self.nprocs = nprocs
        self.topology = Topology(nprocs, procs_per_node=ppn)
        self.dirty_nodes = set(range(dirty_count))


class TestAutoSelect:
    def test_flat_choice_unchanged(self):
        """No hierarchy: auto still picks among the original candidates."""
        params = myrinet2000()
        alg = _auto_select(_FakeArmci(params, 16, 1, dirty_count=16))
        assert alg in ("exchange", "linear")

    def test_hier_picks_topology_algorithm_at_scale(self):
        params = hier_params()
        alg = _auto_select(_FakeArmci(params, 1024, 8, dirty_count=128))
        assert alg in ("twolevel", "kary", "dissemination")

    def test_hier_choice_matches_estimate_argmin(self):
        from repro.armci.barrier import estimate_linear_us

        params = hier_params()
        for nprocs, ppn, dirty in ((4, 1, 1), (8, 2, 2), (64, 8, 8)):
            estimates = {
                "linear": estimate_linear_us(params, nprocs, dirty),
                "exchange": estimate_exchange_us(params, nprocs, ppn=ppn),
                "kary": estimate_kary_us(params, nprocs, ppn=ppn),
                "dissemination": estimate_dissemination_us(
                    params, nprocs, ppn=ppn
                ),
            }
            if ppn > 1:
                estimates["twolevel"] = estimate_twolevel_us(
                    params, nprocs, ppn=ppn
                )
            expected = min(sorted(estimates), key=estimates.get)
            alg = _auto_select(_FakeArmci(params, nprocs, ppn, dirty))
            assert alg == expected, (nprocs, ppn, dirty, alg, estimates)
