"""Per-node actor coalescing: determinism, accuracy, and scale.

Coalescing is an *approximation* with a stated contract: the analytic
intra-node charges use the same formulas as the calibrated estimates,
the inter-node phases are simulated for real, and the leaders' vector
inflation is charged explicitly — so a coalesced run must stay within a
tight band of the full per-rank two-level run, at a fraction of the
simulated events.
"""

from __future__ import annotations

import pytest

from repro.experiments.scalebench import ScaleBenchConfig, run_scalebench
from repro.net.params import myrinet2000
from repro.topo import two_level
from repro.topo.coalesce import (
    gather_charge_us,
    intra_puts_charge_us,
    local_round_charge_us,
    vector_inflation_us,
)


def hier_params(arity=8):
    return myrinet2000().with_(
        hierarchy=two_level(arity, uplink_latency_us=26.0, uplink_contention=2.0),
        tree_radix=8,
    )


class TestCharges:
    def test_ppn_one_is_free(self):
        params = myrinet2000()
        assert intra_puts_charge_us(params, 1, 8) == 0.0
        assert gather_charge_us(params, 1) == pytest.approx(
            params.intra_latency_us
        )

    def test_charges_scale_with_ppn(self):
        params = myrinet2000()
        assert local_round_charge_us(params, 8) > local_round_charge_us(params, 4)
        assert intra_puts_charge_us(params, 8, 8) > intra_puts_charge_us(
            params, 4, 8
        )

    def test_vector_inflation_zero_when_uncoalesced(self):
        assert vector_inflation_us(myrinet2000(), 64, 64) == 0.0

    def test_vector_inflation_positive_under_coalescing(self):
        assert vector_inflation_us(hier_params(), 1024, 128) > 0.0


class TestCoalescedRuns:
    def _cfg(self, coalesce, nprocs=64, iterations=3, ppn=8):
        return ScaleBenchConfig(
            nprocs_list=(nprocs,),
            iterations=iterations,
            procs_per_node=ppn,
            params=hier_params(),
            variants=("twolevel",),
            coalesce=coalesce,
        )

    def test_deterministic(self):
        a = run_scalebench(self._cfg(True)).get("twolevel", 64)
        b = run_scalebench(self._cfg(True)).get("twolevel", 64)
        assert a.sync_us == b.sync_us and a.events == b.events

    def test_accuracy_vs_full_run(self):
        """Coalesced sync time within 15% of the faithful per-rank run."""
        full = run_scalebench(self._cfg(False)).get("twolevel", 64)
        coal = run_scalebench(self._cfg(True)).get("twolevel", 64)
        assert coal.sync_us == pytest.approx(full.sync_us, rel=0.15)
        # The point of coalescing: far fewer simulated events.
        assert coal.events < full.events / 2

    def test_reports_logical_nprocs(self):
        cell = run_scalebench(self._cfg(True)).get("twolevel", 64)
        assert cell.nprocs == 64

    def test_large_n_tractable(self):
        """N=4096 coalesced completes with event counts scaling with
        nnodes, not N (the full run would be ~16x bigger)."""
        cfg = ScaleBenchConfig(
            nprocs_list=(4096,),
            iterations=1,
            procs_per_node=16,
            params=hier_params(16),
            coalesce=True,
        )
        cell = run_scalebench(cfg).get("twolevel", 4096)
        assert cell.sync_us > 0
        assert cell.events < 200_000


class TestValidation:
    def test_requires_ppn(self):
        with pytest.raises(ValueError, match="procs_per_node > 1"):
            run_scalebench(
                ScaleBenchConfig(
                    nprocs_list=(64,),
                    procs_per_node=1,
                    params=hier_params(),
                    coalesce=True,
                )
            )

    def test_requires_divisible_n(self):
        with pytest.raises(ValueError, match="divisible"):
            run_scalebench(
                ScaleBenchConfig(
                    nprocs_list=(63,),
                    procs_per_node=8,
                    params=hier_params(),
                    coalesce=True,
                )
            )

    def test_uncoalescible_variant_rejected(self):
        with pytest.raises(ValueError, match="cannot run coalesced"):
            run_scalebench(
                ScaleBenchConfig(
                    nprocs_list=(64,),
                    procs_per_node=8,
                    params=hier_params(),
                    variants=("nic-exchange",),
                    coalesce=True,
                )
            )
