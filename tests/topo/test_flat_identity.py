"""Flat-path preservation: a degenerate hierarchy ≡ no hierarchy.

The tentpole's contract: wiring the hierarchy into the fabric must not
perturb flat runs.  A single fully-inherited level (latency and per-byte
both ``None``, contention 1.0) prices every inter-node message with the
same IEEE arithmetic as the flat code path, so the *entire observable
run* — every RMCSan protocol event, the final simulated clock, and the
event count — must match bit-for-bit, and ``params.hierarchy=None``
runs must be untouched by construction.
"""

from __future__ import annotations

from repro.analysis import SyncMonitor
from repro.net.params import myrinet2000
from repro.runtime.cluster import ClusterRuntime
from repro.runtime.memory import GlobalAddress
from repro.topo import Hierarchy, LevelSpec


def workload(ctx):
    """Puts to every peer, both GA_Sync modes, then a fence epoch."""
    from repro.ga.sync import ga_sync

    base = ctx.region.alloc(ctx.nprocs, initial=0)
    for mode in ("new", "current"):
        for peer in range(ctx.nprocs):
            if peer != ctx.rank:
                yield from ctx.armci.put(
                    GlobalAddress(peer, base + ctx.rank), [ctx.rank + 1]
                )
        yield from ga_sync(ctx, mode)
    return ctx.region.read_many(base, ctx.nprocs)


def run_once(params, nprocs=6, ppn=2):
    monitor = SyncMonitor()
    runtime = ClusterRuntime(
        nprocs, procs_per_node=ppn, monitor=monitor, params=params
    )
    results = runtime.run_spmd(workload)
    return results, list(monitor.events), runtime.env.now, runtime.env.events_processed


def test_degenerate_hierarchy_is_byte_identical():
    flat = myrinet2000()
    degenerate = flat.with_(
        hierarchy=Hierarchy(levels=(LevelSpec(name="all", arity=4096),))
    )
    r_flat, ev_flat, now_flat, count_flat = run_once(flat)
    r_deg, ev_deg, now_deg, count_deg = run_once(degenerate)
    assert r_flat == r_deg
    assert now_flat == now_deg
    assert count_flat == count_deg
    assert ev_flat == ev_deg


def test_flat_rerun_is_deterministic():
    a = run_once(myrinet2000())
    b = run_once(myrinet2000())
    assert a[1] == b[1] and a[2] == b[2] and a[3] == b[3]


def test_multi_level_hierarchy_changes_timing_only():
    """A real (non-degenerate) hierarchy reprices messages — the clock
    moves and the global interleaving with it — but each actor performs
    the same protocol steps: the (kind, actor) multiset is unchanged."""
    from collections import Counter
    flat = myrinet2000()
    hier = flat.with_(
        hierarchy=Hierarchy(
            levels=(
                LevelSpec(name="switch", arity=2),
                LevelSpec(name="spine", arity=64, latency_us=40.0, contention=2.0),
            )
        )
    )
    r_flat, ev_flat, now_flat, _ = run_once(flat)
    r_hier, ev_hier, now_hier, _ = run_once(hier)
    assert r_flat == r_hier  # same memory outcome
    assert now_hier > now_flat  # uplink crossings cost more
    assert Counter((e.kind, e.actor) for e in ev_flat) == Counter(
        (e.kind, e.actor) for e in ev_hier
    )
