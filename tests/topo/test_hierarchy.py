"""Hierarchy model: validation, crossing levels, inheritance, params."""

from __future__ import annotations

import pytest

from repro.net.params import NetworkParams
from repro.topo import Hierarchy, LevelSpec, two_level


class TestLevelSpecValidation:
    def test_arity_floor(self):
        with pytest.raises(ValueError, match="arity must be >= 2"):
            LevelSpec(name="switch", arity=1)

    def test_negative_latency(self):
        with pytest.raises(ValueError, match="latency_us must be non-negative"):
            LevelSpec(name="switch", arity=4, latency_us=-1.0)

    def test_negative_per_byte(self):
        with pytest.raises(ValueError, match="per_byte_us must be non-negative"):
            LevelSpec(name="switch", arity=4, per_byte_us=-0.1)

    def test_contention_floor(self):
        with pytest.raises(ValueError, match="contention must be >= 1"):
            LevelSpec(name="switch", arity=4, contention=0.5)

    def test_empty_name(self):
        with pytest.raises(ValueError, match="non-empty string"):
            LevelSpec(name="", arity=4)


class TestHierarchyValidation:
    def test_needs_levels(self):
        with pytest.raises(ValueError, match="at least one level"):
            Hierarchy(levels=())

    def test_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate level names"):
            Hierarchy(
                levels=(
                    LevelSpec(name="switch", arity=4),
                    LevelSpec(name="switch", arity=8),
                )
            )

    def test_levels_must_be_specs(self):
        with pytest.raises(TypeError, match="LevelSpec"):
            Hierarchy(levels=("switch:4",))

    def test_caps_are_cumulative(self):
        h = Hierarchy(
            levels=(
                LevelSpec(name="switch", arity=4),
                LevelSpec(name="rack", arity=8),
                LevelSpec(name="cluster", arity=2),
            )
        )
        assert h.caps == (4, 32, 64)
        assert h.nlevels == 3


class TestCrossingLevel:
    def setup_method(self):
        self.h = Hierarchy(
            levels=(
                LevelSpec(name="switch", arity=4),
                LevelSpec(name="rack", arity=4),
            )
        )

    def test_same_switch(self):
        assert self.h.crossing_level(0, 3) == 0
        assert self.h.crossing_level(12, 15) == 0

    def test_cross_switch_same_rack(self):
        assert self.h.crossing_level(0, 4) == 1
        assert self.h.crossing_level(3, 15) == 1

    def test_beyond_capacity_charges_outermost(self):
        # caps = (4, 16): nodes 0 and 16 share no group -> outermost.
        assert self.h.crossing_level(0, 16) == 1
        assert self.h.crossing_level(0, 1000) == 1


class TestResolve:
    def test_inheritance_and_contention(self):
        h = Hierarchy(
            levels=(
                LevelSpec(name="switch", arity=4),
                LevelSpec(name="rack", arity=4, latency_us=26.0, contention=2.0),
            )
        )
        lat, per_byte = h.resolve(6.5, 0.004)
        assert lat == (6.5, 26.0)
        assert per_byte == (0.004, 0.008)

    def test_explicit_per_byte_override(self):
        h = Hierarchy(
            levels=(LevelSpec(name="switch", arity=4, per_byte_us=0.02),)
        )
        _lat, per_byte = h.resolve(6.5, 0.004)
        assert per_byte == (0.02,)

    def test_degenerate_inherited_level_is_exact(self):
        # contention 1.0 multiplies exactly in IEEE arithmetic, so a
        # fully-inherited level reproduces the flat figures bit-for-bit.
        h = Hierarchy(levels=(LevelSpec(name="all", arity=4096),))
        lat, per_byte = h.resolve(6.5, 0.004)
        assert lat[0] == 6.5 and per_byte[0] == 0.004


class TestTwoLevel:
    def test_shape(self):
        h = two_level(8, uplink_latency_us=26.0, uplink_contention=2.0)
        assert h.nlevels == 2
        assert h.caps[0] == 8
        assert h.levels[0].latency_us is None  # leaf inherits flat latency
        assert h.levels[1].latency_us == 26.0
        assert h.levels[1].contention == 2.0

    def test_label(self):
        assert two_level(8).label() == "switch:8 > cluster:4096"

    def test_describe_mentions_inheritance(self):
        text = two_level(8).describe()
        assert "inherit" in text and "switch" in text


class TestNetworkParamsIntegration:
    def test_hierarchy_field_validated(self):
        with pytest.raises((TypeError, ValueError)):
            NetworkParams(hierarchy="switch:8")

    def test_tree_radix_floor(self):
        with pytest.raises(ValueError, match="tree_radix"):
            NetworkParams(tree_radix=1)

    def test_hierarchy_accepted(self):
        params = NetworkParams(hierarchy=two_level(4), tree_radix=8)
        assert params.hierarchy.caps[0] == 4
        assert params.tree_radix == 8

    def test_default_is_flat(self):
        assert NetworkParams().hierarchy is None
