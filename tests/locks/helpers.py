"""Shared helpers for lock tests: a mutual-exclusion detector program."""

from __future__ import annotations

from repro.locks import make_lock


def critical_section_program(kind, iterations=10, home_rank=0, hold_us=2.0,
                             lock_kwargs=None):
    """SPMD program: every rank loops acquire/hold/release on one lock.

    Records entry/exit intervals into a shared Python list (simulation-level
    instrumentation, no simulated cost) so tests can assert that no two
    critical sections ever overlap, and counts acquisitions.
    """
    intervals = []

    def main(ctx):
        lock = make_lock(kind, ctx, home_rank=home_rank, name="mx",
                         **(lock_kwargs or {}))
        for i in range(iterations):
            yield from lock.acquire()
            enter = ctx.now
            yield ctx.compute(hold_us)
            exit_ = ctx.now
            intervals.append((enter, exit_, ctx.rank, i))
            yield from lock.release()
        yield from ctx.armci.barrier()
        return lock

    return main, intervals


def assert_mutual_exclusion(intervals):
    """No two recorded critical sections may overlap."""
    ordered = sorted(intervals)
    for (s1, e1, r1, i1), (s2, e2, r2, i2) in zip(ordered, ordered[1:]):
        assert e1 <= s2, (
            f"critical sections overlap: rank {r1} iter {i1} [{s1}, {e1}] vs "
            f"rank {r2} iter {i2} [{s2}, {e2}]"
        )
