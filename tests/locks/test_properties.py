"""Property-based lock tests: mutual exclusion and liveness under random
schedules, for every algorithm and placement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.locks import make_lock
from repro.net.params import myrinet2000
from repro.runtime.cluster import ClusterRuntime

from .helpers import assert_mutual_exclusion


@given(
    kind=st.sampled_from(["hybrid", "mcs", "server", "raymond", "naimi"]),
    nprocs=st.integers(min_value=1, max_value=5),
    ppn=st.integers(min_value=1, max_value=3),
    home=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=40, deadline=None)
def test_mutual_exclusion_under_random_schedules(kind, nprocs, ppn, home, seed):
    """Random per-iteration work and think times never break exclusion, and
    every requested acquisition is eventually granted exactly once."""
    import random

    home = home % nprocs
    rng = random.Random(seed)
    iters = rng.randint(1, 5)
    delays = {
        rank: [(rng.uniform(0, 20), rng.uniform(0, 20)) for _ in range(iters)]
        for rank in range(nprocs)
    }
    intervals = []

    def main(ctx):
        lock = make_lock(kind, ctx, home_rank=home, name="prop")
        for i in range(iters):
            think, hold = delays[ctx.rank][i]
            yield ctx.compute(think)
            yield from lock.acquire()
            enter = ctx.now
            yield ctx.compute(hold)
            intervals.append((enter, ctx.now, ctx.rank, i))
            yield from lock.release()
        yield from ctx.armci.barrier()
        return lock.stats.acquires

    rt = ClusterRuntime(nprocs, procs_per_node=ppn, params=myrinet2000())
    acquires = rt.run_spmd(main)
    assert acquires == [iters] * nprocs
    assert len(intervals) == iters * nprocs
    assert_mutual_exclusion(intervals)


@given(
    optimistic=st.booleans(),
    nprocs=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None)
def test_mcs_variants_equivalent_outcomes(optimistic, nprocs, seed):
    """Optimistic release must preserve exclusion and total acquisitions."""
    import random

    rng = random.Random(seed)
    iters = rng.randint(1, 4)
    intervals = []

    def main(ctx):
        lock = make_lock(
            "mcs", ctx, home_rank=0, name="prop",
            optimistic_release=optimistic,
        )
        for i in range(iters):
            yield ctx.compute(rng.uniform(0, 10))
            yield from lock.acquire()
            enter = ctx.now
            yield ctx.compute(1.0)
            intervals.append((enter, ctx.now, ctx.rank, i))
            yield from lock.release()
        yield from ctx.armci.barrier()
        return lock.stats.acquires

    rt = ClusterRuntime(nprocs, params=myrinet2000())
    acquires = rt.run_spmd(main)
    assert acquires == [iters] * nprocs
    assert_mutual_exclusion(intervals)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_ticket_lock_exclusion_random_holds(seed):
    import random

    rng = random.Random(seed)
    nprocs = rng.randint(1, 4)
    iters = rng.randint(1, 5)
    intervals = []

    def main(ctx):
        lock = make_lock("ticket", ctx, home_rank=0, name="prop")
        for i in range(iters):
            yield ctx.compute(rng.uniform(0, 5))
            yield from lock.acquire()
            enter = ctx.now
            yield ctx.compute(rng.uniform(0.1, 5))
            intervals.append((enter, ctx.now, ctx.rank, i))
            yield from lock.release()
        yield from ctx.armci.barrier()

    rt = ClusterRuntime(nprocs, procs_per_node=nprocs, params=myrinet2000())
    rt.run_spmd(main)
    assert len(intervals) == iters * nprocs
    assert_mutual_exclusion(intervals)
