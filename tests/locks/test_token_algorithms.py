"""Tests for the related-work token algorithms: Raymond and Naimi-Trehel."""

import pytest

from repro.locks.naimi import NaimiTrehelLock
from repro.locks.raymond import RaymondLock, initial_holder, tree_neighbors

from .helpers import assert_mutual_exclusion, critical_section_program


class TestRaymondTree:
    def test_neighbors_heap_shape(self):
        assert tree_neighbors(0, 7) == [1, 2]
        assert tree_neighbors(1, 7) == [0, 3, 4]
        assert tree_neighbors(3, 7) == [1]
        assert tree_neighbors(2, 4) == [0]

    def test_neighbors_symmetric(self):
        nprocs = 11
        for a in range(nprocs):
            for b in tree_neighbors(a, nprocs):
                assert a in tree_neighbors(b, nprocs)

    @pytest.mark.parametrize("home", [0, 1, 3, 6])
    def test_initial_holder_points_toward_home(self, home):
        """Following holder pointers from any rank must reach home."""
        nprocs = 7
        for rank in range(nprocs):
            node, hops = rank, 0
            while node != home:
                nxt = initial_holder(node, home, nprocs)
                assert nxt != "self"
                assert nxt in tree_neighbors(node, nprocs)
                node = nxt
                hops += 1
                assert hops <= nprocs
        assert initial_holder(home, home, nprocs) == "self"


@pytest.mark.parametrize("kind", ["raymond", "naimi"])
class TestTokenMutualExclusion:
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 5, 8])
    def test_exclusion(self, make_cluster, kind, nprocs):
        main, intervals = critical_section_program(kind, iterations=5)
        rt = make_cluster(nprocs=nprocs)
        rt.run_spmd(main)
        assert len(intervals) == 5 * nprocs
        assert_mutual_exclusion(intervals)

    @pytest.mark.parametrize("home", [0, 2])
    def test_exclusion_various_homes(self, make_cluster, kind, home):
        main, intervals = critical_section_program(kind, iterations=4, home_rank=home)
        rt = make_cluster(nprocs=4)
        rt.run_spmd(main)
        assert_mutual_exclusion(intervals)

    def test_no_acquisition_lost(self, make_cluster, kind):
        main, intervals = critical_section_program(kind, iterations=8)
        rt = make_cluster(nprocs=4)
        locks = rt.run_spmd(main)
        seen = {(r, i) for (_s, _e, r, i) in intervals}
        assert seen == {(r, i) for r in range(4) for i in range(8)}
        assert all(l.stats.acquires == 8 for l in locks)

    def test_smp_placement(self, make_cluster, kind):
        main, intervals = critical_section_program(kind, iterations=4)
        rt = make_cluster(nprocs=4, procs_per_node=2)
        rt.run_spmd(main)
        assert_mutual_exclusion(intervals)

    def test_timing_stats_collected(self, make_cluster, kind):
        main, _ = critical_section_program(kind, iterations=5)
        rt = make_cluster(nprocs=2)
        locks = rt.run_spmd(main)
        for lock in locks:
            assert lock.acquire_stats().count == 5
            assert lock.release_stats().count == 5


class TestTokenEconomy:
    def test_raymond_messages_bounded_by_tree_paths(self, make_cluster):
        """Per acquisition, requests travel at most the tree diameter."""
        main, _ = critical_section_program("raymond", iterations=6)
        rt = make_cluster(nprocs=8)
        locks = rt.run_spmd(main)
        requests = sum(l.stats.counters.get("sent_request", 0) for l in locks)
        privileges = sum(l.stats.counters.get("sent_privilege", 0) for l in locks)
        total_acquires = 6 * 8
        diameter = 2 * 3  # heap of 8: depth 3
        assert requests <= total_acquires * diameter
        assert privileges <= total_acquires * diameter

    def test_naimi_token_goes_requester_to_requester(self, make_cluster):
        """Under saturation, the token moves directly: ~1 token message per
        handoff, not a walk through the home."""
        main, _ = critical_section_program("naimi", iterations=6)
        rt = make_cluster(nprocs=8)
        locks = rt.run_spmd(main)
        tokens = sum(l.stats.counters.get("sent_token", 0) for l in locks)
        total_acquires = 6 * 8
        assert tokens <= total_acquires  # at most one token msg per acquire

    def test_idle_token_reacquired_locally_for_free(self, make_cluster):
        """Naimi: the process holding the idle token re-enters without any
        inter-node message."""

        def main(ctx):
            lock = NaimiTrehelLock(ctx, home_rank=0)
            if ctx.rank == 0:
                for _ in range(5):
                    yield from lock.acquire()
                    yield from lock.release()
            yield from ctx.armci.barrier()
            return lock.stats.counters

        rt = make_cluster(nprocs=2)
        counters = rt.run_spmd(main)[0]
        assert counters.get("sent_token", 0) == 0
        assert counters.get("sent_request", 0) == 0


class TestCrossAlgorithmComparison:
    def test_all_algorithms_agree_on_protected_counter(self, make_cluster):
        """The canonical increment test: every algorithm must produce the
        same final counter value."""

        def main(ctx, kind):
            from repro.locks import make_lock

            counter = ctx.regions[0].alloc_named("cmp", 1, 0)
            lock = make_lock(kind, ctx, home_rank=0, name="cmp")
            for _ in range(5):
                yield from lock.acquire()
                v = yield from ctx.armci.get(ctx.ga(0, counter))
                yield from ctx.armci.put(ctx.ga(0, counter), [v[0] + 1])
                yield from ctx.armci.fence(0)
                yield from lock.release()
            yield from ctx.armci.barrier()
            return None

        for kind in ("hybrid", "mcs", "raymond", "naimi", "server"):
            rt = make_cluster(nprocs=4)
            rt.run_spmd(main, kind)
            assert rt.regions[0].read(0) == 20, kind
