"""Unit tests for the pure server-based queue lock."""

import pytest

from repro.locks.server_queue import ServerQueueLock

from .helpers import assert_mutual_exclusion, critical_section_program


class TestServerQueueLock:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_mutual_exclusion(self, make_cluster, nprocs):
        main, intervals = critical_section_program("server", iterations=6)
        rt = make_cluster(nprocs=nprocs)
        rt.run_spmd(main)
        assert len(intervals) == 6 * nprocs
        assert_mutual_exclusion(intervals)

    def test_even_local_requesters_use_server(self, make_cluster):
        """Unlike the hybrid, the home rank also sends LockRequests."""

        def main(ctx):
            lock = ServerQueueLock(ctx, home_rank=0)
            yield from lock.acquire()
            yield from lock.release()
            yield ctx.compute(100)
            return None

        rt = make_cluster(nprocs=1)
        rt.run_spmd(main)
        assert rt.servers[0].stats.locks == 1
        assert rt.servers[0].stats.unlocks == 1

    def test_grants_follow_ticket_order(self, make_cluster):
        def main(ctx):
            lock = ServerQueueLock(ctx, home_rank=0)
            yield ctx.compute(ctx.rank * 5.0)  # staggered arrival
            yield from lock.acquire()
            grabbed = ctx.now
            yield from lock.release()
            yield from ctx.armci.barrier()
            return grabbed

        rt = make_cluster(nprocs=4)
        times = rt.run_spmd(main)
        assert times == sorted(times)

    def test_interoperates_with_hybrid_state_layout(self, make_cluster):
        """Server lock shares the hybrid's [ticket, counter] server logic."""
        main, intervals = critical_section_program("server", iterations=4)
        rt = make_cluster(nprocs=2, procs_per_node=2)
        rt.run_spmd(main)
        assert_mutual_exclusion(intervals)
        # All messages intra-node, but the server is still in the loop.
        assert rt.servers[0].stats.locks == 8
