"""Unit tests for the MCS software queuing lock (the paper's new lock)."""

import pytest

from repro.locks.mcs import MCSLock
from repro.runtime.memory import NULL_PTR

from .helpers import assert_mutual_exclusion, critical_section_program


class TestMutualExclusion:
    @pytest.mark.parametrize("nprocs,ppn", [(2, 1), (4, 1), (4, 2), (8, 2)])
    def test_exclusion_across_placements(self, make_cluster, nprocs, ppn):
        main, intervals = critical_section_program("mcs", iterations=6)
        rt = make_cluster(nprocs=nprocs, procs_per_node=ppn)
        rt.run_spmd(main)
        assert len(intervals) == 6 * nprocs
        assert_mutual_exclusion(intervals)

    def test_exclusion_with_remote_home(self, make_cluster):
        main, intervals = critical_section_program("mcs", iterations=6, home_rank=3)
        rt = make_cluster(nprocs=4)
        rt.run_spmd(main)
        assert_mutual_exclusion(intervals)

    def test_queue_order_is_starvation_free(self, make_cluster):
        """MCS's queue bounds unfairness: between two acquisitions by the
        same rank, every other rank acquires at most twice."""
        main, intervals = critical_section_program("mcs", iterations=5)
        rt = make_cluster(nprocs=4)
        rt.run_spmd(main)
        order = [r for (_s, _e, r, _i) in sorted(intervals)]
        positions = {r: [i for i, x in enumerate(order) if x == r] for r in range(4)}
        for r, pos in positions.items():
            gaps = [b - a for a, b in zip(pos, pos[1:])]
            assert max(gaps) <= 2 * 4, f"rank {r} starved: gaps {gaps}"

    def test_exclusion_under_optimistic_release(self, make_cluster):
        main, intervals = critical_section_program(
            "mcs", iterations=6, lock_kwargs={"optimistic_release": True}
        )
        rt = make_cluster(nprocs=4)
        rt.run_spmd(main)
        assert len(intervals) == 24
        assert_mutual_exclusion(intervals)


class TestLockState:
    def test_lock_returns_to_null_when_idle(self, make_cluster):
        main, _ = critical_section_program("mcs", iterations=3)
        rt = make_cluster(nprocs=3)
        locks = rt.run_spmd(main)
        lock_addr = locks[0].lock_addr
        assert tuple(rt.regions[0].read_many(lock_addr, 2)) == NULL_PTR

    def test_uncontended_acquire_counts(self, make_cluster):
        def main(ctx):
            lock = MCSLock(ctx, home_rank=0)
            yield from lock.acquire()
            yield from lock.release()
            return lock.stats

        rt = make_cluster(nprocs=1)
        stats = rt.run_spmd(main)[0]
        assert stats.uncontended_acquires == 1
        assert stats.counters.get("release_cas") == 1
        assert stats.counters.get("release_cas_failed", 0) == 0

    def test_node_struct_shared_across_locks(self, make_cluster):
        def main(ctx):
            a = MCSLock(ctx, home_rank=0, name="A")
            b = MCSLock(ctx, home_rank=0, name="B")
            assert a.node_struct is b.node_struct
            yield from a.acquire()
            yield from a.release()
            yield from b.acquire()
            yield from b.release()
            return True

        rt = make_cluster(nprocs=1)
        assert rt.run_spmd(main) == [True]

    def test_concurrent_use_of_node_struct_rejected(self, make_cluster):
        """Paper: one node structure per process — so a process cannot hold
        or wait on two MCS locks simultaneously."""

        def main(ctx):
            a = MCSLock(ctx, home_rank=0, name="A")
            b = MCSLock(ctx, home_rank=0, name="B")
            yield from a.acquire()
            yield from b.acquire()

        rt = make_cluster(nprocs=1)
        with pytest.raises(RuntimeError, match="node structure already in use"):
            rt.run_spmd(main)


class TestProtocolCosts:
    def test_server_uninvolved_when_all_local(self, make_cluster):
        """All on the home node: lock traffic never touches the server."""
        main, intervals = critical_section_program("mcs", iterations=5)
        rt = make_cluster(nprocs=4, procs_per_node=4)
        rt.run_spmd(main)
        assert_mutual_exclusion(intervals)
        assert rt.servers[0].stats.rmws == 0
        assert rt.servers[0].stats.puts == 0

    def test_same_node_handoff_counted(self, make_cluster):
        main, _ = critical_section_program("mcs", iterations=6)
        rt = make_cluster(nprocs=4, procs_per_node=4)
        locks = rt.run_spmd(main)
        total_handoffs = sum(l.stats.handoffs for l in locks)
        same_node = sum(l.stats.counters.get("handoffs_same_node", 0) for l in locks)
        assert total_handoffs > 0
        assert same_node == total_handoffs

    def test_remote_handoff_is_one_message(self, make_cluster):
        """Passing to a remote waiter = one put; no server grant messages."""

        def main(ctx):
            lock = MCSLock(ctx, home_rank=0)
            if ctx.rank == 1:
                yield from lock.acquire()
                yield from ctx.comm.send(2, "mine")
                yield ctx.compute(60)  # let rank 2 queue behind us
                yield from lock.release()
            elif ctx.rank == 2:
                yield from ctx.comm.recv(source=1)
                yield from lock.acquire()
                yield from lock.release()
            yield from ctx.armci.barrier()
            return lock.stats

        rt = make_cluster(nprocs=3)
        stats = rt.run_spmd(main)
        assert stats[1].handoffs == 1
        assert stats[2].counters.get("contended_acquires") == 1
        # Hybrid-server lock machinery never used.
        assert rt.servers[0].stats.locks == 0
        assert rt.servers[0].stats.unlocks == 0
        assert rt.servers[0].stats.grants == 0

    def test_uncontended_remote_release_blocks_on_cas(self, make_cluster):
        """Figure 10's cause: release with no waiter = blocking CAS RTT."""

        def main(ctx):
            lock = MCSLock(ctx, home_rank=1)  # remote home
            yield from lock.acquire()
            t0 = ctx.now
            yield from lock.release()
            return ctx.now - t0

        rt = make_cluster(nprocs=2)
        release_time = rt.run_spmd(main)[0]
        p = rt.params
        assert release_time > 2 * p.inter_latency_us  # a full round trip


class TestOptimisticRelease:
    def test_release_returns_fast(self, make_cluster):
        def main(ctx):
            lock = MCSLock(ctx, home_rank=1, optimistic_release=True)
            yield from lock.acquire()
            t0 = ctx.now
            yield from lock.release()
            release_time = ctx.now - t0
            yield from ctx.armci.barrier()
            return release_time

        rt = make_cluster(nprocs=2)
        release_time = rt.run_spmd(main)[0]
        assert release_time < rt.params.inter_latency_us

    def test_lock_still_freed_in_background(self, make_cluster):
        def main(ctx):
            lock = MCSLock(ctx, home_rank=1, optimistic_release=True)
            yield from lock.acquire()
            yield from lock.release()
            yield from ctx.armci.barrier()
            yield ctx.compute(100)
            return lock.lock_addr

        rt = make_cluster(nprocs=2)
        lock_addr = rt.run_spmd(main)[0]
        assert tuple(rt.regions[1].read_many(lock_addr, 2)) == NULL_PTR

    def test_reacquire_waits_for_pending_release(self, make_cluster):
        """The node structure must not be reused while the optimistic CAS is
        in flight; a tight relock loop stays correct."""
        main, intervals = critical_section_program(
            "mcs", iterations=8, lock_kwargs={"optimistic_release": True}
        )
        rt = make_cluster(nprocs=2)
        rt.run_spmd(main)
        assert len(intervals) == 16
        assert_mutual_exclusion(intervals)

    def test_optimistic_cas_failure_still_hands_off(self, make_cluster):
        def main(ctx):
            lock = MCSLock(ctx, home_rank=0, optimistic_release=True)
            if ctx.rank == 1:
                yield from lock.acquire()
                yield from ctx.comm.send(2, "queued?")
                yield ctx.compute(80)
                yield from lock.release()
            elif ctx.rank == 2:
                yield from ctx.comm.recv(source=1)
                yield from lock.acquire()
                yield from lock.release()
            yield from ctx.armci.barrier()
            return lock.stats.acquires

        rt = make_cluster(nprocs=3)
        acquires = rt.run_spmd(main)
        assert acquires[1] == 1 and acquires[2] == 1
