"""Timing-randomized race exploration for the MCS lock.

The MCS protocol's hard cases (release racing a half-linked enqueue, the
CAS-failure wait, optimistic-release completion vs re-acquire) are reached
or avoided depending on relative timing.  A deterministic simulator only
explores one interleaving per cost model — so these tests *randomize the
cost model itself* (latencies, overheads, poll delays) to drive the
protocol through many distinct interleavings, asserting safety in each.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.locks import make_lock
from repro.mp import collectives
from repro.net.params import myrinet2000
from repro.runtime.cluster import ClusterRuntime

from .helpers import assert_mutual_exclusion

timing = st.fixed_dictionaries(
    {
        "inter_latency_us": st.floats(0.5, 30.0),
        "o_send_us": st.floats(0.0, 5.0),
        "server_proc_us": st.floats(0.0, 5.0),
        "server_wake_us": st.floats(0.0, 40.0),
        "poll_detect_us": st.floats(0.0, 3.0),
        "api_call_us": st.floats(0.0, 5.0),
        "shm_atomic_us": st.floats(0.0, 2.0),
        "intra_latency_us": st.floats(0.0, 2.0),
    }
)


@given(overrides=timing, nprocs=st.integers(2, 4),
       optimistic=st.booleans(), ppn=st.integers(1, 2))
@settings(max_examples=60, deadline=None)
def test_mcs_safe_across_timing_space(overrides, nprocs, optimistic, ppn):
    """Mutual exclusion and completeness hold at every explored timing."""
    intervals = []

    def main(ctx):
        lock = make_lock(
            "mcs", ctx, home_rank=0, name="race",
            optimistic_release=optimistic,
        )
        yield from collectives.barrier(ctx.comm)
        for i in range(4):
            yield from lock.acquire()
            enter = ctx.now
            yield ctx.compute(1.0)
            intervals.append((enter, ctx.now, ctx.rank, i))
            yield from lock.release()
        yield from ctx.armci.barrier()
        return lock.stats

    rt = ClusterRuntime(
        nprocs, procs_per_node=ppn, params=myrinet2000(**overrides)
    )
    all_stats = rt.run_spmd(main)
    assert len(intervals) == 4 * nprocs
    assert_mutual_exclusion(intervals)
    assert all(s.acquires == 4 and s.releases == 4 for s in all_stats)


@given(overrides=timing)
@settings(max_examples=40, deadline=None)
def test_cas_failure_path_is_reachable_and_safe(overrides):
    """Across the timing space, both release paths occur somewhere, and
    whenever the CAS-failure path fires the protocol still hands off."""
    def main(ctx):
        lock = make_lock("mcs", ctx, home_rank=0, name="race2")
        yield from collectives.barrier(ctx.comm)
        for _ in range(6):
            yield from lock.acquire()
            yield from lock.release()
        yield from ctx.armci.barrier()
        return dict(lock.stats.counters)

    rt = ClusterRuntime(2, params=myrinet2000(**overrides))
    counters = rt.run_spmd(main)
    failed = sum(c.get("release_cas_failed", 0) for c in counters)
    handoffs = sum(c.get("release_cas", 0) for c in counters)
    # Whatever mix occurred, every acquisition completed (checked by the
    # run itself); CAS failures never exceed CAS attempts.
    assert failed <= handoffs + 1


@given(overrides=timing, seed=st.integers(0, 999))
@settings(max_examples=30, deadline=None)
def test_hybrid_and_mcs_agree_on_protected_state(overrides, seed):
    """Both lock algorithms serialize the same read-modify-write sequence
    to the same final value under every timing."""
    import random

    rng = random.Random(seed)
    per_rank_iters = [rng.randint(1, 4) for _ in range(3)]

    def main(ctx, kind):
        lock = make_lock(kind, ctx, home_rank=0, name=f"agree-{kind}")
        cell = ctx.regions[0].alloc_named(f"agree-{kind}", 1, 0)
        yield from collectives.barrier(ctx.comm)
        for _ in range(per_rank_iters[ctx.rank]):
            yield from lock.acquire()
            v = yield from ctx.armci.get(ctx.ga(0, cell))
            yield from ctx.armci.put(ctx.ga(0, cell), [v[0] + 1])
            yield from ctx.armci.fence(0)
            yield from lock.release()
        yield from ctx.armci.barrier()
        final = yield from ctx.armci.get(ctx.ga(0, cell))
        return final[0]

    finals = {}
    for kind in ("hybrid", "mcs"):
        rt = ClusterRuntime(3, params=myrinet2000(**overrides))
        finals[kind] = rt.run_spmd(main, kind)[0]
    assert finals["hybrid"] == finals["mcs"] == sum(per_rank_iters)
