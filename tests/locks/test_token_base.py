"""Tests for the token-lock daemon infrastructure."""

import pytest

from repro.locks.naimi import NaimiTrehelLock
from repro.locks.raymond import RaymondLock
from repro.locks.token_base import LockMessage
from repro.net.params import myrinet2000


class TestDaemonWakeModel:
    def test_idle_daemon_pays_wake_cost(self, make_cluster):
        """A token message arriving at an idle daemon costs server_wake_us,
        mirroring the ARMCI server's blocking-receive economics."""

        def main(ctx, wake):
            lock = NaimiTrehelLock(ctx, home_rank=0)
            if ctx.rank == 1:
                t0 = ctx.now
                yield from lock.acquire()
                elapsed = ctx.now - t0
                yield from lock.release()
                yield from ctx.armci.barrier()
                return elapsed
            yield from ctx.armci.barrier()
            return None

        times = {}
        for wake in (0.0, 40.0):
            rt = make_cluster(
                nprocs=2, params=myrinet2000(server_wake_us=wake)
            )
            times[wake] = rt.run_spmd(main, wake)[1]
        # The acquire crosses >= 2 idle daemons (request at home, token at
        # requester): the wake cost shows up at least twice.
        assert times[40.0] > times[0.0] + 2 * 40.0 - 1.0

    def test_wake_counter_recorded(self, make_cluster):
        def main(ctx):
            lock = NaimiTrehelLock(ctx, home_rank=0)
            if ctx.rank == 1:
                yield from lock.acquire()
                yield from lock.release()
            yield from ctx.armci.barrier()
            return lock.stats.counters.get("daemon_wakes", 0)

        rt = make_cluster(nprocs=2)
        wakes = rt.run_spmd(main)
        assert sum(wakes) >= 2

    def test_backlogged_daemon_skips_wake(self, make_cluster):
        """Messages that find the daemon's queue non-empty don't pay."""

        def main(ctx):
            lock = RaymondLock(ctx, home_rank=0)
            for _ in range(6):
                yield from lock.acquire()
                yield from lock.release()
            yield from ctx.armci.barrier()
            handled = sum(
                v for k, v in lock.stats.counters.items() if k.startswith("sent_")
            )
            wakes = lock.stats.counters.get("daemon_wakes", 0)
            return handled, wakes

        rt = make_cluster(nprocs=4)
        results = rt.run_spmd(main)
        total_wakes = sum(r[1] for r in results)
        total_received = sum(r[0] for r in results)
        # Under contention, some arrivals pile up; wakes < messages.
        assert 0 < total_wakes < total_received


class TestMessagePlumbing:
    def test_same_name_same_tag(self, make_cluster):
        rt = make_cluster(nprocs=2)
        a = RaymondLock(rt.context(0), home_rank=0, name="shared")
        b = RaymondLock(rt.context(1), home_rank=0, name="shared")
        assert a.tag == b.tag

    def test_distinct_names_distinct_tags(self, make_cluster):
        rt = make_cluster(nprocs=1)
        a = RaymondLock(rt.context(0), home_rank=0, name="one")
        # A different algorithm with a different name must not collide.
        b = NaimiTrehelLock(rt.context(0), home_rank=0, name="two")
        assert a.tag != b.tag

    def test_lock_message_shape(self):
        msg = LockMessage("request", 3, payload=7)
        assert (msg.kind, msg.src, msg.payload) == ("request", 3, 7)

    def test_release_is_fire_and_forget(self, make_cluster):
        def main(ctx):
            lock = NaimiTrehelLock(ctx, home_rank=0)
            yield from lock.acquire()
            t0 = ctx.now
            yield from lock.release()
            elapsed = ctx.now - t0
            yield from ctx.armci.barrier()
            return elapsed

        rt = make_cluster(nprocs=1)
        release_time = rt.run_spmd(main)[0]
        # Just the api charge + the local handoff message injection.
        assert release_time < 2 * rt.params.inter_latency_us
