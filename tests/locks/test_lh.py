"""Tests for the LH queue lock (related-work reference [9])."""

import pytest

from repro.locks.lh import LHLock

from .helpers import assert_mutual_exclusion, critical_section_program


class TestLHLock:
    @pytest.mark.parametrize("nprocs", [1, 2, 4, 6])
    def test_mutual_exclusion(self, make_cluster, nprocs):
        main, intervals = critical_section_program("lh", iterations=8)
        rt = make_cluster(nprocs=nprocs, procs_per_node=nprocs)
        rt.run_spmd(main)
        assert len(intervals) == 8 * nprocs
        assert_mutual_exclusion(intervals)

    def test_fifo_by_swap_order(self, make_cluster):
        """Staggered arrivals acquire in arrival order (queue property)."""

        def main(ctx):
            lock = LHLock(ctx, home_rank=0)
            yield ctx.compute(10.0 * ctx.rank)
            yield from lock.acquire()
            grabbed = ctx.now
            yield ctx.compute(30.0)
            yield from lock.release()
            yield from ctx.armci.barrier()
            return grabbed

        rt = make_cluster(nprocs=4, procs_per_node=4)
        times = rt.run_spmd(main)
        assert times == sorted(times)

    def test_remote_home_rejected(self, make_cluster):
        def main(ctx):
            LHLock(ctx, home_rank=(ctx.rank + 1) % 2)
            yield ctx.compute(0)

        rt = make_cluster(nprocs=2, procs_per_node=1)
        with pytest.raises(ValueError, match="shared-memory"):
            rt.run_spmd(main)

    def test_cells_recycle_no_unbounded_allocation(self, make_cluster):
        """Many rounds must not grow the home region (one cell/process)."""

        def main(ctx):
            lock = LHLock(ctx, home_rank=0)
            # Wait until every rank's constructor allocated its one cell.
            yield from ctx.armci.barrier()
            size_before = len(ctx.regions[0])
            for _ in range(25):
                yield from lock.acquire()
                yield from lock.release()
            yield from ctx.armci.barrier()
            return size_before, len(ctx.regions[0])

        rt = make_cluster(nprocs=4, procs_per_node=4)
        for before, after in rt.run_spmd(main):
            assert before == after

    def test_uses_no_messages(self, make_cluster):
        main, _ = critical_section_program("lh", iterations=5)
        rt = make_cluster(nprocs=3, procs_per_node=3)
        rt.run_spmd(main)
        # Only the trailing armci.barrier communicates; no lock traffic.
        assert rt.fabric.stats.by_payload.get("LockRequest", 0) == 0
        assert rt.servers[0].stats.rmws == 0

    def test_queue_spin_wakes_one_waiter_per_release(self, make_cluster):
        """LH's point vs the ticket lock: each waiter spins on its own
        cell, so a release wakes exactly one spinner (no broadcast)."""
        from repro.locks.ticket import TicketLock

        def main(ctx, kind):
            cls = LHLock if kind == "lh" else TicketLock
            lock = cls(ctx, home_rank=0)
            for _ in range(6):
                yield from lock.acquire()
                yield ctx.compute(3.0)
                yield from lock.release()
            yield from ctx.armci.barrier()
            return None

        wakeups = {}
        for kind in ("lh", "ticket"):
            rt = make_cluster(nprocs=6, procs_per_node=6)
            rt.run_spmd(main, kind)
            region = rt.regions[0]
            fired = sum(
                w.fired for w in region._watchers.values()
            )
            woken = 0  # total waiter wakeups = sum over fires of waiters
            wakeups[kind] = (fired, region.writes)
        # Both complete the same acquisitions; LH distributes spinning
        # across cells while ticket concentrates it on one counter.
        lh_watchers, _ = wakeups["lh"]
        ticket_watchers, _ = wakeups["ticket"]
        assert lh_watchers > 0 and ticket_watchers > 0
