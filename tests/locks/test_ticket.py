"""Unit tests for the shared-memory ticket lock."""

import pytest

from repro.locks.ticket import TicketLock

from .helpers import assert_mutual_exclusion, critical_section_program


class TestTicketLock:
    def test_mutual_exclusion_same_node(self, make_cluster):
        main, intervals = critical_section_program("ticket", iterations=8)
        rt = make_cluster(nprocs=4, procs_per_node=4)
        rt.run_spmd(main)
        assert len(intervals) == 32
        assert_mutual_exclusion(intervals)

    def test_fifo_by_ticket_order(self, make_cluster):
        """Grants happen in fetch&inc order — tickets are FIFO-fair."""
        main, intervals = critical_section_program("ticket", iterations=5)
        rt = make_cluster(nprocs=3, procs_per_node=3)
        rt.run_spmd(main)
        # With identical loop costs, each rank acquires once per "round".
        rounds = [sorted(r for (_s, _e, r, i) in intervals if i == k)
                  for k in range(5)]
        assert all(r == [0, 1, 2] for r in rounds)

    def test_remote_home_rejected(self, make_cluster):
        rt = make_cluster(nprocs=2, procs_per_node=1)

        def main(ctx):
            TicketLock(ctx, home_rank=(ctx.rank + 1) % 2)
            yield ctx.compute(0)

        with pytest.raises(ValueError, match="not.*mappable|not mappable"):
            rt.run_spmd(main)

    def test_uncontended_stats(self, make_cluster):
        def main(ctx):
            lock = TicketLock(ctx, home_rank=0)
            yield from lock.acquire()
            yield from lock.release()
            return lock.stats

        rt = make_cluster(nprocs=1)
        stats = rt.run_spmd(main)[0]
        assert stats.acquires == 1
        assert stats.releases == 1
        assert stats.uncontended_acquires == 1

    def test_recursive_acquire_rejected(self, make_cluster):
        def main(ctx):
            lock = TicketLock(ctx, home_rank=0)
            yield from lock.acquire()
            yield from lock.acquire()

        rt = make_cluster(nprocs=1)
        with pytest.raises(RuntimeError, match="recursive"):
            rt.run_spmd(main)

    def test_release_without_acquire_rejected(self, make_cluster):
        def main(ctx):
            lock = TicketLock(ctx, home_rank=0)
            yield from lock.release()

        rt = make_cluster(nprocs=1)
        with pytest.raises(RuntimeError, match="without acquire"):
            rt.run_spmd(main)

    def test_no_messages_used(self, make_cluster):
        main, _intervals = critical_section_program("ticket", iterations=5)
        rt = make_cluster(nprocs=2, procs_per_node=2)
        rt.run_spmd(main)
        # The final armci.barrier uses messages; ticket ops themselves none.
        assert rt.fabric.stats.by_payload.get("LockRequest", 0) == 0
        assert rt.fabric.stats.by_payload.get("UnlockRequest", 0) == 0
