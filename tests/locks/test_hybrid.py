"""Unit tests for the original ARMCI hybrid lock."""

import pytest

from repro.locks.hybrid import HybridLock

from .helpers import assert_mutual_exclusion, critical_section_program


class TestMutualExclusion:
    @pytest.mark.parametrize("nprocs,ppn", [(2, 1), (4, 1), (4, 2), (6, 3)])
    def test_exclusion_across_placements(self, make_cluster, nprocs, ppn):
        main, intervals = critical_section_program("hybrid", iterations=6)
        rt = make_cluster(nprocs=nprocs, procs_per_node=ppn)
        rt.run_spmd(main)
        assert len(intervals) == 6 * nprocs
        assert_mutual_exclusion(intervals)

    def test_exclusion_with_remote_home(self, make_cluster):
        main, intervals = critical_section_program(
            "hybrid", iterations=6, home_rank=2
        )
        rt = make_cluster(nprocs=4)
        rt.run_spmd(main)
        assert_mutual_exclusion(intervals)

    def test_every_acquisition_happens(self, make_cluster):
        main, intervals = critical_section_program("hybrid", iterations=10)
        rt = make_cluster(nprocs=4)
        rt.run_spmd(main)
        seen = {(r, i) for (_s, _e, r, i) in intervals}
        assert seen == {(r, i) for r in range(4) for i in range(10)}


class TestProtocolDetails:
    def test_local_requester_takes_ticket_directly(self, make_cluster):
        """The home-node requester must not send LockRequests (Figure 3a)."""

        def main(ctx):
            lock = HybridLock(ctx, home_rank=0)
            yield from lock.acquire()
            yield from lock.release()
            return lock.stats.counters

        rt = make_cluster(nprocs=1)
        counters = rt.run_spmd(main)[0]
        assert counters.get("remote_requests", 0) == 0
        assert rt.fabric.stats.by_payload.get("LockRequest", 0) == 0

    def test_remote_requester_goes_through_server(self, make_cluster):
        def main(ctx):
            lock = HybridLock(ctx, home_rank=0)
            if ctx.rank == 1:
                yield from lock.acquire()
                yield from lock.release()
            yield from ctx.armci.barrier()
            return lock.stats.counters

        rt = make_cluster(nprocs=2)
        counters = rt.run_spmd(main)[1]
        assert counters.get("remote_requests") == 1
        assert rt.servers[0].stats.locks == 1

    def test_release_always_contacts_server(self, make_cluster):
        """Even a purely local lock/unlock sends the unlock message — the
        hybrid's weakness the paper calls out (§3.2.1)."""

        def main(ctx):
            lock = HybridLock(ctx, home_rank=0)
            for _ in range(3):
                yield from lock.acquire()
                yield from lock.release()
            yield ctx.compute(200)  # let the unlocks drain
            return None

        rt = make_cluster(nprocs=1)
        rt.run_spmd(main)
        assert rt.servers[0].stats.unlocks == 3

    def test_release_is_fire_and_forget(self, make_cluster):
        """Release returns without waiting for any server reply."""

        def main(ctx):
            lock = HybridLock(ctx, home_rank=1)  # remote home
            yield from lock.acquire()
            t0 = ctx.now
            yield from lock.release()
            release_time = ctx.now - t0
            yield from ctx.armci.barrier()
            return release_time

        rt = make_cluster(nprocs=2)
        release_time = rt.run_spmd(main)[0]
        p = rt.params
        # Far less than a round trip: just the api + send overhead.
        assert release_time < p.inter_latency_us

    def test_lock_passes_to_remote_waiter_via_two_messages(self, make_cluster):
        """Handoff = unlock message + grant message (2 latencies, §3.2.2)."""

        def main(ctx):
            lock = HybridLock(ctx, home_rank=0)
            if ctx.rank == 1:
                yield from lock.acquire()
                yield from ctx.comm.send(2, "i have it")
                yield ctx.compute(30)
                yield from lock.release()
            elif ctx.rank == 2:
                yield from ctx.comm.recv(source=1)
                yield from lock.acquire()
                yield from lock.release()
            yield from ctx.armci.barrier()
            return None

        rt = make_cluster(nprocs=3)
        rt.run_spmd(main)
        assert rt.servers[0].stats.grants == 2
        assert rt.servers[0].stats.unlocks == 2

    def test_two_handles_same_name_share_lock(self, make_cluster):
        main, intervals = critical_section_program("hybrid", iterations=4)
        rt = make_cluster(nprocs=2)
        rt.run_spmd(main)
        # Both ranks constructed their own handle; exclusion proves shared state.
        assert_mutual_exclusion(intervals)

    def test_distinct_names_are_independent_locks(self, make_cluster):
        def main(ctx):
            mine = HybridLock(ctx, home_rank=0, name=f"lock{ctx.rank}")
            yield from mine.acquire()
            yield ctx.compute(50)
            yield from mine.release()
            yield from ctx.armci.barrier()
            return mine.stats.acquires

        rt = make_cluster(nprocs=3)
        # Must not deadlock: each rank holds its own lock concurrently.
        assert rt.run_spmd(main) == [1, 1, 1]


class TestTiming:
    def test_acquire_stats_recorded(self, make_cluster):
        main, _ = critical_section_program("hybrid", iterations=5)
        rt = make_cluster(nprocs=2)
        locks = rt.run_spmd(main)
        for lock in locks:
            assert lock.acquire_stats().count == 5
            assert lock.release_stats().count == 5
            assert lock.total_stats().count == 5
            assert lock.total_stats().mean > lock.release_stats().mean
