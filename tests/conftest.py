"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.net.params import myrinet2000
from repro.runtime.cluster import ClusterRuntime
from repro.sim.core import Environment


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def make_cluster():
    """Factory for small cluster runtimes with overridable knobs."""

    def _make(nprocs: int = 4, **kwargs) -> ClusterRuntime:
        kwargs.setdefault("params", myrinet2000())
        return ClusterRuntime(nprocs, **kwargs)

    return _make


def run_spmd(nprocs: int, main, *args, **cluster_kwargs):
    """Convenience: build a cluster and run ``main`` on every rank."""
    cluster_kwargs.setdefault("params", myrinet2000())
    runtime = ClusterRuntime(nprocs, **cluster_kwargs)
    results = runtime.run_spmd(main, *args)
    return runtime, results
