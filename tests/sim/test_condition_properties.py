"""Property tests for composite events (AllOf/AnyOf trees)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.core import AllOf, AnyOf, Environment


def tree_strategy(max_depth=3):
    """Random and/or trees over leaf delays."""
    leaf = st.floats(min_value=0.0, max_value=100.0,
                     allow_nan=False, allow_infinity=False)

    def extend(children):
        return st.tuples(
            st.sampled_from(["all", "any"]),
            st.lists(children, min_size=1, max_size=4),
        )

    return st.recursive(leaf, extend, max_leaves=12)


def build(env, node):
    """Materialize a tree into events; return (event, predicted_fire_time)."""
    if isinstance(node, float):
        return env.timeout(node), node
    kind, children = node
    events, times = [], []
    for child in children:
        ev, t = build(env, child)
        events.append(ev)
        times.append(t)
    if kind == "all":
        return AllOf(env, events), max(times)
    return AnyOf(env, events), min(times)


@given(tree=tree_strategy())
@settings(max_examples=150, deadline=None)
def test_condition_trees_fire_at_min_max_semantics(tree):
    """An and/or tree fires exactly when the min/max algebra over its leaf
    delays says it should."""
    env = Environment()
    event, predicted = build(env, tree)
    fired_at = []
    if event.callbacks is not None:
        event.callbacks.append(lambda _ev: fired_at.append(env.now))
    else:
        fired_at.append(env.now)
    env.run()
    assert len(fired_at) == 1
    assert fired_at[0] == predicted


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=50.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=8,
    )
)
@settings(max_examples=100, deadline=None)
def test_anyof_value_contains_only_processed_events(delays):
    env = Environment()
    timeouts = [env.timeout(d, value=i) for i, d in enumerate(delays)]
    observed = {}

    def waiter():
        result = yield AnyOf(env, timeouts)
        observed["fired"] = env.now
        observed["done"] = sorted(ev.value for ev in result)

    env.process(waiter())
    env.run()
    earliest = min(delays)
    assert observed["fired"] == earliest
    # Every reported-done event had actually fired by then.
    for idx in observed["done"]:
        assert delays[idx] <= earliest


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=50.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=8,
    )
)
@settings(max_examples=100, deadline=None)
def test_allof_reports_every_event(delays):
    env = Environment()
    timeouts = [env.timeout(d, value=i) for i, d in enumerate(delays)]
    observed = {}

    def waiter():
        result = yield AllOf(env, timeouts)
        observed["fired"] = env.now
        observed["count"] = len(result)

    env.process(waiter())
    env.run()
    assert observed["fired"] == max(delays)
    assert observed["count"] == len(delays)
