"""Tests for the activity timeline / ASCII Gantt tool."""

import pytest

from repro.sim.core import Environment
from repro.sim.timeline import Interval, Timeline


@pytest.fixture
def tl(env):
    return Timeline(env)


def advance(env, dt):
    env.timeout(dt)
    env.run()


class TestIntervals:
    def test_begin_end_records(self, env, tl):
        tl.begin(0, "work")
        advance(env, 5.0)
        interval = tl.end(0)
        assert interval == Interval(0, "work", 0.0, 5.0)
        assert interval.duration == 5.0

    def test_end_without_begin_is_none(self, tl):
        assert tl.end(3) is None

    def test_begin_twice_closes_first(self, env, tl):
        tl.begin(0, "a")
        advance(env, 2.0)
        tl.begin(0, "b")
        advance(env, 3.0)
        tl.end(0)
        assert [iv.label for iv in tl.by_rank(0)] == ["a", "b"]
        assert tl.total(0, "a") == 2.0
        assert tl.total(0, "b") == 3.0

    def test_zero_duration_dropped(self, tl):
        tl.begin(0, "instant")
        tl.end(0)
        assert tl.intervals == []

    def test_close_all(self, env, tl):
        tl.begin(0, "x")
        tl.begin(1, "y")
        advance(env, 1.0)
        tl.close_all()
        assert len(tl.intervals) == 2

    def test_span(self, env, tl):
        advance(env, 2.0)
        tl.begin(0, "w")
        advance(env, 4.0)
        tl.end(0)
        assert tl.span() == (2.0, 6.0)


class TestRender:
    def test_empty(self, tl):
        assert "empty" in tl.render()

    def test_lanes_and_legend(self, env, tl):
        tl.begin(0, "compute")
        advance(env, 5.0)
        tl.begin(0, "sync")
        tl.begin(1, "compute")
        advance(env, 5.0)
        tl.close_all()
        art = tl.render(width=20)
        assert "r0  |" in art and "r1  |" in art
        assert "=compute" in art or "compute" in art
        lanes = [line for line in art.splitlines() if line.startswith("r")]
        assert len(lanes) == 2
        assert all(len(line) == len(lanes[0]) for line in lanes)

    def test_glyphs_distinguish_labels(self, env, tl):
        tl.begin(0, "alpha")
        advance(env, 5.0)
        tl.begin(0, "beta")
        advance(env, 5.0)
        tl.close_all()
        art = tl.render(width=10)
        lane = [line for line in art.splitlines() if line.startswith("r0")][0]
        body = lane.split("|")[1]
        assert len(set(body)) == 2  # two distinct glyphs

    def test_integration_with_cluster(self, make_cluster):
        """Record a real barrier's phases across ranks."""
        from repro.mp import collectives
        from repro.sim.timeline import Timeline

        rt = make_cluster(nprocs=4)
        tl = Timeline(rt.env)

        def main(ctx):
            tl.begin(ctx.rank, "compute")
            yield ctx.compute(10.0 * (ctx.rank + 1))
            tl.begin(ctx.rank, "barrier")
            yield from collectives.barrier(ctx.comm)
            tl.end(ctx.rank)

        rt.run_spmd(main)
        art = tl.render(width=60)
        assert art.count("|") == 8  # 4 lanes x 2 bars
        # Rank 0 computes least, so its barrier wait is the longest.
        assert tl.total(0, "barrier") > tl.total(3, "barrier")
