"""Unit tests for Store, FilterStore, Resource, and Broadcast."""

import pytest

from repro.sim.core import SimulationError
from repro.sim.primitives import Broadcast, FilterStore, Resource, Store


class TestStore:
    def test_put_then_get_immediate(self, env):
        store = Store(env)
        store.put("a")
        ev = store.get()
        assert ev.triggered and ev.value == "a"

    def test_items_fifo(self, env):
        store = Store(env)
        for item in ("a", "b", "c"):
            store.put(item)
        got = [store.get().value for _ in range(3)]
        assert got == ["a", "b", "c"]

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        results = []

        def getter():
            item = yield store.get()
            results.append((env.now, item))

        def putter():
            yield env.timeout(5)
            store.put("late")

        env.process(getter())
        env.process(putter())
        env.run()
        assert results == [(5.0, "late")]

    def test_waiters_served_fifo(self, env):
        store = Store(env)
        served = []

        def getter(tag):
            item = yield store.get()
            served.append((tag, item))

        for tag in ("first", "second"):
            env.process(getter(tag))

        def putter():
            yield env.timeout(1)
            store.put(1)
            store.put(2)

        env.process(putter())
        env.run()
        assert served == [("first", 1), ("second", 2)]

    def test_try_get_nonblocking(self, env):
        store = Store(env)
        assert store.try_get() is None
        store.put("x")
        assert store.try_get() == "x"
        assert store.try_get() is None

    def test_len_and_counters(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2 and store.total_put == 2
        store.get()
        assert len(store) == 1

    def test_idle_waiters(self, env):
        store = Store(env)
        assert store.idle_waiters == 0

        def getter():
            yield store.get()

        env.process(getter())
        env.run()  # drains; getter still blocked
        assert store.idle_waiters == 1


class TestFilterStore:
    def test_predicate_selects_item(self, env):
        fs = FilterStore(env)
        fs.put(1)
        fs.put(2)
        fs.put(3)
        ev = fs.get(lambda x: x % 2 == 0)
        assert ev.triggered and ev.value == 2
        assert fs.items == [1, 3]

    def test_first_match_in_arrival_order(self, env):
        fs = FilterStore(env)
        fs.put("b1")
        fs.put("a1")
        fs.put("b2")
        ev = fs.get(lambda x: x.startswith("b"))
        assert ev.value == "b1"

    def test_blocked_getter_woken_by_matching_put(self, env):
        fs = FilterStore(env)
        got = []

        def getter():
            item = yield fs.get(lambda x: x == "wanted")
            got.append((env.now, item))

        def putter():
            yield env.timeout(1)
            fs.put("other")
            yield env.timeout(1)
            fs.put("wanted")

        env.process(getter())
        env.process(putter())
        env.run()
        assert got == [(2.0, "wanted")]
        assert fs.items == ["other"]

    def test_item_offered_to_waiters_in_order(self, env):
        fs = FilterStore(env)
        got = []

        def getter(tag, pred):
            item = yield fs.get(pred)
            got.append((tag, item))

        env.process(getter("evens", lambda x: x % 2 == 0))
        env.process(getter("any", lambda x: True))

        def putter():
            yield env.timeout(1)
            fs.put(3)  # skips "evens", matches "any"
            fs.put(4)  # matches "evens"

        env.process(putter())
        env.run()
        assert sorted(got) == [("any", 3), ("evens", 4)]

    def test_try_get(self, env):
        fs = FilterStore(env)
        assert fs.try_get(lambda x: True) is None
        fs.put(10)
        assert fs.try_get(lambda x: x > 5) == 10
        fs.put(1)
        assert fs.try_get(lambda x: x > 5) is None
        assert len(fs) == 1


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_acquire_within_capacity_immediate(self, env):
        res = Resource(env, capacity=2)
        assert res.acquire().triggered
        assert res.acquire().triggered
        assert res.in_use == 2

    def test_acquire_beyond_capacity_blocks(self, env):
        res = Resource(env, capacity=1)
        res.acquire()
        second = res.acquire()
        assert not second.triggered
        res.release()
        assert second.triggered

    def test_release_idle_raises(self, env):
        res = Resource(env)
        with pytest.raises(SimulationError, match="release of idle"):
            res.release()

    def test_fifo_granting(self, env):
        res = Resource(env, capacity=1)
        order = []

        def user(tag, hold):
            yield res.acquire()
            order.append((tag, env.now))
            yield env.timeout(hold)
            res.release()

        for tag, hold in (("a", 5), ("b", 3), ("c", 1)):
            env.process(user(tag, hold))
        env.run()
        assert order == [("a", 0.0), ("b", 5.0), ("c", 8.0)]

    def test_hold_helper_serializes(self, env):
        res = Resource(env, capacity=1)
        spans = []

        def user():
            start = env.now
            yield from res.hold(4.0)
            spans.append((start, env.now))

        env.process(user())
        env.process(user())
        env.run()
        assert spans == [(0.0, 4.0), (0.0, 8.0)]

    def test_queued_count(self, env):
        res = Resource(env, capacity=1)
        res.acquire()
        res.acquire()
        res.acquire()
        assert res.queued == 2


class TestBroadcast:
    def test_fire_wakes_all_waiters(self, env):
        bc = Broadcast(env)
        woken = []

        def waiter(tag):
            value = yield bc.wait()
            woken.append((tag, value, env.now))

        env.process(waiter("a"))
        env.process(waiter("b"))

        def firer():
            yield env.timeout(3)
            assert bc.fire("v") == 2

        env.process(firer())
        env.run()
        assert sorted(woken) == [("a", "v", 3.0), ("b", "v", 3.0)]

    def test_fire_without_waiters_returns_zero(self, env):
        bc = Broadcast(env)
        assert bc.fire() == 0
        assert bc.fired == 1

    def test_rearm_after_fire(self, env):
        bc = Broadcast(env)
        times = []

        def repeat_waiter():
            for _ in range(2):
                yield bc.wait()
                times.append(env.now)

        def firer():
            yield env.timeout(1)
            bc.fire()
            yield env.timeout(1)
            bc.fire()

        env.process(repeat_waiter())
        env.process(firer())
        env.run()
        assert times == [1.0, 2.0]

    def test_late_waiter_misses_earlier_fire(self, env):
        bc = Broadcast(env)
        woken = []

        def late_waiter():
            yield env.timeout(5)
            yield bc.wait()
            woken.append(env.now)

        def firer():
            yield env.timeout(1)
            bc.fire()
            yield env.timeout(9)
            bc.fire()

        env.process(late_waiter())
        env.process(firer())
        env.run()
        assert woken == [10.0]

    def test_waiting_count(self, env):
        bc = Broadcast(env)
        bc.wait()
        bc.wait()
        assert bc.waiting == 2
        bc.fire()
        assert bc.waiting == 0
