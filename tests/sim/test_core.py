"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    StopProcess,
    Timeout,
    PRIORITY_LAZY,
    PRIORITY_URGENT,
)


class TestEnvironmentClock:
    def test_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=42.5).now == 42.5

    def test_run_until_time_advances_clock(self, env):
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_until_past_time_raises(self, env):
        env.run(until=5.0)
        with pytest.raises(ValueError, match="in the past"):
            env.run(until=1.0)

    def test_peek_empty_queue_is_inf(self, env):
        assert env.peek() == float("inf")

    def test_peek_returns_next_event_time(self, env):
        env.timeout(3.5)
        assert env.peek() == 3.5

    def test_events_processed_counter(self, env):
        env.timeout(1)
        env.timeout(2)
        env.run()
        assert env.events_processed == 2


class TestTimeout:
    def test_fires_after_delay(self, env):
        fired = []
        t = env.timeout(5.0, value="x")
        t.callbacks.append(lambda ev: fired.append((env.now, ev.value)))
        env.run()
        assert fired == [(5.0, "x")]

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError, match="negative delay"):
            env.timeout(-1.0)

    def test_zero_delay_fires_now(self, env):
        t = env.timeout(0.0)
        env.run()
        assert t.processed and env.now == 0.0

    def test_timeouts_fire_in_time_order(self, env):
        order = []
        for delay in (3.0, 1.0, 2.0):
            t = env.timeout(delay, value=delay)
            t.callbacks.append(lambda ev: order.append(ev.value))
        env.run()
        assert order == [1.0, 2.0, 3.0]

    def test_fifo_among_equal_times(self, env):
        order = []
        for tag in "abc":
            t = env.timeout(1.0, value=tag)
            t.callbacks.append(lambda ev: order.append(ev.value))
        env.run()
        assert order == ["a", "b", "c"]

    def test_priority_beats_fifo_at_same_time(self, env):
        order = []
        normal = Event(env)
        normal.succeed("normal")
        urgent = Event(env)
        urgent._ok = True
        urgent._value = "urgent"
        env.schedule(urgent, 0.0, PRIORITY_URGENT)
        lazy = Event(env)
        lazy._ok = True
        lazy._value = "lazy"
        env.schedule(lazy, 0.0, PRIORITY_LAZY)
        for ev in (normal, urgent, lazy):
            ev.callbacks.append(lambda e: order.append(e.value))
        env.run()
        assert order == ["urgent", "normal", "lazy"]


class TestEvent:
    def test_initially_pending(self, env):
        ev = env.event()
        assert not ev.triggered and not ev.processed

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            env.event().value

    def test_ok_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            env.event().ok

    def test_succeed_sets_value(self, env):
        ev = env.event().succeed(7)
        assert ev.triggered and ev.ok and ev.value == 7

    def test_double_succeed_raises(self, env):
        ev = env.event().succeed()
        with pytest.raises(SimulationError, match="already been triggered"):
            ev.succeed()

    def test_fail_then_succeed_raises(self, env):
        ev = env.event()
        ev.fail(RuntimeError("boom"))
        ev._defused = True
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_unhandled_failure_propagates_from_run(self, env):
        env.event().fail(RuntimeError("nobody caught me"))
        with pytest.raises(RuntimeError, match="nobody caught me"):
            env.run()

    def test_trigger_copies_outcome(self, env):
        src = env.event().succeed("payload")
        dst = env.event()
        dst.trigger(src)
        assert dst.triggered and dst.value == "payload"

    def test_trigger_from_pending_raises(self, env):
        with pytest.raises(SimulationError):
            env.event().trigger(env.event())


class TestProcess:
    def test_return_value_is_event_value(self, env):
        def proc():
            yield env.timeout(1)
            return 99

        p = env.process(proc())
        env.run()
        assert p.value == 99

    def test_is_alive_transitions(self, env):
        def proc():
            yield env.timeout(5)

        p = env.process(proc())
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_join_another_process(self, env):
        def worker():
            yield env.timeout(3)
            return "done"

        def waiter(wp):
            result = yield wp
            return (env.now, result)

        wp = env.process(worker())
        joiner = env.process(waiter(wp))
        env.run()
        assert joiner.value == (3.0, "done")

    def test_exception_propagates_to_run(self, env):
        def bad():
            yield env.timeout(1)
            raise ValueError("inside process")

        env.process(bad())
        with pytest.raises(ValueError, match="inside process"):
            env.run()

    def test_exception_catchable_by_joiner(self, env):
        def bad():
            yield env.timeout(1)
            raise ValueError("caught me")

        def joiner(bp):
            try:
                yield bp
            except ValueError as exc:
                return str(exc)

        bp = env.process(bad())
        jp = env.process(joiner(bp))
        env.run()
        assert jp.value == "caught me"

    def test_stop_process_returns_value(self, env):
        def proc():
            yield env.timeout(1)
            raise StopProcess("early")
            yield env.timeout(100)  # pragma: no cover

        p = env.process(proc())
        env.run()
        assert p.value == "early" and env.now == 1.0

    def test_yield_non_event_raises(self, env):
        def proc():
            yield 42

        env.process(proc())
        with pytest.raises(SimulationError, match="not.*an Event|not an Event"):
            env.run()

    def test_yield_processed_event_resumes_immediately(self, env):
        done = env.event().succeed("v")

        def proc():
            # run one step so `done` gets processed first
            yield env.timeout(1)
            value = yield done
            return (env.now, value)

        p = env.process(proc())
        env.run()
        assert p.value == (1.0, "v")

    def test_yield_from_composition(self, env):
        def inner():
            yield env.timeout(2)
            return 10

        def outer():
            a = yield from inner()
            b = yield from inner()
            return a + b

        p = env.process(outer())
        env.run()
        assert p.value == 20 and env.now == 4.0

    def test_process_name_default_and_custom(self, env):
        def named():
            yield env.timeout(0)

        p1 = env.process(named())
        p2 = env.process(named(), name="custom")
        assert p1.name == "named" and p2.name == "custom"
        env.run()

    def test_non_generator_rejected(self, env):
        with pytest.raises(TypeError):
            Process(env, lambda: None)


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        def sleeper():
            try:
                yield env.timeout(100)
            except Interrupt as exc:
                return ("interrupted", exc.cause, env.now)

        def interrupter(target):
            yield env.timeout(5)
            target.interrupt("wakeup")

        p = env.process(sleeper())
        env.process(interrupter(p))
        env.run()
        assert p.value == ("interrupted", "wakeup", 5.0)

    def test_interrupted_process_can_continue(self, env):
        def sleeper():
            try:
                yield env.timeout(100)
            except Interrupt:
                pass
            yield env.timeout(10)
            return env.now

        def interrupter(target):
            yield env.timeout(5)
            target.interrupt()

        p = env.process(sleeper())
        env.process(interrupter(p))
        env.run()
        assert p.value == 15.0

    def test_interrupted_target_firing_later_does_not_resume_twice(self, env):
        resumes = []

        def sleeper():
            try:
                yield env.timeout(100)
            except Interrupt:
                resumes.append(("interrupt", env.now))
            yield env.timeout(200)
            resumes.append(("final", env.now))

        def interrupter(target):
            yield env.timeout(5)
            target.interrupt()

        p = env.process(sleeper())
        env.process(interrupter(p))
        env.run()
        # The original 100us timeout still fires at t=100 but must not
        # resume the process again; the process continues on its own clock.
        assert resumes == [("interrupt", 5.0), ("final", 205.0)]

    def test_self_interrupt_rejected(self, env):
        def proc():
            me = env.active_process
            with pytest.raises(SimulationError, match="cannot interrupt itself"):
                me.interrupt()
            yield env.timeout(0)

        env.process(proc())
        env.run()

    def test_interrupt_dead_process_raises(self, env):
        def quick():
            yield env.timeout(1)

        p = env.process(quick())
        env.run()
        with pytest.raises(SimulationError, match="terminated"):
            p.interrupt()


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        t1, t2 = env.timeout(1, "a"), env.timeout(5, "b")

        def proc():
            result = yield AllOf(env, [t1, t2])
            return (env.now, result[t1], result[t2])

        p = env.process(proc())
        env.run()
        assert p.value == (5.0, "a", "b")

    def test_any_of_fires_on_first(self, env):
        t1, t2 = env.timeout(1, "fast"), env.timeout(5, "slow")

        def proc():
            result = yield AnyOf(env, [t1, t2])
            return (env.now, t1 in result, t2 in result)

        p = env.process(proc())
        env.run()
        assert p.value == (1.0, True, False)

    def test_empty_all_of_succeeds_immediately(self, env):
        cond = AllOf(env, [])
        assert cond.triggered

    def test_and_operator(self, env):
        t1, t2 = env.timeout(2), env.timeout(3)

        def proc():
            yield t1 & t2
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == 3.0

    def test_or_operator(self, env):
        t1, t2 = env.timeout(2), env.timeout(3)

        def proc():
            yield t1 | t2
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == 2.0

    def test_condition_failure_propagates(self, env):
        bad = env.event()

        def failer():
            yield env.timeout(1)
            bad.fail(RuntimeError("cond fail"))

        def waiter():
            try:
                yield AllOf(env, [bad, env.timeout(100)])
            except RuntimeError as exc:
                return str(exc)

        env.process(failer())
        p = env.process(waiter())
        env.run()
        assert p.value == "cond fail"

    def test_condition_value_mapping(self, env):
        t1 = env.timeout(1, "x")

        def proc():
            result = yield AllOf(env, [t1])
            assert len(result) == 1
            assert list(result) == [t1]
            assert result.todict() == {t1: "x"}
            return result[t1]

        p = env.process(proc())
        env.run()
        assert p.value == "x"

    def test_cross_environment_event_rejected(self, env):
        other = Environment()
        t = other.timeout(1)
        with pytest.raises(SimulationError):
            AllOf(env, [t])


class TestRunUntil:
    def test_run_until_event_returns_value(self, env):
        def proc():
            yield env.timeout(4)
            return "finished"

        p = env.process(proc())
        assert env.run(until=p) == "finished"
        assert env.now == 4.0

    def test_run_until_event_stops_early(self, env):
        env.timeout(100)  # later noise

        def proc():
            yield env.timeout(4)

        p = env.process(proc())
        env.run(until=p)
        assert env.now == 4.0

    def test_run_until_never_firing_event_raises(self, env):
        ev = env.event()  # nobody will trigger it
        env.timeout(1)
        with pytest.raises(SimulationError, match="deadlock"):
            env.run(until=ev)

    def test_run_until_already_processed_event(self, env):
        ev = env.event().succeed("done")
        env.run()
        assert env.run(until=ev) == "done"

    def test_run_until_failed_event_raises(self, env):
        def proc():
            yield env.timeout(1)
            raise KeyError("oops")

        p = env.process(proc())
        with pytest.raises(KeyError):
            env.run(until=p)


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build_and_run():
            env = Environment()
            trace = []

            def worker(wid):
                for i in range(3):
                    yield env.timeout(1.5 * (wid + 1))
                    trace.append((env.now, wid, i))

            for w in range(4):
                env.process(worker(w))
            env.run()
            return trace

        assert build_and_run() == build_and_run()


class TestCoEnabledOrderingContract:
    """The documented co-enabled ordering contract (see the module docstring).

    Events are keyed ``(time, priority, seq)``; ``seq`` is assigned once
    per scheduling in program order with no gaps or reuse, and co-enabled
    events (equal ``(time, priority)``) resolve FIFO by ``seq``.  The
    controlled-scheduler hook with the default strategy must reproduce
    this order byte-for-byte.
    """

    def test_seq_is_monotonic_and_gapless(self, env):
        before = env._seq
        for _ in range(5):
            env.timeout(1.0)
        assert env._seq == before + 5

    def test_rescheduling_consumes_fresh_seq(self, env):
        ev = Event(env)
        ev.succeed()
        seq_after_first = env._seq
        ev2 = Event(env)
        ev2.succeed()
        assert env._seq == seq_after_first + 1

    @staticmethod
    def _trace_run(strategy_factory):
        from repro.sim.core import SchedulerStrategy

        class Env(Environment):
            pass

        Env.strategy_factory = strategy_factory
        env = Env()
        trace = []

        def worker(wid):
            # Deliberate exact ties: every worker fires at the same times.
            for i in range(4):
                yield env.timeout(2.0)
                trace.append((env.now, wid, i))

        for w in range(5):
            env.process(worker(w))
        env.run()
        return trace

    def test_default_strategy_is_byte_identical_to_fifo(self):
        from repro.sim.core import SchedulerStrategy

        baseline = self._trace_run(None)
        controlled = self._trace_run(SchedulerStrategy)
        assert controlled == baseline

    def test_default_strategy_choose_picks_queue_head(self):
        from repro.sim.core import SchedulerStrategy

        s = SchedulerStrategy()
        assert s.window == 0.0
        assert s.choose(0.0, [object(), object()]) == 0
