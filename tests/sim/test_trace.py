"""Unit tests for stopwatches, sample statistics, and the tracer."""

import math

import pytest

from repro.sim.core import Environment
from repro.sim.trace import SampleStats, Stopwatch, Tracer


class TestStopwatch:
    def test_records_interval(self, env):
        sw = Stopwatch(env)

        def proc():
            sw.start()
            yield env.timeout(7.5)
            assert sw.stop() == 7.5

        env.process(proc())
        env.run()
        assert sw.samples == [7.5]

    def test_double_start_raises(self, env):
        sw = Stopwatch(env)
        sw.start()
        with pytest.raises(RuntimeError, match="already running"):
            sw.start()

    def test_stop_without_start_raises(self, env):
        with pytest.raises(RuntimeError, match="not running"):
            Stopwatch(env).stop()

    def test_stop_after_discard_raises(self, env):
        sw = Stopwatch(env)
        sw.start()
        sw.discard()
        with pytest.raises(RuntimeError, match="not running"):
            sw.stop()

    def test_double_stop_raises(self, env):
        sw = Stopwatch(env)
        sw.start()
        sw.stop()
        with pytest.raises(RuntimeError, match="not running"):
            sw.stop()

    def test_discard_drops_interval(self, env):
        sw = Stopwatch(env)
        sw.start()
        sw.discard()
        assert sw.samples == [] and not sw.running

    def test_running_property(self, env):
        sw = Stopwatch(env)
        assert not sw.running
        sw.start()
        assert sw.running

    def test_reset_clears_samples(self, env):
        sw = Stopwatch(env)
        sw.start()
        sw.stop()
        sw.reset()
        assert sw.samples == [] and not sw.running

    def test_multiple_samples_and_mean(self, env):
        sw = Stopwatch(env)

        def proc():
            for d in (1.0, 2.0, 3.0):
                sw.start()
                yield env.timeout(d)
                sw.stop()

        env.process(proc())
        env.run()
        assert sw.mean() == 2.0


class TestSampleStats:
    def test_empty(self):
        stats = SampleStats.from_samples([])
        assert stats.count == 0
        assert math.isnan(stats.mean)
        assert stats.total == 0.0

    def test_basic_statistics(self):
        stats = SampleStats.from_samples([2.0, 4.0, 6.0])
        assert stats.count == 3
        assert stats.mean == 4.0
        assert stats.minimum == 2.0
        assert stats.maximum == 6.0
        assert stats.total == 12.0
        # Sample (n-1) variance: ((2-4)^2 + 0 + (6-4)^2) / 2 = 4.
        assert stats.stddev == pytest.approx(2.0)

    def test_single_sample(self):
        stats = SampleStats.from_samples([5.0])
        assert stats.stddev == 0.0 and stats.mean == 5.0

    def test_two_samples(self):
        stats = SampleStats.from_samples([1.0, 3.0])
        assert stats.stddev == pytest.approx(math.sqrt(2.0))


class TestTracer:
    def test_records_processed_events(self):
        env = Environment()
        tracer = Tracer()
        tracer.install(env)
        env.timeout(1.0)
        env.timeout(2.0)
        env.run()
        assert len(tracer.records) == 2
        assert [r.time for r in tracer.records] == [1.0, 2.0]
        assert all(r.kind == "Timeout" for r in tracer.records)

    def test_of_kind_and_between(self):
        env = Environment()
        tracer = Tracer()
        tracer.install(env)

        def proc():
            yield env.timeout(3.0)

        env.process(proc())
        env.run()
        assert len(tracer.of_kind("Timeout")) == 1
        assert len(tracer.between(2.0, 4.0)) >= 1

    def test_limit_caps_records(self):
        env = Environment()
        tracer = Tracer(limit=3)
        tracer.install(env)
        for i in range(10):
            env.timeout(i)
        env.run()
        assert len(tracer.records) == 3

    def test_of_kind_filters_exactly(self):
        env = Environment()
        tracer = Tracer()
        tracer.install(env)
        env.timeout(1.0)
        env.run()
        assert tracer.of_kind("Timeout")
        assert tracer.of_kind("NoSuchKind") == []

    def test_between_is_inclusive(self):
        env = Environment()
        tracer = Tracer()
        tracer.install(env)
        for t in (1.0, 2.0, 3.0):
            env.timeout(t)
        env.run()
        assert [r.time for r in tracer.between(1.0, 2.0)] == [1.0, 2.0]
        assert tracer.between(3.5, 9.0) == []


class TestStructuredEvents:
    def test_events_of_filters_by_kind(self):
        from repro.analysis.events import ProtoEvent

        tracer = Tracer()
        tracer.emit(ProtoEvent(kind="issue", time=1.0, actor="p0", data={}))
        tracer.emit(ProtoEvent(kind="apply", time=2.0, actor="s0", data={}))
        tracer.emit(ProtoEvent(kind="issue", time=3.0, actor="p1", data={}))
        assert [e.actor for e in tracer.events_of("issue")] == ["p0", "p1"]
        assert tracer.events_of("fence_done") == []

    def test_event_limit_caps_events(self):
        from repro.analysis.events import ProtoEvent

        tracer = Tracer(event_limit=2)
        for i in range(5):
            tracer.emit(ProtoEvent(kind="issue", time=float(i), actor="p0", data={}))
        assert len(tracer.events) == 2

    def test_dump_jsonl(self, tmp_path):
        import json

        from repro.analysis.events import ProtoEvent

        tracer = Tracer()
        tracer.emit(
            ProtoEvent(kind="issue", time=1.5, actor="p0", data={"op": "put"})
        )
        path = tmp_path / "trace.jsonl"
        n = tracer.dump_jsonl(str(path), header={"run": 1})
        assert n == 1
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0] == {"run": 1}
        assert lines[1]["kind"] == "issue" and lines[1]["op"] == "put"
