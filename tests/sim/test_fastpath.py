"""Regression tests for the kernel fast paths (see docs/performance.md).

These pin the *semantic* contracts of the perf work: O(1) completion
tracking in wide conditions, no shim-event allocation when a process
yields an already-processed event, slab reuse invisibility, and the
``run(until=...)`` edge cases the inlined run loop must preserve.
"""

import pytest

from repro.sim.core import (
    AllOf,
    Environment,
    Event,
    SimulationError,
    Timeout,
)


@pytest.fixture
def env():
    return Environment()


class TestWideAllOf:
    """Condition._check builds the done-list incrementally (no rescans)."""

    def test_wide_allof_completes_with_all_values(self, env):
        n = 2000
        events = [env.event() for _ in range(n)]
        cond = AllOf(env, events)
        for i, ev in enumerate(events):
            ev.succeed(i)
        env.run()
        assert cond.processed
        value = cond.value
        assert len(value) == n
        assert [value[ev] for ev in events] == list(range(n))

    def test_done_list_is_in_completion_order(self, env):
        events = [env.event() for _ in range(5)]
        cond = AllOf(env, events)
        # Trigger in scrambled order; completion order follows trigger order
        # (same time, FIFO by schedule sequence).
        order = [3, 0, 4, 1, 2]
        for i in order:
            events[i].succeed(i)
        env.run()
        assert list(cond.value) == [events[i] for i in order]

    def test_completion_count_tracked_incrementally(self, env):
        events = [env.event() for _ in range(8)]
        cond = AllOf(env, events)
        for ev in events[:3]:
            ev.succeed()
        env.run()
        # 3 sub-events processed, condition still pending: the incremental
        # counter has seen exactly the processed ones.
        assert cond._count == 3
        assert len(cond._done) == 3
        assert not cond.triggered

    def test_failure_still_propagates_first(self, env):
        events = [env.event() for _ in range(10)]
        cond = AllOf(env, events)
        events[0].succeed(0)
        boom = RuntimeError("boom")
        events[1].fail(boom)
        with pytest.raises(RuntimeError):
            env.run()
        assert cond.triggered and not cond._ok
        assert cond.value is boom


class TestFastResume:
    """Yielding a processed event must not allocate a shim queue entry."""

    def test_yield_processed_event_adds_no_queue_entries(self, env):
        done = env.event()
        done.succeed(41)
        env.run()
        assert done.processed
        base_seq = env._seq
        results = []

        def proc():
            value = yield done
            results.append(value)

        env.process(proc())
        env.run()
        assert results == [41]
        # Exactly two schedules: the Initialize event and the process's own
        # completion event.  A shim Event for the processed target would
        # make it three.
        assert env._seq - base_seq == 2

    def test_chain_of_processed_events_resumes_in_one_wakeup(self, env):
        first, second, third = env.event(), env.event(), env.event()
        for i, ev in enumerate((first, second, third)):
            ev.succeed(i)
        env.run()
        base_processed = env.events_processed
        base_seq = env._seq
        seen = []

        def proc():
            seen.append((yield first))
            seen.append((yield second))
            seen.append((yield third))

        env.process(proc())
        env.run()
        assert seen == [0, 1, 2]
        # Still only Initialize + completion, regardless of chain length.
        assert env._seq - base_seq == 2
        assert env.events_processed - base_processed == 2

    def test_failed_processed_event_still_raises_in_process(self, env):
        failed = env.event()
        failed.fail(ValueError("nope"))
        failed._defused = True
        env.run()
        caught = []

        def proc():
            try:
                yield failed
            except ValueError as exc:
                caught.append(exc)

        env.process(proc())
        env.run()
        assert len(caught) == 1


class TestSlabReuse:
    """Recycled Event/Timeout objects are indistinguishable from fresh ones."""

    def test_timeout_values_survive_reuse(self, env):
        total = []

        def proc():
            for i in range(3000):
                value = yield env.timeout(1.0, value=i)
                total.append(value)

        env.process(proc())
        env.run()
        assert total == list(range(3000))
        assert env.now == 3000.0

    def test_pool_capped(self, env):
        def proc():
            for _ in range(5000):
                yield env.timeout(0.0)

        env.process(proc())
        env.run()
        assert len(env._timeout_pool) <= 1024
        assert len(env._event_pool) <= 1024

    def test_held_event_is_not_recycled(self, env):
        held = env.event()
        held.succeed("keep")
        env.run()
        # Someone still references `held`, so it must not be on the free
        # list: a fresh event must be a different object.
        fresh = env.event()
        assert fresh is not held
        assert held.value == "keep"


class TestRunUntilEdgeCases:
    def test_until_equal_to_now_processes_current_instant(self, env):
        fired = []
        env.timeout(0.0).callbacks.append(lambda ev: fired.append("now"))
        env.timeout(1.0).callbacks.append(lambda ev: fired.append("later"))
        env.run(until=env.now)
        assert fired == ["now"]
        assert env.now == 0.0

    def test_until_already_failed_event_raises(self, env):
        failed = env.event()
        failed.fail(RuntimeError("already failed"))
        failed._defused = True
        env.run()
        assert failed.processed and not failed._ok
        with pytest.raises(RuntimeError, match="already failed"):
            env.run(until=failed)

    def test_until_already_succeeded_event_returns_value(self, env):
        done = env.event()
        done.succeed("ready")
        env.run()
        assert env.run(until=done) == "ready"

    def test_queue_draining_exactly_at_stop_at(self, env):
        fired = []
        env.timeout(5.0).callbacks.append(lambda ev: fired.append(5.0))
        env.run(until=5.0)
        # The event at exactly stop_at is processed and the clock lands on
        # stop_at, not beyond it.
        assert fired == [5.0]
        assert env.now == 5.0
        assert env.peek() == float("inf")

    def test_drained_queue_advances_clock_to_stop_at(self, env):
        env.timeout(1.0)
        env.run(until=10.0)
        assert env.now == 10.0

    def test_until_in_the_past_rejected(self, env):
        env.timeout(3.0)
        env.run()
        assert env.now == 3.0
        with pytest.raises(ValueError):
            env.run(until=1.0)

    def test_awaited_event_never_firing_is_deadlock(self, env):
        never = env.event()
        with pytest.raises(SimulationError):
            env.run(until=never)
