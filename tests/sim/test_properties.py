"""Property-based tests for the simulation kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.core import Environment
from repro.sim.primitives import Broadcast, FilterStore, Store


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=60))
@settings(max_examples=120)
def test_events_processed_in_nondecreasing_time_order(delays):
    """Whatever delays are scheduled, processing order is by time then FIFO."""
    env = Environment()
    order = []
    for idx, delay in enumerate(delays):
        t = env.timeout(delay, value=(delay, idx))
        t.callbacks.append(lambda ev: order.append(ev.value))
    env.run()
    assert len(order) == len(delays)
    # Non-decreasing in time; FIFO among equal times.
    assert order == sorted(order, key=lambda pair: (pair[0], pair[1]))


@given(items=st.lists(st.integers(), max_size=50),
       interleave=st.lists(st.booleans(), max_size=50))
@settings(max_examples=100)
def test_store_preserves_fifo_under_any_interleaving(items, interleave):
    """Puts and gets in any interleaving never reorder items."""
    env = Environment()
    store = Store(env)
    received = []
    pending = list(items)

    def consumer(n):
        for _ in range(n):
            item = yield store.get()
            received.append(item)

    env.process(consumer(len(items)))

    def producer():
        for i, item in enumerate(pending):
            gap = 1.0 if (i < len(interleave) and interleave[i]) else 0.0
            if gap:
                yield env.timeout(gap)
            store.put(item)
        yield env.timeout(0)

    env.process(producer())
    env.run()
    assert received == items


@given(data=st.data(), n_items=st.integers(min_value=0, max_value=30))
@settings(max_examples=60)
def test_filterstore_never_loses_or_duplicates(data, n_items):
    """Every put item is consumed exactly once across selective getters."""
    env = Environment()
    fs = FilterStore(env)
    items = list(range(n_items))
    mods = data.draw(st.lists(st.integers(min_value=2, max_value=5),
                              min_size=0, max_size=5))
    taken = []

    def getter(mod):
        while True:
            ev = fs.get(lambda x, m=mod: x % m == 0)
            item = yield ev
            taken.append(item)

    for mod in mods:
        env.process(getter(mod))

    def putter():
        for item in items:
            store_delay = 0.5
            yield env.timeout(store_delay)
            fs.put(item)

    env.process(putter())
    env.run()
    # taken items are unique, and together with leftovers cover all items
    assert len(taken) == len(set(taken))
    assert sorted(taken + fs.items) == items


@given(waves=st.lists(st.integers(min_value=0, max_value=8),
                      min_size=1, max_size=8))
@settings(max_examples=60)
def test_broadcast_wakes_exactly_registered_waiters(waves):
    """Each fire wakes exactly the waiters registered before it."""
    env = Environment()
    bc = Broadcast(env)
    woken_per_wave = []

    def run_wave(n_waiters):
        done = []

        def waiter():
            yield bc.wait()
            done.append(1)

        for _ in range(n_waiters):
            env.process(waiter())
        yield env.timeout(1.0)
        count = bc.fire()
        yield env.timeout(1.0)
        woken_per_wave.append((count, len(done)))

    def driver():
        for n in waves:
            yield from run_wave(n)

    env.process(driver())
    env.run()
    assert woken_per_wave == [(n, n) for n in waves]
