"""Protocol-dataclass tests: the wire format between clients and servers."""

import pytest

from repro.armci.requests import (
    AccRequest,
    FenceRequest,
    GetRequest,
    LockRequest,
    PutRequest,
    RmwRequest,
    UnlockRequest,
    RMW_OPS,
)


class TestPutRequest:
    def test_contiguous_total_cells(self):
        req = PutRequest(src_rank=0, dst_rank=1, addr=4, values=[1, 2, 3])
        assert req.total_cells() == 3
        assert req.segments is None

    def test_segmented_total_cells(self):
        req = PutRequest(
            src_rank=0, dst_rank=1,
            segments=[(0, [1, 2]), (10, [3]), (20, [4, 5, 6])],
        )
        assert req.total_cells() == 6

    def test_defaults(self):
        req = PutRequest(src_rank=0, dst_rank=1)
        assert req.values == [] and req.ack is None
        assert req.total_cells() == 0


class TestGetRequest:
    def test_contiguous_total(self):
        assert GetRequest(src_rank=0, dst_rank=1, addr=0, count=5).total_cells() == 5

    def test_segmented_total(self):
        req = GetRequest(src_rank=0, dst_rank=1, segments=[(0, 2), (8, 3)])
        assert req.total_cells() == 5


class TestRmwRequest:
    @pytest.mark.parametrize("op", RMW_OPS)
    def test_all_known_ops_construct(self, op):
        RmwRequest(src_rank=0, dst_rank=1, addr=0, op=op)

    def test_unknown_op_rejected_eagerly(self):
        with pytest.raises(ValueError, match="known"):
            RmwRequest(src_rank=0, dst_rank=1, addr=0, op="xor")

    def test_op_set_covers_paper_additions(self):
        """§3.2.2: pair operations and compare&swap were added for the
        software queuing lock's (rank, address) pointers."""
        assert {"swap_pair", "cas_pair", "cas"} <= set(RMW_OPS)


class TestControlRequests:
    def test_fence_request_fields(self):
        req = FenceRequest(src_rank=3)
        assert req.src_rank == 3 and req.reply is None

    def test_lock_unlock_pairing(self):
        lock = LockRequest(src_rank=1, home_rank=0, base_addr=8)
        unlock = UnlockRequest(src_rank=1, home_rank=0, base_addr=8)
        assert (lock.home_rank, lock.base_addr) == (
            unlock.home_rank, unlock.base_addr
        )

    def test_acc_defaults(self):
        req = AccRequest(src_rank=0, dst_rank=1, addr=0, values=[1.0])
        assert req.scale == 1 and req.ack is None
