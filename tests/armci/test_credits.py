"""Tests for GM/LAPI/VIA-style sender flow control (send credits)."""

import pytest

from repro.net.params import myrinet2000
from repro.runtime.memory import GlobalAddress


def credit_params(n, **kw):
    return myrinet2000(send_credits=n, **kw)


class TestCreditAccounting:
    def test_unlimited_by_default(self, make_cluster):
        assert myrinet2000().send_credits == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="send_credits"):
            myrinet2000(send_credits=-1)

    def test_puts_stall_when_credits_exhausted(self, make_cluster):
        """With 1 credit, a burst of puts serializes on completion acks."""

        def main(ctx, credits):
            base = ctx.region.alloc(1)
            if ctx.rank == 0:
                t0 = ctx.now
                for _ in range(8):
                    yield from ctx.armci.put(GlobalAddress(1, base), [1])
                return ctx.now - t0
            yield ctx.compute(1)
            return None

        times = {}
        for credits in (1, 0):
            rt = make_cluster(nprocs=2, params=credit_params(credits))
            times[credits] = rt.run_spmd(main, credits)[0]
        # 1 credit: each put waits for the previous ack round trip.
        assert times[1] > 4 * times[0]

    def test_stall_counter(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1)
            if ctx.rank == 0:
                for _ in range(5):
                    yield from ctx.armci.put(GlobalAddress(1, base), [1])
                return ctx.armci.stats.get("credit_stalls", 0)
            yield ctx.compute(1)
            return 0

        rt = make_cluster(nprocs=2, params=credit_params(2))
        stalls = rt.run_spmd(main)[0]
        assert stalls >= 2

    def test_credits_are_per_destination_node(self, make_cluster):
        """Puts to different nodes draw from independent pools."""

        def main(ctx):
            base = ctx.region.alloc(1)
            if ctx.rank == 0:
                t0 = ctx.now
                # Alternate targets: with per-pair credits this pipelines.
                for i in range(8):
                    yield from ctx.armci.put(GlobalAddress(1 + i % 2, base), [1])
                return ctx.now - t0
            yield ctx.compute(1)
            return None

        rt_two_targets = make_cluster(nprocs=3, params=credit_params(1))
        spread = rt_two_targets.run_spmd(main)[0]

        def single(ctx):
            base = ctx.region.alloc(1)
            if ctx.rank == 0:
                t0 = ctx.now
                for _ in range(8):
                    yield from ctx.armci.put(GlobalAddress(1, base), [1])
                return ctx.now - t0
            yield ctx.compute(1)
            return None

        rt_one_target = make_cluster(nprocs=3, params=credit_params(1))
        focused = rt_one_target.run_spmd(single)[0]
        assert spread < focused

    def test_gets_and_rmws_consume_and_return(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(2, initial=0)
            if ctx.rank == 0:
                for _ in range(4):
                    yield from ctx.armci.get(GlobalAddress(1, base), 1)
                    yield from ctx.armci.rmw("fetch_add", GlobalAddress(1, base), 1)
                pool = ctx.armci._credit_pool(ctx.topology.node_of(1))
                return pool.in_use
            yield ctx.compute(1)
            return None

        rt = make_cluster(nprocs=2, params=credit_params(2))
        assert rt.run_spmd(main)[0] == 0  # all credits returned

    def test_correctness_preserved_under_tight_credits(self, make_cluster):
        """The full barrier semantics hold with a 1-credit pipe."""

        def main(ctx):
            base = ctx.region.alloc(ctx.nprocs, initial=0)
            for peer in range(ctx.nprocs):
                if peer != ctx.rank:
                    yield from ctx.armci.put(
                        GlobalAddress(peer, base + ctx.rank), [ctx.rank + 1]
                    )
            yield from ctx.armci.barrier()
            return ctx.region.read_many(base, ctx.nprocs)

        rt = make_cluster(nprocs=4, params=credit_params(1))
        for rank, values in enumerate(rt.run_spmd(main)):
            expected = [r + 1 if r != rank else 0 for r in range(4)]
            assert values == expected

    def test_nb_put_returns_credit_on_wait(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1)
            if ctx.rank == 0:
                handle = yield from ctx.armci.nb_put(GlobalAddress(1, base), [9])
                yield from handle.wait()
                pool = ctx.armci._credit_pool(ctx.topology.node_of(1))
                return pool.in_use
            yield ctx.compute(1)
            return None

        rt = make_cluster(nprocs=2, params=credit_params(3))
        assert rt.run_spmd(main)[0] == 0

    def test_works_with_ack_fence_mode(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1, initial=0)
            if ctx.rank == 0:
                for i in range(4):
                    yield from ctx.armci.put(GlobalAddress(1, base), [i])
                yield from ctx.armci.fence(1)
                yield from ctx.comm.send(1, "go")
                return None
            yield from ctx.comm.recv(source=0)
            return ctx.region.read(base)

        rt = make_cluster(
            nprocs=2, params=credit_params(1), fence_mode="ack"
        )
        assert rt.run_spmd(main)[1] == 3
