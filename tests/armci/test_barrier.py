"""Tests for the combined ARMCI_Barrier (the paper's core contribution)."""

import pytest

from repro.runtime.memory import GlobalAddress


def all_to_all_put_program(algorithm):
    """Every rank puts into every other rank, then barriers; returns memory."""

    def main(ctx):
        base = ctx.region.alloc(ctx.nprocs, initial=0)
        for peer in range(ctx.nprocs):
            if peer != ctx.rank:
                yield from ctx.armci.put(
                    GlobalAddress(peer, base + ctx.rank), [ctx.rank + 1]
                )
        yield from ctx.armci.barrier(algorithm=algorithm)
        # Semantics: at this point ALL puts from ALL ranks are complete.
        return ctx.region.read_many(base, ctx.nprocs)

    return main


class TestSemantics:
    @pytest.mark.parametrize("algorithm", ["exchange", "linear", "auto"])
    @pytest.mark.parametrize("nprocs", [2, 3, 4, 8])
    def test_all_puts_complete_at_barrier_exit(self, make_cluster, algorithm, nprocs):
        rt = make_cluster(nprocs=nprocs)
        results = rt.run_spmd(all_to_all_put_program(algorithm))
        for rank, values in enumerate(results):
            expected = [r + 1 if r != rank else 0 for r in range(nprocs)]
            assert values == expected, f"rank {rank} under {algorithm}"

    @pytest.mark.parametrize("algorithm", ["exchange", "linear"])
    def test_barrier_synchronizes_processes(self, make_cluster, algorithm):
        def main(ctx):
            yield ctx.compute(50.0 * ctx.rank)
            entered = ctx.now
            yield from ctx.armci.barrier(algorithm=algorithm)
            return (entered, ctx.now)

        rt = make_cluster(nprocs=4)
        results = rt.run_spmd(main)
        assert min(r[1] for r in results) >= max(r[0] for r in results)

    def test_repeated_barriers_with_interleaved_puts(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1, initial=0)
            peer = (ctx.rank + 1) % ctx.nprocs
            observed = []
            for round_no in range(5):
                yield from ctx.armci.put(GlobalAddress(peer, base), [round_no + 1])
                yield from ctx.armci.barrier()
                observed.append(ctx.region.read(base))
            return observed

        rt = make_cluster(nprocs=4)
        for values in rt.run_spmd(main):
            assert values == [1, 2, 3, 4, 5]

    def test_barrier_with_no_puts_is_pure_sync(self, make_cluster):
        def main(ctx):
            yield from ctx.armci.barrier()
            return ctx.now

        rt = make_cluster(nprocs=4)
        times = rt.run_spmd(main)
        assert max(times) > 0
        assert rt.fabric.stats.by_payload.get("PutRequest", 0) == 0

    def test_counters_are_cumulative(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1)
            peer = (ctx.rank + 1) % ctx.nprocs
            for _ in range(3):
                yield from ctx.armci.put(GlobalAddress(peer, base), [1])
                yield from ctx.armci.barrier()
            return ctx.armci.op_init[peer]

        rt = make_cluster(nprocs=2)
        assert rt.run_spmd(main) == [3, 3]
        # server completed 3 ops for each hosted rank
        assert rt.servers[0].op_done(0) == 3
        assert rt.servers[1].op_done(1) == 3

    def test_barrier_works_in_ack_mode_too(self, make_cluster):
        rt = make_cluster(nprocs=4, fence_mode="ack")
        results = rt.run_spmd(all_to_all_put_program("exchange"))
        for rank, values in enumerate(results):
            expected = [r + 1 if r != rank else 0 for r in range(4)]
            assert values == expected

    def test_unknown_algorithm_rejected(self, make_cluster):
        def main(ctx):
            yield from ctx.armci.barrier(algorithm="quantum")

        rt = make_cluster(nprocs=2)
        with pytest.raises(ValueError, match="algorithm"):
            rt.run_spmd(main)

    def test_barrier_requires_comm(self, env, make_cluster):
        from repro.armci.api import Armci

        rt = make_cluster(nprocs=2)
        bare = Armci(
            rt.env, 0, rt.topology, rt.fabric, rt.params,
            rt.regions, rt.servers, comm=None,
        )

        def main():
            yield from bare.barrier()

        rt.env.process(main())
        with pytest.raises(RuntimeError, match="communicator"):
            rt.env.run()


class TestCost:
    def test_exchange_beats_linear_under_all_to_all(self, make_cluster):
        def main(ctx, algorithm):
            base = ctx.region.alloc(ctx.nprocs, initial=0)
            for peer in range(ctx.nprocs):
                if peer != ctx.rank:
                    yield from ctx.armci.put(GlobalAddress(peer, base), [1])
            t0 = ctx.now
            yield from ctx.armci.barrier(algorithm=algorithm)
            return ctx.now - t0

        times = {}
        for algorithm in ("exchange", "linear"):
            rt = make_cluster(nprocs=8)
            times[algorithm] = max(rt.run_spmd(main, algorithm))
        assert times["exchange"] < times["linear"]

    def test_linear_beats_exchange_with_one_target(self, make_cluster):
        """The §3.1.2 crossover: few dirty servers favour the original."""

        def main(ctx, algorithm):
            base = ctx.region.alloc(1, initial=0)
            yield from ctx.armci.put(
                GlobalAddress((ctx.rank + 1) % ctx.nprocs, base), [1]
            )
            t0 = ctx.now
            yield from ctx.armci.barrier(algorithm=algorithm)
            return ctx.now - t0

        times = {}
        for algorithm in ("exchange", "linear"):
            rt = make_cluster(nprocs=16)
            times[algorithm] = max(rt.run_spmd(main, algorithm))
        assert times["linear"] < times["exchange"]

    def test_auto_tracks_the_winner(self, make_cluster):
        def main(ctx, targets):
            base = ctx.region.alloc(1, initial=0)
            for k in range(targets):
                peer = (ctx.rank + 1 + k) % ctx.nprocs
                if peer != ctx.rank:
                    yield from ctx.armci.put(GlobalAddress(peer, base), [1])
            t0 = ctx.now
            yield from ctx.armci.barrier(algorithm="auto")
            return ctx.now - t0

        def timed(algorithm_targets, algorithm):
            def prog(ctx):
                base = ctx.region.alloc(1, initial=0)
                for k in range(algorithm_targets):
                    peer = (ctx.rank + 1 + k) % ctx.nprocs
                    if peer != ctx.rank:
                        yield from ctx.armci.put(GlobalAddress(peer, base), [1])
                t0 = ctx.now
                yield from ctx.armci.barrier(algorithm=algorithm)
                return ctx.now - t0

            rt = make_cluster(nprocs=16)
            return max(rt.run_spmd(prog))

        for targets in (1, 15):
            rt = make_cluster(nprocs=16)
            auto_time = max(rt.run_spmd(main, targets))
            best = min(timed(targets, "linear"), timed(targets, "exchange"))
            assert auto_time <= best * 1.05

    def test_exchange_scales_logarithmically(self, make_cluster):
        """Pure synchronization cost (no outstanding puts) grows ~log N."""

        def main(ctx):
            t0 = ctx.now
            yield from ctx.armci.barrier(algorithm="exchange")
            return ctx.now - t0

        times = {}
        for nprocs in (4, 16):
            rt = make_cluster(nprocs=nprocs)
            times[nprocs] = max(rt.run_spmd(main))
        # 4 -> 16 procs: exchange rounds double (2 -> 4) so time roughly
        # doubles; it must stay far below the 4x of a linear algorithm.
        assert times[16] < 3.0 * times[4]
