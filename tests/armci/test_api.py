"""Unit tests for the ARMCI client API (put/get/acc/rmw, accounting)."""

import pytest

from repro.runtime.memory import GlobalAddress


class TestPut:
    def test_remote_put_then_fence_visible(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(3, initial=0)
            if ctx.rank == 0:
                yield from ctx.armci.put(GlobalAddress(1, base), [1, 2, 3])
                yield from ctx.armci.fence(1)
                yield from ctx.comm.send(1, "done")
                return None
            yield from ctx.comm.recv(source=0)
            return ctx.region.read_many(base, 3)

        rt = make_cluster(nprocs=2)
        assert rt.run_spmd(main)[1] == [1, 2, 3]

    def test_local_put_completes_synchronously(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(2, initial=0)
            peer = ctx.rank ^ 1  # same node
            yield from ctx.armci.put(GlobalAddress(peer, base), [9, 9])
            return None

        rt = make_cluster(nprocs=2, procs_per_node=2)
        rt.run_spmd(main)
        assert rt.regions[0].read_many(0, 2) == [9, 9]
        assert rt.armcis[0].stats["puts_local"] == 1
        assert rt.armcis[0].stats["puts_remote"] == 0

    def test_empty_put_is_noop(self, make_cluster):
        def main(ctx):
            ctx.region.alloc(1)
            yield from ctx.armci.put(GlobalAddress(ctx.rank, 0), [])
            return ctx.now

        rt = make_cluster(nprocs=1)
        assert rt.run_spmd(main) == [0.0]

    def test_op_init_counts_remote_writes_only(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1)
            if ctx.rank == 0:
                yield from ctx.armci.put(GlobalAddress(1, base), [1])
                yield from ctx.armci.put(GlobalAddress(1, base), [2])
                yield from ctx.armci.put(GlobalAddress(2, base), [3])
            yield from ctx.armci.barrier()
            return list(ctx.armci.op_init)

        rt = make_cluster(nprocs=3)
        results = rt.run_spmd(main)
        assert results[0] == [0, 2, 1]
        assert results[1] == [0, 0, 0]

    def test_put_segments_roundtrip(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(10, initial=0)
            if ctx.rank == 0:
                yield from ctx.armci.put_segments(
                    1, [(base, [1, 2]), (base + 4, [5]), (base + 8, [8, 9])]
                )
                yield from ctx.armci.fence(1)
            yield from ctx.armci.barrier()
            return ctx.region.read_many(base, 10)

        rt = make_cluster(nprocs=2)
        assert rt.run_spmd(main)[1] == [1, 2, 0, 0, 5, 0, 0, 0, 8, 9]

    def test_put_segments_is_one_message(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(6)
            if ctx.rank == 0:
                yield from ctx.armci.put_segments(
                    1, [(base + i, [i]) for i in range(6)]
                )
            yield from ctx.armci.barrier()

        rt = make_cluster(nprocs=2)
        rt.run_spmd(main)
        assert rt.servers[1].stats.puts == 1


class TestGet:
    def test_remote_get(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(2)
            ctx.region.write_many(base, [ctx.rank * 10, ctx.rank * 10 + 1])
            yield from ctx.armci.barrier()
            peer = (ctx.rank + 1) % ctx.nprocs
            values = yield from ctx.armci.get(GlobalAddress(peer, base), 2)
            return values

        rt = make_cluster(nprocs=3)
        assert rt.run_spmd(main) == [[10, 11], [20, 21], [0, 1]]

    def test_local_get_no_messages(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1)
            ctx.region.write(base, 5)
            value = yield from ctx.armci.get(GlobalAddress(ctx.rank, base), 1)
            return value

        rt = make_cluster(nprocs=1)
        assert rt.run_spmd(main) == [[5]]
        assert rt.fabric.stats.messages == 0

    def test_get_count_validation(self, make_cluster):
        def main(ctx):
            ctx.region.alloc(1)
            yield from ctx.armci.get(GlobalAddress(ctx.rank, 0), 0)

        rt = make_cluster(nprocs=1)
        with pytest.raises(ValueError, match="count"):
            rt.run_spmd(main)

    def test_get_segments(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(6)
            ctx.region.write_many(base, [0, 1, 2, 3, 4, 5])
            yield from ctx.armci.barrier()
            peer = (ctx.rank + 1) % ctx.nprocs
            values = yield from ctx.armci.get_segments(
                peer, [(base + 1, 2), (base + 5, 1)]
            )
            return values

        rt = make_cluster(nprocs=2)
        assert rt.run_spmd(main) == [[1, 2, 5], [1, 2, 5]]


class TestAcc:
    def test_remote_accumulate(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(2, initial=0.0)
            if ctx.rank != 0:
                yield from ctx.armci.acc(
                    GlobalAddress(0, base), [1.0, 2.0], scale=ctx.rank
                )
            yield from ctx.armci.barrier()
            return ctx.region.read_many(base, 2)

        rt = make_cluster(nprocs=4)
        results = rt.run_spmd(main)
        assert results[0] == [6.0, 12.0]  # (1+2+3)*[1,2]

    def test_local_accumulate(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1, initial=10.0)
            yield from ctx.armci.acc(GlobalAddress(ctx.rank, base), [5.0])
            return ctx.region.read(base)

        rt = make_cluster(nprocs=1)
        assert rt.run_spmd(main) == [15.0]


class TestRmw:
    def test_remote_fetch_add_is_atomic_across_ranks(self, make_cluster):
        def main(ctx):
            base = ctx.regions[0].alloc_named("ctr", 1, 0)
            tickets = []
            for _ in range(5):
                t = yield from ctx.armci.rmw("fetch_add", GlobalAddress(0, base), 1)
                tickets.append(t)
            yield from ctx.armci.barrier()
            return tickets

        rt = make_cluster(nprocs=4)
        results = rt.run_spmd(main)
        all_tickets = sorted(t for per_rank in results for t in per_rank)
        assert all_tickets == list(range(20))

    def test_swap_and_cas_remote(self, make_cluster):
        def main(ctx):
            base = ctx.regions[0].alloc_named("cell", 1, 0)
            ga = GlobalAddress(0, base)
            if ctx.rank == 1:
                old = yield from ctx.armci.rmw("swap", ga, 111)
                ok_bad = yield from ctx.armci.rmw("cas", ga, 999, 5)
                ok_good = yield from ctx.armci.rmw("cas", ga, 111, 5)
                return (old, ok_bad, ok_good)
            yield ctx.compute(1)
            return None

        rt = make_cluster(nprocs=2)
        results = rt.run_spmd(main)
        assert results[1] == (0, False, True)
        assert rt.regions[0].read(0) == 5

    def test_pair_ops_remote(self, make_cluster):
        def main(ctx):
            base = ctx.regions[0].alloc_named("pair", 2, -1)
            ga = GlobalAddress(0, base)
            if ctx.rank == 1:
                old = yield from ctx.armci.rmw("swap_pair", ga, (1, 50))
                pair = yield from ctx.armci.rmw("read_pair", ga)
                ok = yield from ctx.armci.rmw("cas_pair", ga, (1, 50), (-1, -1))
                return (tuple(old), tuple(pair), ok)
            yield ctx.compute(1)
            return None

        rt = make_cluster(nprocs=2)
        assert rt.run_spmd(main)[1] == ((-1, -1), (1, 50), True)

    def test_local_rmw_uses_no_messages(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1, 0)
            result = yield from ctx.armci.rmw(
                "fetch_add", GlobalAddress(ctx.rank, base), 7
            )
            return result

        rt = make_cluster(nprocs=1)
        assert rt.run_spmd(main) == [0]
        assert rt.fabric.stats.messages == 0

    def test_unknown_op_rejected(self, make_cluster):
        def main(ctx):
            ctx.region.alloc(1)
            yield from ctx.armci.rmw("frobnicate", GlobalAddress(ctx.rank, 0))

        rt = make_cluster(nprocs=1)
        with pytest.raises(ValueError, match="unknown rmw op"):
            rt.run_spmd(main)


class TestLoadStore:
    def test_load_store_same_node(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1, 0)
            peer = ctx.rank ^ 1
            yield from ctx.armci.store(GlobalAddress(peer, base), ctx.rank + 100)
            yield ctx.compute(1)
            value = yield from ctx.armci.load(GlobalAddress(ctx.rank, base))
            return value

        rt = make_cluster(nprocs=2, procs_per_node=2)
        assert rt.run_spmd(main) == [101, 100]

    def test_load_remote_rejected(self, make_cluster):
        def main(ctx):
            ctx.region.alloc(1)
            if ctx.rank == 0:
                yield from ctx.armci.load(GlobalAddress(1, 0))
            else:
                yield ctx.compute(1)

        rt = make_cluster(nprocs=2)
        with pytest.raises(ValueError, match="non-local"):
            rt.run_spmd(main)

    def test_store_remote_rejected(self, make_cluster):
        def main(ctx):
            ctx.region.alloc(1)
            if ctx.rank == 0:
                yield from ctx.armci.store(GlobalAddress(1, 0), 1)
            else:
                yield ctx.compute(1)

        rt = make_cluster(nprocs=2)
        with pytest.raises(ValueError, match="non-local"):
            rt.run_spmd(main)

    def test_pair_helpers(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(2, -1)
            ga_own = GlobalAddress(ctx.rank, base)
            yield from ctx.armci.store_pair(ga_own, (ctx.rank, 7))
            local = yield from ctx.armci.load_pair(ga_own)
            yield from ctx.armci.barrier()
            peer = (ctx.rank + 1) % ctx.nprocs
            remote = yield from ctx.armci.load_pair(GlobalAddress(peer, base))
            yield from ctx.armci.store_pair(GlobalAddress(peer, base), (99, 99))
            yield from ctx.armci.barrier()
            return (local, tuple(remote))

        rt = make_cluster(nprocs=2)
        results = rt.run_spmd(main)
        assert results[0] == ((0, 7), (1, 7))
        assert results[1] == ((1, 7), (0, 7))
        assert rt.regions[0].read_many(0, 2) == [99, 99]


class TestApiOverheadAccounting:
    def test_api_call_charged(self, make_cluster):
        from repro.net.params import myrinet2000

        def main(ctx):
            base = ctx.region.alloc(1)
            t0 = ctx.now
            yield from ctx.armci.get(GlobalAddress(ctx.rank, base), 1)
            return ctx.now - t0

        params = myrinet2000(api_call_us=10.0, shm_access_us=0.0,
                             mem_copy_per_byte_us=0.0)
        rt = make_cluster(nprocs=1, params=params)
        assert rt.run_spmd(main) == [10.0]

    def test_invalid_fence_mode_rejected(self, make_cluster):
        with pytest.raises(ValueError, match="fence_mode"):
            make_cluster(nprocs=2, fence_mode="bogus")
