"""Tests for fence semantics in both subsystem styles (§3.1.1)."""

import pytest

from repro.net.params import myrinet2000
from repro.runtime.memory import GlobalAddress


def put_fence_read(make_cluster, fence_mode):
    """Rank 0 puts then fences; rank 1 reads after being signalled."""

    def main(ctx):
        base = ctx.region.alloc(1, initial=0)
        if ctx.rank == 0:
            yield from ctx.armci.put(GlobalAddress(1, base), [42])
            yield from ctx.armci.fence(1)
            yield from ctx.comm.send(1, "go")
            return None
        yield from ctx.comm.recv(source=0)
        return ctx.region.read(base)

    rt = make_cluster(nprocs=2, fence_mode=fence_mode)
    return rt, rt.run_spmd(main)


class TestConfirmMode:
    def test_fence_guarantees_completion(self, make_cluster):
        _rt, results = put_fence_read(make_cluster, "confirm")
        assert results[1] == 42

    def test_fence_sends_message_when_dirty(self, make_cluster):
        rt, _ = put_fence_read(make_cluster, "confirm")
        assert rt.servers[1].stats.fences == 1

    def test_fence_clean_node_is_free(self, make_cluster):
        def main(ctx):
            ctx.region.alloc(1)
            yield from ctx.armci.fence((ctx.rank + 1) % ctx.nprocs)
            return None

        rt = make_cluster(nprocs=2, fence_mode="confirm")
        rt.run_spmd(main)
        assert rt.servers[0].stats.fences == 0
        assert rt.servers[1].stats.fences == 0

    def test_repeated_fence_only_first_sends(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1)
            if ctx.rank == 0:
                yield from ctx.armci.put(GlobalAddress(1, base), [1])
                yield from ctx.armci.fence(1)
                yield from ctx.armci.fence(1)
                yield from ctx.armci.fence(1)
            else:
                yield ctx.compute(1)

        rt = make_cluster(nprocs=2, fence_mode="confirm")
        rt.run_spmd(main)
        assert rt.servers[1].stats.fences == 1

    def test_own_node_never_fenced(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1)
            peer = ctx.rank ^ 1  # same node
            yield from ctx.armci.put(GlobalAddress(peer, base), [1])
            yield from ctx.armci.fence(peer)
            return None

        rt = make_cluster(nprocs=2, procs_per_node=2, fence_mode="confirm")
        rt.run_spmd(main)
        assert rt.servers[0].stats.fences == 0


class TestAckMode:
    def test_fence_guarantees_completion(self, make_cluster):
        _rt, results = put_fence_read(make_cluster, "ack")
        assert results[1] == 42

    def test_ack_fence_sends_no_fence_messages(self, make_cluster):
        rt, _ = put_fence_read(make_cluster, "ack")
        assert rt.servers[1].stats.fences == 0

    def test_outstanding_acks_tracked(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1)
            if ctx.rank == 0:
                yield from ctx.armci.put(GlobalAddress(1, base), [1])
                yield from ctx.armci.put(GlobalAddress(1, base), [2])
                before = ctx.armci.outstanding_acks(ctx.topology.node_of(1))
                yield from ctx.armci.fence(1)
                after = ctx.armci.outstanding_acks(ctx.topology.node_of(1))
                return (before, after)
            yield ctx.compute(1)
            return None

        rt = make_cluster(nprocs=2, fence_mode="ack")
        before, after = rt.run_spmd(main)[0]
        assert before > 0 and after == 0


class TestAllFence:
    def test_allfence_completes_all_targets(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(ctx.nprocs, initial=0)
            for peer in range(ctx.nprocs):
                if peer != ctx.rank:
                    yield from ctx.armci.put(
                        GlobalAddress(peer, base + ctx.rank), [1]
                    )
            yield from ctx.armci.allfence()
            yield from ctx.comm.send((ctx.rank + 1) % ctx.nprocs, "ok")
            yield from ctx.comm.recv(source=(ctx.rank - 1) % ctx.nprocs)
            # After MY allfence, *my* puts are done system-wide; the
            # neighbor's token confirms theirs too.
            return None

        rt = make_cluster(nprocs=4, fence_mode="confirm")
        rt.run_spmd(main)
        for rank in range(4):
            values = rt.regions[rank].read_many(0, 4)
            expected = [1 if r != rank else 0 for r in range(4)]
            assert values == expected

    def test_allfence_contacts_only_dirty_nodes(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1)
            if ctx.rank == 0:
                yield from ctx.armci.put(GlobalAddress(2, base), [1])
                yield from ctx.armci.allfence()
            else:
                yield ctx.compute(1)

        rt = make_cluster(nprocs=4, fence_mode="confirm")
        rt.run_spmd(main)
        assert rt.servers[1].stats.fences == 0
        assert rt.servers[2].stats.fences == 1
        assert rt.servers[3].stats.fences == 0

    def test_allfence_walks_nodes_in_ascending_order(self, make_cluster):
        """The convoy behaviour depends on the rank-order walk."""

        def main(ctx):
            base = ctx.region.alloc(1)
            if ctx.rank == 0:
                for peer in (3, 1, 2):
                    yield from ctx.armci.put(GlobalAddress(peer, base), [1])
                yield from ctx.armci.allfence()
            else:
                yield ctx.compute(1)

        rt = make_cluster(nprocs=4, fence_mode="confirm")
        order = []
        for node in (1, 2, 3):
            server = rt.servers[node]
            original = server._handle_fence

            def tracking(req, _node=node, _orig=original):
                order.append(_node)
                return _orig(req)

            server._handle_fence = tracking
        rt.run_spmd(main)
        assert order == [1, 2, 3]


class TestOrderingFailureInjection:
    """Confirm-mode fences rely on GM's in-order delivery; ack-mode does not.

    The vulnerable window is between a put and the following fence request
    from the same client: if the network may reorder them, the server
    confirms the fence before the put has been applied.  We observe the
    target cell *at the moment the server issues the confirmation*.
    """

    def _confirm_trial(self, make_cluster, jitter, seed, trials=60):
        """Returns how many trials confirmed the fence before the put."""
        from repro.armci.requests import FenceRequest, PutRequest
        from repro.net.message import server_endpoint
        from repro.sim.core import Event

        early_confirms = 0
        for trial in range(trials):
            params = myrinet2000(jitter_us=jitter, seed=seed + trial)
            rt = make_cluster(nprocs=2, fence_mode="confirm", params=params)
            base = rt.regions[1].alloc(1, initial=0)
            reply = Event(rt.env)
            rt.fabric.post(
                0, server_endpoint(1),
                PutRequest(src_rank=0, dst_rank=1, addr=base, values=[7]),
            )
            rt.fabric.post(
                0, server_endpoint(1), FenceRequest(src_rank=0, reply=reply)
            )
            at_confirm = []
            reply.callbacks.append(
                lambda _ev, r=rt, b=base: at_confirm.append(r.regions[1].read(b))
            )
            rt.env.run(until=reply)
            if at_confirm[0] == 0:
                early_confirms += 1
        return early_confirms

    def test_confirm_mode_breaks_under_reordering(self, make_cluster):
        """With delivery reordering, some fence confirmations precede the
        puts they are meant to cover — the GM in-order assumption made
        explicit."""
        assert self._confirm_trial(make_cluster, jitter=60.0, seed=100) > 0

    def test_confirm_mode_correct_in_order(self, make_cluster):
        assert self._confirm_trial(make_cluster, jitter=0.0, seed=100, trials=10) == 0

    def test_ack_mode_robust_under_reordering(self, make_cluster):
        """The ack-mode *client* cannot pass a fence until every put has been
        individually acknowledged, so reordering is harmless end-to-end."""

        def main(ctx, tag):
            base = tag
            if ctx.rank == 0:
                yield from ctx.armci.put(GlobalAddress(1, base), [7])
                yield from ctx.armci.fence(1)
                yield from ctx.comm.send(1, "go", tag=tag)
                return None
            yield from ctx.comm.recv(source=0, tag=tag)
            return ctx.region.read(base)

        trials = 40
        for trial in range(trials):
            params = myrinet2000(jitter_us=60.0, seed=500 + trial)
            rt = make_cluster(nprocs=2, fence_mode="ack", params=params)
            for region in rt.regions.values():
                region.alloc(trials, initial=0)
            results = rt.run_spmd(main, trial)
            assert results[1] == 7, f"stale read in trial {trial}"
