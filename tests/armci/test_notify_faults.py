"""notify/notify_wait contract under seeded link faults.

The ARMCI notify contract: data puts issued before ``notify`` are visible
to the peer once ``notify_wait`` returns, and the notification counter
advances exactly once per notify — drops must be retransmitted, network
duplicates suppressed, and reordering resequenced by the reliable layer.
"""

import pytest

from repro.armci.collective import _notify_cell
from repro.net.faults import FaultPlan
from repro.net.params import myrinet2000
from repro.runtime.memory import GlobalAddress

FAULTY_PLANS = {
    "drops": FaultPlan.uniform(drop_rate=0.15, seed=11),
    "dups": FaultPlan.uniform(dup_rate=0.25, seed=12),
    "reorder": FaultPlan.uniform(
        reorder_rate=0.3, reorder_window_us=40.0, seed=13
    ),
    "mixed": FaultPlan.uniform(
        drop_rate=0.08, dup_rate=0.08, reorder_rate=0.1,
        reorder_window_us=25.0, seed=14,
    ),
}

ROUNDS = 5


def producer_consumer(ctx):
    """Rank 0 streams data+notify to rank 1; rank 1 validates each round."""
    data = ctx.region.alloc_named("data", ROUNDS, initial=0)
    if ctx.rank == 0:
        for round_no in range(ROUNDS):
            yield from ctx.armci.put(
                GlobalAddress(1, data + round_no), [round_no + 100]
            )
            yield from ctx.armci.notify(1)
        return None
    if ctx.rank == 1:
        observed = []
        for round_no in range(ROUNDS):
            yield from ctx.armci.notify_wait(0, count=round_no + 1)
            # Data put before the notify must already be visible.
            observed.append(ctx.region.read(data + round_no))
        counter_cell = _notify_cell(ctx.armci, ctx.rank, 0)
        return observed, ctx.region.read(counter_cell)
    yield from ctx.armci.barrier()  # unreachable at nprocs=2
    return None


@pytest.mark.parametrize("name", sorted(FAULTY_PLANS))
def test_contract_holds_under_faults(make_cluster, name):
    params = myrinet2000(faults=FAULTY_PLANS[name])
    rt = make_cluster(nprocs=2, params=params)
    results = rt.run_spmd(producer_consumer)
    observed, counter = results[1]
    assert observed == [round_no + 100 for round_no in range(ROUNDS)], name
    # Exactly one counter advance per notify: no lost and no duplicated
    # bumps despite the lossy link.
    assert counter == ROUNDS, name


def test_faults_actually_fired(make_cluster):
    """The drop plan really exercises retransmission (not a silent no-op)."""
    params = myrinet2000(faults=FAULTY_PLANS["drops"])
    rt = make_cluster(nprocs=2, params=params)
    rt.run_spmd(producer_consumer)
    assert rt.fabric.stats.retransmits > 0


def test_contract_holds_fault_free(make_cluster):
    rt = make_cluster(nprocs=2)
    results = rt.run_spmd(producer_consumer)
    observed, counter = results[1]
    assert observed == [round_no + 100 for round_no in range(ROUNDS)]
    assert counter == ROUNDS
