"""Tests for the extended ARMCI API: explicit non-blocking handles,
strided transfers, collective malloc, and notify/wait."""

import pytest

from repro.armci.strided import stride_runs
from repro.runtime.memory import GlobalAddress


class TestNbGet:
    def test_overlap_with_computation(self, make_cluster):
        """The get's round trip overlaps a compute block: total time is
        max(compute, roundtrip), not their sum."""

        def main(ctx):
            base = ctx.region.alloc(4)
            ctx.region.write_many(base, [ctx.rank] * 4)
            yield from ctx.armci.barrier()
            if ctx.rank != 0:
                return None
            t0 = ctx.now
            handle = yield from ctx.armci.nb_get(GlobalAddress(1, base), 4)
            yield ctx.compute(500.0)  # >> network round trip
            values = yield from handle.wait()
            return (values, ctx.now - t0)

        rt = make_cluster(nprocs=2)
        values, elapsed = rt.run_spmd(main)[0]
        assert values == [1, 1, 1, 1]
        assert elapsed < 520.0  # compute dominated; RTT hidden

    def test_local_nb_get_completes_immediately(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(2)
            ctx.region.write_many(base, [5, 6])
            handle = yield from ctx.armci.nb_get(GlobalAddress(ctx.rank, base), 2)
            assert handle.done
            values = yield from handle.wait()
            return values

        rt = make_cluster(nprocs=1)
        assert rt.run_spmd(main) == [[5, 6]]

    def test_done_flag_transitions(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1)
            yield from ctx.armci.barrier()
            if ctx.rank != 0:
                return None
            handle = yield from ctx.armci.nb_get(GlobalAddress(1, base), 1)
            immediately = handle.done
            yield ctx.compute(200.0)
            eventually = handle.done
            yield from handle.wait()
            return (immediately, eventually)

        rt = make_cluster(nprocs=2)
        assert rt.run_spmd(main)[0] == (False, True)

    def test_invalid_count(self, make_cluster):
        def main(ctx):
            ctx.region.alloc(1)
            yield from ctx.armci.nb_get(GlobalAddress(ctx.rank, 0), 0)

        rt = make_cluster(nprocs=1)
        with pytest.raises(ValueError, match="count"):
            rt.run_spmd(main)


class TestNbPut:
    def test_wait_guarantees_remote_completion(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1, initial=0)
            if ctx.rank == 0:
                handle = yield from ctx.armci.nb_put(GlobalAddress(1, base), [7])
                yield from handle.wait()
                yield from ctx.comm.send(1, "check")
                return None
            yield from ctx.comm.recv(source=0)
            return ctx.region.read(base)

        rt = make_cluster(nprocs=2)
        assert rt.run_spmd(main)[1] == 7

    def test_wait_guarantee_holds_in_ack_mode_too(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1, initial=0)
            if ctx.rank == 0:
                handle = yield from ctx.armci.nb_put(GlobalAddress(1, base), [9])
                yield from handle.wait()
                # The implicit fence accounting must also have been settled.
                assert ctx.armci.outstanding_acks(ctx.topology.node_of(1)) == 0
                yield from ctx.comm.send(1, "check")
                return None
            yield from ctx.comm.recv(source=0)
            return ctx.region.read(base)

        rt = make_cluster(nprocs=2, fence_mode="ack")
        assert rt.run_spmd(main)[1] == 9

    def test_local_and_empty_puts(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1, initial=0)
            h1 = yield from ctx.armci.nb_put(GlobalAddress(ctx.rank, base), [3])
            h2 = yield from ctx.armci.nb_put(GlobalAddress(ctx.rank, base), [])
            assert h1.done and h2.done
            yield from h1.wait()
            yield from h2.wait()
            return ctx.region.read(base)

        rt = make_cluster(nprocs=1)
        assert rt.run_spmd(main) == [3]

    def test_nb_put_still_counts_for_barrier(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1, initial=0)
            peer = (ctx.rank + 1) % ctx.nprocs
            yield from ctx.armci.nb_put(GlobalAddress(peer, base), [ctx.rank + 1])
            yield from ctx.armci.barrier()
            return ctx.region.read(base)

        rt = make_cluster(nprocs=3)
        assert rt.run_spmd(main) == [3, 1, 2]


class TestStrideRuns:
    def test_contiguous(self):
        assert stride_runs(10, [], [4]) == [(10, 4)]

    def test_2d_patch(self):
        # 3 rows of 2 cells, row stride 8, base 0.
        assert stride_runs(0, [8], [2, 3]) == [(0, 2), (8, 2), (16, 2)]

    def test_3d_patch(self):
        runs = stride_runs(0, [4, 16], [2, 2, 2])
        assert runs == [(0, 2), (4, 2), (16, 2), (20, 2)]

    def test_validation(self):
        with pytest.raises(ValueError, match="counts"):
            stride_runs(0, [], [])
        with pytest.raises(ValueError, match="strides"):
            stride_runs(0, [1, 2], [1, 2])
        with pytest.raises(ValueError, match="positive"):
            stride_runs(0, [4], [2, 0])
        with pytest.raises(ValueError, match="positive"):
            stride_runs(0, [0], [2, 2])


class TestStridedTransfers:
    def test_put_get_roundtrip(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(64, initial=0.0)
            yield from ctx.armci.barrier()
            if ctx.rank == 0:
                # 4 rows x 3 cells into rank 1, row stride 8.
                values = [float(i) for i in range(12)]
                yield from ctx.armci.put_strided(1, base, [8], [3, 4], values)
                yield from ctx.armci.fence(1)
                got = yield from ctx.armci.get_strided(1, base, [8], [3, 4])
                return got
            yield ctx.compute(1)
            return None

        rt = make_cluster(nprocs=2)
        got = rt.run_spmd(main)[0]
        assert got == [float(i) for i in range(12)]
        # Runs land at 0..2, 8..10, 16..18, 24..26; gaps stay untouched.
        assert rt.regions[1].read(8) == 3.0
        assert rt.regions[1].read(3) == 0.0
        assert rt.regions[1].read(11) == 0.0

    def test_single_message_regardless_of_runs(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(128)
            if ctx.rank == 0:
                yield from ctx.armci.put_strided(
                    1, base, [8], [2, 16], [1.0] * 32
                )
            yield from ctx.armci.barrier()

        rt = make_cluster(nprocs=2)
        rt.run_spmd(main)
        assert rt.servers[1].stats.puts == 1

    def test_value_count_mismatch(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(16)
            yield from ctx.armci.put_strided(0, base, [4], [2, 2], [1.0] * 3)

        rt = make_cluster(nprocs=1)
        with pytest.raises(ValueError, match="values"):
            rt.run_spmd(main)


class TestCollectiveMalloc:
    def test_all_ranks_share_the_table(self, make_cluster):
        def main(ctx):
            table = yield from ctx.armci.malloc(8, key="slab")
            assert len(table) == ctx.nprocs
            # write my rank into everyone's slab slot ctx.rank
            for ga in table:
                if ga.rank != ctx.rank:
                    yield from ctx.armci.put(
                        GlobalAddress(ga.rank, ga.addr + ctx.rank), [ctx.rank + 1]
                    )
            yield from ctx.armci.barrier()
            mine = table[ctx.rank]
            return ctx.region.read_many(mine.addr, ctx.nprocs)

        rt = make_cluster(nprocs=4)
        for rank, values in enumerate(rt.run_spmd(main)):
            expected = [r + 1 if r != rank else 0 for r in range(4)]
            assert values == expected

    def test_distinct_keys_distinct_slabs(self, make_cluster):
        def main(ctx):
            t1 = yield from ctx.armci.malloc(4, key="a")
            t2 = yield from ctx.armci.malloc(4, key="b")
            return (t1[ctx.rank].addr, t2[ctx.rank].addr)

        rt = make_cluster(nprocs=2)
        for a, b in rt.run_spmd(main):
            assert a != b

    def test_invalid_count(self, make_cluster):
        def main(ctx):
            yield from ctx.armci.malloc(0, key="x")

        rt = make_cluster(nprocs=2)
        with pytest.raises(ValueError, match="count"):
            rt.run_spmd(main)


class TestNotifyWait:
    def test_producer_consumer(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1, initial=0)
            if ctx.rank == 0:
                yield from ctx.armci.put(GlobalAddress(1, base), [123])
                yield from ctx.armci.notify(1)
                return None
            yield from ctx.armci.notify_wait(0)
            # The notify contract: prior puts from the notifier are visible.
            return ctx.region.read(base)

        rt = make_cluster(nprocs=2)
        assert rt.run_spmd(main)[1] == 123

    def test_notify_contract_in_ack_mode(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1, initial=0)
            if ctx.rank == 0:
                yield from ctx.armci.put(GlobalAddress(1, base), [55])
                yield from ctx.armci.notify(1)
                return None
            yield from ctx.armci.notify_wait(0)
            return ctx.region.read(base)

        rt = make_cluster(nprocs=2, fence_mode="ack")
        assert rt.run_spmd(main)[1] == 55

    def test_counting_semantics(self, make_cluster):
        def main(ctx):
            if ctx.rank == 0:
                for _ in range(3):
                    yield from ctx.armci.notify(1)
                return None
            yield from ctx.armci.notify_wait(0, count=3)
            return ctx.now

        rt = make_cluster(nprocs=2)
        assert rt.run_spmd(main)[1] > 0

    def test_pairwise_channels_independent(self, make_cluster):
        def main(ctx):
            if ctx.rank in (0, 1):
                yield from ctx.armci.notify(2)
                return None
            yield from ctx.armci.notify_wait(0)
            yield from ctx.armci.notify_wait(1)
            return True

        rt = make_cluster(nprocs=3)
        assert rt.run_spmd(main)[2] is True

    def test_invalid_count(self, make_cluster):
        def main(ctx):
            yield from ctx.armci.notify_wait(0, count=0)

        rt = make_cluster(nprocs=2)
        with pytest.raises(ValueError, match="count"):
            rt.run_spmd(main)
