"""Tests for the ARMCI operation profiler."""

import math

import pytest

from repro.armci.profile import OpProfile, install, profile_lock, _percentile
from repro.runtime.memory import GlobalAddress


class TestPercentile:
    def test_empty_nan(self):
        assert math.isnan(_percentile([], 0.5))

    def test_median(self):
        assert _percentile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_p95_near_top(self):
        samples = [float(i) for i in range(100)]
        assert _percentile(samples, 0.95) == 94.0

    def test_single_sample(self):
        assert _percentile([7.0], 0.95) == 7.0

    @pytest.mark.parametrize("q", [-0.1, 1.5, 2.0])
    def test_out_of_range_q_rejected(self, q):
        with pytest.raises(ValueError, match=r"must be in \[0, 1\]"):
            _percentile([1.0, 2.0], q)

    def test_out_of_range_q_rejected_even_when_empty(self):
        with pytest.raises(ValueError, match=r"must be in \[0, 1\]"):
            _percentile([], -1.0)


class TestOpProfile:
    def test_record_and_stats(self):
        profile = OpProfile(rank=0)
        for v in (1.0, 2.0, 3.0):
            profile.record("put", v)
        assert profile.count("put") == 3
        assert profile.mean("put") == 2.0
        assert profile.max("put") == 3.0

    def test_missing_op_is_nan(self):
        profile = OpProfile(rank=0)
        assert math.isnan(profile.mean("get"))
        assert profile.count("get") == 0

    def test_merge_pools_samples(self):
        a, b = OpProfile(rank=0), OpProfile(rank=1)
        a.record("put", 1.0)
        b.record("put", 3.0)
        b.record("get", 5.0)
        a.merge(b)
        assert a.count("put") == 2
        assert a.mean("put") == 2.0
        assert a.count("get") == 1

    def test_render(self):
        profile = OpProfile(rank=2)
        profile.record("barrier", 10.0)
        text = profile.render()
        assert "rank 2" in text and "barrier" in text and "p95" in text


class TestInstall:
    def test_profiles_operations_end_to_end(self, make_cluster):
        def main(ctx):
            profile = install(ctx.armci)
            base = ctx.region.alloc(2, initial=0)
            peer = (ctx.rank + 1) % ctx.nprocs
            yield from ctx.armci.put(GlobalAddress(peer, base), [1, 2])
            yield from ctx.armci.get(GlobalAddress(peer, base), 2)
            yield from ctx.armci.rmw("fetch_add", GlobalAddress(peer, base), 1)
            yield from ctx.armci.barrier()
            return profile

        rt = make_cluster(nprocs=2)
        profiles = rt.run_spmd(main)
        p0 = profiles[0]
        assert p0.count("put") == 1
        assert p0.count("get") == 1
        assert p0.count("rmw") == 1
        assert p0.count("barrier") == 1
        # A remote get takes a full round trip; a put only injects.
        assert p0.mean("get") > p0.mean("put")
        # Synchronization costs more than fire-and-forget injection.
        assert p0.mean("barrier") > p0.mean("put")

    def test_idempotent_install(self, make_cluster):
        rt = make_cluster(nprocs=1)
        armci = rt.armcis[0]
        p1 = install(armci)
        p2 = install(armci)
        assert p1 is p2

    def test_wrapped_results_pass_through(self, make_cluster):
        def main(ctx):
            install(ctx.armci)
            base = ctx.region.alloc(1, initial=41)
            old = yield from ctx.armci.rmw(
                "fetch_add", GlobalAddress(ctx.rank, base), 1
            )
            values = yield from ctx.armci.get(GlobalAddress(ctx.rank, base), 1)
            return old, values

        rt = make_cluster(nprocs=1)
        assert rt.run_spmd(main)[0] == (41, [42])

    def test_profile_under_ga_workload(self, make_cluster):
        import numpy as np

        from repro.ga import GlobalArray

        def main(ctx):
            profile = install(ctx.armci)
            ga = GlobalArray(ctx, "P", (8, 8))
            blk = ga.dist.block((ctx.rank + 1) % ctx.nprocs)
            yield from ga.put(
                (blk.row0, blk.row1, blk.col0, blk.col1),
                np.ones((blk.nrows, blk.ncols)),
            )
            yield from ga.sync("new")
            return profile

        rt = make_cluster(nprocs=4)
        pooled = OpProfile(rank=-1)
        for profile in rt.run_spmd(main):
            pooled.merge(profile)
        assert pooled.count("put_segments") == 4
        assert pooled.count("barrier") == 4


class TestProfileLock:
    def test_records_acquire_and_release(self, make_cluster):
        from repro.locks.hybrid import HybridLock

        def main(ctx):
            profile = install(ctx.armci)
            lock = profile_lock(HybridLock(ctx, home_rank=0), profile)
            for _ in range(3):
                yield from lock.acquire()
                yield ctx.env.timeout(1.0)
                yield from lock.release()
            return profile

        rt = make_cluster(nprocs=2)
        profiles = rt.run_spmd(main)
        for profile in profiles:
            assert profile.count("lock.acquire:hybrid") == 3
            assert profile.count("lock.release:hybrid") == 3
            assert profile.p95("lock.acquire:hybrid") >= 0.0

    def test_idempotent_per_handle(self, make_cluster):
        from repro.locks.hybrid import HybridLock

        rt = make_cluster(nprocs=1)
        ctx = rt.context(0)
        profile = install(ctx.armci)
        lock = HybridLock(ctx, home_rank=0)
        acquire_once = profile_lock(lock, profile).acquire
        acquire_twice = profile_lock(lock, profile).acquire
        assert acquire_once is acquire_twice
