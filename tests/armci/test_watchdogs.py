"""Protocol watchdogs: fence retransmission and barrier stage-2 fallback.

These tests stall or crash one node's server through a fault-plan window
and check that, with ``watchdog_timeout_us`` set, the protocols detect the
stuck wait and recover (counting what they did) instead of hanging.
"""

import pytest

from repro.net.faults import FaultPlan, StallWindow
from repro.net.params import myrinet2000
from repro.runtime.cluster import ClusterRuntime
from repro.runtime.memory import GlobalAddress

NPROCS = 8
STALLED_NODE = 2


def make_runtime(mode, watchdog_us, end_us=4000.0, reliable=False):
    plan = FaultPlan(
        stalls=(StallWindow(node=STALLED_NODE, start_us=5.0, end_us=end_us, mode=mode),),
        reliable=reliable,
    )
    params = myrinet2000().with_(faults=plan, watchdog_timeout_us=watchdog_us)
    return ClusterRuntime(NPROCS, params=params)


def put_barrier_workload(ctx):
    base = ctx.region.alloc_named("wd.slots", ctx.nprocs, initial=0)
    for peer in range(ctx.nprocs):
        if peer == ctx.rank:
            continue
        yield from ctx.armci.put(GlobalAddress(peer, base + ctx.rank), [1])
    yield from ctx.armci.barrier()
    return (
        ctx.armci.stats.get("barrier_fallbacks", 0),
        ctx.armci.stats.get("fence_retries", 0),
    )


class TestBarrierWatchdog:
    def test_stalled_server_degrades_to_allfence(self):
        runtime = make_runtime("stall", watchdog_us=300.0)
        results = runtime.run_spmd(put_barrier_workload)
        fallbacks = sum(r[0] for r in results)
        assert fallbacks >= 1
        assert runtime.fabric.faults.stats.stall_held > 0
        # The run finished: the watchdog turned a wedged stage-2 wait into
        # a completed (if slower) barrier.
        assert runtime.env.now > 0.0

    def test_no_fallback_on_healthy_network(self):
        params = myrinet2000().with_(watchdog_timeout_us=300.0)
        runtime = ClusterRuntime(NPROCS, params=params)
        results = runtime.run_spmd(put_barrier_workload)
        assert sum(r[0] for r in results) == 0
        assert sum(r[1] for r in results) == 0

    def test_crashed_server_with_reliable_layer_keeps_state(self):
        # The transport retransmits everything the crash window destroyed:
        # the barrier needs no fallback and memory converges.
        runtime = make_runtime("crash", watchdog_us=0.0, end_us=150.0, reliable=True)
        runtime.run_spmd(put_barrier_workload)
        expected = [1] * NPROCS
        for rank in range(NPROCS):
            region = runtime.regions[rank]
            base = region.alloc_named("wd.slots", NPROCS)
            got = region.read_many(base, NPROCS)
            got[rank] = 1  # own slot never written
            assert got == expected
        assert runtime.fabric.faults.stats.crash_dropped > 0
        assert runtime.fabric.stats.retransmits > 0


class TestFenceWatchdog:
    def test_fence_retries_through_stall_window(self):
        runtime = make_runtime("stall", watchdog_us=50.0, end_us=500.0)

        def workload(ctx):
            base = ctx.region.alloc_named("f.cell", 1, initial=0)
            if ctx.rank == 0:
                yield from ctx.armci.put(GlobalAddress(STALLED_NODE, base), [9])
                yield from ctx.armci.fence(STALLED_NODE)
            return ctx.armci.stats.get("fence_retries", 0)

        results = runtime.run_spmd(workload)
        assert results[0] > 0
        assert runtime.env.now >= 500.0  # completed only after the window
        assert runtime.regions[STALLED_NODE].read(
            runtime.regions[STALLED_NODE].alloc_named("f.cell", 1)
        ) == 9

    def test_fence_watchdog_gives_up_after_max_retries(self):
        from repro.sim.core import SimulationError

        plan = FaultPlan(
            stalls=(StallWindow(node=1, start_us=0.0, end_us=1e9, mode="crash"),),
            reliable=False,
        )
        params = myrinet2000().with_(
            faults=plan, watchdog_timeout_us=20.0, max_retries=3
        )
        runtime = ClusterRuntime(2, params=params)

        def workload(ctx):
            base = ctx.region.alloc_named("dead.cell", 1, initial=0)
            if ctx.rank == 0:
                yield from ctx.armci.put(GlobalAddress(1, base), [1])
                yield from ctx.armci.fence(1)

        with pytest.raises(SimulationError, match="unanswered"):
            runtime.run_spmd(workload)
