"""Calibrated auto-selection: cost-model estimates and the crossover."""

import pytest

from repro.armci.barrier import (
    _auto_select,
    estimate_exchange_us,
    estimate_linear_us,
    estimate_nic_us,
    predicted_crossover_targets,
)
from repro.net.params import myrinet2000
from repro.runtime.memory import GlobalAddress


class TestEstimates:
    def test_linear_grows_with_dirty_count(self):
        p = myrinet2000()
        costs = [estimate_linear_us(p, 16, d) for d in range(0, 16)]
        assert all(b > a for a, b in zip(costs, costs[1:]))

    def test_exchange_independent_of_dirty_count(self):
        p = myrinet2000()
        assert estimate_exchange_us(p, 16) == estimate_exchange_us(p, 16)
        assert estimate_exchange_us(p, 16) > estimate_exchange_us(p, 4)

    def test_predicted_crossover_in_paper_range(self):
        """§3.1.2: the linear path wins only for a handful of servers."""
        crossover = predicted_crossover_targets(myrinet2000(), 16)
        assert 1 <= crossover <= 4

    def test_predicted_crossover_matches_empirical(self):
        """EXPERIMENTS.md measures the empirical crossover at 2 targets."""
        assert predicted_crossover_targets(myrinet2000(), 16) == 2

    def test_nic_estimate_beats_host_exchange_at_scale(self):
        p = myrinet2000()
        for n in (8, 16):
            assert estimate_nic_us(p, n, n) < estimate_exchange_us(p, n)

    def test_degenerate_sizes(self):
        p = myrinet2000()
        assert estimate_exchange_us(p, 1) >= 0.0
        assert estimate_nic_us(p, 1, 1) >= 0.0
        assert predicted_crossover_targets(p, 1) >= 0


def selector_program(targets):
    """Dirty ``targets`` servers, then report what auto would run."""

    def main(ctx):
        base = ctx.region.alloc(1, initial=0)
        for k in range(targets):
            peer = (ctx.rank + 1 + k) % ctx.nprocs
            if peer != ctx.rank:
                yield from ctx.armci.put(GlobalAddress(peer, base), [1])
        choice = _auto_select(ctx.armci)
        yield from ctx.armci.barrier(algorithm="auto")
        return choice

    return main


class TestAutoSelection:
    def test_few_targets_pick_linear(self, make_cluster):
        rt = make_cluster(nprocs=16)
        assert set(rt.run_spmd(selector_program(1))) == {"linear"}

    def test_many_targets_pick_exchange(self, make_cluster):
        rt = make_cluster(nprocs=16)
        assert set(rt.run_spmd(selector_program(15))) == {"exchange"}

    def test_nic_ignored_without_offload_flag(self, make_cluster):
        rt = make_cluster(nprocs=16)
        rt.run_spmd(selector_program(15))
        assert getattr(rt.fabric, "_nic_engines", None) is None

    def test_nic_considered_with_offload_flag(self, make_cluster):
        rt = make_cluster(nprocs=16, params=myrinet2000(nic_offload=True))
        choices = set(rt.run_spmd(selector_program(15)))
        assert choices == {"nic"}
        assert rt.fabric._nic_engines is not None

    def test_offloaded_auto_still_picks_linear_when_cheap(self, make_cluster):
        """No dirty servers: the bare MPI barrier beats even the NIC."""
        rt = make_cluster(nprocs=16, params=myrinet2000(nic_offload=True))
        assert set(rt.run_spmd(selector_program(0))) == {"linear"}
