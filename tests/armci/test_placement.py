"""ARMCI semantics across irregular SMP placements."""

import pytest

from repro.runtime.memory import GlobalAddress


def all_to_all(ctx):
    base = ctx.region.alloc_named("p", ctx.nprocs, initial=0)
    for peer in range(ctx.nprocs):
        if peer != ctx.rank:
            yield from ctx.armci.put(
                GlobalAddress(peer, base + ctx.rank), [ctx.rank + 1]
            )
    yield from ctx.armci.barrier()
    return ctx.region.read_many(base, ctx.nprocs)


PLACEMENTS = [
    ("interleaved", [0, 1, 0, 1]),
    ("clustered", [0, 0, 1, 1]),
    ("lopsided", [0, 0, 0, 1]),
    ("all_one_node", [0, 0, 0, 0]),
]


class TestPlacements:
    @pytest.mark.parametrize("name,placement", PLACEMENTS)
    def test_barrier_semantics_hold(self, make_cluster, name, placement):
        rt = make_cluster(nprocs=4, placement=placement)
        for rank, values in enumerate(rt.run_spmd(all_to_all)):
            expected = [r + 1 if r != rank else 0 for r in range(4)]
            assert values == expected, f"{name}: rank {rank}"

    def test_all_local_cluster_uses_no_wire(self, make_cluster):
        rt = make_cluster(nprocs=4, placement=[0, 0, 0, 0])
        rt.run_spmd(all_to_all)
        assert rt.fabric.stats.inter_node == 0

    @pytest.mark.parametrize("name,placement", PLACEMENTS)
    def test_allfence_respects_placement(self, make_cluster, name, placement):
        def main(ctx):
            base = ctx.region.alloc_named("q", 1, 0)
            if ctx.rank == 0:
                for peer in range(1, ctx.nprocs):
                    yield from ctx.armci.put(GlobalAddress(peer, base), [1])
                yield from ctx.armci.allfence()
            else:
                yield ctx.compute(1)
            return None

        rt = make_cluster(nprocs=4, placement=placement)
        rt.run_spmd(main)
        my_node = rt.topology.node_of(0)
        # Only *other* nodes with dirty puts receive fence requests.
        for node, server in rt.servers.items():
            ranks_there = rt.topology.ranks_on(node)
            remote_targets = [r for r in ranks_there if r != 0]
            if node == my_node:
                assert server.stats.fences == 0
            elif remote_targets:
                assert server.stats.fences == 1
            else:
                assert server.stats.fences == 0

    def test_locks_across_lopsided_placement(self, make_cluster):
        from repro.locks import make_lock
        from repro.mp import collectives

        def main(ctx, kind):
            lock = make_lock(kind, ctx, home_rank=0, name="pl")
            yield from collectives.barrier(ctx.comm)
            spans = []
            for _ in range(4):
                yield from lock.acquire()
                start = ctx.now
                yield ctx.compute(2.0)
                spans.append((start, ctx.now))
                yield from lock.release()
            yield from ctx.armci.barrier()
            return spans

        for kind in ("hybrid", "mcs"):
            rt = make_cluster(nprocs=4, placement=[0, 0, 0, 1])
            spans = sorted(s for per in rt.run_spmd(main, kind) for s in per)
            for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
                assert e1 <= s2, kind

    def test_notify_between_colocated(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc_named("n", 1, 0)
            if ctx.rank == 0:
                yield from ctx.armci.put(GlobalAddress(1, base), [5])
                yield from ctx.armci.notify(1)
                return None
            yield from ctx.armci.notify_wait(0)
            return ctx.region.read(base)

        rt = make_cluster(nprocs=2, placement=[0, 0])
        assert rt.run_spmd(main)[1] == 5
        assert rt.fabric.stats.inter_node == 0
