"""Property test: the dependence relation is sound on real schedules.

For 200 fuzzer-generated small scenarios, take the first choice point of
the default exploration run, swap the chosen delivery with a co-enabled
delivery classified *independent* of it, and re-run.  If the
classification is right, the swap commutes: the RMCSan verdict and the
timing-independent end-state hash must both be unchanged.  A single
mismatch means :func:`repro.mc.strategy.independent` commutes deliveries
that actually conflict — the exact unsoundness that would let the
explorer prune a buggy schedule.

Window 0 keeps the swap an *exact* co-enabled tie, so not even event
timing differs between the two runs.
"""

from __future__ import annotations

from repro.fuzz.runner import run_scenario
from repro.fuzz.scenario import generate
from repro.mc.strategy import RecordingStrategy, independent, label_key

SEEDS = range(200)
SIM_CAP_US = 20_000.0


def _first_independent_swap(strategy):
    """``(depth, alt)`` for the first swappable choice point, or ``None``."""
    for d, (options, chosen, _sleep) in enumerate(strategy.decisions):
        for alt in options:
            if alt != chosen and independent(alt, chosen):
                return d, alt
    return None


def test_swapping_independent_deliveries_preserves_verdict_and_state():
    swapped_count = 0
    for seed in SEEDS:
        scenario = generate(seed, constrain={"nprocs": 3 + seed % 2})
        base_strategy = RecordingStrategy(window=0.0)
        base = run_scenario(
            scenario, strategy=base_strategy, sim_cap_us=SIM_CAP_US
        )
        swap = _first_independent_swap(base_strategy)
        if swap is None:
            continue  # no exact-tie independent pair in this scenario
        depth, alt = swap
        prefix = base_strategy.chosen_schedule()[:depth] + (label_key(alt),)
        swapped_strategy = RecordingStrategy(prefix=prefix, window=0.0)
        swapped = run_scenario(
            scenario, strategy=swapped_strategy, sim_cap_us=SIM_CAP_US
        )
        assert not swapped_strategy.diverged, f"seed {seed}: swap unreachable"
        swapped_count += 1
        assert swapped.ok() == base.ok(), (
            f"seed {seed}: verdict changed by independent swap at depth "
            f"{depth}: {base.kinds()} -> {swapped.kinds()}"
        )
        assert swapped.end_state_hash == base.end_state_hash, (
            f"seed {seed}: end state changed by independent swap at depth "
            f"{depth} ({alt!r})"
        )
    # The property must not hold vacuously: a healthy fraction of the
    # fuzzed scenarios actually contains an exact-tie independent pair.
    assert swapped_count >= 40, f"only {swapped_count}/200 scenarios swapped"
