"""Sanity tests for the named model-checking targets."""

from __future__ import annotations

import pytest

from repro.fuzz.scenario import scenario_from_json, scenario_to_json
from repro.mc.targets import TARGETS, get_target


def test_expected_targets_present():
    assert set(TARGETS) == {
        "nic-barrier",
        "nic-barrier-crash",
        "ticket-handoff",
        "mcs-handoff",
        "reliable",
        "partition-heal",
        "twolevel-barrier",
    }


def test_get_target_unknown_lists_known():
    with pytest.raises(KeyError, match="unknown mc target"):
        get_target("no-such-target")


def test_scenarios_are_small_and_serializable():
    for target in TARGETS.values():
        assert 2 <= target.scenario.nprocs <= 4
        assert target.budget > 0
        assert target.sim_cap_us > 0
        roundtrip = scenario_from_json(scenario_to_json(target.scenario))
        assert roundtrip == target.scenario


def test_crash_free_targets_expect_exhaustion():
    assert get_target("nic-barrier").expect_exhaustive
    assert get_target("mcs-handoff").expect_exhaustive
    assert not get_target("nic-barrier-crash").expect_exhaustive
    assert not get_target("reliable").expect_exhaustive
    assert not get_target("partition-heal").expect_exhaustive
    # Four ranks over two fabric levels: explicitly budget-bounded.
    assert not get_target("twolevel-barrier").expect_exhaustive
