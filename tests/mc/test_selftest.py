"""The RMCheck oracle self-test: all three fuzz mutants found by exploration."""

from __future__ import annotations

from repro.mc.selftest import MC_MUTANT_PINS, check_pin, run_mc_self_test


def test_pins_cover_every_fuzz_mutant():
    from repro.fuzz.selftest import MUTANTS

    assert {p.mutant for p in MC_MUTANT_PINS} == {m.name for m in MUTANTS}


def test_every_mutant_caught_with_attribution():
    result = run_mc_self_test()
    rendered = result.render()
    assert result.all_caught(), rendered
    for r in result.results:
        # A catch requires the full chain: counterexample found, replay
        # fails under the patch, and the same schedule is clean without it.
        assert r.replay_confirmed, rendered
        assert r.clean_schedule_ok, rendered
        assert r.violation_kinds, rendered
        assert r.counterexample is not None
    assert "ORACLE VALIDATED" in rendered


def test_check_pin_is_deterministic():
    pin = MC_MUTANT_PINS[0]
    a = check_pin(pin)
    b = check_pin(pin)
    assert a.schedules_run == b.schedules_run
    assert a.violation_kinds == b.violation_kinds
    assert a.counterexample == b.counterexample
