"""End-to-end tests for the DFS explorer and counterexample machinery."""

from __future__ import annotations

import json

import pytest

from repro.fuzz.scenario import scenario_from_json, scenario_to_json
from repro.mc import explore, get_target, load_counterexample, replay_counterexample
from repro.mc.explore import COUNTEREXAMPLE_FORMAT
from repro.mc.selftest import MC_MUTANT_PINS, _mutant, pin_scenario


def _explore_target(name, **overrides):
    t = get_target(name)
    kwargs = dict(
        window=t.window, budget=t.budget, sim_cap_us=t.sim_cap_us, target=t.name
    )
    kwargs.update(overrides)
    return explore(t.scenario, **kwargs)


class TestExhaustion:
    def test_nic_barrier_exhausts_with_large_reduction(self):
        # Acceptance criterion: the crash-free NIC fence+barrier at N=3
        # is fully explored inside the budget, at >= 10x fewer schedules
        # than naive enumeration.
        result = _explore_target("nic-barrier")
        assert result.ok()
        assert result.exhausted
        assert result.reduction_factor() >= 10.0
        assert result.schedules_run > 100  # genuinely explored, not degenerate
        assert result.distinct_end_states == 1  # protocol is schedule-oblivious

    def test_mcs_handoff_exhausts(self):
        result = _explore_target("mcs-handoff")
        assert result.ok()
        assert result.exhausted
        assert result.reduction_factor() >= 10.0
        assert result.distinct_end_states == 1

    def test_ticket_handoff_is_degenerate_single_schedule(self):
        # The ticket lock is pure shared memory: no labeled deliveries,
        # one schedule.  This pins down that the controlled scheduler
        # does not perturb local locks.
        result = _explore_target("ticket-handoff")
        assert result.ok()
        assert result.exhausted
        assert result.schedules_run == 1
        assert result.max_depth == 0

    def test_exploration_is_deterministic(self):
        a = _explore_target("mcs-handoff")
        b = _explore_target("mcs-handoff")
        assert a.schedules_run == b.schedules_run
        assert a.pruned == b.pruned
        assert a.naive_bound == b.naive_bound

    def test_budget_bounds_runs(self):
        result = _explore_target("nic-barrier", budget=25)
        assert result.schedules_run == 25
        assert not result.exhausted


class TestCounterexample:
    @pytest.fixture(scope="class")
    def caught(self):
        # hasty-nic at N=2 is the fastest mutant catch.
        pin = next(p for p in MC_MUTANT_PINS if p.mutant == "hasty-nic")
        mutant = _mutant(pin.mutant)
        scenario = pin_scenario(pin)
        with mutant.patch():
            result = explore(
                scenario,
                window=pin.window,
                budget=pin.budget,
                sim_cap_us=pin.sim_cap_us,
            )
        return pin, mutant, result

    def test_counterexample_found_and_serialized(self, caught):
        pin, _mutant_, result = caught
        assert not result.ok()
        ce = result.counterexample
        assert ce["format"] == COUNTEREXAMPLE_FORMAT
        assert ce["violation_kinds"] == list(result.violation_kinds)
        assert result.violation_kinds  # non-empty kinds
        # The embedded scenario round-trips to the exact pinned scenario.
        assert scenario_from_json(json.dumps(ce["scenario"])) == pin_scenario(pin)

    def test_replay_roundtrip(self, caught, tmp_path):
        _pin, mutant, result = caught
        path = tmp_path / "ce.json"
        path.write_text(json.dumps(result.counterexample))
        data = load_counterexample(str(path))
        with mutant.patch():
            outcome = replay_counterexample(data)
        assert not outcome.ok()
        assert outcome.kinds() == result.violation_kinds

    def test_clean_replay_passes(self, caught):
        _pin, _mutant_, result = caught
        outcome = replay_counterexample(result.counterexample)
        assert outcome.ok()

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "not-a-counterexample"}))
        with pytest.raises(ValueError, match="not an RMCheck counterexample"):
            load_counterexample(str(path))


class TestResultReporting:
    def test_render_mentions_reduction(self):
        result = _explore_target("mcs-handoff")
        text = result.render()
        assert "reduction" in text
        assert "exhausted" in text

    def test_to_json_roundtrips(self):
        result = _explore_target("mcs-handoff")
        data = json.loads(result.to_json())
        assert data["ok"] is True
        assert data["schedules_run"] == result.schedules_run
        assert data["reduction_factor"] >= 10.0
