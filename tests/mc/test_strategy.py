"""Unit tests for the exploration strategy and the dependence relation."""

from __future__ import annotations

from repro.mc.strategy import (
    RecordingStrategy,
    canonical_trace_hash,
    independent,
    label_key,
)


MSG_A0 = ("msg", ("srv", 0), (1, 0))
MSG_A1 = ("msg", ("srv", 0), (2, 0))
MSG_B0 = ("msg", ("srv", 1), (1, 1))
ACK_C = ("ack", ("ack-ch", (0, 1)), (3, 1, 0))


class TestIndependence:
    def test_different_destinations_commute(self):
        assert independent(MSG_A0, MSG_B0)
        assert independent(MSG_A0, ACK_C)

    def test_same_destination_conflicts(self):
        assert not independent(MSG_A0, MSG_A1)

    def test_acks_conflict_per_channel(self):
        other_ack = ("ack", ("ack-ch", (0, 1)), (4, 1, 0))
        assert not independent(ACK_C, other_ack)

    def test_symmetry(self):
        for a in (MSG_A0, MSG_B0, ACK_C):
            for b in (MSG_A0, MSG_B0, ACK_C):
                assert independent(a, b) == independent(b, a)


class TestCanonicalTraceHash:
    def test_independent_swap_is_equivalent(self):
        assert canonical_trace_hash([MSG_A0, MSG_B0]) == canonical_trace_hash(
            [MSG_B0, MSG_A0]
        )

    def test_dependent_swap_is_distinct(self):
        assert canonical_trace_hash([MSG_A0, MSG_A1]) != canonical_trace_hash(
            [MSG_A1, MSG_A0]
        )

    def test_distant_independent_reorder_is_equivalent(self):
        # The bubble pass must commute across a run of independents.
        t1 = [MSG_A0, ACK_C, MSG_B0]
        t2 = [MSG_B0, MSG_A0, ACK_C]
        assert canonical_trace_hash(t1) == canonical_trace_hash(t2)


class _Entry:
    """Shape-compatible stand-in for a heap entry (time, prio, seq, event)."""

    class _Ev:
        def __init__(self, label):
            self._mc_label = label

    def __new__(cls, label):
        return (0.0, 1, 0, cls._Ev(label))


class TestRecordingStrategy:
    def test_unlabeled_head_is_not_a_choice_point(self):
        s = RecordingStrategy()
        assert s.choose(0.0, [_Entry(None), _Entry(MSG_A0)]) == 0
        assert s.decisions == []

    def test_free_choice_records_options(self):
        s = RecordingStrategy()
        idx = s.choose(0.0, [_Entry(MSG_A0), _Entry(MSG_B0)])
        assert idx == 0
        [(options, chosen, sleep)] = s.decisions
        assert options == [MSG_A0, MSG_B0]
        assert chosen == MSG_A0
        assert sleep == ()

    def test_prefix_forces_the_matching_candidate(self):
        s = RecordingStrategy(prefix=(label_key(MSG_B0),))
        idx = s.choose(0.0, [_Entry(MSG_A0), _Entry(MSG_B0)])
        assert idx == 1
        assert s.chosen_schedule() == (label_key(MSG_B0),)

    def test_unmatchable_prefix_diverges(self):
        s = RecordingStrategy(prefix=(label_key(ACK_C),))
        s.choose(0.0, [_Entry(MSG_A0), _Entry(MSG_B0)])
        assert s.diverged and s.abort

    def test_sleeping_choice_skipped(self):
        s = RecordingStrategy(sleep=(MSG_A0,))
        idx = s.choose(0.0, [_Entry(MSG_A0), _Entry(MSG_B0)])
        assert idx == 1

    def test_all_sleeping_aborts_redundant(self):
        s = RecordingStrategy(sleep=(MSG_A0, MSG_B0))
        s.choose(0.0, [_Entry(MSG_A0), _Entry(MSG_B0)])
        assert s.redundant and s.abort

    def test_sole_sleeping_candidate_aborts_redundant(self):
        # The classical sleep-set prune: executing a sleeping transition
        # outside a choice point duplicates a sibling's coverage.
        s = RecordingStrategy(sleep=(MSG_A0,))
        s.choose(0.0, [_Entry(MSG_A0)])
        assert s.redundant and s.abort

    def test_executed_filters_dependent_sleepers(self):
        s = RecordingStrategy(sleep=(MSG_A0, MSG_B0))
        s.executed(MSG_A1)  # same dst as MSG_A0 -> wakes it
        assert s.sleep == {MSG_B0}

    def test_prefix_replay_leaves_sleep_untouched(self):
        # Mid-replay (depth < len(prefix)) the stored sleep set was
        # computed at the branch state and must not be re-filtered.
        s = RecordingStrategy(
            prefix=(label_key(MSG_A1), label_key(MSG_B0)), sleep=(MSG_A0,)
        )
        s.choose(0.0, [_Entry(MSG_A1), _Entry(MSG_B0)])
        s.executed(MSG_A1)  # dependent on the sleeper, but still replaying
        assert s.sleep == {MSG_A0}

    def test_branching_product(self):
        s = RecordingStrategy()
        s.choose(0.0, [_Entry(MSG_A0), _Entry(MSG_B0)])
        s.choose(0.0, [_Entry(MSG_A1), _Entry(MSG_B0), _Entry(ACK_C)])
        assert s.branching_product() == 6
