"""Acceptance tests for the ``partition-heal`` RMCheck target.

The target pins a one-node cut across a token-lock workload.  With the
real resync + fencing machinery the heal is clean under every explored
schedule.  With the rejoin resync patched out — the returning rank keeps
its stale token copy — the split-brain is caught twice over:

* the RMCSan rule flags the un-resynced rejoin directly
  (``san-split-brain``) on a plain fuzz run, and
* the explorer finds a violating schedule, whose counterexample replays
  deterministically (fails under the patch, clean without it).
"""

from __future__ import annotations

import contextlib

import pytest

from repro.mc import explore, get_target, replay_counterexample
from repro.fuzz.runner import run_scenario


@contextlib.contextmanager
def _patched_no_resync():
    from repro.runtime.membership import MembershipService

    # A data descriptor on the class shadows the per-instance attribute:
    # every read sees resync disabled, so a rejoining rank re-enters the
    # view without replaying the recorded view changes — its stale token
    # and region state survive the heal.
    MembershipService.resync_enabled = property(
        lambda self: False, lambda self, value: None
    )
    try:
        yield
    finally:
        del MembershipService.resync_enabled


def _explore_partition_heal(**overrides):
    t = get_target("partition-heal")
    kwargs = dict(
        window=t.window, budget=t.budget, sim_cap_us=t.sim_cap_us, target=t.name
    )
    kwargs.update(overrides)
    return explore(t.scenario, **kwargs)


class TestHealthyProtocol:
    def test_scenario_runs_clean(self):
        t = get_target("partition-heal")
        outcome = run_scenario(t.scenario, sim_cap_us=t.sim_cap_us)
        assert outcome.ok(), outcome.kinds()

    def test_exploration_finds_no_violation(self):
        result = _explore_partition_heal(budget=40)
        assert result.ok(), result.violation_kinds
        assert result.counterexample is None
        assert result.schedules_run > 0


class TestResyncPatchedOut:
    def test_san_rule_flags_split_brain(self):
        t = get_target("partition-heal")
        with _patched_no_resync():
            outcome = run_scenario(t.scenario, sim_cap_us=t.sim_cap_us)
        assert not outcome.ok()
        assert "san-split-brain" in outcome.kinds()

    def test_explorer_finds_replayable_counterexample(self):
        with _patched_no_resync():
            result = _explore_partition_heal(budget=25)
        assert not result.ok()
        assert result.counterexample is not None
        assert any("split-brain" in k for k in result.violation_kinds)
        # The counterexample is deterministic evidence: it reproduces the
        # violation under the patch and is clean once the fix is back.
        with _patched_no_resync():
            replayed = replay_counterexample(result.counterexample)
        assert not replayed.ok()
        assert "san-split-brain" in replayed.kinds()
        fixed = replay_counterexample(result.counterexample)
        assert fixed.ok(), fixed.kinds()


class TestTargetShape:
    def test_target_pins_a_minority_cut(self):
        scenario = get_target("partition-heal").scenario
        assert scenario.partitions
        ((nodes, from_us, until_us),) = scenario.partitions
        # Strict minority cut with a heal inside the sim cap.
        nnodes = scenario.nprocs // scenario.procs_per_node
        assert 2 * len(nodes) < nnodes
        assert 0.0 <= from_us < until_us
