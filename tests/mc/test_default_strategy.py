"""Default-strategy byte-identity: the controlled scheduler must change nothing.

Installing the base :class:`~repro.sim.core.SchedulerStrategy` (FIFO
choice, zero window) routes every simulation step through
``_run_controlled`` instead of the fast path.  The contract is that this
is *observationally identical*: every experiment family must render the
exact same results either way, or the model checker would be exploring a
different system than the one the benchmarks measure.
"""

from __future__ import annotations

import pytest

from repro.sim.core import Environment, SchedulerStrategy


@pytest.fixture
def controlled():
    """Route every Environment in the block through the controlled loop."""
    assert Environment.strategy_factory is None
    Environment.strategy_factory = SchedulerStrategy
    try:
        yield
    finally:
        Environment.strategy_factory = None


def _fig7():
    from repro.experiments import Fig7Config, run_fig7

    return run_fig7(Fig7Config(nprocs_list=(2, 4), iterations=3)).render()


def _locks():
    from repro.experiments import LockBenchConfig, run_lock_series
    from repro.experiments.lockbench import comparison_from_series

    series = run_lock_series(LockBenchConfig(nprocs_list=(2, 4), iterations=5))
    return comparison_from_series(series, "roundtrip", "locks").render()


def _faults():
    from repro.experiments.faultbench import FaultBenchConfig, run_faultbench

    cfg = FaultBenchConfig(nprocs=4, drop_rates=(0.0, 0.05), epochs=2)
    return run_faultbench(cfg).render()


def _chaos():
    from repro.experiments.chaosbench import ChaosBenchConfig, run_chaosbench

    cfg = ChaosBenchConfig(
        nprocs=4,
        barrier_kills=((3, 60.0),),
        lock_kills=((2, 900.0),),
        lock_iters=2,
    )
    return run_chaosbench(cfg).render()


@pytest.mark.parametrize(
    "runner", [_fig7, _locks, _faults, _chaos], ids=["fig7", "locks", "faults", "chaos"]
)
def test_default_strategy_results_byte_identical(runner, controlled):
    controlled_out = runner()
    Environment.strategy_factory = None
    plain_out = runner()
    assert controlled_out == plain_out
