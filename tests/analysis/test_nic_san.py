"""RMCSan coverage of the NIC-offloaded barrier.

A clean NIC run (both inter-NIC algorithms) reports zero violations; a
seeded early-release mutation — a NIC firmware that writes the completion
back before running any of the combining protocol — must be flagged by
the no-early-release rule (release happens-after every doorbell).
"""

from __future__ import annotations

import pytest

from repro.analysis import SyncMonitor
from repro.analysis.sanitize import run_sanitized_target
from repro.net.params import myrinet2000
from repro.nic.engine import NicEngine
from repro.runtime.cluster import ClusterRuntime
from repro.runtime.memory import GlobalAddress


def sanitized_run(nprocs, main, *args, **runtime_kwargs):
    runtime_kwargs.setdefault("params", myrinet2000())
    monitor = SyncMonitor()
    runtime = ClusterRuntime(nprocs, monitor=monitor, **runtime_kwargs)
    runtime.run_spmd(main, *args)
    return monitor.analyze()


def nic_workload(ctx):
    base = ctx.region.alloc(ctx.nprocs, initial=0)
    for _round in range(2):
        for peer in range(ctx.nprocs):
            if peer != ctx.rank:
                yield from ctx.armci.put(
                    GlobalAddress(peer, base + ctx.rank), [ctx.rank + 1]
                )
        yield from ctx.armci.barrier(algorithm="nic")
    return ctx.region.read_many(base, ctx.nprocs)


class TestCleanRuns:
    @pytest.mark.parametrize("nic_algorithm", ["exchange", "tree"])
    def test_nic_barrier_is_clean(self, nic_algorithm):
        report = sanitized_run(
            4, nic_workload, params=myrinet2000(nic_algorithm=nic_algorithm)
        )
        assert report.ok(), report.render()
        assert report.events_analyzed > 0

    def test_sanitize_target_nic(self):
        results = run_sanitized_target("nic")
        labels = [label for label, _ in results]
        assert labels == [
            "nic[exchange]", "nic[tree]", "nic[crash=nic]", "nic[crash=node]"
        ]
        for label, report in results:
            assert report.ok(), f"{label}:\n{report.render()}"


class TestEarlyReleaseMutation:
    def test_premature_release_is_caught(self, monkeypatch):
        """Node 0's NIC releases its ranks before any combining ran.

        The mutated coordinator fires the completion write-back as soon
        as its own doorbells arrived, then runs the real protocol (so
        peer NICs do not deadlock).  At the premature ``nic_release``
        the NIC's clock has not joined any doorbell, so the release
        dominates none of them.
        """
        original = NicEngine._run_epoch

        def hasty(self, epoch, state):
            if self.node == 0:
                yield state.all_rows
                for rank in self.hosted:
                    self._emit(
                        "nic_release", epoch=epoch, node=self.node,
                        rank=rank, n=self.nprocs,
                    )
                    self._schedule_release(
                        state.release[rank], 0,
                        self.params.nic_dma_us + self.params.poll_detect_us,
                    )
            yield from original(self, epoch, state)

        monkeypatch.setattr(NicEngine, "_run_epoch", hasty)
        report = sanitized_run(4, nic_workload)
        assert report.counts.get("barrier", 0) >= 1
        assert any(
            "nic early release" in v.message
            for v in report.violations
            if v.kind == "barrier"
        )
