"""Seeded-mutation tests: each protocol bug class must be detected.

Every test monkeypatches one deliberate bug into the runtime (a mutation
of the kind RMCSan exists to catch), runs a small workload under the
monitor, and asserts the analyzer reports the matching violation.  A
clean twin alongside the race mutation pins down that the detection is
the mutation's fault, not a false positive of the workload.
"""

from __future__ import annotations

import pytest

from repro.analysis import SyncMonitor
from repro.mp import collectives
from repro.net.params import myrinet2000
from repro.runtime import server as server_mod
from repro.runtime.cluster import ClusterRuntime
from repro.runtime import atomics


def sanitized_run(nprocs, main, *args, **runtime_kwargs):
    """Run ``main`` SPMD under a fresh monitor; return the analysis report."""
    runtime_kwargs.setdefault("params", myrinet2000())
    monitor = SyncMonitor()
    runtime = ClusterRuntime(nprocs, monitor=monitor, **runtime_kwargs)
    runtime.run_spmd(main, *args)
    return monitor.analyze()


class TestDoubleLockGrant:
    def test_always_granting_server_is_caught(self, monkeypatch):
        """A lock server that grants every request produces two holders."""

        def eager_grant(self, req):
            region = self._hosted_region(req.home_rank)
            ticket = atomics.fetch_and_add(region, req.base_addr, 1)
            yield from self._reply(req.src_rank, req.reply, value=ticket)

        monkeypatch.setattr(server_mod.ServerThread, "_handle_lock", eager_grant)

        def workload(ctx):
            from repro.locks.hybrid import HybridLock

            lock = HybridLock(ctx, home_rank=0)
            yield from lock.acquire()
            yield ctx.env.timeout(50.0)  # hold, so remote grants overlap
            yield from lock.release()

        report = sanitized_run(3, workload)
        assert report.counts.get("lock", 0) >= 1
        assert any(
            "while held by" in v.message
            for v in report.violations
            if v.kind == "lock"
        )


class TestOverCredit:
    def test_get_bumping_op_done_is_caught(self, monkeypatch):
        """op_done credited for a non-store op trips the credit ledger."""
        original = server_mod.ServerThread._handle_get

        def leaky_get(self, req):
            yield from original(self, req)
            self._bump_op_done(req.dst_rank)

        monkeypatch.setattr(server_mod.ServerThread, "_handle_get", leaky_get)

        def workload(ctx):
            addr = ctx.region.alloc_named("cell", 1, initial=ctx.rank)
            yield from collectives.barrier(ctx.comm)
            if ctx.rank == 0:
                value = yield from ctx.armci.get(ctx.ga(1, addr), 1)
                assert value == [1]

        report = sanitized_run(2, workload)
        assert report.counts.get("fence", 0) >= 1
        assert any(
            "without a matching" in v.message
            for v in report.violations
            if v.kind == "fence"
        )


class TestDroppedCredit:
    def test_server_never_crediting_is_caught(self, monkeypatch):
        """A server that forgets op_done leaves applied ops uncredited.

        The barrier's stage-2 watchdog keeps the run live (it falls back
        to the linear AllFence path), so the analyzer gets a complete
        trace and flags the missing credits at the end.
        """
        monkeypatch.setattr(
            server_mod.ServerThread, "_bump_op_done", lambda self, rank: None
        )

        def workload(ctx):
            addr = ctx.region.alloc_named("cell", 1, initial=0)
            yield from collectives.barrier(ctx.comm)
            peer = (ctx.rank + 1) % ctx.nprocs
            yield from ctx.armci.put(ctx.ga(peer, addr), [ctx.rank])
            yield from ctx.armci.barrier()

        report = sanitized_run(
            2, workload, params=myrinet2000().with_(watchdog_timeout_us=100.0)
        )
        assert report.counts.get("fence", 0) >= 1
        assert any(
            "dropped op_done credit" in v.message
            for v in report.violations
            if v.kind == "fence"
        )


class TestEarlyBarrierRelease:
    def test_skipping_stage2_is_caught(self, monkeypatch):
        """An ARMCI_Barrier without the op_done wait releases too early."""
        from repro.armci import barrier as barrier_mod

        def hasty_exchange(armci):
            # Stage 1 and stage 3 only: never waits for local completion.
            yield from collectives.allreduce_sum(armci.comm, armci.op_init)
            yield from collectives.barrier(armci.comm)

        monkeypatch.setattr(barrier_mod, "_exchange", hasty_exchange)

        def workload(ctx):
            n = 256  # bulk put: the apply outlives the two log2(N) stages
            addr = ctx.region.alloc_named("block", n, initial=0)
            yield from collectives.barrier(ctx.comm)
            peer = (ctx.rank + 1) % ctx.nprocs
            yield from ctx.armci.put(ctx.ga(peer, addr), [ctx.rank] * n)
            yield from ctx.armci.barrier()

        report = sanitized_run(2, workload)
        assert report.counts.get("barrier", 0) >= 1
        assert any(
            "still un-applied" in v.message
            for v in report.violations
            if v.kind == "barrier"
        )


class TestRace:
    @staticmethod
    def _racy(ctx, synchronize):
        addr = ctx.region.alloc_named("cell", 1, initial=0)
        yield from collectives.barrier(ctx.comm)
        if ctx.rank == 0:
            yield from ctx.armci.put(ctx.ga(1, addr), [7])
            if synchronize:
                yield from ctx.armci.barrier()
        else:
            if synchronize:
                yield from ctx.armci.barrier()
            ctx.region.read(addr)
        yield from collectives.barrier(ctx.comm)

    def test_unordered_put_vs_read_is_caught(self):
        report = sanitized_run(2, self._racy, False)
        assert report.counts.get("data-race", 0) >= 1

    def test_barrier_ordered_twin_is_clean(self):
        report = sanitized_run(2, self._racy, True)
        assert report.ok(), report.render()
