"""RMCSan coverage of the NIC-offloaded barrier under crashes.

The commit-or-abort protocol must keep a mid-exchange NIC or node death
invisible to the happens-before rules: a committed epoch (every NIC
entered the release stage, so all remote ops drained) is force-released
at the view change, and an uncommitted epoch degrades every surviving
host to the resilient host exchange together.  A clean tree reports
zero violations in both cases; a forged forced release — one with no
preceding ``nic_commit`` — must still be flagged, because the analyzer
only sanctions forced releases it can anchor to a commit snapshot.
"""

from __future__ import annotations

import pytest

from repro.analysis import SyncMonitor
from repro.analysis.sanitize import run_sanitized_target
from repro.fuzz.runner import _fuzz_workload, _make_params
from repro.fuzz.scenario import Scenario
from repro.nic.engine import NicEngine
from repro.runtime.cluster import ClusterRuntime


def _crash_scenario(kind: str, target: int, at_us: float = 40.0) -> Scenario:
    return Scenario(
        seed=0,
        nprocs=6,
        procs_per_node=2,
        workload="strips",
        barrier_algorithm="nic",
        nic_algorithm="exchange",
        phases=("puts", "barrier", "puts", "barrier"),
        cells=4,
        crashes=((kind, target, at_us),),
    )


def _sanitized_scenario_run(scenario: Scenario):
    monitor = SyncMonitor()
    runtime = ClusterRuntime(
        scenario.nprocs,
        procs_per_node=scenario.procs_per_node,
        params=_make_params(scenario),
        monitor=monitor,
    )
    shared = {
        "requests": [],
        "grants": [],
        "preemptions": [],
        "cs_owner": None,
        "mutex_ok": True,
    }
    runtime.run_spmd(_fuzz_workload, scenario, shared)
    return monitor, monitor.analyze()


class TestCrashedNicRuns:
    @pytest.mark.parametrize(
        "kind, target", [("nic", 1), ("node", 2)], ids=["nic-crash", "node-crash"]
    )
    def test_mid_exchange_crash_is_clean(self, kind, target):
        monitor, report = _sanitized_scenario_run(_crash_scenario(kind, target))
        assert report.ok(), report.render()
        kinds = {ev.kind for ev in monitor.events}
        # The crash actually happened and was declared while the NIC
        # barrier vocabulary was in play.
        assert "proc_crashed" in kinds
        assert "view_change" in kinds
        assert "nic_doorbell" in kinds

    @pytest.mark.parametrize("at_us", [25.0, 40.0, 120.0])
    def test_nic_crash_timing_sweep_is_clean(self, at_us):
        _monitor, report = _sanitized_scenario_run(
            _crash_scenario("nic", 1, at_us)
        )
        assert report.ok(), report.render()

    def test_sanitize_target_includes_crash_variants(self):
        results = run_sanitized_target("nic")
        labels = [label for label, _ in results]
        assert "nic[crash=nic]" in labels
        assert "nic[crash=node]" in labels
        for label, report in results:
            assert report.ok(), f"{label}:\n{report.render()}"


class TestForgedForcedRelease:
    def test_forced_release_without_commit_is_flagged(self, monkeypatch):
        """A forced release is only sanctioned by a prior ``nic_commit``.

        The mutated firmware fires ``forced=True`` releases as soon as
        its own doorbells arrive — no commit ever happened, so the
        analyzer has no commit snapshot to join and the release cannot
        dominate the remote doorbells.
        """
        original = NicEngine._run_epoch

        def forged(self, epoch, state):
            if self.node == 0:
                yield state.all_rows
                for rank in self.hosted:
                    self._emit(
                        "nic_release", epoch=epoch, node=self.node,
                        rank=rank, n=self.nprocs, forced=True,
                    )
                    self._schedule_release(
                        state.release[rank], 0,
                        self.params.nic_dma_us + self.params.poll_detect_us,
                    )
            yield from original(self, epoch, state)

        monkeypatch.setattr(NicEngine, "_run_epoch", forged)
        import dataclasses

        scenario = dataclasses.replace(_crash_scenario("nic", 1), crashes=())
        _monitor, report = _sanitized_scenario_run(scenario)
        assert any(
            "nic early release" in v.message
            for v in report.violations
            if v.kind == "barrier"
        ), report.render()
