"""Unit tests of the happens-before engine over hand-crafted event streams."""

from __future__ import annotations

from repro.analysis.events import ProtoEvent
from repro.analysis.hb import HBAnalyzer


def E(kind, actor, t=0.0, **data):
    return ProtoEvent(kind=kind, time=t, actor=actor, data=data)


def mem(actor, kind, addr, t=0.0, region="r", n=1, mode="plain"):
    return E(kind, actor, t, region=region, addr=addr, n=n, mode=mode)


def analyze(events, sync_cells=None):
    return HBAnalyzer(sync_cells=sync_cells).analyze(events)


class TestRaces:
    def test_unordered_writes_race(self):
        report = analyze(
            [
                mem("p0", "mem_write", 5, t=1.0),
                mem("p1", "mem_write", 5, t=2.0),
            ]
        )
        assert [v.kind for v in report.violations] == ["data-race"]
        assert report.violations[0].details["addr"] == 5

    def test_write_then_unordered_read_races(self):
        report = analyze(
            [
                mem("p0", "mem_write", 5),
                mem("p1", "mem_read", 5),
            ]
        )
        assert report.counts.get("data-race") == 1

    def test_read_then_unordered_write_races(self):
        report = analyze(
            [
                mem("p1", "mem_read", 5),
                mem("p0", "mem_write", 5),
            ]
        )
        assert report.counts.get("data-race") == 1

    def test_same_actor_is_program_ordered(self):
        report = analyze(
            [
                mem("p0", "mem_write", 5),
                mem("p0", "mem_write", 5),
                mem("p0", "mem_read", 5),
            ]
        )
        assert report.ok()

    def test_concurrent_reads_do_not_race(self):
        report = analyze(
            [
                mem("p0", "mem_read", 5),
                mem("p1", "mem_read", 5),
            ]
        )
        assert report.ok()

    def test_both_atomic_accesses_exempt(self):
        report = analyze(
            [
                mem("p0", "mem_write", 5, mode="atomic"),
                mem("s0", "mem_write", 5, mode="atomic"),
            ]
        )
        assert report.ok()

    def test_atomic_vs_plain_still_races(self):
        report = analyze(
            [
                mem("p0", "mem_write", 5, mode="atomic"),
                mem("p1", "mem_write", 5, mode="plain"),
            ]
        )
        assert report.counts.get("data-race") == 1

    def test_sync_cell_release_acquire_orders(self):
        # p0: write data, release (sync write S).  p1: acquire (sync read
        # S), then touch the data -- ordered, no race.
        report = analyze(
            [
                mem("p0", "mem_write", 5),
                mem("p0", "mem_write", 9, mode="sync"),
                mem("p1", "mem_read", 9, mode="sync"),
                mem("p1", "mem_write", 5),
            ]
        )
        assert report.ok()

    def test_sync_cells_set_applies_to_ranged_access(self):
        # A ranged (plain-mode) write overlapping a registered sync cell
        # must get per-cell sync semantics, not race checks.
        report = analyze(
            [
                mem("p0", "mem_write", 8, n=2),
                mem("p1", "mem_write", 8, n=2),
            ],
            sync_cells={("r", 8), ("r", 9)},
        )
        assert report.ok()

    def test_report_caps_but_counts_everything(self):
        events = []
        for i in range(60):
            events.append(mem("p0", "mem_write", i))
            events.append(mem(f"q{i}", "mem_write", i))
        report = analyze(events)
        assert report.counts["data-race"] == 60
        assert len(report.violations) == 50 and report.suppressed == 10
        assert not report.ok()


class TestOperationLifecycle:
    def test_issue_apply_complete_orders_reader(self):
        # p0 writes locally, issues a get; the server's apply joins p0's
        # issue-time clock; p1's completion joins the apply snapshot, so
        # p1's later write to p0's cell is ordered.
        report = analyze(
            [
                mem("p1", "mem_write", 3),
                E("issue", "p1", op="get", op_id=1, dst_rank=0, node=0),
                E("apply", "s0", op_id=1),
                mem("s0", "mem_read", 3),
                E("apply_done", "s0", op_id=1),
                E("complete", "p1", op_id=1),
            ]
        )
        assert report.ok()

    def test_apply_does_not_inherit_post_issue_events(self):
        # Soundness: the apply joins the *issue-time* snapshot, so a write
        # p0 makes after issuing is NOT ordered before the server's apply.
        report = analyze(
            [
                E("issue", "p0", op="put", op_id=1, dst_rank=1, node=1),
                mem("p0", "mem_write", 7),  # after the issue
                E("apply", "s1", op_id=1),
                mem("s1", "mem_write", 7),  # conflicts; must race
                E("apply_done", "s1", op_id=1),
            ]
        )
        assert report.counts.get("data-race") == 1


class TestFenceCounting:
    def test_over_credit_flagged_at_bump(self):
        report = analyze([E("op_done", "s0", rank=0, value=1)])
        assert report.counts.get("fence") == 1
        assert "without a matching" in report.violations[0].message

    def test_credit_at_apply_is_clean(self):
        report = analyze(
            [
                E("issue", "p1", op="put", op_id=1, dst_rank=0, node=0),
                E("apply", "s0", op_id=1),
                E("op_done", "s0", rank=0, value=1),
                E("apply_done", "s0", op_id=1),
            ]
        )
        assert report.ok()

    def test_get_apply_does_not_earn_credit(self):
        report = analyze(
            [
                E("issue", "p1", op="get", op_id=1, dst_rank=0, node=0),
                E("apply", "s0", op_id=1),
                E("op_done", "s0", rank=0, value=1),
                E("apply_done", "s0", op_id=1),
            ]
        )
        assert report.counts.get("fence") == 1

    def test_dropped_credit_flagged_at_end(self):
        report = analyze(
            [
                E("issue", "p1", op="put", op_id=1, dst_rank=0, node=0),
                E("apply", "s0", op_id=1),
                E("apply_done", "s0", op_id=1),
            ]
        )
        assert report.counts.get("fence") == 1
        assert "dropped op_done credit" in report.violations[0].message

    def test_fence_done_with_unapplied_op(self):
        report = analyze(
            [
                E("issue", "p0", op="put", op_id=1, dst_rank=1, node=1),
                E("fence_done", "p0", node=1),
            ]
        )
        assert report.counts.get("fence") == 1
        assert "un-applied" in report.violations[0].message

    def test_fence_done_after_apply_is_clean_and_orders(self):
        report = analyze(
            [
                E("issue", "p0", op="put", op_id=1, dst_rank=1, node=1),
                E("apply", "s1", op_id=1),
                mem("s1", "mem_write", 4),
                E("op_done", "s1", rank=1, value=1),
                E("apply_done", "s1", op_id=1),
                E("fence_done", "p0", node=1),
                mem("p0", "mem_read", 4),  # ordered through the fence
            ]
        )
        assert report.ok()


class TestBarrier:
    def test_exit_with_unapplied_pending_op(self):
        report = analyze(
            [
                E("issue", "p0", op="put", op_id=1, dst_rank=1, node=1),
                E("barrier_enter", "p0", epoch=1),
                E("barrier_enter", "p1", epoch=1),
                E("barrier_exit", "p1", epoch=1),
                E("apply", "s1", op_id=1),
                E("apply_done", "s1", op_id=1),
                E("barrier_exit", "p0", epoch=1),
            ]
        )
        assert report.counts.get("barrier") == 1
        assert "still un-applied" in report.violations[0].message

    def test_exit_joins_ops_applied_during_barrier(self):
        # The op is outstanding at enter and applied before the exits, so
        # every exit joins its apply snapshot: p1's read is ordered.
        report = analyze(
            [
                E("issue", "p0", op="put", op_id=1, dst_rank=1, node=1),
                E("barrier_enter", "p0", epoch=1),
                E("barrier_enter", "p1", epoch=1),
                E("apply", "s1", op_id=1),
                mem("s1", "mem_write", 2),
                E("op_done", "s1", rank=1, value=1),
                E("apply_done", "s1", op_id=1),
                E("barrier_exit", "p0", epoch=1),
                E("barrier_exit", "p1", epoch=1),
                mem("p1", "mem_read", 2),
            ]
        )
        assert report.ok()

    def test_collective_exit_joins_enters(self):
        report = analyze(
            [
                mem("p0", "mem_write", 6),
                E("coll_enter", "p0", coll="barrier", epoch=0),
                E("coll_enter", "p1", coll="barrier", epoch=0),
                E("coll_exit", "p0", coll="barrier", epoch=0),
                E("coll_exit", "p1", coll="barrier", epoch=0),
                mem("p1", "mem_write", 6),
            ]
        )
        assert report.ok()


class TestLocks:
    def test_two_holders(self):
        report = analyze(
            [
                E("lock_acq", "p0", lock="L", ticket=None),
                E("lock_acq", "p1", lock="L", ticket=None),
            ]
        )
        assert report.counts.get("lock") == 1
        assert "while held by" in report.violations[0].message

    def test_unlock_without_hold(self):
        report = analyze([E("lock_rel", "p0", lock="L")])
        assert report.counts.get("lock") == 1
        assert "without holding" in report.violations[0].message

    def test_non_fifo_ticket_grant(self):
        report = analyze(
            [
                E("lock_acq", "p0", lock="L", ticket=0),
                E("lock_rel", "p0", lock="L"),
                E("lock_acq", "p1", lock="L", ticket=2),  # skipped ticket 1
            ]
        )
        assert report.counts.get("lock") == 1
        assert "non-FIFO" in report.violations[0].message

    def test_fifo_sequence_is_clean(self):
        events = []
        for i, actor in enumerate(["p0", "p1", "p2"]):
            events.append(E("lock_acq", actor, lock="L", ticket=i))
            events.append(E("lock_rel", actor, lock="L"))
        report = analyze(events)
        assert report.ok()

    def test_release_acquire_edge_orders_critical_sections(self):
        report = analyze(
            [
                E("lock_acq", "p0", lock="L", ticket=None),
                mem("p0", "mem_write", 5),
                E("lock_rel", "p0", lock="L"),
                E("lock_acq", "p1", lock="L", ticket=None),
                mem("p1", "mem_write", 5),
                E("lock_rel", "p1", lock="L"),
            ]
        )
        assert report.ok()

    def test_deadlock_cycle_detected(self):
        report = analyze(
            [
                E("lock_acq", "p0", lock="L1", ticket=None),
                E("lock_acq", "p1", lock="L2", ticket=None),
                E("lock_req", "p0", lock="L2"),
                E("lock_req", "p1", lock="L1"),
            ]
        )
        assert report.counts.get("deadlock") == 1
        assert "wait-for cycle" in report.violations[0].message

    def test_waiting_without_cycle_is_clean(self):
        report = analyze(
            [
                E("lock_acq", "p0", lock="L1", ticket=None),
                E("lock_req", "p1", lock="L1"),
            ]
        )
        # A pending waiter at end of trace is not by itself a deadlock.
        assert report.ok()
