"""Clean-run guarantees: RMCSan finds nothing on the shipped workloads,
and running with the monitor does not perturb the simulation."""

from __future__ import annotations

import pytest

from repro.analysis import SyncMonitor
from repro.analysis.sanitize import TARGETS, run_sanitized_target
from repro.mp import collectives
from repro.net.params import myrinet2000
from repro.runtime.cluster import ClusterRuntime


class TestCleanTargets:
    def test_fig7_has_no_violations(self):
        for label, report in run_sanitized_target("fig7"):
            assert report.ok(), f"{label}:\n{report.render()}"
            assert report.events_analyzed > 0

    def test_locks_have_no_violations(self):
        for label, report in run_sanitized_target("locks"):
            assert report.ok(), f"{label}:\n{report.render()}"

    def test_faultbench_has_no_violations(self):
        for label, report in run_sanitized_target("faultbench"):
            assert report.ok(), f"{label}:\n{report.render()}"

    def test_all_covers_every_target(self):
        labels = [label for label, _ in run_sanitized_target("all")]
        for target in TARGETS:
            assert any(label.startswith(target) for label in labels)

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="unknown check target"):
            run_sanitized_target("fig99")


def _workload(ctx):
    addr = ctx.region.alloc_named("cell", 1, initial=0)
    yield from collectives.barrier(ctx.comm)
    peer = (ctx.rank + 1) % ctx.nprocs
    yield from ctx.armci.put(ctx.ga(peer, addr), [ctx.rank])
    yield from ctx.armci.barrier()
    value = yield from ctx.armci.get(ctx.ga(peer, addr), 1)
    return (ctx.env.now, value)


class TestNonPerturbation:
    def test_monitor_does_not_change_timing_or_results(self):
        """Sanitizer-off and sanitizer-on runs are behaviorally identical."""
        plain = ClusterRuntime(4, params=myrinet2000())
        baseline = plain.run_spmd(_workload)

        monitor = SyncMonitor()
        watched = ClusterRuntime(4, params=myrinet2000(), monitor=monitor)
        observed = watched.run_spmd(_workload)

        assert observed == baseline
        assert watched.env.now == plain.env.now
        assert monitor.analyze().ok()
