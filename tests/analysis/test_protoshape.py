"""Tests for the protocol-shape lint rules.

Each rule is validated by a seeded mutant (a minimal snippet carrying the
bug the rule hunts) plus a clean twin (the same shape with the guard in
place), mirroring the dynamic fuzzer's mutant/twin discipline.
"""

from __future__ import annotations

import textwrap

from repro.analysis.lint import lint_source, run_lint
from repro.analysis.protoshape import (
    RULE_CREDIT,
    RULE_CS_LEASE,
    RULE_SEND_KIND,
    RULE_VIEW_READ,
    collect_handled_kinds,
)


def _lint(code, **kwargs):
    return lint_source(textwrap.dedent(code), **kwargs)


def _rules(findings):
    return [f.rule for f in findings]


class TestSendUnhandledKind:
    MUTANT = """
    class Daemon:
        def _daemon_loop(self):
            while True:
                msg = yield from self._recv()
                if msg.kind == "request":
                    pass
                elif msg.kind == "token":
                    pass

        def _ask(self, dst):
            yield from self._send(dst, "reqest")
    """

    CLEAN = """
    class Daemon:
        def _daemon_loop(self):
            while True:
                msg = yield from self._recv()
                if msg.kind == "request":
                    pass
                elif msg.kind == "token":
                    pass

        def _ask(self, dst):
            yield from self._send(dst, "request")
    """

    def test_typoed_kind_flagged(self):
        findings = _lint(self.MUTANT)
        assert _rules(findings) == [RULE_SEND_KIND]
        assert "'reqest'" in findings[0].message

    def test_handled_kind_clean(self):
        assert _lint(self.CLEAN) == []

    def test_cross_module_kinds_respected(self):
        # The sender module alone does not know the handler's kinds; the
        # shared pre-pass (here: the handled_kinds parameter) supplies them.
        sender = """
        class Lock:
            def _acquire(self):
                yield from self._send(0, "local_request")
        """
        assert _rules(_lint(sender)) == [RULE_SEND_KIND]
        assert _lint(sender, handled_kinds={"local_request"}) == []

    def test_membership_in_comparison_collected(self):
        import ast

        tree = ast.parse(
            textwrap.dedent(
                """
                def h(msg):
                    if msg.kind in ("a", "b"):
                        pass
                    elif "c" == msg.kind:
                        pass
                """
            )
        )
        assert collect_handled_kinds([tree]) == {"a", "b", "c"}

    def test_dynamic_kind_not_flagged(self):
        # Non-literal kinds cannot be judged statically.
        code = """
        class Daemon:
            def _fwd(self, dst, kind):
                yield from self._send(dst, kind)
        """
        assert _lint(code) == []


class TestCsYieldNoLease:
    MUTANT = """
    class Lock:
        def _daemon_loop(self):
            while True:
                msg = yield from self._recv()
                if msg.kind == "token":
                    self.in_cs = True
    """

    CLEAN = """
    class Lock:
        def _daemon_loop(self):
            while True:
                msg = yield from self._recv()
                if msg.kind == "token":
                    self.in_cs = True
                elif msg.kind == "view_change":
                    self._apply_view_change(msg.payload)

        def _apply_view_change(self, info):
            self.in_cs = False
    """

    def test_yielding_cs_without_recovery_flagged(self):
        findings = _lint(self.MUTANT)
        assert RULE_CS_LEASE in _rules(findings)

    def test_recovery_path_clean(self):
        assert _lint(self.CLEAN) == []

    def test_non_yielding_setter_clean(self):
        # Setting the flag in a plain method has no suspension window.
        code = """
        class Lock:
            def grant(self):
                self.in_cs = True
        """
        assert _lint(code) == []


class TestCreditMutation:
    def test_raw_pool_reference_flagged(self):
        findings = _lint(
            """
            def steal(armci, node):
                armci._credits[node] = None
            """
        )
        assert _rules(findings) == [RULE_CREDIT]

    def test_helper_call_outside_armci_flagged(self):
        findings = _lint(
            """
            def sneak(armci, node):
                yield from armci._take_credit(node)
            """
        )
        assert _rules(findings) == [RULE_CREDIT]

    def test_home_modules_clean(self):
        raw = """
        class Armci:
            def _credit_pool(self, node):
                return self._credits[node]
        """
        assert (
            lint_source(textwrap.dedent(raw), path="src/repro/armci/api.py")
            == []
        )
        helper = """
        def wait(armci, node):
            yield from armci._take_credit(node)
        """
        assert (
            lint_source(
                textwrap.dedent(helper), path="src/repro/armci/nonblocking.py"
            )
            == []
        )


class TestUnguardedViewRead:
    MUTANT = """
    class Daemon:
        def _daemon_loop(self):
            while True:
                msg = yield from self._recv()
                if msg.kind == "request":
                    if self.membership.node_dead(msg.src):
                        continue
    """

    CLEAN = """
    class Daemon:
        def _daemon_loop(self):
            while True:
                msg = yield from self._recv()
                if msg.kind == "request":
                    if msg.payload < self._view_epoch:
                        continue
                    if self.membership.node_dead(msg.src):
                        continue
    """

    def test_view_read_without_epoch_flagged(self):
        findings = _lint(self.MUTANT)
        assert _rules(findings) == [RULE_VIEW_READ]
        assert "node_dead" in findings[0].message

    def test_epoch_guard_clean(self):
        assert _lint(self.CLEAN) == []

    def test_non_dispatch_reader_clean(self):
        # View reads outside kind-dispatching handlers (barrier/fence
        # bodies) have their own guards and are out of scope here.
        code = """
        def fence(membership, node):
            if membership.node_dead(node):
                return
            yield
        """
        assert _lint(code) == []


class TestRepoIsClean:
    def test_repro_package_has_no_shape_findings(self):
        assert run_lint() == []
