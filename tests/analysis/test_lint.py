"""Tests for the RMCSan static lint pass."""

from __future__ import annotations

import textwrap

from repro.analysis.lint import (
    RULE_OP_DONE,
    RULE_UNSEEDED,
    RULE_YIELD_FROM,
    lint_source,
    render_findings,
    run_lint,
)


def _lint(code, **kwargs):
    return lint_source(textwrap.dedent(code), **kwargs)


class TestYieldFrom:
    def test_bare_call_of_local_generator_flagged(self):
        findings = _lint(
            """
            def stepper():
                yield 1

            def driver():
                stepper()
                yield 2
            """
        )
        assert [f.rule for f in findings] == [RULE_YIELD_FROM]
        assert findings[0].line == 6

    def test_yield_from_is_clean(self):
        findings = _lint(
            """
            def stepper():
                yield 1

            def driver():
                yield from stepper()
            """
        )
        assert findings == []

    def test_known_generator_method_flagged(self):
        findings = _lint(
            """
            def workload(armci):
                armci.fence(1)
                yield
            """,
            generator_names={"fence"},
        )
        assert [f.rule for f in findings] == [RULE_YIELD_FROM]

    def test_ambiguous_name_not_flagged(self):
        # ``release`` names both a generator (lock) and a plain method
        # (semaphore) in the tree set, so a bare call stays unflagged.
        findings = _lint(
            """
            def release(self):
                yield from self._release()

            class Pool:
                def release(self):
                    self.count += 1

            def user(lock):
                lock.release()
                yield
            """
        )
        assert findings == []


class TestUnseededNondeterminism:
    def test_default_random_flagged(self):
        findings = _lint(
            """
            import random

            def jitter():
                return random.Random()
            """
        )
        assert [f.rule for f in findings] == [RULE_UNSEEDED]

    def test_seeded_random_is_clean(self):
        findings = _lint(
            """
            import random

            def jitter(seed):
                return random.Random(seed)
            """
        )
        assert findings == []

    def test_module_level_random_call_flagged(self):
        findings = _lint("import random\nx = random.randint(0, 9)\n")
        assert [f.rule for f in findings] == [RULE_UNSEEDED]

    def test_wall_clock_flagged(self):
        findings = _lint(
            """
            import time

            def now():
                return time.perf_counter()
            """
        )
        assert [f.rule for f in findings] == [RULE_UNSEEDED]

    def test_params_module_exempt(self):
        findings = _lint(
            "import random\nx = random.Random()\n",
            path="src/repro/net/params.py",
        )
        assert findings == []


class TestOpDoneMutation:
    def test_bump_outside_server_flagged(self):
        findings = _lint(
            """
            def cheat(server, rank):
                server._bump_op_done(rank)
            """
        )
        assert [f.rule for f in findings] == [RULE_OP_DONE]

    def test_server_module_exempt(self):
        findings = _lint(
            """
            def dispatch(self, rank):
                self._bump_op_done(rank)
            """,
            path="src/repro/runtime/server.py",
        )
        assert findings == []


class TestRepoIsClean:
    def test_run_lint_finds_nothing(self):
        assert run_lint() == []

    def test_render_no_findings(self):
        assert render_findings([]) == "lint: no findings"

    def test_render_lists_each_finding(self):
        findings = _lint("import random\nx = random.random()\n")
        text = render_findings(findings)
        assert RULE_UNSEEDED in text
        assert "1 finding" in text
