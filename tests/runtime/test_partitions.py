"""Partition tolerance: quorum membership, freezing, fencing, and rejoin.

End-to-end coverage of the transient-fault machinery in
:mod:`repro.runtime.membership` through small SPMD programs:

* quorum rule: minority (and even-split) sides freeze instead of acting,
* corroborated suspicion: transport-level suspicions raised against a
  majority-side peer during a cut are discarded (the raiser is the
  partitioned one), minority peers are excluded reversibly,
* epoch fencing: a minority holder's release is rejected after its lease
  was revoked for the majority, and the rank re-acquires cleanly after
  the heal resync,
* concurrent view changes: crashes landing while a partition heals merge
  into a deterministic epoch sequence with no duplicate lease revocation,
* chaosbench partition mode and the crash-only no-op guarantee.
"""

import pytest

from repro.experiments.chaosbench import ChaosBenchConfig, run_chaosbench
from repro.locks import make_lock
from repro.net.faults import FaultPlan, Partition, ProcessCrash, ProcessStall
from repro.net.params import NetworkParams
from repro.runtime.cluster import ClusterRuntime
from repro.sim.core import CRASHED


def transient_params(*, partitions=(), pauses=(), crashes=(), seed=7, **overrides):
    plan = FaultPlan(
        partitions=tuple(
            Partition(nodes=nodes, from_us=f, until_us=u)
            for nodes, f, u in partitions
        ),
        pauses=tuple(
            ProcessStall(rank=r, from_us=f, until_us=u) for r, f, u in pauses
        ),
        crashes=tuple(ProcessCrash(at_us=t, rank=r) for r, t in crashes),
        seed=seed,
    )
    return NetworkParams(faults=plan, **overrides)


class TestQuorumRule:
    def test_minority_lacks_quorum_majority_keeps_it(self):
        params = transient_params(partitions=(((3,), 50.0, 400.0),))
        runtime = ClusterRuntime(4, params=params)
        probes = {}

        def program(ctx):
            yield ctx.env.timeout(100.0)  # inside the window
            probes[ctx.rank] = ctx.membership.quorum_ok(ctx.rank)
            yield ctx.env.timeout(500.0 - ctx.env.now)  # after the heal
            probes[("post", ctx.rank)] = ctx.membership.quorum_ok(ctx.rank)

        runtime.run_spmd(program)
        assert probes[0] and probes[1] and probes[2]
        assert not probes[3]
        assert all(probes[("post", r)] for r in range(4))

    def test_even_split_freezes_both_sides(self):
        # 2-2 cut: no strict majority anywhere, so neither side has quorum
        # and suspicions raised during the window are discarded, not acted
        # on — letting both halves proceed is exactly split-brain.
        params = transient_params(partitions=(((2, 3), 50.0, 400.0),))
        runtime = ClusterRuntime(4, params=params)
        probes = {}

        def program(ctx):
            yield ctx.env.timeout(100.0)
            probes[ctx.rank] = ctx.membership.quorum_ok(ctx.rank)
            if ctx.rank == 0:
                ctx.membership.suspect(("mp", 3), reason="test")
            yield ctx.env.timeout(500.0 - ctx.env.now)

        runtime.run_spmd(program)
        m = runtime.membership
        assert not any(probes[r] for r in range(4))
        assert m.suspicions_discarded >= 1
        assert m.dead_ranks() == ()
        assert m.excluded_ranks() == ()

    def test_stalled_rank_lacks_quorum(self):
        params = transient_params(pauses=((2, 50.0, 300.0),))
        runtime = ClusterRuntime(4, params=params)
        probes = {}

        def program(ctx):
            yield ctx.env.timeout(100.0)
            probes[ctx.rank] = ctx.membership.quorum_ok(ctx.rank)

        runtime.run_spmd(program)
        assert probes[0] and probes[1] and probes[3]
        assert not probes[2]


class TestCorroboratedSuspicion:
    """Satellite fix: retry exhaustion against a peer must not declare it
    dead when the *raiser* is the partitioned-away party."""

    def test_suspicion_of_majority_peer_during_cut_is_discarded(self):
        params = transient_params(partitions=(((3,), 50.0, 400.0),))
        runtime = ClusterRuntime(4, params=params)

        def program(ctx):
            if ctx.rank == 3:
                # The minority rank's transport gives up on rank 0 — but a
                # quorum of peers still hears rank 0, so the suspicion says
                # more about the raiser than the target.
                yield ctx.env.timeout(100.0)
                ctx.membership.suspect(("mp", 0), reason="retries exhausted")
            yield ctx.env.timeout(500.0 - ctx.env.now)

        runtime.run_spmd(program)
        m = runtime.membership
        assert m.is_alive(0) and m.in_view(0)
        assert 0 not in m.declared_at
        assert m.suspicions_discarded >= 1

    def test_suspicion_of_minority_peer_excludes_reversibly(self):
        params = transient_params(partitions=(((3,), 50.0, 400.0),))
        runtime = ClusterRuntime(4, params=params)
        observed = {}

        def program(ctx):
            if ctx.rank == 0:
                yield ctx.env.timeout(100.0)
                ctx.membership.suspect(("mp", 3), reason="retries exhausted")
                observed["mid"] = (
                    ctx.membership.is_alive(3),
                    ctx.membership.in_view(3),
                )
            yield ctx.env.timeout(500.0 - ctx.env.now)

        runtime.run_spmd(program)
        m = runtime.membership
        # Excluded — alive but out of the view — then rejoined at heal.
        assert observed["mid"] == (True, False)
        assert m.dead_ranks() == ()
        assert m.in_view(3)
        assert m.rejoined_at[3] == pytest.approx(400.0)

    def test_no_transient_plan_keeps_crash_stop_declaration(self):
        # Crash-only plans keep the original behavior: transport suspicion
        # declares immediately, no corroboration pass.
        params = transient_params(crashes=((2, 30.0),))
        runtime = ClusterRuntime(4, params=params)

        def program(ctx):
            if ctx.rank == 0:
                yield ctx.env.timeout(50.0)
                ctx.membership.suspect(("mp", 2), reason="retries exhausted")
            yield ctx.env.timeout(400.0 - ctx.env.now)

        runtime.run_spmd(program)
        m = runtime.membership
        assert 2 in m.declared_at
        assert m.suspicions_discarded == 0


class TestFreezeAndHeal:
    def test_minority_sync_freezes_until_heal_majority_progresses(self):
        params = transient_params(partitions=(((2,), 50.0, 400.0),))
        runtime = ClusterRuntime(3, params=params)
        grants = []

        def program(ctx):
            lock = make_lock("naimi", ctx, home_rank=0, name="mx")
            yield ctx.env.timeout(100.0)  # all ranks request mid-window
            yield from lock.acquire()
            grants.append((ctx.env.now, ctx.rank))
            yield from lock.release()
            return ctx.env.now

        results = runtime.run_spmd(program)
        m = runtime.membership
        assert all(isinstance(r, float) for r in results)
        # The majority side was served during the window...
        majority = sorted(r for t, r in grants if t < 400.0)
        assert majority == [0, 1]
        # ...while the minority rank froze at the gate and was served after.
        assert [r for t, r in grants if t >= 400.0] == [2]
        frozen = [f for f in m.freeze_log if f["rank"] == 2]
        assert frozen and frozen[0]["unfrozen_at_us"] >= 400.0

    def test_heal_merges_views_deterministically(self):
        def run():
            params = transient_params(partitions=(((2,), 50.0, 400.0),))
            runtime = ClusterRuntime(3, params=params)

            def program(ctx):
                yield from ctx.armci.barrier()
                yield ctx.env.timeout(600.0 - ctx.env.now)
                yield from ctx.armci.barrier()

            runtime.run_spmd(program)
            return runtime.membership

        a, b = run(), run()
        assert a.report() == b.report()
        assert dict(a._views) == dict(b._views)
        assert a.heal_log and a.heal_log[0]["epoch"] == a.epoch

    def test_stalled_rank_rejoins_on_resume(self):
        params = transient_params(pauses=((2, 40.0, 500.0),))
        runtime = ClusterRuntime(4, params=params)

        def program(ctx):
            yield from ctx.armci.barrier()
            yield ctx.env.timeout(700.0 - ctx.env.now)
            yield from ctx.armci.barrier()
            return ctx.env.now

        results = runtime.run_spmd(program)
        m = runtime.membership
        assert all(isinstance(r, float) for r in results)
        assert m.dead_ranks() == ()
        # The paused rank was excluded by silence and readmitted at resume.
        if 2 in m.rejoined_at:
            assert m.rejoined_at[2] >= 500.0
        assert m.in_view(2)


class TestEpochFencing:
    def test_minority_holder_release_is_fenced_then_reacquires(self):
        params = transient_params(partitions=(((3,), 60.0, 600.0),))
        runtime = ClusterRuntime(4, params=params)
        grants = []
        locks = {}

        def program(ctx):
            lock = make_lock("naimi", ctx, home_rank=0, name="mx")
            locks[ctx.rank] = lock
            if ctx.rank == 3:
                yield from lock.acquire()
                grants.append(("acq", 3, ctx.env.now))
                # Hold across the cut: the lease is revoked for the
                # majority, so this release must be fence-rejected.
                yield ctx.env.timeout(200.0 - ctx.env.now)
                yield from lock.release()
                # After the heal + resync the rank uses the fresh token.
                yield ctx.env.timeout(700.0 - ctx.env.now)
                yield from lock.acquire()
                grants.append(("acq2", 3, ctx.env.now))
                yield from lock.release()
                return "rejoined"
            yield ctx.env.timeout(100.0)
            yield from lock.acquire()
            grants.append(("acq", ctx.rank, ctx.env.now))
            yield ctx.env.timeout(5.0)
            yield from lock.release()
            return "served"

        results = runtime.run_spmd(program)
        m = runtime.membership
        assert results == ["served", "served", "served", "rejoined"]
        # The stale holder's release never touched the protocol.
        assert locks[3].stats.counters.get("fenced_releases", 0) == 1
        # The majority was served through the regenerated token while the
        # cut was active, and the ex-holder's re-acquire came after heal.
        majority_grants = [t for op, r, t in grants if op == "acq" and r != 3]
        assert len(majority_grants) == 3 and max(majority_grants) < 600.0
        (reacquire,) = [t for op, r, t in grants if op == "acq2"]
        assert reacquire >= 600.0
        assert m.rejoined_at[3] == pytest.approx(600.0)

    def test_fence_token_bumped_once_per_revocation(self):
        params = transient_params(partitions=(((3,), 60.0, 600.0),))
        runtime = ClusterRuntime(4, params=params)

        def program(ctx):
            lock = make_lock("naimi", ctx, home_rank=0, name="mx")
            if ctx.rank == 3:
                yield from lock.acquire()
                yield ctx.env.timeout(300.0 - ctx.env.now)
                yield from lock.release()
            yield ctx.env.timeout(800.0 - ctx.env.now)

        runtime.run_spmd(program)
        m = runtime.membership
        assert m.fence_token(("naimi", "mx", 0)) == 1


class TestConcurrentViewChanges:
    """Two ranks crash while a partition heals: the epoch merge stays
    deterministic and the excluded holder's lease is revoked exactly once
    (the death declaration at heal finds it already gone)."""

    def _run(self):
        params = transient_params(
            partitions=(((4, 5), 100.0, 800.0),),
            crashes=((2, 750.0), (4, 760.0)),
            seed=13,
        )
        runtime = ClusterRuntime(6, params=params)

        def program(ctx):
            lock = make_lock("naimi", ctx, home_rank=0, name="mx")
            if ctx.rank == 4:
                yield from lock.acquire()  # holds across exclusion + death
                while True:
                    yield ctx.env.timeout(25.0)
            yield ctx.env.timeout(150.0)
            yield from lock.acquire()
            yield ctx.env.timeout(5.0)
            yield from lock.release()
            yield ctx.env.timeout(1500.0 - ctx.env.now)
            return ctx.env.now

        results = runtime.run_spmd(program)
        return runtime, results

    def test_epoch_merge_is_deterministic(self):
        (rt_a, res_a), (rt_b, res_b) = self._run(), self._run()
        assert rt_a.membership.report() == rt_b.membership.report()
        assert dict(rt_a.membership._views) == dict(rt_b.membership._views)
        assert [type(r) for r in res_a] == [type(r) for r in res_b]

    def test_crashed_while_excluded_declared_at_heal(self):
        runtime, results = self._run()
        m = runtime.membership
        assert results[2] is CRASHED and results[4] is CRASHED
        assert set(m.dead_ranks()) == {2, 4}
        assert m.excluded_ranks() == ()
        # Rank 5 (cut but alive) rejoined; rank 4 (cut and crashed) did not.
        assert sorted(m.rejoined_at) == [5]
        assert m.heal_log[0]["rejoined"] == [5]
        # Survivors all finished after the merge.
        assert all(isinstance(results[r], float) for r in (0, 1, 3, 5))

    def test_no_duplicate_lease_revocation(self):
        runtime, _results = self._run()
        m = runtime.membership
        # The exclusion revoked rank 4's lease (live revocation); the death
        # declaration at heal must not fence the same lease again.
        assert m.fence_token(("naimi", "mx", 0)) == 1
        transient = [
            r
            for r in m.recovery_log
            if r["dead_rank"] == 4 and r.get("transient")
        ]
        assert len(transient) == 1


class TestChaosbenchPartitionMode:
    def test_partition_run_passes_all_checks(self):
        cfg = ChaosBenchConfig(
            nprocs=6,
            lock_kind="mcs",
            barrier_kills=(),
            lock_kills=(),
            partitions=(((4, 5), 200.0, 1400.0),),
        )
        res = run_chaosbench(cfg)
        assert res.all_ok(), res.render()
        assert res.checks["partition healed"] is True
        # Freeze/heal/rejoin telemetry is populated and consistent.
        frozen_ranks = {f["rank"] for f in res.freezes}
        assert frozen_ranks and frozen_ranks <= {4, 5}
        assert res.heals and res.heals[0]["rejoined"]
        assert {r["rank"] for r in res.rejoins} == set(
            res.heals[0]["rejoined"]
        )
        text = res.render()
        assert "frozen" in text and "heal:" in text

    def test_partition_plus_kill_composes(self):
        cfg = ChaosBenchConfig(
            nprocs=6,
            lock_kind="naimi",
            barrier_kills=(),
            lock_kills=((3, 900.0),),
            partitions=(((5,), 200.0, 1400.0),),
        )
        res = run_chaosbench(cfg)
        assert res.all_ok(), res.render()
        assert tuple(res.dead) == (3,)
        assert res.checks["partition healed"] is True

    def test_partition_mode_is_deterministic(self):
        cfg = ChaosBenchConfig(
            nprocs=6,
            lock_kind="naimi",
            barrier_kills=(),
            lock_kills=(),
            partitions=(((4,), 200.0, 1200.0),),
            stalls=((2, 300.0, 700.0),),
        )
        assert run_chaosbench(cfg).render() == run_chaosbench(cfg).render()

    def test_validation_rejects_illegal_windows(self):
        with pytest.raises(ValueError, match="node 0"):
            run_chaosbench(
                ChaosBenchConfig(partitions=(((0,), 10.0, 50.0),))
            )
        with pytest.raises(ValueError, match="majority"):
            run_chaosbench(
                ChaosBenchConfig(
                    nprocs=4,
                    barrier_kills=(),
                    lock_kills=(),
                    partitions=(((1, 2), 10.0, 50.0),),
                )
            )
        with pytest.raises(ValueError, match="rank"):
            run_chaosbench(ChaosBenchConfig(stalls=((0, 10.0, 50.0),)))


class TestCrashOnlyUnchanged:
    """With no transient windows the partition machinery must be inert."""

    def test_crash_only_plan_keeps_transient_paths_off(self):
        params = transient_params(crashes=((2, 50.0),))
        runtime = ClusterRuntime(4, params=params)
        m = runtime.membership
        assert m is not None and not m._transient

        def idle(ctx):
            yield ctx.env.timeout(400.0)

        runtime.run_spmd(idle)
        report = m.report()
        for key in ("excluded", "rejoins", "freezes", "heals"):
            assert key not in report

    def test_freeze_gate_is_a_noop_without_transients(self):
        params = transient_params(crashes=((2, 5000.0),))
        runtime = ClusterRuntime(4, params=params)

        def program(ctx):
            before = ctx.env.now
            yield from ctx.membership.freeze_gate(ctx.rank) or iter(())
            return ctx.env.now - before

        # freeze_gate returns immediately (no yields) for crash-only plans.
        gen = runtime.membership.freeze_gate(0)
        assert gen is None or list(gen or ()) == []
