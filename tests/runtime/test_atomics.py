"""Unit and property tests for the atomic memory operations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import atomics
from repro.runtime.memory import NULL_PTR, Region
from repro.sim.core import Environment


@pytest.fixture
def region(env):
    r = Region(env, 0)
    r.alloc(16, initial=0)
    return r


class TestFetchAndAdd:
    def test_returns_old_value(self, region):
        region.write(0, 10)
        assert atomics.fetch_and_add(region, 0, 5) == 10
        assert region.read(0) == 15

    def test_default_increment_one(self, region):
        assert atomics.fetch_and_add(region, 0) == 0
        assert region.read(0) == 1

    def test_negative_increment(self, region):
        region.write(0, 10)
        atomics.fetch_and_add(region, 0, -3)
        assert region.read(0) == 7

    def test_sequence_yields_unique_tickets(self, region):
        tickets = [atomics.fetch_and_add(region, 0) for _ in range(100)]
        assert tickets == list(range(100))


class TestSwap:
    def test_swap_returns_old(self, region):
        region.write(1, "old")
        assert atomics.swap(region, 1, "new") == "old"
        assert region.read(1) == "new"


class TestCompareAndSwap:
    def test_success(self, region):
        region.write(2, 5)
        assert atomics.compare_and_swap(region, 2, 5, 9)
        assert region.read(2) == 9

    def test_failure_leaves_value(self, region):
        region.write(2, 5)
        assert not atomics.compare_and_swap(region, 2, 4, 9)
        assert region.read(2) == 5


class TestPairOps:
    def test_read_write_pair(self, region):
        atomics.write_pair(region, 4, (3, 77))
        assert atomics.read_pair(region, 4) == (3, 77)

    def test_swap_pair(self, region):
        atomics.write_pair(region, 4, NULL_PTR)
        old = atomics.swap_pair(region, 4, (1, 10))
        assert old == NULL_PTR
        assert atomics.read_pair(region, 4) == (1, 10)

    def test_cas_pair_success(self, region):
        atomics.write_pair(region, 4, (1, 10))
        assert atomics.compare_and_swap_pair(region, 4, (1, 10), NULL_PTR)
        assert atomics.read_pair(region, 4) == NULL_PTR

    def test_cas_pair_failure(self, region):
        atomics.write_pair(region, 4, (2, 20))
        assert not atomics.compare_and_swap_pair(region, 4, (1, 10), NULL_PTR)
        assert atomics.read_pair(region, 4) == (2, 20)

    def test_cas_pair_accepts_list_expected(self, region):
        atomics.write_pair(region, 4, (2, 20))
        assert atomics.compare_and_swap_pair(region, 4, [2, 20], (0, 0))


class TestAccumulate:
    def test_adds_elementwise(self, region):
        region.write_many(8, [1.0, 2.0, 3.0])
        atomics.accumulate(region, 8, [10.0, 20.0, 30.0])
        assert region.read_many(8, 3) == [11.0, 22.0, 33.0]

    def test_scale(self, region):
        region.write_many(8, [1.0, 1.0])
        atomics.accumulate(region, 8, [2.0, 4.0], scale=0.5)
        assert region.read_many(8, 2) == [2.0, 3.0]


class TestProperties:
    @given(increments=st.lists(st.integers(min_value=-1000, max_value=1000),
                               max_size=50))
    @settings(max_examples=100)
    def test_fetch_add_is_a_running_sum(self, increments):
        env = Environment()
        region = Region(env, 0)
        region.alloc(1, initial=0)
        total = 0
        for inc in increments:
            old = atomics.fetch_and_add(region, 0, inc)
            assert old == total
            total += inc
        assert region.read(0) == total

    @given(ops=st.lists(
        st.tuples(st.sampled_from(["swap", "cas_ok", "cas_bad"]),
                  st.tuples(st.integers(0, 7), st.integers(0, 100))),
        max_size=40,
    ))
    @settings(max_examples=100)
    def test_pair_ops_model_matches_reference(self, ops):
        """Pair atomics behave like an atomic 2-tuple cell."""
        env = Environment()
        region = Region(env, 0)
        region.alloc(2)
        atomics.write_pair(region, 0, NULL_PTR)
        reference = NULL_PTR
        for kind, pair in ops:
            if kind == "swap":
                old = atomics.swap_pair(region, 0, pair)
                assert old == reference
                reference = pair
            elif kind == "cas_ok":
                ok = atomics.compare_and_swap_pair(region, 0, reference, pair)
                assert ok
                reference = pair
            else:
                bogus = (reference[0] + 1, reference[1])
                ok = atomics.compare_and_swap_pair(region, 0, bogus, pair)
                assert not ok
            assert atomics.read_pair(region, 0) == reference
