"""Unit tests for memory regions, global addressing, and write-watchers."""

import pytest

from repro.runtime.memory import NULL_PTR, GlobalAddress, Region


class TestGlobalAddress:
    def test_tuple_behaviour(self):
        ga = GlobalAddress(3, 17)
        assert ga.rank == 3 and ga.addr == 17
        rank, addr = ga
        assert (rank, addr) == (3, 17)

    def test_repr_compact(self):
        assert repr(GlobalAddress(1, 2)) == "GA(1,2)"

    def test_null_ptr_encoding(self):
        assert NULL_PTR == (-1, -1)


class TestAllocation:
    def test_alloc_returns_consecutive_bases(self, env):
        region = Region(env, 0)
        a = region.alloc(4)
        b = region.alloc(2)
        assert (a, b) == (0, 4)
        assert len(region) == 6

    def test_alloc_initial_value(self, env):
        region = Region(env, 0)
        base = region.alloc(3, initial=7.5)
        assert region.read_many(base, 3) == [7.5, 7.5, 7.5]

    def test_alloc_zero_rejected(self, env):
        with pytest.raises(ValueError):
            Region(env, 0).alloc(0)

    def test_alloc_named_idempotent(self, env):
        region = Region(env, 0)
        a = region.alloc_named("lock:x", 2)
        b = region.alloc_named("lock:x", 2)
        assert a == b
        assert len(region) == 2

    def test_alloc_named_distinct_keys(self, env):
        region = Region(env, 0)
        a = region.alloc_named("k1", 2)
        b = region.alloc_named("k2", 2)
        assert a != b


class TestAccess:
    def test_read_write_roundtrip(self, env):
        region = Region(env, 0)
        base = region.alloc(1)
        region.write(base, 42)
        assert region.read(base) == 42

    def test_out_of_range_read(self, env):
        region = Region(env, 0)
        region.alloc(2)
        with pytest.raises(IndexError):
            region.read(2)
        with pytest.raises(IndexError):
            region.read(-1)

    def test_out_of_range_write(self, env):
        region = Region(env, 0)
        region.alloc(1)
        with pytest.raises(IndexError):
            region.write(5, 0)

    def test_read_many_bounds(self, env):
        region = Region(env, 0)
        base = region.alloc(4)
        region.write_many(base, [1, 2, 3, 4])
        assert region.read_many(base + 1, 2) == [2, 3]
        with pytest.raises(IndexError):
            region.read_many(base + 2, 3)
        with pytest.raises(ValueError):
            region.read_many(base, -1)

    def test_write_many_bounds(self, env):
        region = Region(env, 0)
        base = region.alloc(2)
        with pytest.raises(IndexError):
            region.write_many(base, [1, 2, 3])

    def test_write_many_empty_noop(self, env):
        region = Region(env, 0)
        region.alloc(1)
        region.write_many(0, [])
        assert region.writes == 0

    def test_access_counters(self, env):
        region = Region(env, 0)
        base = region.alloc(3)
        region.write_many(base, [1, 2, 3])
        region.read_many(base, 2)
        region.read(base)
        assert region.writes == 3
        assert region.reads == 3


class TestWatchers:
    def test_wait_until_immediate_when_satisfied(self, env):
        region = Region(env, 0)
        base = region.alloc(1, initial=5)

        def proc():
            value = yield from region.wait_until(base, lambda v: v == 5)
            return (env.now, value)

        p = env.process(proc())
        env.run()
        assert p.value == (0.0, 5)

    def test_wait_until_woken_by_write(self, env):
        region = Region(env, 0)
        base = region.alloc(1, initial=0)

        def waiter():
            value = yield from region.wait_until(base, lambda v: v >= 3)
            return (env.now, value)

        def writer():
            for i in range(1, 4):
                yield env.timeout(10)
                region.write(base, i)

        p = env.process(waiter())
        env.process(writer())
        env.run()
        assert p.value == (30.0, 3)

    def test_wait_until_charges_poll_detect(self, env):
        region = Region(env, 0)
        base = region.alloc(1, initial=0)

        def waiter():
            yield from region.wait_until(base, lambda v: v == 1, poll_detect_us=0.7)
            return env.now

        def writer():
            yield env.timeout(10)
            region.write(base, 1)

        p = env.process(waiter())
        env.process(writer())
        env.run()
        assert p.value == pytest.approx(10.7)

    def test_multiple_waiters_same_address(self, env):
        region = Region(env, 0)
        base = region.alloc(1, initial=0)
        woken = []

        def waiter(tag):
            yield from region.wait_until(base, lambda v: v == 1)
            woken.append(tag)

        env.process(waiter("a"))
        env.process(waiter("b"))

        def writer():
            yield env.timeout(1)
            region.write(base, 1)

        env.process(writer())
        env.run()
        assert sorted(woken) == ["a", "b"]

    def test_write_without_watchers_is_cheap(self, env):
        region = Region(env, 0)
        base = region.alloc(1)
        region.write(base, 1)  # must not raise or allocate watchers
        assert not region._watchers

    def test_watcher_out_of_range(self, env):
        region = Region(env, 0)
        region.alloc(1)
        with pytest.raises(IndexError):
            region.watcher(10)

    def test_wait_until_sees_all_writes_in_same_event(self, env):
        """A waiter woken by a pair write observes the complete pair."""
        region = Region(env, 0)
        base = region.alloc(2, initial=-1)
        seen = []

        def waiter():
            yield from region.wait_until(base, lambda v: v != -1)
            seen.append((region.read(base), region.read(base + 1)))

        def writer():
            yield env.timeout(1)
            region.write_many(base, [7, 8])

        env.process(waiter())
        env.process(writer())
        env.run()
        assert seen == [(7, 8)]
