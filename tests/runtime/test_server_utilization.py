"""Server busy-time accounting and the AllFence convoy, made measurable."""

import pytest

from repro.runtime.memory import GlobalAddress


class TestBusyAccounting:
    def test_idle_server_accumulates_nothing(self, make_cluster):
        def main(ctx):
            yield ctx.compute(1000.0)

        rt = make_cluster(nprocs=2)
        rt.run_spmd(main)
        assert rt.servers[0].stats.busy_us == 0.0
        assert rt.servers[1].stats.busy_us == 0.0

    def test_busy_time_tracks_requests(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1)
            if ctx.rank == 0:
                for _ in range(10):
                    yield from ctx.armci.get(GlobalAddress(1, base), 1)
            else:
                yield ctx.compute(1)

        rt = make_cluster(nprocs=2)
        rt.run_spmd(main)
        stats = rt.servers[1].stats
        assert stats.requests == 10
        p = rt.params
        per_request_floor = p.o_recv_us + p.server_proc_us
        assert stats.busy_us >= 10 * per_request_floor
        # Busy time never exceeds wall time.
        assert stats.busy_us <= rt.env.now

    def test_convoy_saturates_servers_sequentially(self, make_cluster):
        """During concurrent AllFences, servers do significant serialized
        work — the effect Figure 7 measures.  The same puts followed by the
        *new* barrier leave the servers far less loaded."""

        def allfence_prog(ctx):
            base = ctx.region.alloc_named("c", 1, 0)
            for peer in range(ctx.nprocs):
                if peer != ctx.rank:
                    yield from ctx.armci.put(GlobalAddress(peer, base), [1])
            yield from ctx.armci.allfence()

        def barrier_prog(ctx):
            base = ctx.region.alloc_named("c", 1, 0)
            for peer in range(ctx.nprocs):
                if peer != ctx.rank:
                    yield from ctx.armci.put(GlobalAddress(peer, base), [1])
            yield from ctx.armci.barrier()

        rt_fence = make_cluster(nprocs=8)
        rt_fence.run_spmd(allfence_prog)
        fence_busy = sum(s.stats.busy_us for s in rt_fence.servers.values())

        rt_barrier = make_cluster(nprocs=8)
        rt_barrier.run_spmd(barrier_prog)
        barrier_busy = sum(s.stats.busy_us for s in rt_barrier.servers.values())

        # Both handled the same 56 puts; the fences added 56 confirmation
        # requests on top.  Server work should be dominated by that.
        assert fence_busy > 2 * barrier_busy

    def test_fence_requests_account_for_the_gap(self, make_cluster):
        def allfence_prog(ctx):
            base = ctx.region.alloc_named("d", 1, 0)
            for peer in range(ctx.nprocs):
                if peer != ctx.rank:
                    yield from ctx.armci.put(GlobalAddress(peer, base), [1])
            yield from ctx.armci.allfence()

        rt = make_cluster(nprocs=8)
        rt.run_spmd(allfence_prog)
        total_fences = sum(s.stats.fences for s in rt.servers.values())
        assert total_fences == 8 * 7  # every proc confirms with every server
