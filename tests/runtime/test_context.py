"""Tests for the per-process execution context."""

import pytest

from repro.runtime.memory import GlobalAddress
from repro.sim.trace import Stopwatch


class TestProcessContext:
    def test_compute_is_pure_delay(self, make_cluster):
        def main(ctx):
            t0 = ctx.now
            yield ctx.compute(42.5)
            return ctx.now - t0

        rt = make_cluster(nprocs=2)
        assert rt.run_spmd(main) == [42.5, 42.5]
        assert rt.fabric.stats.messages == 0

    def test_now_tracks_environment(self, make_cluster):
        rt = make_cluster(nprocs=1)
        ctx = rt.context(0)
        assert ctx.now == rt.env.now == 0.0

    def test_ga_builds_global_address(self, make_cluster):
        rt = make_cluster(nprocs=2)
        assert rt.context(1).ga(0, 9) == GlobalAddress(0, 9)

    def test_stopwatch_factory_names_by_rank(self, make_cluster):
        rt = make_cluster(nprocs=2)
        sw = rt.context(1).stopwatch("phase")
        assert isinstance(sw, Stopwatch)
        assert "r1" in sw.name and "phase" in sw.name

    def test_context_exposes_node_resources(self, make_cluster):
        rt = make_cluster(nprocs=4, procs_per_node=2)
        ctx = rt.context(2)
        assert ctx.node == 1
        assert ctx.server is rt.servers[1]
        assert ctx.region is rt.regions[2]
        assert ctx.regions is rt.regions
        assert ctx.comm.rank == 2
        assert ctx.armci.rank == 2

    def test_repr(self, make_cluster):
        rt = make_cluster(nprocs=4, procs_per_node=2)
        text = repr(rt.context(3))
        assert "rank=3/4" in text and "node=1" in text
