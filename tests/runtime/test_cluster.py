"""Unit tests for the cluster runtime and process contexts."""

import pytest

from repro.runtime.cluster import ClusterRuntime, DeadlockError, simulate
from repro.runtime.memory import GlobalAddress


class TestConstruction:
    def test_wiring(self, make_cluster):
        rt = make_cluster(nprocs=4, procs_per_node=2)
        assert rt.nprocs == 4
        assert rt.topology.nnodes == 2
        assert set(rt.regions) == {0, 1, 2, 3}
        assert set(rt.servers) == {0, 1}
        assert set(rt.comms) == {0, 1, 2, 3}

    def test_context_caching(self, make_cluster):
        rt = make_cluster(nprocs=2)
        assert rt.context(0) is rt.context(0)
        assert rt.context(0) is not rt.context(1)

    def test_context_fields(self, make_cluster):
        rt = make_cluster(nprocs=4, procs_per_node=2)
        ctx = rt.context(3)
        assert ctx.rank == 3
        assert ctx.nprocs == 4
        assert ctx.node == 1
        assert ctx.region is rt.regions[3]
        assert ctx.server is rt.servers[1]
        assert ctx.armci is rt.armcis[3]
        assert ctx.ga(1, 5) == GlobalAddress(1, 5)

    def test_explicit_placement(self, make_cluster):
        rt = make_cluster(nprocs=4, placement=[0, 1, 1, 0])
        assert rt.topology.node_of(3) == 0

    def test_invalid_fence_mode(self, make_cluster):
        with pytest.raises(ValueError, match="fence_mode"):
            make_cluster(nprocs=2, fence_mode="magic")


class TestRunSpmd:
    def test_results_ordered_by_rank(self, make_cluster):
        def main(ctx):
            yield ctx.compute(1.0 * (ctx.nprocs - ctx.rank))
            return ctx.rank * 10

        rt = make_cluster(nprocs=4)
        assert rt.run_spmd(main) == [0, 10, 20, 30]

    def test_args_passed_through(self, make_cluster):
        def main(ctx, a, b):
            yield ctx.compute(0)
            return a + b + ctx.rank

        rt = make_cluster(nprocs=2)
        assert rt.run_spmd(main, 100, 20) == [120, 121]

    def test_exception_propagates(self, make_cluster):
        def main(ctx):
            yield ctx.compute(1)
            if ctx.rank == 1:
                raise RuntimeError("rank 1 explodes")
            yield from ctx.armci.barrier()

        rt = make_cluster(nprocs=2)
        with pytest.raises(RuntimeError):
            rt.run_spmd(main)

    def test_deadlock_detected(self, make_cluster):
        def main(ctx):
            if ctx.rank == 0:
                # Waits for a message nobody sends.
                yield from ctx.comm.recv(source=1, tag=42)
            else:
                yield ctx.compute(1)

        rt = make_cluster(nprocs=2)
        with pytest.raises(DeadlockError, match="never finished"):
            rt.run_spmd(main)

    def test_spawn_subset_of_ranks(self, make_cluster):
        def main(ctx):
            yield ctx.compute(1)
            return ctx.rank

        rt = make_cluster(nprocs=4)
        procs = rt.spawn(main, ranks=[1, 3])
        rt.run()
        assert set(procs) == {1, 3}
        assert procs[1].value == 1 and procs[3].value == 3

    def test_simulate_helper(self):
        def main(ctx):
            yield ctx.compute(2.0)
            return ctx.now

        results = simulate(main, 3)
        assert results == [2.0, 2.0, 2.0]

    def test_compute_advances_only_virtual_time(self, make_cluster):
        def main(ctx):
            t0 = ctx.now
            yield ctx.compute(123.0)
            return ctx.now - t0

        rt = make_cluster(nprocs=1)
        assert rt.run_spmd(main) == [123.0]


class TestEndToEnd:
    def test_put_get_between_all_pairs(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(ctx.nprocs, initial=-1)
            for peer in range(ctx.nprocs):
                if peer != ctx.rank:
                    yield from ctx.armci.put(
                        GlobalAddress(peer, base + ctx.rank), [ctx.rank]
                    )
            yield from ctx.armci.barrier()
            values = ctx.region.read_many(base, ctx.nprocs)
            return values

        rt = make_cluster(nprocs=4)
        for rank, values in enumerate(rt.run_spmd(main)):
            expected = [r if r != rank else -1 for r in range(4)]
            assert values == expected

    def test_smp_local_puts_bypass_network(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1, initial=0)
            peer = ctx.rank ^ 1  # same node under ppn=2
            yield from ctx.armci.put(GlobalAddress(peer, base), [ctx.rank])
            yield ctx.compute(1)
            return ctx.region.read(base)

        rt = make_cluster(nprocs=2, procs_per_node=2)
        assert rt.run_spmd(main) == [1, 0]
        assert rt.fabric.stats.inter_node == 0
