"""Tests for the server's spin-then-block receive mode."""

import pytest

from repro.net.params import myrinet2000
from repro.runtime.memory import GlobalAddress
from repro.sim.primitives import Store


class TestCancelGet:
    def test_cancelled_get_never_consumes(self, env):
        store = Store(env)
        ev = store.get()
        assert store.cancel_get(ev)
        store.put("item")
        assert not ev.triggered
        assert store.try_get() == "item"

    def test_cancel_after_fire_returns_false(self, env):
        store = Store(env)
        ev = store.get()
        store.put("x")
        assert not store.cancel_get(ev)
        assert ev.value == "x"

    def test_cancel_unknown_event_false(self, env):
        store = Store(env)
        assert not store.cancel_get(env.event())


class TestSpinThenBlock:
    def params(self, spin):
        return myrinet2000(server_spin_us=spin, server_wake_us=40.0)

    def request_after_gap(self, make_cluster, spin, gap):
        """Client idles ``gap`` µs, then issues a get; returns (RT, stats)."""

        def main(ctx):
            base = ctx.region.alloc(1)
            if ctx.rank == 0:
                # Prime the server so it enters its post-request spin.
                yield from ctx.armci.get(GlobalAddress(1, base), 1)
                yield ctx.compute(gap)
                t0 = ctx.now
                yield from ctx.armci.get(GlobalAddress(1, base), 1)
                return ctx.now - t0
            yield ctx.compute(1)
            return None

        rt = make_cluster(nprocs=2, params=self.params(spin))
        rtt = rt.run_spmd(main)[0]
        return rtt, rt.servers[1].stats

    def test_request_within_spin_window_skips_wake(self, make_cluster):
        fast_rtt, stats = self.request_after_gap(make_cluster, spin=200.0, gap=50.0)
        assert stats.spins >= 1
        slow_rtt, _ = self.request_after_gap(make_cluster, spin=0.0, gap=50.0)
        # The spin saves the 40us wake on the second request.
        assert fast_rtt <= slow_rtt - 35.0

    def test_request_after_spin_window_pays_wake(self, make_cluster):
        rtt_late, stats = self.request_after_gap(
            make_cluster, spin=30.0, gap=500.0
        )
        rtt_never, _ = self.request_after_gap(make_cluster, spin=0.0, gap=500.0)
        assert rtt_late == pytest.approx(rtt_never, rel=0.01)

    def test_no_messages_lost_when_spin_expires(self, make_cluster):
        """The cancelled spin get must not swallow later requests."""

        def main(ctx):
            base = ctx.region.alloc(1, 0)
            if ctx.rank == 0:
                for i in range(5):
                    yield ctx.compute(100.0)  # > spin window each time
                    yield from ctx.armci.put(GlobalAddress(1, base), [i])
                yield from ctx.armci.fence(1)
                return None
            yield ctx.compute(1)
            return None

        rt = make_cluster(nprocs=2, params=self.params(30.0))
        rt.run_spmd(main)
        assert rt.servers[1].stats.puts == 5
        assert rt.regions[1].read(0) == 4

    def test_default_is_block_immediately(self):
        assert myrinet2000().server_spin_us == 0.0

    def test_spin_softens_the_fig7_convoy(self, make_cluster):
        """With a generous spin window, AllFence avoids most wake-ups — one
        reason real deployments saw less than the worst case."""
        from repro.experiments.fig7_sync import Fig7Config, run_fig7

        base_cfg = Fig7Config(nprocs_list=(8,), iterations=8)
        plain = run_fig7(base_cfg)
        spun = run_fig7(
            Fig7Config(
                nprocs_list=(8,), iterations=8,
                params=myrinet2000(server_spin_us=150.0),
            )
        )
        assert spun.get("current", 8) < plain.get("current", 8)
        # The new barrier barely touches servers, so it moves far less.
        assert abs(spun.get("new", 8) - plain.get("new", 8)) < 0.2 * plain.get("new", 8)