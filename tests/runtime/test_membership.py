"""Crash-stop membership: detection, lock recovery, degraded barriers.

Covers the crash-stop subsystem end to end through small SPMD programs:

* failure detection (heartbeat silence) with deterministic latency,
* lease-based holder-death recovery on every lock flavor, with FIFO
  preserved among survivors,
* the combined barrier completing when a participant dies before
  entering (stage i) and while blocked inside the exchange (stage ii),
* a double crash (holder plus its queue successor),
* chaosbench determinism under a fixed kill seed,
* the guard property: with no crashes planned the membership service is
  never constructed and experiment output is byte-identical.
"""

import pytest

from repro.experiments.chaosbench import (
    ChaosBenchConfig,
    FIFO_KINDS,
    run_chaosbench,
)
from repro.locks import make_lock
from repro.net.faults import FaultPlan, LinkFaults, ProcessCrash
from repro.net.params import NetworkParams
from repro.runtime.cluster import ClusterRuntime
from repro.runtime.memory import GlobalAddress
from repro.sim.core import CRASHED

ALL_KINDS = ("ticket", "lh", "server", "hybrid", "mcs", "naimi", "raymond")


def crash_params(*crashes, seed=7, **overrides):
    plan = FaultPlan(
        crashes=tuple(ProcessCrash(at_us=t, rank=r) for r, t in crashes),
        seed=seed,
    )
    return NetworkParams(faults=plan, **overrides)


class TestDetection:
    def test_idle_rank_declared_by_heartbeat_silence(self):
        params = crash_params((2, 50.0))
        runtime = ClusterRuntime(4, params=params)

        def idle(ctx):
            yield ctx.env.timeout(500.0)
            return ctx.membership.dead_ranks()

        results = runtime.run_spmd(idle)
        m = runtime.membership
        assert m is not None
        assert m.dead_ranks() == (2,)
        assert results[2] is CRASHED
        assert results[0] == (2,)
        latency = m.declared_at[2] - m.crashed_at[2]
        assert m.crashed_at[2] == pytest.approx(50.0)
        # Silence is noticed within the suspect timeout plus one detector
        # scan plus one heartbeat interval of slack.
        assert (
            params.suspect_timeout_us
            < latency
            <= params.suspect_timeout_us
            + params.membership_check_us
            + params.heartbeat_us
        )

    def test_view_epochs_record_each_death(self):
        params = crash_params((1, 40.0), (3, 200.0))
        runtime = ClusterRuntime(4, params=params)

        def idle(ctx):
            yield ctx.env.timeout(600.0)

        runtime.run_spmd(idle)
        m = runtime.membership
        assert m.epoch == 2
        assert m.view(0) == (0, 1, 2, 3)
        assert m.view(1) == (0, 2, 3)
        assert m.view(2) == (0, 2)

    def test_membership_absent_without_crash_plan(self):
        runtime = ClusterRuntime(2)
        assert runtime.membership is None

        def noop(ctx):
            yield ctx.env.timeout(1.0)
            return ctx.membership

        assert runtime.run_spmd(noop) == [None, None]


def lock_recovery_cfg(kind, **overrides):
    defaults = dict(
        nprocs=6,
        lock_kind=kind,
        barrier_kills=(),
        lock_kills=((5, 900.0),),
        lock_iters=2,
    )
    defaults.update(overrides)
    return ChaosBenchConfig(**defaults)


class TestLockRecovery:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_holder_death_recovers_every_flavor(self, kind):
        res = run_chaosbench(lock_recovery_cfg(kind))
        failed = {k for k, v in res.checks.items() if v is False}
        assert not failed, f"{kind}: failed checks {failed}\n{res.render()}"
        # The dead holder's lease was revoked and observed by a survivor.
        assert any(p["dead_holder"] == 5 for p in res.preemptions)
        # Recovery completed for the killed holder.
        assert all(
            r["recovery_latency_us"] is not None for r in res.recoveries
        )

    @pytest.mark.parametrize("kind", FIFO_KINDS)
    def test_fifo_preserved_among_survivors(self, kind):
        res = run_chaosbench(lock_recovery_cfg(kind))
        assert res.checks["fifo among survivors"] is True

    @pytest.mark.parametrize("kind", ("hybrid", "mcs", "naimi"))
    def test_double_crash_holder_and_successor(self, kind):
        cfg = lock_recovery_cfg(
            kind, lock_kills=((4, 900.0), (5, 950.0))
        )
        res = run_chaosbench(cfg)
        failed = {k for k, v in res.checks.items() if v is False}
        assert not failed, f"{kind}: failed checks {failed}\n{res.render()}"
        assert set(res.dead) == {4, 5}
        # The first victim held the lock; the second died queued behind it.
        assert any(p["dead_holder"] == 4 for p in res.preemptions)


class TestDeadWaiterBehindLiveHolder:
    """Regression: a dead shm-spinning waiter queued *behind* a live holder
    must have its ticket revoked even though the contiguous head scan stops
    at the live holder's ticket — otherwise the release passes the counter
    straight onto the dead ticket and every survivor behind it wedges."""

    @pytest.mark.parametrize("kind", ("ticket", "hybrid"))
    def test_release_skips_dead_ticket_behind_live_holder(self, kind):
        params = crash_params((1, 60.0))
        runtime = ClusterRuntime(4, procs_per_node=4, params=params)
        grants = []

        def program(ctx):
            lock = make_lock(kind, ctx, home_rank=0, name="mx")
            if ctx.rank == 0:
                yield from lock.acquire()
                # Hold across the waiter's death, declaration, and recovery.
                while 1 not in ctx.membership.dead_ranks():
                    yield ctx.env.timeout(10.0)
                yield ctx.env.timeout(50.0)
                yield from lock.release()
                return "released"
            if ctx.rank == 1:
                yield ctx.env.timeout(10.0)
                yield from lock.acquire()  # killed while spinning
                return "unreachable"
            yield ctx.env.timeout(20.0 + ctx.rank)
            yield from lock.acquire()
            grants.append((ctx.env.now, ctx.rank))
            yield from lock.release()
            return "granted"

        results = runtime.run_spmd(program)
        assert results[1] is CRASHED
        assert results[0] == "released"
        assert results[2] == results[3] == "granted"
        # Survivor FIFO preserved: rank 2 took its ticket before rank 3.
        assert [r for _, r in sorted(grants)] == [2, 3]
        # The dead rank's ticket (1) was revoked even though the head scan
        # stopped at the live holder's ticket (0).
        m = runtime.membership
        revoked = set().union(*m._revoked_tickets.values())
        assert 1 in revoked


class TestMcsMidReleaseRecovery:
    """Regression: a holder killed in phase 'releasing' (after entering
    _release() but before the handoff/CAS completed) must still be
    ghost-released; previously recovery returned without repair."""

    def test_killed_before_handoff_reaches_successor(self):
        params = crash_params((0, 502.0))
        runtime = ClusterRuntime(3, params=params)

        def program(ctx):
            lock = make_lock("mcs", ctx, home_rank=0, name="mx")
            if ctx.rank == 0:
                yield from lock.acquire()
                yield ctx.env.timeout(500.0 - ctx.env.now)
                yield from lock.release()  # killed inside the release
                return "unreachable"
            if ctx.rank == 1:
                yield ctx.env.timeout(20.0)
                yield from lock.acquire()  # queued behind rank 0
                granted = ctx.env.now
                yield from lock.release()
                return granted
            yield ctx.env.timeout(1.0)
            return None

        results = runtime.run_spmd(program)
        m = runtime.membership
        assert results[0] is CRASHED
        # The victim died inside its release, not while holding or idle.
        handles = m._locks[("mcs", "mx", 0)]["handles"]
        assert handles[0]._phase == "releasing"
        # The successor was granted by crash recovery, after declaration.
        assert results[1] > m.declared_at[0]

    def test_killed_mid_cas_with_no_successor(self):
        # Home on rank 1: the uncontended-release CAS is a remote round
        # trip, so the kill lands between entering _release() and the CAS
        # taking effect; a later acquirer must find the lock repaired.
        params = crash_params((0, 502.0))
        runtime = ClusterRuntime(3, params=params)

        def program(ctx):
            lock = make_lock("mcs", ctx, home_rank=1, name="mx")
            if ctx.rank == 0:
                yield from lock.acquire()
                yield ctx.env.timeout(500.0 - ctx.env.now)
                yield from lock.release()  # killed mid-CAS
                return "unreachable"
            if ctx.rank == 1:
                yield ctx.env.timeout(800.0)  # after declaration + recovery
                yield from lock.acquire()
                granted = ctx.env.now
                yield from lock.release()
                return granted
            yield ctx.env.timeout(1.0)
            return None

        results = runtime.run_spmd(program)
        m = runtime.membership
        assert results[0] is CRASHED
        handles = m._locks[("mcs", "mx", 1)]["handles"]
        assert handles[0]._phase == "releasing"
        assert isinstance(results[1], float)


class TestStaleTokenDropped:
    """Regression: a token still in flight when recovery regenerates it
    must be discarded on arrival (it would otherwise create a second
    holder — or a protocol error granting with no pending request)."""

    def test_naimi_regenerated_token_supersedes_in_flight_copy(self):
        # The token 0 -> 1 rides a link with a deterministic 600us delay
        # spike, so it is still in the fabric when an unrelated rank's
        # death triggers token-lock recovery.
        plan = FaultPlan(
            links=(((0, 1), LinkFaults(delay_rate=1.0, delay_spike_us=600.0)),),
            crashes=(ProcessCrash(at_us=100.0, rank=2),),
            seed=11,
        )
        runtime = ClusterRuntime(4, params=NetworkParams(faults=plan))
        locks = {}

        def program(ctx):
            lock = make_lock("naimi", ctx, home_rank=0, name="mx")
            locks[ctx.rank] = lock
            if ctx.rank == 1:
                yield ctx.env.timeout(10.0)
                yield from lock.acquire()  # granted via regeneration
                yield ctx.env.timeout(5.0)
                yield from lock.release()
            if ctx.rank == 3:
                yield ctx.env.timeout(900.0)  # after the stale copy landed
                yield from lock.acquire()  # the lock must still work
                yield from lock.release()
            yield ctx.env.timeout(1000.0 - ctx.env.now)
            return ctx.env.now

        results = runtime.run_spmd(program)
        assert results[2] is CRASHED
        # The in-flight pre-crash token arrived after regeneration and was
        # dropped instead of creating a second holder.
        assert locks[1].stats.counters.get("stale_tokens_dropped", 0) == 1
        # Recovery did regenerate (the token was neither held nor queued).
        assert any(
            r["kind"] == "naimi" for r in runtime.membership.recovery_log
        )


class TestBarrierUnderCrash:
    def _run(self, kill_at_us, hold_us):
        cfg = ChaosBenchConfig(
            nprocs=6,
            barrier_kills=((3, kill_at_us),),
            lock_kills=(),
            barrier_hold_us=hold_us,
            lock_iters=1,
        )
        return run_chaosbench(cfg)

    def test_participant_dies_before_entering(self):
        # Stage (i): the victim is killed at 5us, long before it reaches
        # the barrier call; survivors enter against an already-stale view.
        res = self._run(kill_at_us=5.0, hold_us=400.0)
        assert res.all_ok(), res.render()

    def test_participant_dies_mid_exchange(self):
        # Stage (ii): the victim enters the exchange first and is killed
        # while blocked inside it; survivors join before the declaration
        # and must restart on the view change.
        res = self._run(kill_at_us=60.0, hold_us=150.0)
        assert res.all_ok(), res.render()

    def test_survivors_memory_complete(self):
        res = self._run(kill_at_us=60.0, hold_us=150.0)
        assert res.checks["survivor memory"] is True

    def test_write_off_when_victim_ops_lost(self):
        """A rank killed with issued-but-unapplied ops: survivors' stage-2
        targets are reduced by the written-off credits (no deadlock)."""
        params = crash_params((1, 1.0), seed=3)
        runtime = ClusterRuntime(4, params=params)

        def program(ctx):
            base = ctx.region.alloc_named("wo.slots", ctx.nprocs, initial=0)
            if ctx.rank == 1:
                # Issue a put whose completion the crash may strand, then
                # spin so the kill finds us alive.
                yield from ctx.armci.put(GlobalAddress(0, base + 1), [11])
                while True:
                    yield ctx.env.timeout(1.0)
            yield ctx.env.timeout(50.0)
            yield from ctx.armci.put(GlobalAddress((ctx.rank + 1) % 4, base), [7])
            yield from ctx.armci.barrier()
            return ctx.env.now

        results = runtime.run_spmd(program)
        assert results[1] is CRASHED
        assert all(isinstance(r, float) for i, r in enumerate(results) if i != 1)


class TestChaosBenchDeterminism:
    def test_same_seed_same_report(self):
        cfg = ChaosBenchConfig(kill_seed=99)
        first = run_chaosbench(cfg)
        second = run_chaosbench(cfg)
        assert first.render() == second.render()
        assert first.detections == second.detections
        assert first.survivor_grants == second.survivor_grants

    def test_different_seed_moves_detection(self):
        a = run_chaosbench(ChaosBenchConfig(kill_seed=1))
        b = run_chaosbench(ChaosBenchConfig(kill_seed=2))
        # Same kills, different heartbeat jitter: declarations may shift.
        assert a.all_ok() and b.all_ok()
        assert {d["rank"] for d in a.detections} == {
            d["rank"] for d in b.detections
        }


class TestDisabledMeansAbsent:
    """With no crashes planned, the crash paths must not even construct."""

    def test_faultbench_output_byte_identical(self):
        # FaultPlan with faults but no crashes: membership stays None.
        from repro.experiments.faultbench import FaultBenchConfig, run_faultbench

        cfg = FaultBenchConfig(
            nprocs=4, epochs=1, puts_per_peer=1, cells=2, drop_rates=(0.0, 0.02)
        )
        assert run_faultbench(cfg).render() == run_faultbench(cfg).render()

    def test_empty_crash_plan_keeps_membership_off(self):
        params = NetworkParams(faults=FaultPlan(seed=5))
        runtime = ClusterRuntime(2, params=params)
        assert runtime.membership is None


class TestCrashOverlapIdempotency:
    """Overlapping crash entries resolve deterministically at kill time."""

    def _prog(self, ctx):
        addr = ctx.region.alloc_named("c", 1, initial=0)
        peer = (ctx.rank + 1) % ctx.nprocs
        yield from ctx.armci.put(ctx.ga(peer, addr), [ctx.rank])
        if ctx.env.now < 200.0:
            yield ctx.env.timeout(200.0 - ctx.env.now)
        yield from ctx.armci.barrier()
        return ctx.env.now

    def test_node_crash_after_one_of_its_ranks_died(self):
        # ppn=2: ranks (2, 3) live on node 1.  Rank 2 dies at 40us, the
        # whole node at 90us; the node kill must no-op on the dead rank
        # and still take rank 3 and the server down.
        plan = FaultPlan(
            crashes=(
                ProcessCrash(at_us=40.0, rank=2),
                ProcessCrash(at_us=90.0, node=1),
            ),
            seed=9,
        )
        runtime = ClusterRuntime(
            6, procs_per_node=2, params=NetworkParams(faults=plan)
        )
        results = runtime.run_spmd(self._prog)
        m = runtime.membership
        assert results[2] is CRASHED and results[3] is CRASHED
        assert set(m.dead_ranks()) == {2, 3}
        assert m.crashed_at[2] == 40.0  # the earlier rank kill won
        assert m.crashed_at[3] == 90.0
        assert m.node_dead(1)
        assert all(isinstance(results[r], float) for r in (0, 1, 4, 5))

    def test_rank_crash_after_its_node_died_is_a_noop(self):
        plan = FaultPlan(
            crashes=(
                ProcessCrash(at_us=40.0, node=1),
                ProcessCrash(at_us=90.0, rank=2),
            ),
            seed=9,
        )
        runtime = ClusterRuntime(
            6, procs_per_node=2, params=NetworkParams(faults=plan)
        )
        results = runtime.run_spmd(self._prog)
        m = runtime.membership
        assert set(m.dead_ranks()) == {2, 3}
        assert m.crashed_at[2] == 40.0  # node kill, not the later entry
        assert results[2] is CRASHED

    def test_double_node_crash_entries_normalize(self):
        plan = FaultPlan(
            crashes=(
                ProcessCrash(at_us=120.0, node=1),
                ProcessCrash(at_us=40.0, node=1),
            ),
            seed=9,
        )
        assert plan.crashes == (ProcessCrash(at_us=40.0, node=1),)


class TestNicOnlyCrash:
    """A dead NIC co-processor: silent device, suspicion escalates."""

    def _params(self, at_us=30.0, node=2):
        plan = FaultPlan(crashes=(ProcessCrash(at_us=at_us, nic=node),), seed=5)
        return NetworkParams(faults=plan, retry_timeout_us=30.0, max_retries=4)

    def _prog(self, ctx):
        addr = ctx.region.alloc_named("c", 1, initial=0)
        peer = (ctx.rank + 1) % ctx.nprocs
        yield from ctx.armci.put(ctx.ga(peer, addr), [ctx.rank])
        yield from ctx.armci.barrier(algorithm="nic")
        yield from ctx.armci.barrier(algorithm="nic")
        return ctx.env.now

    def test_mid_exchange_nic_crash_escalates_and_survivors_finish(self):
        runtime = ClusterRuntime(4, params=self._params())
        results = runtime.run_spmd(self._prog)
        m = runtime.membership
        # The hosted rank was fail-stopped by the escalated suspicion...
        assert results[2] is CRASHED
        assert m.dead_ranks() == (2,)
        assert m.nic_dead(2)
        # ...and every survivor degraded to the host exchange and finished.
        assert all(isinstance(results[r], float) for r in (0, 1, 3))
        for rank in (0, 1, 3):
            assert runtime.armcis[rank].stats.get("nic_degraded", 0) >= 1
        # Frames to the silent NIC were swallowed unACKed, not refused.
        assert runtime.fabric.stats.blackholed > 0
        assert runtime.fabric.stats.links_declared_dead >= 1

    def test_idle_nic_crash_degrades_next_barrier_locally(self):
        # The NIC dies long before the first offloaded barrier: the local
        # host must notice the dead doorbell immediately and degrade.
        plan = FaultPlan(crashes=(ProcessCrash(at_us=1.0, nic=1),), seed=5)
        params = NetworkParams(faults=plan, retry_timeout_us=30.0, max_retries=4)
        runtime = ClusterRuntime(3, params=params)

        def prog(ctx):
            yield ctx.env.timeout(50.0)  # let the kill fire first
            yield from ctx.armci.barrier(algorithm="nic")
            return ctx.env.now

        results = runtime.run_spmd(prog)
        m = runtime.membership
        assert results[1] is CRASHED  # escalated once peers went silent
        assert runtime.armcis[1].stats.get("nic_degraded", 0) >= 1
        assert all(isinstance(results[r], float) for r in (0, 2))

    def test_nic_crash_without_nic_traffic_is_harmless(self):
        # Host-path workload never touches the NIC: nobody detects the
        # dead co-processor and every rank finishes normally.
        plan = FaultPlan(crashes=(ProcessCrash(at_us=30.0, nic=2),), seed=5)
        runtime = ClusterRuntime(4, params=NetworkParams(faults=plan))

        def prog(ctx):
            addr = ctx.region.alloc_named("c", 1, initial=0)
            peer = (ctx.rank + 1) % ctx.nprocs
            yield from ctx.armci.put(ctx.ga(peer, addr), [ctx.rank])
            yield from ctx.armci.barrier()
            return ctx.env.now

        results = runtime.run_spmd(prog)
        m = runtime.membership
        assert all(isinstance(r, float) for r in results)
        assert m.dead_ranks() == ()
        assert m.nic_dead(2)
