"""Crash-stop membership: detection, lock recovery, degraded barriers.

Covers the crash-stop subsystem end to end through small SPMD programs:

* failure detection (heartbeat silence) with deterministic latency,
* lease-based holder-death recovery on every lock flavor, with FIFO
  preserved among survivors,
* the combined barrier completing when a participant dies before
  entering (stage i) and while blocked inside the exchange (stage ii),
* a double crash (holder plus its queue successor),
* chaosbench determinism under a fixed kill seed,
* the guard property: with no crashes planned the membership service is
  never constructed and experiment output is byte-identical.
"""

import pytest

from repro.experiments.chaosbench import (
    ChaosBenchConfig,
    FIFO_KINDS,
    run_chaosbench,
)
from repro.net.faults import FaultPlan, ProcessCrash
from repro.net.params import NetworkParams
from repro.runtime.cluster import ClusterRuntime
from repro.runtime.memory import GlobalAddress
from repro.sim.core import CRASHED

ALL_KINDS = ("ticket", "lh", "server", "hybrid", "mcs", "naimi", "raymond")


def crash_params(*crashes, seed=7, **overrides):
    plan = FaultPlan(
        crashes=tuple(ProcessCrash(at_us=t, rank=r) for r, t in crashes),
        seed=seed,
    )
    return NetworkParams(faults=plan, **overrides)


class TestDetection:
    def test_idle_rank_declared_by_heartbeat_silence(self):
        params = crash_params((2, 50.0))
        runtime = ClusterRuntime(4, params=params)

        def idle(ctx):
            yield ctx.env.timeout(500.0)
            return ctx.membership.dead_ranks()

        results = runtime.run_spmd(idle)
        m = runtime.membership
        assert m is not None
        assert m.dead_ranks() == (2,)
        assert results[2] is CRASHED
        assert results[0] == (2,)
        latency = m.declared_at[2] - m.crashed_at[2]
        assert m.crashed_at[2] == pytest.approx(50.0)
        # Silence is noticed within the suspect timeout plus one detector
        # scan plus one heartbeat interval of slack.
        assert (
            params.suspect_timeout_us
            < latency
            <= params.suspect_timeout_us
            + params.membership_check_us
            + params.heartbeat_us
        )

    def test_view_epochs_record_each_death(self):
        params = crash_params((1, 40.0), (3, 200.0))
        runtime = ClusterRuntime(4, params=params)

        def idle(ctx):
            yield ctx.env.timeout(600.0)

        runtime.run_spmd(idle)
        m = runtime.membership
        assert m.epoch == 2
        assert m.view(0) == (0, 1, 2, 3)
        assert m.view(1) == (0, 2, 3)
        assert m.view(2) == (0, 2)

    def test_membership_absent_without_crash_plan(self):
        runtime = ClusterRuntime(2)
        assert runtime.membership is None

        def noop(ctx):
            yield ctx.env.timeout(1.0)
            return ctx.membership

        assert runtime.run_spmd(noop) == [None, None]


def lock_recovery_cfg(kind, **overrides):
    defaults = dict(
        nprocs=6,
        lock_kind=kind,
        barrier_kills=(),
        lock_kills=((5, 900.0),),
        lock_iters=2,
    )
    defaults.update(overrides)
    return ChaosBenchConfig(**defaults)


class TestLockRecovery:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_holder_death_recovers_every_flavor(self, kind):
        res = run_chaosbench(lock_recovery_cfg(kind))
        failed = {k for k, v in res.checks.items() if v is False}
        assert not failed, f"{kind}: failed checks {failed}\n{res.render()}"
        # The dead holder's lease was revoked and observed by a survivor.
        assert any(p["dead_holder"] == 5 for p in res.preemptions)
        # Recovery completed for the killed holder.
        assert all(
            r["recovery_latency_us"] is not None for r in res.recoveries
        )

    @pytest.mark.parametrize("kind", FIFO_KINDS)
    def test_fifo_preserved_among_survivors(self, kind):
        res = run_chaosbench(lock_recovery_cfg(kind))
        assert res.checks["fifo among survivors"] is True

    @pytest.mark.parametrize("kind", ("hybrid", "mcs", "naimi"))
    def test_double_crash_holder_and_successor(self, kind):
        cfg = lock_recovery_cfg(
            kind, lock_kills=((4, 900.0), (5, 950.0))
        )
        res = run_chaosbench(cfg)
        failed = {k for k, v in res.checks.items() if v is False}
        assert not failed, f"{kind}: failed checks {failed}\n{res.render()}"
        assert set(res.dead) == {4, 5}
        # The first victim held the lock; the second died queued behind it.
        assert any(p["dead_holder"] == 4 for p in res.preemptions)


class TestBarrierUnderCrash:
    def _run(self, kill_at_us, hold_us):
        cfg = ChaosBenchConfig(
            nprocs=6,
            barrier_kills=((3, kill_at_us),),
            lock_kills=(),
            barrier_hold_us=hold_us,
            lock_iters=1,
        )
        return run_chaosbench(cfg)

    def test_participant_dies_before_entering(self):
        # Stage (i): the victim is killed at 5us, long before it reaches
        # the barrier call; survivors enter against an already-stale view.
        res = self._run(kill_at_us=5.0, hold_us=400.0)
        assert res.all_ok(), res.render()

    def test_participant_dies_mid_exchange(self):
        # Stage (ii): the victim enters the exchange first and is killed
        # while blocked inside it; survivors join before the declaration
        # and must restart on the view change.
        res = self._run(kill_at_us=60.0, hold_us=150.0)
        assert res.all_ok(), res.render()

    def test_survivors_memory_complete(self):
        res = self._run(kill_at_us=60.0, hold_us=150.0)
        assert res.checks["survivor memory"] is True

    def test_write_off_when_victim_ops_lost(self):
        """A rank killed with issued-but-unapplied ops: survivors' stage-2
        targets are reduced by the written-off credits (no deadlock)."""
        params = crash_params((1, 1.0), seed=3)
        runtime = ClusterRuntime(4, params=params)

        def program(ctx):
            base = ctx.region.alloc_named("wo.slots", ctx.nprocs, initial=0)
            if ctx.rank == 1:
                # Issue a put whose completion the crash may strand, then
                # spin so the kill finds us alive.
                yield from ctx.armci.put(GlobalAddress(0, base + 1), [11])
                while True:
                    yield ctx.env.timeout(1.0)
            yield ctx.env.timeout(50.0)
            yield from ctx.armci.put(GlobalAddress((ctx.rank + 1) % 4, base), [7])
            yield from ctx.armci.barrier()
            return ctx.env.now

        results = runtime.run_spmd(program)
        assert results[1] is CRASHED
        assert all(isinstance(r, float) for i, r in enumerate(results) if i != 1)


class TestChaosBenchDeterminism:
    def test_same_seed_same_report(self):
        cfg = ChaosBenchConfig(kill_seed=99)
        first = run_chaosbench(cfg)
        second = run_chaosbench(cfg)
        assert first.render() == second.render()
        assert first.detections == second.detections
        assert first.survivor_grants == second.survivor_grants

    def test_different_seed_moves_detection(self):
        a = run_chaosbench(ChaosBenchConfig(kill_seed=1))
        b = run_chaosbench(ChaosBenchConfig(kill_seed=2))
        # Same kills, different heartbeat jitter: declarations may shift.
        assert a.all_ok() and b.all_ok()
        assert {d["rank"] for d in a.detections} == {
            d["rank"] for d in b.detections
        }


class TestDisabledMeansAbsent:
    """With no crashes planned, the crash paths must not even construct."""

    def test_faultbench_output_byte_identical(self):
        # FaultPlan with faults but no crashes: membership stays None.
        from repro.experiments.faultbench import FaultBenchConfig, run_faultbench

        cfg = FaultBenchConfig(
            nprocs=4, epochs=1, puts_per_peer=1, cells=2, drop_rates=(0.0, 0.02)
        )
        assert run_faultbench(cfg).render() == run_faultbench(cfg).render()

    def test_empty_crash_plan_keeps_membership_off(self):
        params = NetworkParams(faults=FaultPlan(seed=5))
        runtime = ClusterRuntime(2, params=params)
        assert runtime.membership is None
