"""Unit tests for the server thread: request handling, FIFO semantics,
wake-up accounting, op_done counters, and the hybrid-lock server side."""

import pytest

from repro.armci.requests import (
    AccRequest,
    FenceRequest,
    GetRequest,
    LockRequest,
    PutRequest,
    RmwRequest,
    UnlockRequest,
)
from repro.net.fabric import Fabric
from repro.net.message import server_endpoint
from repro.net.params import NetworkParams
from repro.net.topology import Topology
from repro.runtime.memory import Region
from repro.runtime.server import ServerThread
from repro.sim.core import Environment, Event


def make_node(nprocs=2, ppn=1, **overrides):
    """Two-node rig: server on node 0 hosting rank 0; rank 1 remote."""
    env = Environment()
    params = NetworkParams(**overrides) if overrides else NetworkParams()
    topo = Topology(nprocs, procs_per_node=ppn)
    fabric = Fabric(env, topo, params)
    regions = {r: Region(env, r) for r in range(nprocs)}
    servers = {}
    for node in range(topo.nnodes):
        servers[node] = ServerThread(env, node, fabric, topo, params, regions)
        servers[node].start()
    return env, fabric, regions, servers, params


class TestPut:
    def test_put_writes_memory_and_counts(self):
        env, fabric, regions, servers, _ = make_node()
        base = regions[0].alloc(4)
        req = PutRequest(src_rank=1, dst_rank=0, addr=base, values=[1, 2, 3, 4])
        fabric.post(1, server_endpoint(0), req)
        env.run()
        assert regions[0].read_many(base, 4) == [1, 2, 3, 4]
        assert servers[0].op_done(0) == 1
        assert servers[0].stats.puts == 1

    def test_put_segments(self):
        env, fabric, regions, servers, _ = make_node()
        base = regions[0].alloc(10)
        req = PutRequest(
            src_rank=1,
            dst_rank=0,
            segments=[(base, [1, 2]), (base + 5, [9])],
        )
        assert req.total_cells() == 3
        fabric.post(1, server_endpoint(0), req)
        env.run()
        assert regions[0].read(base) == 1
        assert regions[0].read(base + 1) == 2
        assert regions[0].read(base + 5) == 9
        assert servers[0].op_done(0) == 1  # one op, not per segment

    def test_put_ack_mode_fires_ack_event(self):
        env, fabric, regions, _servers, _ = make_node()
        base = regions[0].alloc(1)
        ack = Event(env)
        req = PutRequest(src_rank=1, dst_rank=0, addr=base, values=[5], ack=ack)
        fabric.post(1, server_endpoint(0), req)
        env.run()
        assert ack.processed and ack.value == 1

    def test_put_wrong_node_raises(self):
        env, fabric, regions, _servers, _ = make_node()
        regions[1].alloc(1)
        req = PutRequest(src_rank=0, dst_rank=1, addr=0, values=[1])
        fabric.post(0, server_endpoint(0), req)  # rank 1 lives on node 1!
        with pytest.raises(ValueError, match="hosted on node"):
            env.run()


class TestGet:
    def test_get_replies_with_values(self):
        env, fabric, regions, _servers, _ = make_node()
        base = regions[0].alloc(3)
        regions[0].write_many(base, [7, 8, 9])
        reply = Event(env)
        req = GetRequest(src_rank=1, dst_rank=0, addr=base, count=3, reply=reply)
        fabric.post(1, server_endpoint(0), req)
        env.run()
        assert reply.value == [7, 8, 9]

    def test_get_segments_concatenates(self):
        env, fabric, regions, _servers, _ = make_node()
        base = regions[0].alloc(10)
        regions[0].write_many(base, list(range(10)))
        reply = Event(env)
        req = GetRequest(
            src_rank=1, dst_rank=0, segments=[(base + 2, 2), (base + 7, 1)], reply=reply
        )
        fabric.post(1, server_endpoint(0), req)
        env.run()
        assert reply.value == [2, 3, 7]

    def test_get_does_not_bump_op_done(self):
        env, fabric, regions, servers, _ = make_node()
        base = regions[0].alloc(1)
        reply = Event(env)
        fabric.post(
            1,
            server_endpoint(0),
            GetRequest(src_rank=1, dst_rank=0, addr=base, count=1, reply=reply),
        )
        env.run()
        assert servers[0].op_done(0) == 0


class TestAcc:
    def test_accumulate_adds(self):
        env, fabric, regions, servers, _ = make_node()
        base = regions[0].alloc(2)
        regions[0].write_many(base, [1.0, 2.0])
        req = AccRequest(src_rank=1, dst_rank=0, addr=base, values=[10.0, 20.0])
        fabric.post(1, server_endpoint(0), req)
        env.run()
        assert regions[0].read_many(base, 2) == [11.0, 22.0]
        assert servers[0].op_done(0) == 1


class TestRmw:
    @pytest.mark.parametrize(
        "op,setup,args,expected_result,expected_mem",
        [
            ("fetch_add", [5], (3,), 5, [8]),
            ("swap", [5], (9,), 5, [9]),
            ("cas", [5], (5, 7), True, [7]),
            ("cas", [5], (4, 7), False, [5]),
        ],
    )
    def test_scalar_ops(self, op, setup, args, expected_result, expected_mem):
        env, fabric, regions, _servers, _ = make_node()
        base = regions[0].alloc(len(setup))
        regions[0].write_many(base, setup)
        reply = Event(env)
        req = RmwRequest(
            src_rank=1, dst_rank=0, addr=base, op=op, args=args, reply=reply
        )
        fabric.post(1, server_endpoint(0), req)
        env.run()
        assert reply.value == expected_result
        assert regions[0].read_many(base, len(setup)) == expected_mem

    def test_pair_ops(self):
        env, fabric, regions, _servers, _ = make_node()
        base = regions[0].alloc(2)
        regions[0].write_many(base, [-1, -1])
        reply = Event(env)
        req = RmwRequest(
            src_rank=1, dst_rank=0, addr=base, op="swap_pair", args=((1, 42),),
            reply=reply,
        )
        fabric.post(1, server_endpoint(0), req)
        env.run()
        assert tuple(reply.value) == (-1, -1)
        assert regions[0].read_many(base, 2) == [1, 42]

    def test_unknown_op_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown rmw op"):
            RmwRequest(src_rank=0, dst_rank=0, addr=0, op="nope")


class TestFence:
    def test_fence_confirms_after_prior_puts(self):
        """FIFO: the fence reply happens after earlier puts completed."""
        env, fabric, regions, servers, _ = make_node()
        base = regions[0].alloc(1)
        reply = Event(env)
        fabric.post(
            1, server_endpoint(0),
            PutRequest(src_rank=1, dst_rank=0, addr=base, values=[1]),
        )
        fabric.post(1, server_endpoint(0), FenceRequest(src_rank=1, reply=reply))
        observed = []
        reply.callbacks.append(lambda ev: observed.append(regions[0].read(base)))
        env.run()
        assert observed == [1]
        assert servers[0].stats.fences == 1


class TestWakeAccounting:
    def test_sleeping_server_pays_wake(self):
        env, fabric, regions, servers, params = make_node(
            server_wake_us=50.0, server_proc_us=0.0, o_recv_us=0.0,
            inter_latency_us=1.0, per_byte_us=0.0, o_send_us=0.0,
        )
        base = regions[0].alloc(1)
        reply = Event(env)
        fabric.post(
            1, server_endpoint(0),
            GetRequest(src_rank=1, dst_rank=0, addr=base, count=1, reply=reply),
        )
        env.run()
        # deliver at 1.0 + wake 50 + reply path 1.0 (+ copy)
        assert env.now >= 52.0
        assert servers[0].stats.wakes == 1

    def test_back_to_back_requests_single_wake(self):
        env, fabric, regions, servers, _ = make_node(
            server_wake_us=50.0, inter_latency_us=1.0
        )
        base = regions[0].alloc(1)
        for _ in range(5):
            fabric.post(
                1, server_endpoint(0),
                PutRequest(src_rank=1, dst_rank=0, addr=base, values=[1]),
            )
        env.run()
        # All five arrive at ~t=1 before the server finishes waking: one wake.
        assert servers[0].stats.wakes == 1
        assert servers[0].stats.requests == 5


class TestOpDoneCells:
    def test_per_hosted_rank_counters(self):
        env, fabric, regions, servers, _ = make_node(nprocs=4, ppn=2)
        # node 0 hosts ranks 0, 1
        b0 = regions[0].alloc(1)
        b1 = regions[1].alloc(1)
        fabric.post(2, server_endpoint(0),
                    PutRequest(src_rank=2, dst_rank=0, addr=b0, values=[1]))
        fabric.post(2, server_endpoint(0),
                    PutRequest(src_rank=2, dst_rank=1, addr=b1, values=[1]))
        fabric.post(3, server_endpoint(0),
                    PutRequest(src_rank=3, dst_rank=1, addr=b1, values=[2]))
        env.run()
        assert servers[0].op_done(0) == 1
        assert servers[0].op_done(1) == 2

    def test_op_done_cell_for_foreign_rank_raises(self):
        _env, _fabric, _regions, servers, _ = make_node(nprocs=2)
        with pytest.raises(ValueError, match="not hosted"):
            servers[0].op_done_cell(1)


class TestHybridLockServerSide:
    def make_lock_rig(self):
        env, fabric, regions, servers, params = make_node(nprocs=3)
        base = regions[0].alloc_named("hybrid:L", 2, initial=0)
        return env, fabric, regions, servers, base

    def test_first_requester_granted_immediately(self):
        env, fabric, _regions, servers, base = self.make_lock_rig()
        reply = Event(env)
        fabric.post(1, server_endpoint(0),
                    LockRequest(src_rank=1, home_rank=0, base_addr=base, reply=reply))
        env.run()
        assert reply.value == 0  # ticket 0
        assert servers[0].stats.grants == 1

    def test_second_requester_queued_until_unlock(self):
        env, fabric, _regions, servers, base = self.make_lock_rig()
        r1, r2 = Event(env), Event(env)
        fabric.post(1, server_endpoint(0),
                    LockRequest(src_rank=1, home_rank=0, base_addr=base, reply=r1))
        fabric.post(2, server_endpoint(0),
                    LockRequest(src_rank=2, home_rank=0, base_addr=base, reply=r2))
        env.run()
        assert r1.processed and not r2.triggered
        assert servers[0].queued_lock_waiters(0, base) == [1]
        fabric.post(1, server_endpoint(0),
                    UnlockRequest(src_rank=1, home_rank=0, base_addr=base))
        env.run()
        assert r2.processed and r2.value == 1
        assert servers[0].queued_lock_waiters(0, base) == []

    def test_unlock_wakes_local_pollers_via_counter(self):
        env, fabric, regions, _servers, base = self.make_lock_rig()
        seen = []

        def poller():
            yield from regions[0].wait_until(base + 1, lambda v: v == 1)
            seen.append(env.now)

        env.process(poller())
        fabric.post(1, server_endpoint(0),
                    UnlockRequest(src_rank=1, home_rank=0, base_addr=base))
        env.run()
        assert len(seen) == 1


class TestIdempotentDispatch:
    """With faults enabled, the server dedups requests by (src_rank, seq).

    The fault plans here disable the reliable transport layer so raw
    network duplicates reach the server — exercising the at-most-once
    dispatch path directly (the plan's dedup is keyed on the fabric
    sequence number, which a network-duplicated copy shares).
    """

    def dup_plan(self):
        from repro.net.faults import FaultPlan, LinkFaults

        return FaultPlan(default=LinkFaults(dup_rate=1.0), reliable=False)

    def test_duplicate_put_applied_once(self):
        env, fabric, regions, servers, _ = make_node(faults=self.dup_plan())
        base = regions[0].alloc(1)
        fabric.post(
            1,
            server_endpoint(0),
            PutRequest(src_rank=1, dst_rank=0, addr=base, values=[7]),
        )
        env.run()
        assert regions[0].read(base) == 7
        assert servers[0].op_done(0) == 1  # not double-bumped
        assert servers[0].stats.puts == 1
        assert servers[0].stats.dup_requests == 1

    def test_duplicate_acc_not_double_accumulated(self):
        env, fabric, regions, servers, _ = make_node(faults=self.dup_plan())
        base = regions[0].alloc(1)
        fabric.post(
            1,
            server_endpoint(0),
            AccRequest(src_rank=1, dst_rank=0, addr=base, values=[5]),
        )
        env.run()
        assert regions[0].read(base) == 5  # 10 would mean double-apply
        assert servers[0].op_done(0) == 1
        assert servers[0].stats.dup_requests == 1

    def test_duplicate_request_replays_unanswered_reply(self):
        # Large latency: the duplicate reaches the server (dup lag <= 5us)
        # well before the first response reaches the requester, so the
        # server re-sends the cached reply rather than dropping the dup.
        env, fabric, regions, servers, _ = make_node(
            faults=self.dup_plan(), inter_latency_us=20.0
        )
        base = regions[0].alloc(1)
        regions[0].write_many(base, [42])
        reply = Event(env)
        fabric.post(
            1,
            server_endpoint(0),
            GetRequest(src_rank=1, dst_rank=0, addr=base, count=1, reply=reply),
        )
        env.run()
        assert reply.processed and reply.value == [42]  # triggered exactly once
        assert servers[0].stats.dup_requests == 1
        assert servers[0].stats.replayed_replies == 1
        assert fabric.stats.dup_suppressed >= 1  # extra reply copies suppressed

    def test_no_dedup_state_without_faults(self):
        _env, _fabric, _regions, servers, _ = make_node()
        assert not servers[0]._dedup
        assert servers[0].stats.dup_requests == 0

    def test_reply_rejects_negative_payload_cells(self):
        env, _fabric, _regions, servers, _ = make_node()
        with pytest.raises(ValueError, match="payload_cells"):
            next(servers[0]._reply(1, Event(env), None, payload_cells=-1))
