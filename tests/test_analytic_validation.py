"""Closed-form validation: measured times match the cost model's algebra.

These tests pin the simulator to hand-computable predictions for simple
protocols, so regressions in the timing machinery can't hide behind the
statistical experiments.  All use zeroed ancillary costs to keep the
algebra exact.
"""

import pytest

from repro.mp import collectives
from repro.net.params import MSG_HEADER_BYTES, NetworkParams
from repro.runtime.cluster import ClusterRuntime
from repro.runtime.memory import GlobalAddress


def exact_params(**overrides):
    """A cost model with only the terms the test accounts for."""
    base = dict(
        inter_latency_us=10.0,
        per_byte_us=0.0,
        o_send_us=1.0,
        o_recv_us=1.0,
        intra_latency_us=0.0,
        shm_access_us=0.0,
        shm_atomic_us=0.0,
        poll_detect_us=0.0,
        server_proc_us=2.0,
        server_wake_us=0.0,
        mem_copy_per_byte_us=0.0,
        server_fence_check_us=0.0,
        server_lock_op_us=0.0,
        api_call_us=0.0,
        mp_call_us=0.0,
        jitter_us=0.0,
    )
    base.update(overrides)
    return NetworkParams(**base)


class TestPointToPoint:
    def test_mp_one_way_time(self, make_cluster):
        """send->recv = o_send + L + o_recv, receiver pre-blocked."""

        def main(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(1, "x", payload_bytes=0)
                return None
            msg = yield from ctx.comm.recv(source=0)
            return ctx.now

        rt = make_cluster(nprocs=2, params=exact_params())
        arrival = rt.run_spmd(main)[1]
        assert arrival == pytest.approx(1.0 + 10.0 + 1.0)

    def test_ping_pong_round_trip(self, make_cluster):
        def main(ctx):
            if ctx.rank == 0:
                t0 = ctx.now
                yield from ctx.comm.send(1, "ping", payload_bytes=0)
                yield from ctx.comm.recv(source=1)
                return ctx.now - t0
            yield from ctx.comm.recv(source=0)
            yield from ctx.comm.send(0, "pong", payload_bytes=0)
            return None

        rt = make_cluster(nprocs=2, params=exact_params())
        rtt = rt.run_spmd(main)[0]
        # 2 x (o_send + L + o_recv) = 24.
        assert rtt == pytest.approx(24.0)

    def test_bandwidth_term(self, make_cluster):
        """A large message adds size x per_byte to the one-way time."""

        def main(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(1, "big", payload_bytes=1000 - MSG_HEADER_BYTES)
                return None
            yield from ctx.comm.recv(source=0)
            return ctx.now

        rt = make_cluster(nprocs=2, params=exact_params(per_byte_us=0.05))
        arrival = rt.run_spmd(main)[1]
        assert arrival == pytest.approx(1.0 + 1000 * 0.05 + 10.0 + 1.0)


class TestOneSided:
    def test_remote_get_round_trip(self, make_cluster):
        """get RT = o_send + L + o_recv(server) + proc + o_send(server) + L
        + o_recv(client)."""

        def main(ctx):
            base = ctx.region.alloc(1)
            if ctx.rank == 0:
                t0 = ctx.now
                yield from ctx.armci.get(GlobalAddress(1, base), 1)
                return ctx.now - t0
            yield ctx.compute(0)
            return None

        rt = make_cluster(nprocs=2, params=exact_params())
        rtt = rt.run_spmd(main)[0]
        assert rtt == pytest.approx(1 + 10 + 1 + 2 + 1 + 10 + 1)

    def test_put_injection_is_one_overhead(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1)
            if ctx.rank == 0:
                t0 = ctx.now
                yield from ctx.armci.put(GlobalAddress(1, base), [1])
                return ctx.now - t0
            yield ctx.compute(0)
            return None

        rt = make_cluster(nprocs=2, params=exact_params())
        assert rt.run_spmd(main)[0] == pytest.approx(1.0)  # o_send only

    def test_server_wake_charged_once(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1)
            if ctx.rank == 0:
                t0 = ctx.now
                yield from ctx.armci.get(GlobalAddress(1, base), 1)
                return ctx.now - t0
            yield ctx.compute(0)
            return None

        rt = make_cluster(nprocs=2, params=exact_params(server_wake_us=50.0))
        rtt = rt.run_spmd(main)[0]
        assert rtt == pytest.approx(26.0 + 50.0)


class TestCollectiveAlgebra:
    @pytest.mark.parametrize("nprocs,rounds", [(2, 1), (4, 2), (8, 3), (16, 4)])
    def test_barrier_rounds(self, make_cluster, nprocs, rounds):
        """Dissemination barrier = ceil(log2 N) phases; each phase's span is
        one overlapped exchange = o_send + L + o_recv."""

        def main(ctx):
            t0 = ctx.now
            yield from collectives.barrier(ctx.comm)
            return ctx.now - t0

        rt = make_cluster(nprocs=nprocs, params=exact_params())
        elapsed = max(rt.run_spmd(main))
        phase = 1.0 + 10.0 + 1.0
        # Lower bound exact; allow the send-side pipelining slack of one
        # overhead per phase.
        assert elapsed >= rounds * phase - 1e-9
        assert elapsed <= rounds * (phase + 1.0) + 1e-9

    def test_linear_allfence_round_trips(self, make_cluster):
        """One process fencing K dirty servers serially costs K round trips
        (no contention)."""

        def main(ctx):
            base = ctx.region.alloc(1)
            if ctx.rank == 0:
                for peer in (1, 2, 3):
                    yield from ctx.armci.put(GlobalAddress(peer, base), [1])
                t0 = ctx.now
                yield from ctx.armci.allfence()
                return ctx.now - t0
            yield ctx.compute(0)
            return None

        rt = make_cluster(nprocs=4, params=exact_params())
        elapsed = rt.run_spmd(main)[0]
        round_trip = 1 + 10 + 1 + 2 + 1 + 10 + 1  # same path as a get
        assert elapsed == pytest.approx(3 * round_trip)

    def test_paper_cost_claim_barrier_vs_allfence(self, make_cluster):
        """The headline algebra: exchange barrier ~ 2 log2(N) latencies vs
        linear fence ~ 2(N-1) latencies, on a clean cost model."""

        def barrier_prog(ctx):
            t0 = ctx.now
            yield from ctx.armci.barrier(algorithm="exchange")
            return ctx.now - t0

        def fence_prog(ctx):
            base = ctx.region.alloc(1)
            for peer in range(ctx.nprocs):
                if peer != ctx.rank:
                    yield from ctx.armci.put(GlobalAddress(peer, base), [1])
            yield from collectives.barrier(ctx.comm)
            t0 = ctx.now
            yield from ctx.armci.allfence()
            return ctx.now - t0

        nprocs = 16
        latency_only = exact_params(
            o_send_us=0.0, o_recv_us=0.0, server_proc_us=0.0
        )
        rt = make_cluster(nprocs=nprocs, params=latency_only)
        barrier_time = max(rt.run_spmd(barrier_prog))
        # 2 log2(16) = 8 latencies.
        assert barrier_time == pytest.approx(8 * 10.0)

        rt = make_cluster(nprocs=nprocs, params=latency_only)
        fence_time = max(rt.run_spmd(fence_prog))
        # >= 2(N-1) latencies = 300; convoying can only add.
        assert fence_time >= 2 * (nprocs - 1) * 10.0 - 1e-9
