"""Tests for the parameter-sweep framework."""

import math

import pytest

from repro.experiments.sweep import (
    SweepResult,
    best,
    calibration_loss,
    sweep,
)
from repro.net.params import myrinet2000


class TestSweep:
    def test_cartesian_coverage(self):
        seen = []

        def evaluate(params):
            seen.append((params.server_wake_us, params.api_call_us))
            return {"m": params.server_wake_us + params.api_call_us}

        result = sweep(
            {"server_wake_us": [1.0, 2.0], "api_call_us": [0.5, 1.5]},
            evaluate,
        )
        assert len(result.points) == 4
        assert sorted(seen) == [(1.0, 0.5), (1.0, 1.5), (2.0, 0.5), (2.0, 1.5)]

    def test_deterministic_order(self):
        def evaluate(params):
            return {"m": params.server_wake_us}

        grid = {"server_wake_us": [3.0, 1.0, 2.0]}
        a = sweep(grid, evaluate)
        b = sweep(grid, evaluate)
        assert [p for p, _m in a.points] == [p for p, _m in b.points]

    def test_base_params_respected(self):
        def evaluate(params):
            return {"latency": params.inter_latency_us}

        base = myrinet2000(inter_latency_us=99.0)
        result = sweep({"api_call_us": [1.0]}, evaluate, base=base)
        assert result.points[0][1]["latency"] == 99.0

    def test_render(self):
        def evaluate(params):
            return {"m": 1.0}

        text = sweep({"api_call_us": [1.0, 2.0]}, evaluate).render()
        assert "api_call_us" in text and "m" in text
        assert len(text.splitlines()) == 4


class TestBest:
    def test_picks_minimum(self):
        result = SweepResult(grid={"x": [1, 2]})
        result.points = [
            ({"x": 1}, {"m": 10.0}),
            ({"x": 2}, {"m": 3.0}),
        ]
        overrides, outputs, loss_value = best(result, lambda m: m["m"])
        assert overrides == {"x": 2}
        assert loss_value == 3.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            best(SweepResult(grid={}), lambda m: 0.0)


class TestCalibrationLoss:
    def test_zero_at_targets(self):
        loss = calibration_loss({"a": 2.0, "b": 5.0})
        assert loss({"a": 2.0, "b": 5.0}) == pytest.approx(0.0)

    def test_symmetric_in_ratio(self):
        loss = calibration_loss({"a": 1.0})
        assert loss({"a": 2.0}) == pytest.approx(loss({"a": 0.5}))

    def test_weights_scale(self):
        plain = calibration_loss({"a": 1.0})
        weighted = calibration_loss({"a": 1.0}, weights={"a": 4.0})
        assert weighted({"a": 2.0}) == pytest.approx(4 * plain({"a": 2.0}))

    def test_missing_metric_is_infinite(self):
        loss = calibration_loss({"a": 1.0})
        assert math.isinf(loss({}))
        assert math.isinf(loss({"a": 0.0}))

    def test_end_to_end_fit_on_synthetic_model(self):
        """The framework recovers a known optimum on an analytic metric."""

        def evaluate(params):
            # A bowl with minimum at wake=20.
            return {"m": 100.0 + (params.server_wake_us - 20.0) ** 2}

        result = sweep(
            {"server_wake_us": [10.0, 15.0, 20.0, 25.0]}, evaluate
        )
        overrides, _outputs, _loss = best(
            result, calibration_loss({"m": 100.0})
        )
        assert overrides == {"server_wake_us": 20.0}
