"""Tests for the installation self-check."""

import pytest

from repro.experiments.validate import ValidationCheck, run_validation


class TestValidationCheck:
    def test_pass_inside_range(self):
        assert ValidationCheck("x", "c", 5.0, 1.0, 10.0).passed

    def test_fail_outside_range(self):
        assert not ValidationCheck("x", "c", 0.5, 1.0, 10.0).passed
        assert not ValidationCheck("x", "c", 11.0, 1.0, 10.0).passed

    def test_boundaries_inclusive(self):
        assert ValidationCheck("x", "c", 1.0, 1.0, 10.0).passed
        assert ValidationCheck("x", "c", 10.0, 1.0, 10.0).passed


class TestRunValidation:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_validation(quick=True)

    def test_all_headline_checks_pass(self, outcome):
        checks, report = outcome
        failing = [c.name for c in checks if not c.passed]
        assert not failing, f"failing reproduction checks: {failing}"
        assert "ALL CHECKS PASSED" in report

    def test_covers_every_figure(self, outcome):
        checks, _report = outcome
        names = " ".join(c.name for c in checks)
        for token in ("fig7", "fig8", "fig9", "fig10", "crossover", "release opt"):
            assert token in names

    def test_report_renders_all_rows(self, outcome):
        checks, report = outcome
        for check in checks:
            assert check.name in report
