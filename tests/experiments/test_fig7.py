"""Shape tests for the Figure 7 reproduction (GA_Sync current vs new)."""

import pytest

from repro.experiments.common import Comparison
from repro.experiments.fig7_sync import Fig7Config, run_fig7

FAST = Fig7Config(nprocs_list=(2, 4, 8), iterations=8, shape=(64, 64), strip_rows=2)


@pytest.fixture(scope="module")
def fig7():
    return run_fig7(FAST)


class TestFig7Shape:
    def test_new_wins_everywhere(self, fig7):
        for n in fig7.nprocs_list():
            assert fig7.factor(n) > 1.0, f"new must win at {n} procs"

    def test_factor_grows_with_system_size(self, fig7):
        factors = fig7.factors()
        ns = sorted(factors)
        assert factors[ns[-1]] > factors[ns[0]]

    def test_current_scales_superlinearly_worse(self, fig7):
        """current grows at least linearly with N; new stays ~logarithmic."""
        cur = fig7.values["current"]
        new = fig7.values["new"]
        assert cur[8] / cur[2] > 3.0
        assert new[8] / new[2] < 3.0

    def test_comparison_table_renders(self, fig7):
        text = fig7.render()
        assert "Figure 7" in text
        assert "factor" in text
        for n in (2, 4, 8):
            assert f"\n{'':>0}{n}" or str(n) in text

    def test_rows_well_formed(self, fig7):
        rows = fig7.to_rows()
        assert rows[0] == ["procs", "current (us)", "new (us)", "factor"]
        assert len(rows) == 1 + len(fig7.nprocs_list())


class TestFig7AtPaperScale:
    def test_sixteen_process_factor_near_paper(self):
        """Calibration guard: the headline factor at 16 procs is ~9 (paper).

        We accept [6, 12] — the claim is the order of magnitude and the
        growth, not the exact testbed constant.
        """
        cfg = Fig7Config(nprocs_list=(16,), iterations=12)
        comparison = run_fig7(cfg)
        assert 6.0 <= comparison.factor(16) <= 12.0

    def test_absolute_magnitudes_in_paper_ballpark(self):
        """new @16 should land within ~3x of the paper's 190.3us, current
        within ~3x of 1724.3us."""
        cfg = Fig7Config(nprocs_list=(16,), iterations=12)
        comparison = run_fig7(cfg)
        assert 60 <= comparison.get("new", 16) <= 600
        assert 550 <= comparison.get("current", 16) <= 5200


class TestComparisonHelpers:
    def test_factor_math(self):
        c = Comparison("t", "m", baseline="current", improved="new")
        c.record("current", 4, 100.0)
        c.record("new", 4, 25.0)
        assert c.factor(4) == 4.0
        assert c.max_factor() == 4.0

    def test_missing_series_raises(self):
        c = Comparison("t", "m", baseline="current", improved="new")
        c.record("current", 4, 100.0)
        with pytest.raises(KeyError):
            c.factor(4)
