"""Tests for the ablation studies."""

import pytest

from repro.experiments.ablations import (
    render_lock_algorithms,
    render_release_opt,
    run_crossover,
    run_fence_modes,
    run_lock_algorithms,
    run_release_opt,
    run_skew,
    run_smp_handoff,
    run_wake_cost,
)
from repro.experiments.lockbench import LockBenchConfig

FAST_LOCK = LockBenchConfig(iterations=80, warmup=6)


class TestCrossover:
    @pytest.fixture(scope="class")
    def crossover(self):
        return run_crossover(nprocs=16, targets_list=(0, 1, 2, 4, 15), iterations=6)

    def test_linear_wins_with_few_targets(self, crossover):
        row = crossover.by_targets[1]
        assert row["linear"] < row["exchange"]

    def test_exchange_wins_with_many_targets(self, crossover):
        row = crossover.by_targets[15]
        assert row["exchange"] < row["linear"]

    def test_crossover_near_paper_heuristic(self, crossover):
        """Paper: linear wins below ~log2(16)/2 = 2 put targets."""
        crossover_at = crossover.crossover_targets()
        assert crossover_at is not None
        assert 1 <= crossover_at <= 4

    def test_auto_tracks_winner_everywhere(self, crossover):
        for targets, row in crossover.by_targets.items():
            best = min(row["linear"], row["exchange"])
            assert row["auto"] <= best * 1.10, f"auto suboptimal at {targets}"

    def test_render(self, crossover):
        text = crossover.render()
        assert "crossover" in text
        assert "winner" in text


class TestFenceModes:
    def test_ack_mode_allfence_nearly_free(self):
        comparison = run_fence_modes(nprocs_list=(8,), iterations=6)
        assert comparison.get("ack", 8) < comparison.get("confirm", 8) / 5

    def test_confirm_grows_with_procs(self):
        comparison = run_fence_modes(nprocs_list=(2, 8), iterations=6)
        assert comparison.get("confirm", 8) > 2 * comparison.get("confirm", 2)


class TestSmpHandoff:
    def test_colocated_mcs_much_faster(self):
        comparison = run_smp_handoff(
            nprocs=4, ppn_list=(1, 4), cfg=FAST_LOCK
        )
        # Full co-location: MCS entirely in shared memory.
        assert comparison.get("new", 4) < comparison.get("new", 1) / 4
        # The hybrid still pays server visits even fully co-located.
        assert comparison.get("new", 4) < comparison.get("current", 4)


class TestWakeCost:
    def test_hybrid_more_sensitive_to_wake(self):
        comparison = run_wake_cost(nprocs=4, wake_list=(0.0, 36.0), cfg=FAST_LOCK)
        hybrid_delta = comparison.get("current", 36) - comparison.get("current", 0)
        mcs_delta = comparison.get("new", 36) - comparison.get("new", 0)
        assert hybrid_delta > mcs_delta


class TestLockAlgorithms:
    @pytest.fixture(scope="class")
    def series(self):
        return run_lock_algorithms(
            kinds=("hybrid", "mcs", "raymond", "naimi"),
            nprocs_list=(4, 8),
            cfg=FAST_LOCK,
        )

    def test_mcs_beats_all_baselines_under_contention(self, series):
        for n in (4, 8):
            mcs = series["mcs"][n].roundtrip_us
            for kind in ("hybrid", "raymond", "naimi"):
                assert mcs < series[kind][n].roundtrip_us, (kind, n)

    def test_naimi_beats_raymond(self, series):
        """Path compression beats fixed-tree forwarding under contention."""
        for n in (4, 8):
            assert series["naimi"][n].roundtrip_us < series["raymond"][n].roundtrip_us

    def test_render(self, series):
        text = render_lock_algorithms(series)
        assert "raymond" in text and "naimi" in text


class TestSkew:
    @pytest.fixture(scope="class")
    def result(self):
        return run_skew(nprocs=8, skew_us=150.0, iterations=8)

    def test_no_prebarrier_inflates_new_sync_reported_time(self, result):
        assert result.inflation("new") > 1.3

    def test_new_more_sensitive_than_current(self, result):
        assert result.inflation("new") > result.inflation("current")

    def test_render(self, result):
        assert "pre-barrier" in result.render()


class TestReleaseOpt:
    @pytest.fixture(scope="class")
    def series(self):
        return run_release_opt(nprocs_list=(1, 4), cfg=FAST_LOCK)

    def test_release_time_collapses_at_low_contention(self, series):
        """The future-work variant removes the blocking CAS from release."""
        assert series["mcs-opt"][1].release_us < series["mcs"][1].release_us / 2

    def test_correct_and_competitive_under_contention(self, series):
        assert series["mcs-opt"][4].roundtrip_us <= series["mcs"][4].roundtrip_us * 1.3

    def test_render(self, series):
        text = render_release_opt(series)
        assert "optimistic" in text
