"""Tests for CSV export and the application-scaling experiment."""

import csv
import io

import pytest

from repro.experiments.app_scaling import AppScalingConfig, run_app_scaling
from repro.experiments.common import Comparison
from repro.experiments.lockbench import LockBenchConfig, run_lock_series
from repro.experiments.report import (
    comparison_to_csv,
    lock_series_to_csv,
    write_csv,
)


class TestComparisonCsv:
    def make_comparison(self):
        c = Comparison("t", "m", baseline="current", improved="new")
        c.record("current", 2, 10.0)
        c.record("current", 4, 20.0)
        c.record("new", 2, 5.0)
        c.record("new", 4, 8.0)
        return c

    def test_tidy_rows(self):
        text = comparison_to_csv(self.make_comparison())
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["variant", "nprocs", "microseconds"]
        assert ["current", "2", "10.000"] in rows
        assert ["new", "4", "8.000"] in rows

    def test_factor_rows_included(self):
        text = comparison_to_csv(self.make_comparison())
        rows = list(csv.reader(io.StringIO(text)))
        assert ["factor", "2", "2.0000"] in rows
        assert ["factor", "4", "2.5000"] in rows

    def test_write_csv_creates_dirs(self, tmp_path):
        path = write_csv("a,b\n1,2\n", tmp_path / "sub" / "dir", "test")
        assert path.exists()
        assert path.read_text() == "a,b\n1,2\n"


class TestLockSeriesCsv:
    def test_contains_all_metrics(self):
        series = run_lock_series(
            LockBenchConfig(nprocs_list=(1, 2), iterations=25, warmup=2)
        )
        text = lock_series_to_csv(series)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["kind", "nprocs", "acquire_us", "release_us",
                           "roundtrip_us"]
        kinds = {row[0] for row in rows[1:]}
        assert kinds == {"hybrid", "mcs"}
        assert len(rows) == 1 + 2 * 2


class TestAppScaling:
    @pytest.fixture(scope="class")
    def result(self):
        return run_app_scaling(
            AppScalingConfig(nprocs_list=(2, 8), iterations=4, shape=(64, 64))
        )

    def test_new_sync_speeds_up_the_application(self, result):
        assert result.speedup(8) > 1.2

    def test_speedup_grows_with_system_size(self, result):
        assert result.speedup(8) > result.speedup(2)

    def test_sync_share_reduced(self, result):
        for n in (2, 8):
            assert result.data["new"][n][1] < result.data["current"][n][1]

    def test_render(self, result):
        text = result.render()
        assert "app speedup" in text and "sync %" in text
