"""Shape tests for the lock benchmark (Figures 8, 9, 10)."""

import pytest

from repro.experiments.lockbench import (
    LockBenchConfig,
    comparison_from_series,
    run_lock_point,
    run_lock_series,
)

FAST = LockBenchConfig(nprocs_list=(1, 4, 8), iterations=120, warmup=8)


@pytest.fixture(scope="module")
def series():
    return run_lock_series(FAST)


class TestFig8Shape:
    def test_single_process_current_wins(self, series):
        """Paper: at one process the blocking CAS makes the new lock slower."""
        h, m = series["hybrid"][1], series["mcs"][1]
        assert m.roundtrip_us > h.roundtrip_us

    def test_contended_new_wins(self, series):
        for n in (4, 8):
            h, m = series["hybrid"][n], series["mcs"][n]
            assert m.roundtrip_us < h.roundtrip_us, f"MCS must win at {n}"

    def test_factor_in_paper_ballpark_at_8(self, series):
        """Paper: up to 1.25x at 8 nodes; accept [1.05, 1.6]."""
        factor = series["hybrid"][8].roundtrip_us / series["mcs"][8].roundtrip_us
        assert 1.05 <= factor <= 1.6


class TestFig9Shape:
    def test_acquire_new_wins_at_contention(self, series):
        for n in (4, 8):
            assert series["mcs"][n].acquire_us < series["hybrid"][n].acquire_us

    def test_acquire_new_wins_single_process(self, series):
        """Paper Figure 9: 'the new implementation always outperforms'."""
        assert series["mcs"][1].acquire_us < series["hybrid"][1].acquire_us


class TestFig10Shape:
    def test_release_current_wins(self, series):
        """Paper Figure 10: new release is more expensive (the CAS)."""
        for n in (1, 4, 8):
            assert series["mcs"][n].release_us > series["hybrid"][n].release_us

    def test_new_release_decreases_with_contention(self, series):
        """More contention -> queue rarely empty -> cheaper handoff path."""
        assert series["mcs"][8].release_us < series["mcs"][1].release_us

    def test_current_release_flat_and_cheap(self, series):
        releases = [series["hybrid"][n].release_us for n in (1, 4, 8)]
        assert max(releases) < 5.0  # fire-and-forget


class TestMechanics:
    def test_single_process_averages_local_and_remote(self):
        cfg = LockBenchConfig(iterations=60, warmup=4)
        point = run_lock_point("mcs", 1, cfg)
        # The remote case has round trips; the local case is microseconds.
        # The average must sit strictly between them.
        assert 2.0 < point.roundtrip_us < 120.0

    def test_roundtrip_is_sum(self, series):
        point = series["hybrid"][4]
        assert point.roundtrip_us == pytest.approx(
            point.acquire_us + point.release_us
        )

    def test_comparison_projection(self, series):
        comparison = comparison_from_series(series, "acquire", "t")
        assert comparison.get("current", 4) == series["hybrid"][4].acquire_us
        assert comparison.get("new", 4) == series["mcs"][4].acquire_us

    def test_unknown_metric_rejected(self, series):
        with pytest.raises(KeyError):
            comparison_from_series(series, "latency", "t")

    def test_determinism(self):
        cfg = LockBenchConfig(nprocs_list=(2,), iterations=40, warmup=4)
        a = run_lock_point("hybrid", 2, cfg)
        b = run_lock_point("hybrid", 2, cfg)
        assert a.acquire_us == b.acquire_us
        assert a.release_us == b.release_us
