"""Tests for the parallel sweep runner and the scalebench experiment."""

import pytest

from repro.experiments.fig7_sync import Fig7Config, run_fig7
from repro.experiments.nicbench import NicBenchConfig, run_nicbench
from repro.experiments.parallel import cell_seed, default_jobs, run_cells
from repro.experiments.scalebench import (
    SCALE_VARIANTS,
    ScaleBenchConfig,
    run_scalebench,
)
from repro.experiments.sweep import sweep


def _square(cell):
    return cell * cell


def _metrics(params):
    return {"sum": params.api_call_us + params.o_send_us}


class TestRunCells:
    def test_serial_matches_comprehension(self):
        cells = list(range(10))
        assert run_cells(_square, cells, jobs=1) == [c * c for c in cells]

    def test_parallel_preserves_order_and_values(self):
        cells = list(range(17))
        assert run_cells(_square, cells, jobs=3) == [c * c for c in cells]

    def test_jobs_none_and_zero_mean_per_core(self):
        cells = [1, 2, 3]
        expected = [1, 4, 9]
        assert run_cells(_square, cells, jobs=None) == expected
        assert run_cells(_square, cells, jobs=0) == expected

    def test_empty_and_single_cell(self):
        assert run_cells(_square, [], jobs=4) == []
        assert run_cells(_square, [7], jobs=4) == [49]

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestCellSeed:
    def test_stable_and_distinct(self):
        assert cell_seed("fig7", "new", 16, 0) == cell_seed("fig7", "new", 16, 0)
        assert cell_seed("fig7", "new", 16, 0) != cell_seed("fig7", "new", 16, 1)

    def test_fits_in_63_bits(self):
        seed = cell_seed("variant", 1024, 3)
        assert 0 <= seed < 2**63

    def test_stable_across_worker_processes(self):
        cells = [("fig7", "new", n, 0) for n in (2, 4, 8)]

        def local(cell):
            return cell_seed(*cell)

        serial = [local(c) for c in cells]
        parallel = run_cells(_cell_seed_of, cells, jobs=2)
        assert serial == parallel


def _cell_seed_of(cell):
    return cell_seed(*cell)


class TestParallelExperiments:
    """jobs > 1 must not change a single simulated value."""

    def test_fig7_parallel_matches_serial(self):
        cfg = Fig7Config(nprocs_list=(2, 4), iterations=3)
        serial = run_fig7(cfg, jobs=1)
        parallel = run_fig7(cfg, jobs=2)
        assert serial.render() == parallel.render()

    def test_nicbench_parallel_matches_serial(self):
        cfg = NicBenchConfig(nprocs_list=(2, 4), iterations=3)
        serial = run_nicbench(cfg, jobs=1)
        parallel = run_nicbench(cfg, jobs=2)
        assert serial.render() == parallel.render()

    def test_sweep_parallel_matches_serial(self):
        grid = {"api_call_us": [0.5, 1.0], "o_send_us": [0.2, 0.4]}
        serial = sweep(grid, _metrics, jobs=1)
        parallel = sweep(grid, _metrics, jobs=2)
        assert serial.points == parallel.points
        assert serial.render() == parallel.render()


class TestScaleBench:
    def test_small_run_shape_and_determinism(self):
        cfg = ScaleBenchConfig(nprocs_list=(8, 16), iterations=2)
        first = run_scalebench(cfg)
        second = run_scalebench(cfg)
        assert first.nprocs_list() == [8, 16]
        for variant in SCALE_VARIANTS:
            for nprocs in (8, 16):
                a = first.get(variant, nprocs)
                b = second.get(variant, nprocs)
                # Simulated time and event count are deterministic;
                # wall-clock is not.
                assert a.sync_us == b.sync_us
                assert a.events == b.events
                assert a.sync_us > 0
                assert a.events > 0

    def test_sync_time_grows_with_nprocs(self):
        cfg = ScaleBenchConfig(nprocs_list=(8, 32), iterations=2)
        result = run_scalebench(cfg)
        for variant in SCALE_VARIANTS:
            assert (
                result.get(variant, 32).sync_us
                > result.get(variant, 8).sync_us
            )

    def test_render_mentions_all_variants(self):
        cfg = ScaleBenchConfig(nprocs_list=(8,), iterations=1)
        text = run_scalebench(cfg).render()
        for variant in SCALE_VARIANTS:
            assert variant in text

    def test_parallel_matches_serial_simulated_values(self):
        cfg = ScaleBenchConfig(nprocs_list=(8, 16), iterations=2)
        serial = run_scalebench(cfg, jobs=1)
        parallel = run_scalebench(cfg, jobs=2)
        for variant in SCALE_VARIANTS:
            for nprocs in (8, 16):
                assert (
                    serial.get(variant, nprocs).sync_us
                    == parallel.get(variant, nprocs).sync_us
                )
                assert (
                    serial.get(variant, nprocs).events
                    == parallel.get(variant, nprocs).events
                )
