"""Experiments at non-power-of-two process counts.

The paper's evaluation uses powers of two; the binary-exchange algorithms
need the fold-in/dissemination generalizations to run elsewhere.  These
tests pin the whole experiment stack at awkward sizes."""

import pytest

from repro.experiments.fig7_sync import Fig7Config, run_fig7
from repro.experiments.lockbench import LockBenchConfig, run_lock_point


class TestFig7NonPow2:
    @pytest.fixture(scope="class")
    def comparison(self):
        return run_fig7(
            Fig7Config(nprocs_list=(3, 5, 6, 12), iterations=6, shape=(60, 60))
        )

    def test_new_wins_at_every_size(self, comparison):
        for n in (3, 5, 6, 12):
            assert comparison.factor(n) > 1.0, n

    def test_factor_still_grows(self, comparison):
        assert comparison.factor(12) > comparison.factor(3)


class TestLocksNonPow2:
    @pytest.mark.parametrize("kind", ["hybrid", "mcs"])
    @pytest.mark.parametrize("nprocs", [3, 5, 7])
    def test_lock_bench_runs(self, kind, nprocs):
        cfg = LockBenchConfig(iterations=40, warmup=4)
        point = run_lock_point(kind, nprocs, cfg)
        assert point.acquire_us > 0 and point.release_us > 0

    def test_mcs_wins_at_six(self):
        cfg = LockBenchConfig(iterations=100, warmup=8)
        hybrid = run_lock_point("hybrid", 6, cfg)
        mcs = run_lock_point("mcs", 6, cfg)
        assert mcs.roundtrip_us < hybrid.roundtrip_us
