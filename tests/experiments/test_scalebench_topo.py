"""Scalebench extensions: variant selection, budget, JSON/CSV export."""

from __future__ import annotations

import json

from repro.experiments.report import scalebench_to_csv
from repro.experiments.scalebench import (
    HIER_SCALE_VARIANTS,
    SCALE_VARIANTS,
    ScaleBenchConfig,
    run_scalebench,
)
from repro.net.params import myrinet2000
from repro.topo import two_level


def hier_params():
    return myrinet2000().with_(hierarchy=two_level(4), tree_radix=4)


def small_cfg(**overrides):
    base = dict(
        nprocs_list=(8, 16),
        iterations=2,
        procs_per_node=4,
        params=hier_params(),
    )
    base.update(overrides)
    return ScaleBenchConfig(**base)


class TestVariantSelection:
    def test_flat_default_unchanged(self):
        result = run_scalebench(ScaleBenchConfig(nprocs_list=(8,), iterations=1))
        assert result.variants == SCALE_VARIANTS

    def test_hierarchy_selects_topo_variants(self):
        result = run_scalebench(small_cfg())
        assert result.variants == HIER_SCALE_VARIANTS
        for variant in HIER_SCALE_VARIANTS:
            assert result.get(variant, 8).sync_us > 0

    def test_explicit_variants_respected(self):
        result = run_scalebench(small_cfg(variants=("twolevel",)))
        assert result.variants == ("twolevel",)
        assert "host-exchange" not in result.cells

    def test_unknown_variant_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="unknown scalebench variant"):
            run_scalebench(small_cfg(variants=("warp-drive",)))

    def test_title_mentions_hierarchy(self):
        result = run_scalebench(small_cfg())
        assert "hierarchical topology" in result.title
        assert "switch:4" in result.title


class TestWallBudget:
    def test_zero_budget_skips_everything_with_note(self):
        result = run_scalebench(small_cfg(wall_budget_s=0.0))
        assert result.nprocs_list() == []
        assert any("wall budget" in n and "skipped" in n for n in result.notes)

    def test_generous_budget_completes_all(self):
        result = run_scalebench(small_cfg(wall_budget_s=600.0))
        assert result.nprocs_list() == [8, 16]
        assert not any("skipped" in n for n in result.notes)

    def test_missing_cells_render_as_dash(self):
        result = run_scalebench(small_cfg(wall_budget_s=0.0))
        result.record(
            run_scalebench(small_cfg(nprocs_list=(8,), variants=("twolevel",)))
            .get("twolevel", 8)
        )
        rows = result.to_rows()
        assert "-" in rows[1]  # other variants missing at N=8
        assert result.render()  # renders without KeyError


class TestExport:
    def test_to_json_roundtrips(self):
        result = run_scalebench(small_cfg(variants=("host-exchange", "twolevel")))
        data = json.loads(json.dumps(result.to_json()))
        assert data["variants"] == ["host-exchange", "twolevel"]
        assert data["nprocs"] == [8, 16]
        cells = {(c["variant"], c["nprocs"]): c for c in data["cells"]}
        assert len(cells) == 4
        assert cells[("twolevel", 16)]["sync_us"] == result.get(
            "twolevel", 16
        ).sync_us

    def test_csv_rows(self):
        result = run_scalebench(small_cfg(variants=("twolevel",)))
        lines = scalebench_to_csv(result).strip().splitlines()
        assert lines[0] == "variant,nprocs,sync_us,events,wall_s"
        assert len(lines) == 3
        assert lines[1].startswith("twolevel,8,")
        assert lines[2].startswith("twolevel,16,")

    def test_simulated_columns_deterministic(self):
        a = run_scalebench(small_cfg(variants=("twolevel", "kary")))
        b = run_scalebench(small_cfg(variants=("twolevel", "kary")))
        for variant in ("twolevel", "kary"):
            for n in (8, 16):
                assert a.get(variant, n).sync_us == b.get(variant, n).sync_us
                assert a.get(variant, n).events == b.get(variant, n).events
