"""Tests for the experiment-harness helpers."""

import math

import pytest

from repro.experiments.common import (
    Comparison,
    format_table,
    geometric_mean,
)


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == ""

    def test_alignment(self):
        text = format_table([["a", "long header"], ["1000", "2"]])
        lines = text.splitlines()
        assert len(lines) == 3  # header, rule, one row
        assert len(set(len(line) for line in lines)) == 1
        assert lines[1].replace(" ", "").startswith("-")

    def test_right_justified(self):
        text = format_table([["x", "y"], ["1", "22"]])
        row = text.splitlines()[2]
        assert row.endswith("22")


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single(self):
        assert geometric_mean([7.0]) == 7.0

    def test_empty_is_nan(self):
        assert math.isnan(geometric_mean([]))


class TestComparison:
    def make(self):
        c = Comparison("title", "metric", baseline="current", improved="new")
        for n, cur, new in ((2, 20.0, 10.0), (4, 60.0, 15.0)):
            c.record("current", n, cur)
            c.record("new", n, new)
        return c

    def test_nprocs_union(self):
        c = self.make()
        c.record("current", 8, 100.0)
        assert c.nprocs_list() == [2, 4, 8]

    def test_factors(self):
        c = self.make()
        assert c.factors() == {2: 2.0, 4: 4.0}
        assert c.max_factor() == 4.0

    def test_render_contains_everything(self):
        c = self.make()
        c.notes.append("a note")
        text = c.render()
        assert "title" in text and "metric" in text
        assert "note: a note" in text
        assert "2.00" in text and "4.00" in text

    def test_rows_shape(self):
        rows = self.make().to_rows()
        assert rows[0] == ["procs", "current (us)", "new (us)", "factor"]
        assert rows[1][0] == "2"
        assert len(rows) == 3
