"""Tier-1 fuzzer tests: determinism, replay, shrinking, oracle, corpus.

The heavyweight guarantees (hundreds of seeds, long mutant budgets) live
in the nightly CI job; here we pin the properties cheaply enough for the
tier-1 suite — small seed windows, the checked-in corpus, and a short
self-test budget that is still known to catch every seeded mutant.
"""

import dataclasses
import json
import pathlib

import pytest

from repro.fuzz.campaign import (
    load_corpus_entry,
    replay_corpus,
    replay_seed,
    run_campaign,
)
from repro.fuzz.runner import run_scenario
from repro.fuzz.scenario import (
    Scenario,
    generate,
    scenario_from_json,
    scenario_to_json,
)
from repro.fuzz.selftest import MUTANTS, run_self_test
from repro.fuzz.shrink import shrink

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"


class TestScenarioGeneration:
    def test_same_seed_same_scenario(self):
        for seed in range(30):
            assert generate(seed) == generate(seed)

    def test_different_seeds_differ(self):
        scenarios = {generate(seed) for seed in range(30)}
        assert len(scenarios) > 25  # a few collisions are tolerable

    def test_json_round_trip(self):
        for seed in range(20):
            scenario = generate(seed)
            assert scenario_from_json(scenario_to_json(scenario)) == scenario

    def test_generated_scenarios_are_legal(self):
        for seed in range(50):
            s = generate(seed)
            assert s.nprocs >= 3
            assert s.phases[-1] == "barrier", "memory audit needs a final barrier"
            # Rank 0 and node 0 survive (they host recovery services).
            for kind, target, at_us in s.crashes:
                assert at_us > 0.0
                assert (kind, target) not in (("rank", 0), ("node", 0))
            survivors = s.nprocs - len(s.dead_ranks_planned())
            assert survivors >= 2
            if s.lock_kind in ("spin", "mcs-local"):
                assert s.procs_per_node == s.nprocs

    def test_constrain_overrides_and_rederives_phases(self):
        s = generate(3, constrain={"workload": "strips"})
        assert s.workload == "strips"
        assert all(p in ("puts", "barrier") for p in s.phases)

    def test_crash_schedule_sorted_and_deduped(self):
        for seed in range(50):
            s = generate(seed)
            assert list(s.crashes) == sorted(set(s.crashes), key=lambda c: c[2])


class TestTransientGeneration:
    """Legality of the partition/stall fuzz axes (see ``_legalize``)."""

    def test_partitions_always_leave_a_strict_majority(self):
        for seed in range(200):
            s = generate(seed)
            nnodes = s.nprocs // s.procs_per_node
            node_crashes = sum(1 for k, _t, _at in s.crashes if k == "node")
            for nodes, from_us, until_us in s.partitions:
                assert 0.0 <= from_us < until_us
                # Node 0 (lock homes, recovery services) is never cut off,
                # and the remainder out-votes the minority even if every
                # planned node crash lands on the majority side.
                assert nodes and 0 not in nodes
                assert all(0 < n < nnodes for n in nodes)
                assert 2 * len(nodes) < nnodes - node_crashes

    def test_partition_windows_are_pairwise_disjoint(self):
        for seed in range(200):
            s = generate(seed)
            windows = [(f, u) for _nodes, f, u in s.partitions]
            for i, (f1, u1) in enumerate(windows):
                for f2, u2 in windows[i + 1 :]:
                    assert u1 <= f2 or u2 <= f1

    def test_stalls_never_hit_rank0_or_planned_dead(self):
        for seed in range(200):
            s = generate(seed)
            dead = s.dead_ranks_planned()
            ranks = [r for r, _f, _u in s.stalls]
            assert len(set(ranks)) == len(ranks)
            for rank, from_us, until_us in s.stalls:
                assert 0 < rank < s.nprocs
                assert rank not in dead
                assert 0.0 <= from_us < until_us

    def test_both_axes_are_exercised(self):
        scenarios = [generate(seed) for seed in range(200)]
        assert any(s.partitions for s in scenarios)
        assert any(s.stalls for s in scenarios)
        # ...but not always: crash-only scenarios keep their coverage too.
        assert any(not s.has_transients() for s in scenarios)

    def test_json_without_transient_keys_still_parses(self):
        # Backward compatibility: corpus entries written before the
        # partition axes existed carry no partitions/stalls keys.
        s = generate(7)
        data = json.loads(scenario_to_json(s))
        data.pop("partitions")
        data.pop("stalls")
        legacy = scenario_from_json(json.dumps(data))
        assert legacy.partitions == () and legacy.stalls == ()
        assert legacy == dataclasses.replace(s, partitions=(), stalls=())


class TestReplay:
    def test_replay_seed_byte_identical(self):
        first = replay_seed(4)
        second = replay_seed(4)
        assert first.to_json() == second.to_json()
        assert first.render() == second.render()

    def test_small_seed_window_clean(self):
        result = run_campaign(start_seed=0, num_seeds=6, do_shrink=False)
        assert result.ok(), result.render()
        assert result.seeds_run == 6


class TestShrink:
    def test_shrink_reduces_a_failing_scenario(self):
        mutant = MUTANTS[0]  # hasty-nic: cheapest to reproduce
        with mutant.patch():
            scenario = generate(0, constrain=mutant.constrain)
            outcome = run_scenario(scenario)
            assert not outcome.ok()
            result = shrink(scenario, outcome)
        assert result.reduced()
        assert not result.outcome.ok()
        # The shrunken run preserves at least one original violation kind.
        assert set(result.outcome.kinds()) & set(outcome.kinds())

    def test_shrunken_scenario_replays_identically(self):
        mutant = MUTANTS[0]
        with mutant.patch():
            scenario = generate(0, constrain=mutant.constrain)
            result = shrink(scenario, run_scenario(scenario))
            again = run_scenario(result.scenario)
        assert again.to_json() == result.outcome.to_json()


class TestSelfTest:
    def test_all_mutants_caught_within_budget(self):
        result = run_self_test(budget=6)
        assert result.all_caught(), result.render()
        for mr in result.results:
            assert mr.violation_kinds, mr.render()

    def test_mutant_catches_are_attributable(self):
        # The scenario that catches each mutant must be clean unpatched —
        # run_self_test enforces this; re-verify the first mutant directly.
        result = run_self_test(budget=6)
        hit = result.results[0]
        scenario = generate(hit.seed, constrain=MUTANTS[0].constrain)
        assert run_scenario(scenario).ok()


class TestCorpus:
    def test_corpus_is_nonempty(self):
        assert len(list(CORPUS_DIR.glob("*.json"))) >= 6

    def test_corpus_entries_parse(self):
        for path in CORPUS_DIR.glob("*.json"):
            note, scenario = load_corpus_entry(path)
            assert note, f"{path.name} missing its note"
            assert isinstance(scenario, Scenario)

    @pytest.mark.parametrize(
        "name", sorted(p.stem for p in CORPUS_DIR.glob("*.json"))
    )
    def test_corpus_entry_replays_clean(self, name):
        _note, scenario = load_corpus_entry(CORPUS_DIR / f"{name}.json")
        outcome = run_scenario(scenario)
        assert outcome.ok(), (
            f"corpus regression {name}: {outcome.violations}"
        )

    def test_replay_corpus_helper_covers_every_entry(self):
        results = replay_corpus(CORPUS_DIR)
        assert len(results) == len(list(CORPUS_DIR.glob("*.json")))
        assert all(outcome.ok() for _name, outcome in results)


class TestCampaignArtifacts:
    def test_failure_json_carries_shrunk_schedule(self):
        # Force a failure deterministically by patching a mutant in, then
        # check the campaign artifact has everything CI uploads.
        mutant = MUTANTS[0]
        with mutant.patch():
            outcome = run_scenario(generate(0, constrain=mutant.constrain))
            assert not outcome.ok()
            shrunk = shrink(outcome.scenario, outcome)
        from repro.fuzz.campaign import CampaignResult

        result = CampaignResult(start_seed=0, seeds_run=1, failure=outcome,
                                shrunk=shrunk)
        data = json.loads(result.to_json())
        assert data["ok"] is False
        assert data["failing_seed"] == 0
        assert data["failure"]["violations"]
        assert data["shrunk"]["scenario"]["nprocs"] >= 3
        assert "replay with: armci-repro fuzz --replay 0" in result.render()

    def test_scenario_equality_is_structural(self):
        s = generate(1)
        assert dataclasses.replace(s) == s
        assert dataclasses.replace(s, cells=s.cells + 1) != s


class TestTopologyAxis:
    def test_hier_arity_defaults_to_flat(self):
        assert generate(0).hier_arity in (0, 2, 4)
        assert Scenario(seed=0, nprocs=4, procs_per_node=2).hier_arity == 0

    def test_legacy_json_without_hier_arity_parses(self):
        s = generate(5)
        data = json.loads(scenario_to_json(s))
        data.pop("hier_arity", None)
        legacy = scenario_from_json(json.dumps(data))
        assert legacy.hier_arity == 0

    def test_hier_arity_round_trips(self):
        for seed in range(40):
            s = generate(seed)
            assert scenario_from_json(scenario_to_json(s)) == s

    def test_both_topology_axes_are_exercised(self):
        scenarios = [generate(seed) for seed in range(60)]
        arities = {s.hier_arity for s in scenarios}
        algs = {s.barrier_algorithm for s in scenarios}
        assert arities - {0}, "no seed ever produced a hierarchy"
        assert 0 in arities, "no seed ever stayed flat"
        assert algs & {"twolevel", "kary", "dissemination"}, (
            "no seed ever picked a topology-aware barrier"
        )

    def test_topo_axis_is_deterministic(self):
        for seed in (0, 7, 23):
            assert generate(seed).hier_arity == generate(seed).hier_arity
            assert generate(seed) == generate(seed)

    def test_hier_scenarios_replay_clean(self):
        ran = 0
        for seed in range(60):
            s = generate(seed)
            if s.hier_arity and ran < 3:
                outcome = run_scenario(s)
                assert outcome.ok(), f"seed {seed}: {outcome.violations}"
                ran += 1
        assert ran == 3
