"""NIC-offloaded barrier: semantics, cost, faults, and lazy construction."""

import pytest

from repro.net.faults import FaultPlan, ProcessCrash
from repro.net.params import NetworkParams, myrinet2000
from repro.nic import engine as engine_mod
from repro.runtime.cluster import ClusterRuntime
from repro.runtime.memory import GlobalAddress
from repro.sim.core import CRASHED


def all_to_all_put_program(algorithm):
    """Every rank puts into every other rank, then barriers; returns memory."""

    def main(ctx):
        base = ctx.region.alloc(ctx.nprocs, initial=0)
        for peer in range(ctx.nprocs):
            if peer != ctx.rank:
                yield from ctx.armci.put(
                    GlobalAddress(peer, base + ctx.rank), [ctx.rank + 1]
                )
        yield from ctx.armci.barrier(algorithm=algorithm)
        return ctx.region.read_many(base, ctx.nprocs)

    return main


def assert_all_puts_visible(results):
    for rank, values in enumerate(results):
        nprocs = len(results)
        expected = [r + 1 if r != rank else 0 for r in range(nprocs)]
        assert values == expected, f"rank {rank}"


class TestSemantics:
    @pytest.mark.parametrize("nprocs", [2, 3, 4, 8])
    def test_all_puts_complete_at_barrier_exit(self, make_cluster, nprocs):
        rt = make_cluster(nprocs=nprocs)
        assert_all_puts_visible(rt.run_spmd(all_to_all_put_program("nic")))

    @pytest.mark.parametrize("nprocs", [2, 3, 4, 8])
    def test_tree_variant(self, make_cluster, nprocs):
        rt = make_cluster(
            nprocs=nprocs, params=myrinet2000(nic_algorithm="tree")
        )
        assert_all_puts_visible(rt.run_spmd(all_to_all_put_program("nic")))

    @pytest.mark.parametrize("ppn", [2, 4])
    def test_multiple_ranks_per_node_fold_locally(self, make_cluster, ppn):
        rt = make_cluster(nprocs=8, procs_per_node=ppn)
        assert_all_puts_visible(rt.run_spmd(all_to_all_put_program("nic")))

    def test_repeated_barriers_with_interleaved_puts(self, make_cluster):
        def main(ctx):
            base = ctx.region.alloc(1, initial=0)
            peer = (ctx.rank + 1) % ctx.nprocs
            observed = []
            for round_no in range(5):
                yield from ctx.armci.put(
                    GlobalAddress(peer, base), [round_no + 1]
                )
                yield from ctx.armci.barrier(algorithm="nic")
                observed.append(ctx.region.read(base))
            return observed

        rt = make_cluster(nprocs=4)
        for values in rt.run_spmd(main):
            assert values == [1, 2, 3, 4, 5]

    def test_barrier_synchronizes_processes(self, make_cluster):
        def main(ctx):
            yield ctx.compute(50.0 * ctx.rank)
            entered = ctx.now
            yield from ctx.armci.barrier(algorithm="nic")
            return (entered, ctx.now)

        rt = make_cluster(nprocs=4)
        results = rt.run_spmd(main)
        assert min(r[1] for r in results) >= max(r[0] for r in results)

    def test_host_and_nic_barriers_interleave(self, make_cluster):
        """Alternating algorithms must not confuse either epoch counter."""

        def main(ctx):
            base = ctx.region.alloc(1, initial=0)
            peer = (ctx.rank + 1) % ctx.nprocs
            for round_no, algorithm in enumerate(("nic", "exchange", "nic")):
                yield from ctx.armci.put(
                    GlobalAddress(peer, base), [round_no + 1]
                )
                yield from ctx.armci.barrier(algorithm=algorithm)
            return ctx.region.read(base)

        rt = make_cluster(nprocs=4)
        assert rt.run_spmd(main) == [3, 3, 3, 3]

    def test_ga_sync_nic_mode(self, make_cluster):
        from repro.ga.sync import ga_sync

        def program(ctx):
            yield from ga_sync(ctx, "nic")
            return ctx.now

        rt = make_cluster(nprocs=4)
        assert all(t > 0 for t in rt.run_spmd(program))


class TestLazyConstruction:
    def test_engines_absent_without_nic_barrier(self, make_cluster):
        rt = make_cluster(nprocs=4)
        rt.run_spmd(all_to_all_put_program("exchange"))
        assert getattr(rt.fabric, "_nic_engines", None) is None

    def test_never_constructed_on_host_paths(self, make_cluster, monkeypatch):
        def boom(self, *args, **kwargs):
            raise AssertionError("NicEngine constructed on a host-only path")

        monkeypatch.setattr(engine_mod.NicEngine, "__init__", boom)
        for algorithm in ("exchange", "linear", "auto"):
            rt = make_cluster(nprocs=4)
            assert_all_puts_visible(
                rt.run_spmd(all_to_all_put_program(algorithm))
            )

    def test_engines_built_once_per_fabric(self, make_cluster):
        def main(ctx):
            yield from ctx.armci.barrier(algorithm="nic")
            yield from ctx.armci.barrier(algorithm="nic")

        rt = make_cluster(nprocs=4)
        rt.run_spmd(main)
        engines = rt.fabric._nic_engines
        assert sorted(engines) == [0, 1, 2, 3]
        for node, engine in engines.items():
            assert engine.node == node


class TestCost:
    def _barrier_time(self, make_cluster, nprocs, algorithm):
        def main(ctx):
            base = ctx.region.alloc(ctx.nprocs, initial=0)
            for peer in range(ctx.nprocs):
                if peer != ctx.rank:
                    yield from ctx.armci.put(GlobalAddress(peer, base), [1])
            t0 = ctx.now
            yield from ctx.armci.barrier(algorithm=algorithm)
            return ctx.now - t0

        rt = make_cluster(nprocs=nprocs)
        return max(rt.run_spmd(main))

    @pytest.mark.parametrize("nprocs", [8, 16])
    def test_nic_beats_host_exchange_at_scale(self, make_cluster, nprocs):
        nic = self._barrier_time(make_cluster, nprocs, "nic")
        host = self._barrier_time(make_cluster, nprocs, "exchange")
        assert nic < host, f"nic {nic:.1f}us vs host {host:.1f}us at {nprocs}"

    def test_deterministic_across_runs(self, make_cluster):
        times = []
        for _ in range(2):
            def main(ctx):
                yield from ctx.armci.barrier(algorithm="nic")
                return ctx.now

            rt = make_cluster(nprocs=8)
            times.append(rt.run_spmd(main))
        assert times[0] == times[1]


class TestFaults:
    def test_completes_under_seeded_drops(self, make_cluster):
        params = myrinet2000(
            faults=FaultPlan.uniform(drop_rate=0.05, dup_rate=0.02, seed=3)
        )
        rt = make_cluster(nprocs=4, params=params)
        assert_all_puts_visible(rt.run_spmd(all_to_all_put_program("nic")))
        assert rt.fabric.stats.retransmits >= 0  # reliable layer engaged

    def test_degrades_when_participant_dies_mid_barrier(self, make_cluster):
        plan = FaultPlan(crashes=(ProcessCrash(at_us=50.0, rank=3),), seed=7)
        params = myrinet2000(faults=plan)

        def main(ctx):
            base = ctx.region.alloc(1, initial=0)
            # Survivors enter after the victim died but before detection:
            # doorbells are posted, the victim's never arrives, and the
            # view change converts the wait into the degraded exchange.
            yield ctx.env.timeout(60.0)
            peer = (ctx.rank + 1) % ctx.nprocs
            yield from ctx.armci.put(GlobalAddress(peer, base), [1])
            yield from ctx.armci.barrier(algorithm="nic")
            return ctx.armci.stats.get("nic_degraded", 0)

        rt = make_cluster(nprocs=4, params=params)
        results = rt.run_spmd(main)
        assert results[3] is CRASHED
        survivors = [r for i, r in enumerate(results) if i != 3]
        assert all(isinstance(r, int) for r in survivors)
        assert sum(survivors) >= 1

    def test_degrades_immediately_after_view_change(self, make_cluster):
        plan = FaultPlan(crashes=(ProcessCrash(at_us=30.0, rank=3),), seed=7)
        params = myrinet2000(faults=plan)

        def main(ctx):
            # Wait until the detector has declared the victim, then ask
            # for the NIC barrier: it must not even post a doorbell.
            while ctx.membership.epoch == 0:
                yield ctx.env.timeout(20.0)
            yield from ctx.armci.barrier(algorithm="nic")
            return ctx.armci.stats.get("nic_degraded", 0)

        rt = make_cluster(nprocs=4, params=params)
        results = rt.run_spmd(main)
        survivors = [r for i, r in enumerate(results) if i != 3]
        assert all(r >= 1 for r in survivors)
        # The early-out path never constructed the engines.
        assert getattr(rt.fabric, "_nic_engines", None) is None

    def test_node_crash_shuts_down_nic(self, make_cluster):
        plan = FaultPlan(crashes=(ProcessCrash(at_us=50.0, node=3),), seed=7)
        params = myrinet2000(faults=plan)

        def main(ctx):
            yield ctx.env.timeout(60.0)
            yield from ctx.armci.barrier(algorithm="nic")
            return ctx.armci.stats.get("nic_degraded", 0)

        rt = make_cluster(nprocs=4, params=params)
        results = rt.run_spmd(main)
        survivors = [r for i, r in enumerate(results) if i != 3]
        assert all(isinstance(r, int) for r in survivors)
        engines = getattr(rt.fabric, "_nic_engines", None)
        if engines is not None:
            assert engines[3].dead
        assert rt.fabric.endpoint_dead(("nic", 3))
