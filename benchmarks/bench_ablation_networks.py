"""Ablation bench: does the optimization survive other interconnects?

The paper evaluates on Myrinet-2000/GM only.  This bench reruns Figure 7's
16-process point on era-appropriate alternatives: TCP/gigabit-Ethernet
(much higher latency and host overhead) and a Quadrics-like low-latency
fabric.  The combined barrier's advantage is structural (log vs linear), so
the factor should persist — growing on slower networks, where each saved
round trip is worth more.
"""

import pytest

from repro.experiments.fig7_sync import Fig7Config, run_fig7
from repro.net.params import gige, myrinet2000, quadrics_like

from conftest import print_report

NETWORKS = {
    "myrinet2000": myrinet2000(),
    "gige": gige(),
    "quadrics": quadrics_like(),
}


def run_sweep():
    rows = {}
    for name, params in NETWORKS.items():
        cfg = Fig7Config(nprocs_list=(16,), iterations=15, params=params)
        comparison = run_fig7(cfg)
        rows[name] = (
            comparison.get("current", 16),
            comparison.get("new", 16),
            comparison.factor(16),
        )
    return rows


def test_network_sensitivity(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1)
    lines = [f"{'network':>12}  {'current(us)':>12}  {'new(us)':>9}  factor"]
    for name, (cur, new, factor) in rows.items():
        lines.append(f"{name:>12}  {cur:12.1f}  {new:9.1f}  {factor:6.2f}")
    print_report("Ablation: GA_Sync @16 procs across interconnects",
                 "\n".join(lines))
    for name, (_cur, _new, factor) in rows.items():
        benchmark.extra_info[f"factor_{name}"] = round(factor, 2)
        # Structural claim: the combined barrier wins on every fabric.
        assert factor > 2.0, name
    # Absolute saving per GA_Sync call grows with wire cost (even though
    # the *ratio* can shrink — on TCP/GigE the heavy per-call MPI stack
    # inflates the new implementation's log-phases too).
    savings = {name: cur - new for name, (cur, new, _f) in rows.items()}
    assert savings["gige"] > savings["myrinet2000"] > savings["quadrics"]
