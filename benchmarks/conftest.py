"""Benchmark-suite configuration.

Each bench regenerates one of the paper's figures: the *simulated* results
(microseconds of virtual time, the numbers comparable to the paper) are
attached to ``benchmark.extra_info`` and printed as paper-style tables;
pytest-benchmark's own timings measure the simulator's wall-clock cost.

Run:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

# Shared, intentionally small-but-stable workload sizes so the whole suite
# regenerates every figure in a few minutes of wall clock.
FIG7_ITERATIONS = 30
LOCK_ITERATIONS = 250


def print_report(title: str, body: str) -> None:
    """Emit a paper-style table through pytest's capture (-s to see live)."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}\n")
