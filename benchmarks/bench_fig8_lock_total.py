"""Figure 8 bench: time to request and release a lock (+ factor).

Paper reference: the new (MCS) lock wins once two or more processes
compete — up to a 1.25x factor at 8 nodes — while at one process the
blocking compare&swap makes it lose to the original hybrid.
"""

import pytest

from repro.experiments.lockbench import (
    LockBenchConfig,
    comparison_from_series,
    run_lock_point,
    run_lock_series,
)

from conftest import LOCK_ITERATIONS, print_report

CFG = LockBenchConfig(iterations=LOCK_ITERATIONS)


@pytest.mark.parametrize("nprocs", [1, 2, 4, 8, 16])
@pytest.mark.parametrize("kind", ["hybrid", "mcs"])
def test_lock_roundtrip_point(benchmark, kind, nprocs):
    point = benchmark.pedantic(run_lock_point, args=(kind, nprocs, CFG), rounds=1)
    benchmark.extra_info["simulated_us"] = round(point.roundtrip_us, 1)
    benchmark.extra_info["figure"] = "8a"
    assert point.roundtrip_us > 0


def test_fig8_full_table(benchmark):
    series = benchmark.pedantic(run_lock_series, args=(CFG,), rounds=1)
    comparison = comparison_from_series(
        series, "roundtrip",
        "Figure 8: time to request and release a lock (current vs new)",
    )
    print_report("Figure 8 reproduction (paper: up to 1.25x at 8 nodes)",
                 comparison.render())
    benchmark.extra_info["factors"] = {
        str(n): round(f, 2) for n, f in comparison.factors().items()
    }
    # Shape: current wins at 1 process; new wins for >= 4; ~1.25x near 8.
    assert comparison.factor(1) < 1.0
    for n in (4, 8, 16):
        assert comparison.factor(n) > 1.0
    assert 1.05 <= max(comparison.factor(8), comparison.factor(16)) <= 1.6
