"""Ablation bench: host binary exchange vs. the NIC-offloaded barrier.

Three-way fig7-style comparison (host-exchange / nic-exchange / nic-tree)
over the process counts.  The NIC engines run the combined fence+barrier
without host involvement; under the calibrated ``myrinet2000()`` model the
NIC exchange must beat the host exchange from 8 processes up (the doorbell
+ DMA overhead amortizes once there are 3+ phases of saved MPI-stack and
host-latency cost per phase).
"""

from repro.experiments.nicbench import (
    NicBenchConfig,
    VARIANTS,
    run_nicbench,
)

from conftest import FIG7_ITERATIONS, print_report


def test_nic_ablation(benchmark):
    cfg = NicBenchConfig(
        nprocs_list=(2, 4, 8, 16),
        iterations=FIG7_ITERATIONS,
        shape=(64, 64),
        strip_rows=2,
    )
    result = benchmark.pedantic(run_nicbench, args=(cfg,), rounds=1)
    print_report("Ablation: host vs NIC-offloaded barrier", result.render())

    # Shape: every variant has a value for every process count.
    assert set(result.values) == set(VARIANTS)
    for variant in VARIANTS:
        assert sorted(result.values[variant]) == [2, 4, 8, 16]
        assert all(v > 0.0 for v in result.values[variant].values())

    # The offload pays off at scale.
    for n in (8, 16):
        nic = result.get("nic-exchange", n)
        host = result.get("host-exchange", n)
        assert nic < host, f"nic {nic:.1f}us >= host {host:.1f}us at {n}"
        benchmark.extra_info[f"factor_at_{n}"] = round(result.factor(n), 3)

    # The improvement factor grows with the process count.
    assert result.factor(16) > result.factor(8)
    # Recursive doubling beats the serialized combining tree at 16 nodes.
    assert result.get("nic-exchange", 16) < result.get("nic-tree", 16)
