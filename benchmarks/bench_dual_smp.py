"""Dual-SMP evaluation: the figures with 2 processes per node.

The paper's testbed is a cluster of *dual*-SMP nodes but its runs place one
process per node.  This bench reruns the two headline experiments with
both processes per node occupied (16 processes on 8 nodes), where the
intra-node fast paths matter: local puts bypass servers, lock handoffs to a
same-node waiter cost zero messages, and half of each process's fence
targets sit one shared-memory hop away.
"""

import pytest

from repro.experiments.fig7_sync import Fig7Config, run_fig7
from repro.experiments.lockbench import LockBenchConfig, run_lock_point

from conftest import FIG7_ITERATIONS, LOCK_ITERATIONS, print_report


def run_fig7_smp():
    rows = {}
    for ppn in (1, 2):
        cfg = Fig7Config(
            nprocs_list=(16,), iterations=FIG7_ITERATIONS, procs_per_node=ppn
        )
        comparison = run_fig7(cfg)
        rows[ppn] = (
            comparison.get("current", 16),
            comparison.get("new", 16),
            comparison.factor(16),
        )
    return rows


def test_fig7_dual_smp(benchmark):
    rows = benchmark.pedantic(run_fig7_smp, rounds=1)
    lines = ["ppn  current(us)  new(us)  factor   (16 processes)"]
    for ppn, (cur, new, factor) in sorted(rows.items()):
        lines.append(f"{ppn:>3}  {cur:11.1f}  {new:7.1f}  {factor:6.2f}")
    print_report("Dual-SMP: GA_Sync at 16 procs, 1 vs 2 procs/node",
                 "\n".join(lines))
    for ppn, (_c, _n, factor) in rows.items():
        benchmark.extra_info[f"factor_ppn{ppn}"] = round(factor, 2)
        # The optimization holds with SMP co-location too.
        assert factor > 4.0
    # Co-location helps the *linear* fence a lot (half the servers to
    # confirm with, and same-node puts bypass servers entirely)...
    assert rows[2][0] < 0.7 * rows[1][0]
    # ...while the log-phase exchange barrier is placement-insensitive.
    assert abs(rows[2][1] - rows[1][1]) < 0.15 * rows[1][1]
    # Consequently the *factor* shrinks at 2 ppn — co-location is itself a
    # partial remedy for the convoy the paper's operation eliminates.
    assert rows[2][2] < rows[1][2]


def run_locks_smp():
    rows = {}
    for ppn in (1, 2):
        cfg = LockBenchConfig(
            iterations=LOCK_ITERATIONS, procs_per_node=ppn
        )
        hybrid = run_lock_point("hybrid", 16, cfg)
        mcs = run_lock_point("mcs", 16, cfg)
        rows[ppn] = (
            hybrid.roundtrip_us,
            mcs.roundtrip_us,
            hybrid.roundtrip_us / mcs.roundtrip_us,
        )
    return rows


def test_locks_dual_smp(benchmark):
    rows = benchmark.pedantic(run_locks_smp, rounds=1)
    lines = ["ppn  hybrid(us)  mcs(us)  factor   (16 processes)"]
    for ppn, (hyb, mcs, factor) in sorted(rows.items()):
        lines.append(f"{ppn:>3}  {hyb:10.1f}  {mcs:7.1f}  {factor:6.2f}")
    print_report("Dual-SMP: lock round-trip at 16 procs, 1 vs 2 procs/node",
                 "\n".join(lines))
    for ppn, (_h, _m, factor) in rows.items():
        benchmark.extra_info[f"factor_ppn{ppn}"] = round(factor, 2)
        # MCS keeps winning at 16 processes under both placements, in the
        # paper's factor range.
        assert 1.1 < factor < 1.5
    # With a single lock and a 16-deep rotation, only 1/15 of handoffs
    # become same-node: both algorithms move by at most a few percent.
    for column in (0, 1):
        assert abs(rows[2][column] - rows[1][column]) < 0.07 * rows[1][column]