"""Ablation bench: the §3.1.2 fence/barrier crossover.

Paper: "in certain situations, such as when processes perform put
operations on memory locations at less than log2(N)/2 other processes, the
original implementation may provide better performance."  This bench sweeps
the number of put targets at 16 processes and locates the crossover, and
verifies the suggested programmer-selectable policy ("auto") tracks the
winner.
"""

from repro.armci.barrier import predicted_crossover_targets
from repro.experiments.ablations import run_crossover
from repro.net.params import myrinet2000

from conftest import print_report


def test_crossover_sweep(benchmark):
    result = benchmark.pedantic(
        run_crossover,
        kwargs=dict(nprocs=16, targets_list=(0, 1, 2, 3, 4, 8, 15), iterations=12),
        rounds=1,
    )
    print_report("Ablation: fence/barrier crossover (paper 3.1.2)",
                 result.render())
    crossover_at = result.crossover_targets()
    benchmark.extra_info["crossover_targets"] = crossover_at
    # The paper's heuristic says ~log2(16)/2 = 2.
    assert crossover_at is not None and 1 <= crossover_at <= 4
    # The calibrated cost model that drives "auto" must predict the
    # empirical crossover (it is what replaced the fixed threshold).
    predicted = predicted_crossover_targets(myrinet2000(), 16)
    benchmark.extra_info["predicted_crossover_targets"] = predicted
    assert abs(predicted - crossover_at) <= 1
    for targets, row in result.by_targets.items():
        assert row["auto"] <= min(row["linear"], row["exchange"]) * 1.10
