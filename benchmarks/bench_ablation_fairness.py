"""Ablation bench: lock acquisition fairness across algorithms.

Per-rank mean acquire time under saturation.  The finding: the original
hybrid gives the *home* rank a measurable advantage (its requests take a
shared-memory shortcut to the ticket while everyone else queues at the
server), whereas the MCS lock's queue discipline is perfectly uniform —
requesters enter one global FIFO regardless of where they sit.  The token
algorithms also rotate regularly once saturated (their unfairness only
shows at partial load).
"""

from repro.experiments.ablations import (
    fairness_spread,
    render_lock_fairness,
    run_lock_fairness,
)

from conftest import print_report


def test_lock_fairness(benchmark):
    data = benchmark.pedantic(
        run_lock_fairness, kwargs=dict(nprocs=8, iterations=150), rounds=1
    )
    print_report("Ablation: lock fairness (per-rank mean acquire time)",
                 render_lock_fairness(data))
    for kind, per_rank in data.items():
        benchmark.extra_info[f"spread_{kind}"] = round(fairness_spread(per_rank), 2)
    # MCS is essentially perfectly fair...
    assert fairness_spread(data["mcs"]) < 1.02
    # ...while the hybrid favors the rank co-located with the lock home.
    assert fairness_spread(data["hybrid"]) > 1.05
    hybrid = data["hybrid"]
    assert hybrid[0] == min(hybrid.values())  # the home rank wins
    # Saturated token rotations are regular too.
    assert fairness_spread(data["raymond"]) < 1.05
    assert fairness_spread(data["naimi"]) < 1.05
