"""Ablation bench: sensitivity to the server wake-up cost.

The paper attributes part of the hybrid lock's handoff cost to "the time to
wake the sleeping server thread".  This bench sweeps that cost: the hybrid
(which must visit the server on every unlock) degrades faster than the MCS
lock (whose contended handoffs bypass the server).
"""

from repro.experiments.ablations import run_wake_cost
from repro.experiments.lockbench import LockBenchConfig

from conftest import LOCK_ITERATIONS, print_report


def test_wake_cost_sensitivity(benchmark):
    comparison = benchmark.pedantic(
        run_wake_cost,
        kwargs=dict(
            nprocs=8,
            wake_list=(0.0, 9.0, 18.0, 36.0),
            cfg=LockBenchConfig(iterations=LOCK_ITERATIONS),
        ),
        rounds=1,
    )
    print_report("Ablation: lock round-trip vs server wake cost",
                 comparison.render())
    hybrid_slope = comparison.values["current"][36] - comparison.values["current"][0]
    mcs_slope = comparison.values["new"][36] - comparison.values["new"][0]
    benchmark.extra_info["hybrid_delta_us"] = round(hybrid_slope, 1)
    benchmark.extra_info["mcs_delta_us"] = round(mcs_slope, 1)
    assert hybrid_slope > mcs_slope
