"""Ablation bench: MCS vs the related-work token algorithms.

The paper's §3.2 surveys distributed mutex algorithms — QOLB, LH/M,
Raymond's tree algorithm [18], Naimi-Trehel [20] — before adopting the MCS
software queuing lock.  This bench puts the implemented candidates
(original hybrid, MCS, Raymond, Naimi-Trehel) through the Figure-8 workload
on the same cost model.
"""

from repro.experiments.ablations import render_lock_algorithms, run_lock_algorithms
from repro.experiments.lockbench import LockBenchConfig

from conftest import LOCK_ITERATIONS, print_report


def test_lock_algorithm_comparison(benchmark):
    series = benchmark.pedantic(
        run_lock_algorithms,
        kwargs=dict(
            nprocs_list=(2, 4, 8, 16),
            cfg=LockBenchConfig(iterations=LOCK_ITERATIONS),
        ),
        rounds=1,
    )
    print_report("Ablation: mutex algorithm comparison (paper 3.2)",
                 render_lock_algorithms(series))
    for kind in series:
        benchmark.extra_info[f"{kind}_16_us"] = round(
            series[kind][16].roundtrip_us, 1
        )
    # The paper's choice must be justified on its own terms: under
    # contention the MCS lock beats the original hybrid and both token
    # algorithms (whose handoffs funnel through user-process progress
    # engines and extra forwarding hops).
    for n in (8, 16):
        mcs = series["mcs"][n].roundtrip_us
        assert mcs < series["hybrid"][n].roundtrip_us
        assert mcs < series["raymond"][n].roundtrip_us
        assert mcs < series["naimi"][n].roundtrip_us
