#!/usr/bin/env python3
"""Simulator-kernel throughput benchmark: events/sec on the fig7 sweep.

Drives the exact Figure 7 workload (both GA_Sync modes over the paper's
process counts) through the simulation kernel, measures wall-clock
events/sec, and writes the result to ``BENCH_simkernel.json`` at the repo
root — the perf-trajectory artifact CI uploads on every run.

The *simulated* event count is asserted against the workload's known
deterministic value, so a kernel change that alters the event stream
(breaking byte-identical results) fails here before it fails anywhere
subtler.  Wall-clock throughput is taken as the best of ``--repeats``
full sweeps, which filters scheduler noise on shared runners.

Regression gate: raw events/sec is machine-dependent — a baseline
recorded on a fast reference box reads as a phantom regression on a
slower CI runner.  The gate therefore *calibrates*: each run first times
a pinned pure-Python micro-anchor (generator resume + dict + heap loop,
the same operation mix the kernel hot path exercises) on the same
machine, and gates on the **ratio** ``events_per_sec /
anchor_ops_per_sec`` against the baseline's recorded ratio.  Machine
speed cancels out of the ratio; only genuine kernel-relative slowdowns
trip it.  With ``--baseline`` (default: the checked-in
``baseline_simkernel.json`` next to this script) the run fails when the
calibrated ratio drops more than ``--max-regression`` (default 30%)
below the baseline's.  Baselines lacking anchor fields (recorded before
calibration existed) fall back to the legacy absolute events/sec floor.
Re-record with ``--record`` after intentional kernel-perf changes.

Run:  python benchmarks/perf/bench_simkernel.py [--iterations 100]
      python benchmarks/perf/bench_simkernel.py --iterations 20 --repeats 2
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parents[2]
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.experiments.common import default_params  # noqa: E402
from repro.experiments.fig7_sync import Fig7Config, sync_workload  # noqa: E402
from repro.runtime.cluster import ClusterRuntime  # noqa: E402

#: The fig7 sweep measured here, matching ``repro fig7``.
MODES = ("current", "new")
NPROCS = (2, 4, 8, 16)

#: Pre-PR kernel throughput on the reference machine (commit 0a20279,
#: iterations=100, best of 4 sweeps interleaved with the optimized kernel
#: to cancel machine drift): the trajectory anchor every report is
#: compared against.
PRE_PR_EVENTS_PER_SEC = 102494.4

#: Operations per anchor pass.  Pinned: changing it (or the anchor loop
#: body) invalidates every recorded ``calibrated_ratio``.
ANCHOR_OPS = 200_000


def _anchor_pass(n: int = ANCHOR_OPS) -> int:
    """One pass of the calibration anchor: the kernel's operation mix
    (generator resume, dict store, heap push/pop) in pure Python, with a
    data-dependent accumulator so nothing is optimized away."""
    from heapq import heappop, heappush

    def spin():
        acc = 0
        while True:
            acc = (yield acc) + 1

    gen = spin()
    next(gen)
    heap = []
    table = {}
    acc = 0
    for i in range(n):
        acc = gen.send(acc) & 0xFFFFFF
        heappush(heap, ((i * 2654435761) & 0xFFFF, acc))
        table[i & 1023] = acc
        if (i & 7) == 0:
            acc ^= heappop(heap)[1]
    gen.close()
    return acc


def measure_anchor(repeats: int) -> float:
    """Anchor throughput (ops/sec), best of ``max(repeats, 3)`` passes."""
    best = float("inf")
    for _ in range(max(repeats, 3)):
        start = time.perf_counter()
        _anchor_pass()
        best = min(best, time.perf_counter() - start)
    return ANCHOR_OPS / best


def run_sweep(iterations: int, nprocs_list=NPROCS) -> int:
    """One full fig7 sweep; returns simulated events processed."""
    params = default_params(None)
    events = 0
    for mode in MODES:
        for nprocs in nprocs_list:
            cfg = Fig7Config(
                nprocs_list=(nprocs,), iterations=iterations, params=params
            )
            runtime = ClusterRuntime(nprocs, params=params)
            runtime.run_spmd(sync_workload, mode, cfg)
            events += runtime.env.events_processed
    return events


def measure(iterations: int, repeats: int) -> dict:
    # Anchor timed both before and after the sweeps (best wins): transient
    # runner load that slows one window rarely slows both, and whichever
    # window is clean prices the machine for the ratio.
    anchor_ops_per_sec = measure_anchor(repeats)
    runs = []
    events = None
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        run_events = run_sweep(iterations)
        wall_s = time.perf_counter() - start
        if events is None:
            events = run_events
        elif run_events != events:  # pragma: no cover - determinism breach
            raise AssertionError(
                f"nondeterministic event count: {run_events} != {events}"
            )
        runs.append({"wall_s": round(wall_s, 4),
                     "events_per_sec": round(run_events / wall_s, 1)})
    anchor_ops_per_sec = max(anchor_ops_per_sec, measure_anchor(repeats))
    best = max(runs, key=lambda r: r["events_per_sec"])
    return {
        "bench": "simkernel",
        "workload": {
            "experiment": "fig7",
            "modes": list(MODES),
            "nprocs": list(NPROCS),
            "iterations": iterations,
        },
        "events": events,
        "runs": runs,
        "best_wall_s": best["wall_s"],
        "events_per_sec": best["events_per_sec"],
        "anchor_ops_per_sec": round(anchor_ops_per_sec, 1),
        "calibrated_ratio": round(
            best["events_per_sec"] / anchor_ops_per_sec, 4
        ),
        "pre_pr_events_per_sec": PRE_PR_EVENTS_PER_SEC,
        "speedup_vs_pre_pr": round(
            best["events_per_sec"] / PRE_PR_EVENTS_PER_SEC, 2
        ),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--iterations", type=int, default=100,
                        help="fig7 iterations per cell (default 100)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="full sweeps to run; best is reported (default 3)")
    parser.add_argument("--out", type=pathlib.Path,
                        default=ROOT / "BENCH_simkernel.json",
                        help="where to write the report JSON")
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=pathlib.Path(__file__).parent
                        / "baseline_simkernel.json",
                        help="baseline JSON for the regression gate")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        metavar="FRAC",
                        help="fail if the calibrated events-per-anchor-op "
                        "ratio drops more than this fraction below the "
                        "baseline's (default 0.30)")
    parser.add_argument("--record", action="store_true",
                        help="overwrite the baseline with this run")
    args = parser.parse_args(argv)

    report = measure(args.iterations, args.repeats)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench] {report['events']} simulated events, "
          f"best {report['best_wall_s']}s wall, "
          f"{report['events_per_sec']:.0f} events/sec "
          f"({report['speedup_vs_pre_pr']}x vs pre-PR kernel)")
    print(f"[bench] report written: {args.out}")

    if args.record:
        baseline = {
            "events_per_sec": report["events_per_sec"],
            "anchor_ops_per_sec": report["anchor_ops_per_sec"],
            "calibrated_ratio": report["calibrated_ratio"],
            "iterations": args.iterations,
            "pre_pr_events_per_sec": PRE_PR_EVENTS_PER_SEC,
            "note": "calibrated_ratio (events/sec over same-machine anchor "
                    "ops/sec) is what the gate compares; re-record with "
                    "--record after intentional kernel-perf changes",
        }
        args.baseline.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"[bench] baseline recorded: {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"[bench] no baseline at {args.baseline}; gate skipped")
        return 0
    baseline = json.loads(args.baseline.read_text())
    if "calibrated_ratio" in baseline:
        ratio = report["calibrated_ratio"]
        floor = baseline["calibrated_ratio"] * (1.0 - args.max_regression)
        if ratio < floor:
            print(f"[bench] FAIL: calibrated ratio {ratio:.4f} "
                  f"(events/sec over anchor ops/sec) is below the "
                  f"regression floor {floor:.4f} "
                  f"(baseline {baseline['calibrated_ratio']:.4f}, "
                  f"max regression {args.max_regression:.0%})")
            return 1
        print(f"[bench] gate ok: calibrated ratio {ratio:.4f} >= "
              f"floor {floor:.4f} "
              f"(anchor {report['anchor_ops_per_sec']:.0f} ops/sec)")
        return 0
    # Legacy baseline (no anchor fields): absolute machine-dependent gate.
    floor = baseline["events_per_sec"] * (1.0 - args.max_regression)
    if report["events_per_sec"] < floor:
        print(f"[bench] FAIL: {report['events_per_sec']:.0f} events/sec is "
              f"below the regression floor {floor:.0f} "
              f"(baseline {baseline['events_per_sec']:.0f}, "
              f"max regression {args.max_regression:.0%})")
        return 1
    print(f"[bench] gate ok: {report['events_per_sec']:.0f} >= "
          f"floor {floor:.0f} events/sec (legacy absolute gate; "
          f"re-record to calibrate)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
