"""Figure 7 bench: GA_Sync() time, current vs new implementation.

Regenerates both panels of the paper's Figure 7: panel (a) the two GA_Sync
time series over 2..16 processes, panel (b) the factor of improvement.
Paper reference points: 1724.3 µs (current) vs 190.3 µs (new) at 16
processes — a factor of up to 9.
"""

import pytest

from repro.experiments.fig7_sync import Fig7Config, run_fig7, sync_workload
from repro.net.params import myrinet2000
from repro.runtime.cluster import ClusterRuntime

from conftest import FIG7_ITERATIONS, print_report


def run_point(variant: str, nprocs: int) -> float:
    """One (implementation, nprocs) cell of Figure 7; returns simulated µs."""
    cfg = Fig7Config(nprocs_list=(nprocs,), iterations=FIG7_ITERATIONS)
    runtime = ClusterRuntime(nprocs, params=myrinet2000())
    per_rank = runtime.run_spmd(sync_workload, variant, cfg)
    pooled = [s for samples in per_rank for s in samples]
    return sum(pooled) / len(pooled)


@pytest.mark.parametrize("nprocs", [2, 4, 8, 16])
@pytest.mark.parametrize("variant", ["current", "new"])
def test_ga_sync_point(benchmark, variant, nprocs):
    result = benchmark.pedantic(run_point, args=(variant, nprocs), rounds=1)
    benchmark.extra_info["simulated_us"] = round(result, 1)
    benchmark.extra_info["figure"] = "7a"
    assert result > 0


def test_fig7_full_table(benchmark):
    """Panel (a) + (b): regenerate the whole figure and check the shape."""
    cfg = Fig7Config(iterations=FIG7_ITERATIONS)
    comparison = benchmark.pedantic(run_fig7, args=(cfg,), rounds=1)
    print_report("Figure 7 reproduction (paper: up to 9x at 16 procs)",
                 comparison.render())
    benchmark.extra_info["factors"] = {
        str(n): round(f, 2) for n, f in comparison.factors().items()
    }
    # Shape assertions: new always wins, factor grows, ~9x at 16.
    for n in comparison.nprocs_list():
        assert comparison.factor(n) > 1.0
    factors = comparison.factors()
    assert factors[16] > factors[8] > factors[2]
    assert 6.0 <= factors[16] <= 12.0
