"""Figure 10 bench: time to release a lock.

Paper reference: the new implementation's release is *more* expensive (the
uncontended release performs a blocking compare&swap round trip, where the
original fires one unlock message and returns), but the average falls as
contention rises because the queue is then rarely empty.
"""

import pytest

from repro.experiments.lockbench import (
    LockBenchConfig,
    comparison_from_series,
    run_lock_point,
    run_lock_series,
)

from conftest import LOCK_ITERATIONS, print_report

CFG = LockBenchConfig(iterations=LOCK_ITERATIONS)


@pytest.mark.parametrize("nprocs", [1, 4, 16])
@pytest.mark.parametrize("kind", ["hybrid", "mcs"])
def test_lock_release_point(benchmark, kind, nprocs):
    point = benchmark.pedantic(run_lock_point, args=(kind, nprocs, CFG), rounds=1)
    benchmark.extra_info["simulated_us"] = round(point.release_us, 2)
    benchmark.extra_info["figure"] = "10"
    assert point.release_us > 0


def test_fig10_full_table(benchmark):
    series = benchmark.pedantic(run_lock_series, args=(CFG,), rounds=1)
    comparison = comparison_from_series(
        series, "release",
        "Figure 10: time to release a lock (current vs new)",
    )
    print_report(
        "Figure 10 reproduction (paper: new is slower here, gap shrinks "
        "with contention)",
        comparison.render(),
    )
    benchmark.extra_info["factors"] = {
        str(n): round(f, 2) for n, f in comparison.factors().items()
    }
    # Shape: current's fire-and-forget release wins everywhere...
    for n in comparison.nprocs_list():
        assert comparison.factor(n) < 1.0
    # ...and the new release cost *decreases* with contention.
    new = comparison.values["new"]
    assert new[16] < new[4] < new[1]
    # current stays flat and cheap.
    current = comparison.values["current"]
    assert max(current.values()) < 5.0
