"""Ablation bench: process skew and the paper's §4.1 timing methodology.

"We called MPI_Barrier() before calling GA_Sync() in order to ensure that
the times we were reporting were not due to process skew."  This bench
injects uniform arrival skew and shows how much the *reported* GA_Sync time
inflates without that protective barrier — especially for the new
implementation, whose genuine cost is small compared to the skew.
"""

from repro.experiments.ablations import run_skew

from conftest import print_report


def test_skew_methodology(benchmark):
    result = benchmark.pedantic(
        run_skew, kwargs=dict(nprocs=16, skew_us=200.0, iterations=15), rounds=1
    )
    print_report("Ablation: why the paper pre-barriers before timing GA_Sync",
                 result.render())
    benchmark.extra_info["inflation_new"] = round(result.inflation("new"), 2)
    benchmark.extra_info["inflation_current"] = round(
        result.inflation("current"), 2
    )
    # Without the pre-barrier the reported times absorb the skew...
    assert result.inflation("new") > 1.5
    # ...and the faster implementation suffers relatively more.
    assert result.inflation("new") > result.inflation("current")
    # The pre-barrier numbers stay near the unskewed Figure-7 values.
    assert result.data[("new", True)] < 200.0