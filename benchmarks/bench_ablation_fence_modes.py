"""Ablation bench: AllFence under confirm-mode (GM) vs ack-mode (LAPI/VIA).

Paper §3.1.1: on subsystems that acknowledge each put, a fence merely
drains outstanding acks — no extra messages — which is why the linear
AllFence is only a problem on GM-style subsystems.  This bench quantifies
the difference the paper takes as given.
"""

from repro.experiments.ablations import run_fence_modes

from conftest import print_report


def test_fence_modes(benchmark):
    comparison = benchmark.pedantic(
        run_fence_modes, kwargs=dict(nprocs_list=(2, 4, 8, 16), iterations=12),
        rounds=1,
    )
    print_report("Ablation: AllFence cost by subsystem style (paper 3.1.1)",
                 comparison.render())
    benchmark.extra_info["confirm_16_us"] = round(comparison.get("confirm", 16), 1)
    benchmark.extra_info["ack_16_us"] = round(comparison.get("ack", 16), 1)
    # Ack-mode fences are near-free; confirm-mode grows linearly.
    assert comparison.get("ack", 16) < comparison.get("confirm", 16) / 10
    assert comparison.get("confirm", 16) > 2.5 * comparison.get("confirm", 4)
