"""Ablation bench: the §5 future-work optimistic MCS release.

The paper closes: "we are working on optimizing the lock operation to
eliminate the need for the compare&swap operation when releasing a lock.
Such an optimization would improve the performance of unlocking a lock when
there is no other process waiting."  This bench measures our implementation
of that idea (non-blocking CAS with background completion).
"""

from repro.experiments.ablations import render_release_opt, run_release_opt
from repro.experiments.lockbench import LockBenchConfig

from conftest import LOCK_ITERATIONS, print_report


def test_release_optimization(benchmark):
    series = benchmark.pedantic(
        run_release_opt,
        kwargs=dict(
            nprocs_list=(1, 2, 4, 8),
            cfg=LockBenchConfig(iterations=LOCK_ITERATIONS),
        ),
        rounds=1,
    )
    print_report("Ablation: optimistic MCS release (paper section-5 future work)",
                 render_release_opt(series))
    base_rel = series["mcs"][1].release_us
    opt_rel = series["mcs-opt"][1].release_us
    benchmark.extra_info["release_us_before"] = round(base_rel, 1)
    benchmark.extra_info["release_us_after"] = round(opt_rel, 1)
    # Exactly the effect the paper predicts: uncontended release collapses.
    assert opt_rel < base_rel / 2
    # And it must not cost correctness or throughput under contention.
    assert series["mcs-opt"][8].roundtrip_us <= series["mcs"][8].roundtrip_us * 1.3
