"""Ablation bench: synchronization cost and retry volume vs. link drop rate.

The paper's measurements lean on GM's reliable in-order delivery (§3.1.1):
completion counters, fence confirmations, and the combined barrier all
assume a message posted is a message delivered, exactly once, in order.
This bench drops that assumption.  A put/acc/barrier assembly epoch runs
under increasing seeded link drop rates with the ACK/retransmit/resequence
layer enabled, reporting how much the paper's optimized synchronization
stretches and how much transport work (retransmits, suppressed duplicates,
ACK frames) buys back correctness — which is asserted, not assumed: every
faulty run must reach the exact memory state and op_done counters of the
fault-free run.
"""

import pytest

from repro.experiments.faultbench import FaultBenchConfig, run_faultbench

from conftest import print_report

DROP_RATES = (0.0, 0.02, 0.05, 0.1)
NPROCS = 8
EPOCHS = 4


def run_sweep():
    cfg = FaultBenchConfig(
        nprocs=NPROCS,
        drop_rates=DROP_RATES,
        epochs=EPOCHS,
        fault_seed=20030422,
    )
    return run_faultbench(cfg)


def test_fault_sweep(benchmark):
    result = benchmark.pedantic(run_sweep, rounds=1)
    print_report(
        "Ablation: assembly epoch (puts + accs + ARMCI_Barrier) vs drop rate",
        result.render(),
    )
    for p in result.points:
        tag = f"{p.drop_rate:.2f}".replace(".", "p")
        benchmark.extra_info[f"epoch_us_drop_{tag}"] = round(p.epoch_us, 1)
        benchmark.extra_info[f"retransmits_drop_{tag}"] = p.retransmits
    # The reliability layer must make every faulty run state-identical to
    # the fault-free reference.
    assert result.all_ok()
    by_rate = {p.drop_rate: p for p in result.points}
    # Losses actually happened and were repaired.
    assert by_rate[0.05].frames_dropped > 0
    assert by_rate[0.05].retransmits > 0
    assert by_rate[0.05].dup_suppressed > 0
    # The fault-free point pays nothing: no retransmit machinery engaged.
    assert by_rate[0.0].retransmits == 0 and by_rate[0.0].acks == 0
    # Recovery costs time, monotonically in the loss rate.
    assert by_rate[0.1].epoch_us > by_rate[0.02].epoch_us > by_rate[0.0].epoch_us
