"""Ablation bench: flat vs topology-aware barriers on a hierarchy.

Under a two-level topology (8 ranks per SMP node, switch uplinks at 26µs
with 2x contention) the flat binary exchange pays the convoy effect —
every phase pushes ``ppn`` vectors through each node's one NIC — while
the two-level algorithm gathers locally over shared memory, exchanges
one vector per *node*, and releases locally.  This bench locates the
crossover on the (N, algorithm) grid and asserts the calibrated cost
model (``estimate_exchange_us`` / ``estimate_twolevel_us``, which drive
``algorithm="auto"`` under a hierarchy) predicts the empirical winner at
every grid point — the PR's acceptance criterion.
"""

from repro.armci.barrier import estimate_exchange_us, estimate_twolevel_us
from repro.experiments.scalebench import ScaleBenchConfig, run_scalebench
from repro.net.params import myrinet2000
from repro.topo import two_level

from conftest import print_report

PPN = 8
NPROCS_GRID = (64, 256, 1024)


def _hier_params():
    return myrinet2000().with_(
        hierarchy=two_level(8, uplink_latency_us=26.0, uplink_contention=2.0),
        tree_radix=8,
    )


def _run_grid():
    cfg = ScaleBenchConfig(
        nprocs_list=NPROCS_GRID,
        iterations=3,
        procs_per_node=PPN,
        params=_hier_params(),
        variants=("host-exchange", "twolevel"),
    )
    return run_scalebench(cfg)


def test_topology_crossover(benchmark):
    result = benchmark.pedantic(_run_grid, rounds=1)
    print_report(
        "Ablation: flat exchange vs two-level barrier on a hierarchy",
        result.render(),
    )
    params = _hier_params()
    for nprocs in NPROCS_GRID:
        flat = result.get("host-exchange", nprocs).sync_us
        two = result.get("twolevel", nprocs).sync_us
        est_flat = estimate_exchange_us(params, nprocs, ppn=PPN)
        est_two = estimate_twolevel_us(params, nprocs, ppn=PPN)
        benchmark.extra_info[f"n{nprocs}"] = {
            "flat_us": round(flat, 1),
            "twolevel_us": round(two, 1),
            "est_flat_us": round(est_flat, 1),
            "est_twolevel_us": round(est_two, 1),
        }
        # The cost model must predict the measured winner at every grid
        # point: it is what auto-selection trusts under a hierarchy.
        assert (est_two < est_flat) == (two < flat), (
            f"N={nprocs}: estimates pick "
            f"{'twolevel' if est_two < est_flat else 'exchange'} but the "
            f"simulation crowned the other "
            f"(sim {two:.1f} vs {flat:.1f}, est {est_two:.1f} vs {est_flat:.1f})"
        )
    # Acceptance: two-level wins at scale (N >= 1024) under the hierarchy...
    assert result.get("twolevel", 1024).sync_us < result.get(
        "host-exchange", 1024
    ).sync_us
    # ...and the flat exchange still wins the small-N end, so the
    # crossover is real rather than twolevel dominating everywhere.
    assert result.get("host-exchange", 64).sync_us < result.get(
        "twolevel", 64
    ).sync_us
