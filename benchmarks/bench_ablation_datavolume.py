"""Ablation bench: GA_Sync advantage vs per-iteration data volume.

Figure 7's workload writes strips into every remote block; the paper does
not state the strip size.  This bench sweeps it: with little data the sync
cost is pure protocol (where the 2·log2(N)-vs-linear gap is maximal); with
heavy data both implementations increasingly wait on the same put
completions, diluting the factor.  The paper's ~9x implies a
protocol-dominated configuration, which is how DESIGN.md calibrates.
"""

import pytest

from repro.experiments.fig7_sync import Fig7Config, run_fig7

from conftest import print_report


def run_sweep():
    rows = {}
    for strip_rows, shape in ((1, (128, 128)), (4, (256, 256)), (16, (512, 512))):
        cfg = Fig7Config(
            nprocs_list=(16,), iterations=10, shape=shape, strip_rows=strip_rows
        )
        comparison = run_fig7(cfg)
        cells = strip_rows * (shape[1] // 4)  # per-target cells at 16 procs
        rows[cells * 8] = (
            comparison.get("current", 16),
            comparison.get("new", 16),
            comparison.factor(16),
        )
    return rows


def test_data_volume_sweep(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1)
    lines = ["bytes/target  current(us)  new(us)  factor   (16 procs)"]
    for nbytes in sorted(rows):
        cur, new, factor = rows[nbytes]
        lines.append(f"{nbytes:>12}  {cur:11.1f}  {new:7.1f}  {factor:6.2f}")
    print_report("Ablation: GA_Sync factor vs per-iteration data volume",
                 "\n".join(lines))
    volumes = sorted(rows)
    for nbytes in volumes:
        benchmark.extra_info[f"factor_{nbytes}B"] = round(rows[nbytes][2], 2)
        # The optimization wins at every data volume...
        assert rows[nbytes][2] > 2.0
    # ...but heavy data dilutes the factor (shared put-completion time).
    assert rows[volumes[-1]][2] < rows[volumes[0]][2] * 1.05
