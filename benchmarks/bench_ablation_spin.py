"""Ablation bench: spin-then-block servers vs the Figure 7 convoy.

Production ARMCI servers busy-poll before blocking; the paper's analysis
(and our default) assumes immediate blocking.  Sweeping the spin window
shows how much of the original implementation's cost is wake-ups — and
that even a spin-forever server leaves the linear-vs-log gap standing.
"""

import pytest

from repro.experiments.fig7_sync import Fig7Config, run_fig7
from repro.net.params import myrinet2000

from conftest import print_report


def run_sweep():
    rows = {}
    for spin in (0.0, 50.0, 1000.0):
        cfg = Fig7Config(
            nprocs_list=(16,),
            iterations=10,
            params=myrinet2000(server_spin_us=spin),
        )
        comparison = run_fig7(cfg)
        rows[spin] = (
            comparison.get("current", 16),
            comparison.get("new", 16),
            comparison.factor(16),
        )
    return rows


def test_spin_sweep(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1)
    lines = ["spin (us)  current(us)  new(us)  factor   (16 procs)"]
    for spin in sorted(rows):
        cur, new, factor = rows[spin]
        lines.append(f"{spin:>9.0f}  {cur:11.1f}  {new:7.1f}  {factor:6.2f}")
    print_report("Ablation: GA_Sync vs server spin-before-block window",
                 "\n".join(lines))
    for spin, (_cur, _new, factor) in rows.items():
        benchmark.extra_info[f"factor_spin{spin:.0f}"] = round(factor, 2)
    # Spinning removes wake-ups from the convoy: current improves...
    assert rows[1000.0][0] < rows[0.0][0]
    # ...but the structural linear-vs-log gap survives a spin-forever server.
    assert rows[1000.0][2] > 3.0
    # The new barrier barely touches servers; it is spin-insensitive.
    assert abs(rows[1000.0][1] - rows[0.0][1]) < 0.15 * rows[0.0][1]
