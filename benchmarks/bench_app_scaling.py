"""Application-impact bench: the intro's scalability claim, quantified.

Not a figure in the paper, but its stated motivation: "These operations
also impact the scalability of the overall system."  A Global-Arrays
mini-app (compute + remote assembly + GA_Sync + global dot per iteration)
is run under both GA_Sync implementations across system sizes.
"""

from repro.experiments.app_scaling import AppScalingConfig, run_app_scaling

from conftest import print_report


def test_app_scaling(benchmark):
    cfg = AppScalingConfig(iterations=8)
    result = benchmark.pedantic(run_app_scaling, args=(cfg,), rounds=1)
    print_report("Application impact of the optimized GA_Sync", result.render())
    for n in cfg.nprocs_list:
        benchmark.extra_info[f"speedup_{n}"] = round(result.speedup(n), 2)
    # The optimization matters more the larger the system...
    assert result.speedup(16) > result.speedup(2)
    # ...and yields a real application-level win at 16 processes.
    assert result.speedup(16) > 1.15
    # Sync share under the new implementation must be lower everywhere.
    for n in cfg.nprocs_list:
        assert result.data["new"][n][1] < result.data["current"][n][1]
