"""Ablation bench: SMP co-location and zero-message lock handoffs.

Paper §3.2.2: with software queuing locks "locks can be passed using only
one message, or even zero messages, if the next waiting process is on the
same node as the process holding the lock."  This bench fixes 8 processes
and varies how many share a node.
"""

from repro.experiments.ablations import run_smp_handoff
from repro.experiments.lockbench import LockBenchConfig

from conftest import LOCK_ITERATIONS, print_report


def test_smp_handoff(benchmark):
    comparison = benchmark.pedantic(
        run_smp_handoff,
        kwargs=dict(
            nprocs=8,
            ppn_list=(1, 2, 4, 8),
            cfg=LockBenchConfig(iterations=LOCK_ITERATIONS),
        ),
        rounds=1,
    )
    print_report("Ablation: lock round-trip vs processes-per-node (paper 3.2.2)",
                 comparison.render())
    mcs_by_ppn = comparison.values["new"]
    benchmark.extra_info["mcs_ppn1_us"] = round(mcs_by_ppn[1], 1)
    benchmark.extra_info["mcs_ppn8_us"] = round(mcs_by_ppn[8], 1)
    # MCS collapses toward pure shared memory as co-location grows...
    assert mcs_by_ppn[8] < mcs_by_ppn[1] / 4
    # ...and monotonically improves.
    assert mcs_by_ppn[8] < mcs_by_ppn[4] < mcs_by_ppn[2] <= mcs_by_ppn[1]
    # The hybrid keeps visiting the server even fully co-located.
    assert comparison.values["current"][8] > mcs_by_ppn[8]
