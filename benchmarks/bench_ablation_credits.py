"""Ablation bench: sender flow control (send credits).

§3.1.1 distinguishes subsystems by their flow-control acknowledgements.
This bench measures a full assembly epoch — a burst of puts to every peer
followed by the combined ARMCI_Barrier — under different per-(process,
server) credit limits.  Tight credits serialize the burst on completion
acknowledgements, stretching the epoch; the synchronization operation
itself stays cheap (its counters ride on completions, not on send
ordering).
"""

import pytest

from repro.net.params import myrinet2000
from repro.runtime.cluster import ClusterRuntime
from repro.runtime.memory import GlobalAddress

from conftest import print_report

NPROCS = 8
PUTS_PER_PEER = 6
CELLS = 128  # 1 KiB per put
EPOCHS = 10


def epoch_workload(ctx):
    base = ctx.region.alloc_named("credit_epoch", CELLS, initial=0)
    sw = ctx.stopwatch("epoch")
    payload = [1.0] * CELLS
    for _epoch in range(EPOCHS):
        sw.start()
        for peer in range(ctx.nprocs):
            if peer == ctx.rank:
                continue
            for _i in range(PUTS_PER_PEER):
                yield from ctx.armci.put(GlobalAddress(peer, base), payload)
        yield from ctx.armci.barrier()
        sw.stop()
    return sw.mean()


def run_sweep():
    rows = {}
    for credits in (0, 8, 2, 1):
        runtime = ClusterRuntime(
            NPROCS, params=myrinet2000(send_credits=credits)
        )
        per_rank = runtime.run_spmd(epoch_workload)
        rows[credits] = sum(per_rank) / len(per_rank)
    return rows


def test_credit_sweep(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1)
    lines = ["credits  epoch (us)   (0 = unlimited, GM's own link-level flow control)"]
    for credits in sorted(rows):
        lines.append(f"{credits:>7}  {rows[credits]:10.1f}")
    print_report(
        "Ablation: assembly epoch (puts burst + ARMCI_Barrier) vs send credits",
        "\n".join(lines),
    )
    for credits, epoch_us in rows.items():
        benchmark.extra_info[f"epoch_us_credits_{credits}"] = round(epoch_us, 1)
    # Tighter credit limits stretch the epoch monotonically.
    assert rows[1] > rows[2] > rows[8] >= rows[0]
    # With one credit, every put waits a completion round trip.
    assert rows[1] > 2.5 * rows[0]
