"""Figure 9 bench: time to request and acquire a lock.

Paper reference: "the new implementation always outperforms the current
one" — the lock is handed to the next waiter with one message (or zero
intra-node) instead of two server-mediated messages.
"""

import pytest

from repro.experiments.lockbench import (
    LockBenchConfig,
    comparison_from_series,
    run_lock_point,
    run_lock_series,
)

from conftest import LOCK_ITERATIONS, print_report

CFG = LockBenchConfig(iterations=LOCK_ITERATIONS)


@pytest.mark.parametrize("nprocs", [1, 4, 16])
@pytest.mark.parametrize("kind", ["hybrid", "mcs"])
def test_lock_acquire_point(benchmark, kind, nprocs):
    point = benchmark.pedantic(run_lock_point, args=(kind, nprocs, CFG), rounds=1)
    benchmark.extra_info["simulated_us"] = round(point.acquire_us, 1)
    benchmark.extra_info["figure"] = "9"
    assert point.acquire_us > 0


def test_fig9_full_table(benchmark):
    series = benchmark.pedantic(run_lock_series, args=(CFG,), rounds=1)
    comparison = comparison_from_series(
        series, "acquire",
        "Figure 9: time to request and acquire a lock (current vs new)",
    )
    print_report("Figure 9 reproduction (paper: new always wins)",
                 comparison.render())
    benchmark.extra_info["factors"] = {
        str(n): round(f, 2) for n, f in comparison.factors().items()
    }
    # Shape: new wins everywhere except the known N=2 co-location race
    # (documented in EXPERIMENTS.md).
    for n in (1, 4, 8, 16):
        assert comparison.factor(n) > 1.0, f"new must win acquire at {n}"
