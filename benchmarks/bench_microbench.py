"""Substrate-validation bench: the calibration table behind every figure.

Not a paper figure — the microbenchmark table a 2003 cluster paper would
print to validate its platform.  Asserts the invariants the cost model is
calibrated around: short-message latencies in the Myrinet range, linear
bandwidth scaling, logarithmic collectives, and a server that saturates in
the hundreds-of-requests-per-millisecond regime.
"""

from repro.experiments.microbench import run_microbench

from conftest import print_report


def test_microbench(benchmark):
    result = benchmark.pedantic(run_microbench, rounds=1)
    print_report("Substrate microbenchmarks (cost-model validation)",
                 result.render())
    benchmark.extra_info["put8_us"] = round(result.transfer[8][0], 2)
    benchmark.extra_info["fence_rt_us"] = round(result.fence_rt_us, 2)

    # Short-message one-way put injection ~ o_send + api overhead regime.
    assert result.transfer[8][0] < 10.0
    # Get round trip: 2 wire latencies + server + overheads (Myrinet range).
    assert 15.0 < result.transfer[8][1] < 60.0
    # Bandwidth term: 32 KiB get dominated by serialization (~0.004 us/B
    # each way).
    assert result.transfer[32768][1] > 100.0
    # Local ops orders of magnitude cheaper than remote.
    assert result.local_get_us < result.transfer[8][1] / 5
    assert result.rmw_local_us < result.rmw_remote_us / 5
    # Collectives grow logarithmically: 16 procs has 4 rounds vs 1 at 2.
    barrier2 = result.collective[2][0]
    barrier16 = result.collective[16][0]
    assert 2.0 < barrier16 / barrier2 < 6.0
    # Allreduce carries a vector but stays in the same regime as barrier.
    assert result.collective[16][1] < 3 * result.collective[16][0]
    # A single server absorbs hundreds of small requests per millisecond.
    assert 50.0 < result.server_req_per_ms < 2000.0
