"""Reproduction of Buntinas, Saify, Panda & Nieplocha (IPPS 2003):
"Optimizing Synchronization Operations for Remote Memory Communication
Systems".

The package simulates an ARMCI-style one-sided communication library on a
cluster of SMP nodes (deterministic discrete-event simulation, virtual time
in microseconds) and implements both the original and the optimized
synchronization operations the paper studies:

* ``ARMCI_AllFence`` (linear) vs. the combined ``ARMCI_Barrier`` (binary
  exchange) -- :mod:`repro.armci`;
* the hybrid ticket/server lock vs. the MCS software queuing lock --
  :mod:`repro.locks`;
* a Global Arrays layer whose ``GA_Sync`` drives the Figure 7 experiment --
  :mod:`repro.ga`.

Quickstart::

    from repro import ClusterRuntime

    def main(ctx):
        addr = ctx.region.alloc(4, initial=0)
        peer = (ctx.rank + 1) % ctx.nprocs
        yield from ctx.armci.put(ctx.ga(peer, addr), [ctx.rank] * 4)
        yield from ctx.armci.barrier()
        return ctx.region.read_many(addr, 4)

    print(ClusterRuntime(nprocs=4).run_spmd(main))
"""

from .net.params import NetworkParams, gige, myrinet2000, quadrics_like
from .net.topology import Topology
from .runtime.cluster import ClusterRuntime, DeadlockError, simulate
from .runtime.memory import NULL_PTR, GlobalAddress, Region

__version__ = "1.0.0"

__all__ = [
    "ClusterRuntime",
    "DeadlockError",
    "GlobalAddress",
    "NULL_PTR",
    "NetworkParams",
    "Region",
    "Topology",
    "__version__",
    "gige",
    "myrinet2000",
    "quadrics_like",
    "simulate",
]
