"""Fence algorithms (paper §3.1.1).

Two subsystem styles:

* **confirm** (GM): put messages are not acknowledged, so a fence must send
  an explicit confirmation request to the target server and wait for the
  reply.  ``ARMCI_AllFence`` then costs up to ``2(N-1)`` one-way latencies —
  and in practice more, because every process walks the servers in the same
  rank order, convoying at each server in turn.

* **ack** (LAPI/VIA): every put generates a flow-control acknowledgement;
  a fence just waits until the outstanding-ack count for the target node
  drains to zero — no extra messages.

Only nodes with unfenced operations are contacted (ARMCI tracks a per-server
fence flag); a fence to a clean node is free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..net.message import server_endpoint
from ..sim.core import Event
from .requests import FenceRequest

if TYPE_CHECKING:  # pragma: no cover
    from .api import Armci

__all__ = ["fence_node", "allfence_linear"]


def fence_node(armci: "Armci", node: int):
    """Wait for completion of all prior shipped ops targeting ``node``."""
    if node == armci.node:
        # Same-node operations are performed directly and complete
        # synchronously; nothing to fence.
        return
    if armci.fence_mode == "ack":
        yield from armci.wait_acks_drained(node)
        armci.dirty_nodes.discard(node)
        return
    if node not in armci.dirty_nodes:
        return
    reply = Event(armci.env)
    req = FenceRequest(src_rank=armci.rank, reply=reply)
    yield from armci.fabric.send(armci.rank, server_endpoint(node), req)
    yield reply
    armci.dirty_nodes.discard(node)


def allfence_linear(armci: "Armci"):
    """The original ``ARMCI_AllFence``: serial per-server confirmation.

    Walks nodes in ascending order — as the original implementation's
    ``for (p = 0; p < nproc; p++) ARMCI_Fence(p)`` loop does — which is
    precisely what makes concurrent AllFences convoy at each server in turn
    and scale linearly (the behaviour Figure 7 measures).
    """
    for node in range(armci.topology.nnodes):
        yield from fence_node(armci, node)
