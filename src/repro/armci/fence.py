"""Fence algorithms (paper §3.1.1).

Two subsystem styles:

* **confirm** (GM): put messages are not acknowledged, so a fence must send
  an explicit confirmation request to the target server and wait for the
  reply.  ``ARMCI_AllFence`` then costs up to ``2(N-1)`` one-way latencies —
  and in practice more, because every process walks the servers in the same
  rank order, convoying at each server in turn.

* **ack** (LAPI/VIA): every put generates a flow-control acknowledgement;
  a fence just waits until the outstanding-ack count for the target node
  drains to zero — no extra messages.

Only nodes with unfenced operations are contacted (ARMCI tracks a per-server
fence flag); a fence to a clean node is free.

**Watchdog** (``params.watchdog_timeout_us > 0``): a confirm-mode fence
that waits a full window without hearing back retransmits its confirmation
request with exponential backoff — the request or its reply may have been
lost on a faulty network, or the server may sit in a stall window.  After
``params.max_retries`` unanswered rounds the fence raises instead of
hanging.  Retries are counted in ``armci.stats["fence_retries"]``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..net.message import server_endpoint
from ..sim.core import Event, SimulationError
from .requests import FenceRequest

if TYPE_CHECKING:  # pragma: no cover
    from .api import Armci

__all__ = ["fence_node", "allfence_linear"]


def fence_node(armci: "Armci", node: int):
    """Wait for completion of all prior shipped ops targeting ``node``."""
    if node == armci.node:
        # Same-node operations are performed directly and complete
        # synchronously; nothing to fence.
        return
    monitor = armci._monitor
    membership = armci.membership  # None unless a crash fault plan is active
    if membership is not None:
        # Partition tolerance: a minority-side rank queues here until it is
        # back in a majority view.  Immediate no-op under crash-only plans.
        yield from membership.freeze_gate(armci.rank)
    if membership is not None and membership.node_dead(node):
        # Degraded fence: the target machine crashed, so its server will
        # never confirm.  The outstanding operations are written off (the
        # barrier's write-off accounting no longer counts them either) and
        # the fence reports clean.
        armci.dirty_nodes.discard(node)
        armci.stats["fence_writeoffs"] = armci.stats.get("fence_writeoffs", 0) + 1
        if monitor is not None:
            monitor.emit("fence_done", node=node, degraded=True)
        return
    if armci.fence_mode == "ack":
        yield from armci.wait_acks_drained(node)
        armci.dirty_nodes.discard(node)
        if monitor is not None:
            monitor.emit("fence_done", node=node)
        return
    if node not in armci.dirty_nodes:
        return
    watchdog_us = armci.params.watchdog_timeout_us
    if watchdog_us > 0.0:
        yield from _confirm_with_watchdog(armci, node, watchdog_us)
    else:
        reply = armci.env.event()
        req = FenceRequest(src_rank=armci.rank, reply=reply)
        # fabric.send, inlined (fences are a per-sync hot path; the target
        # node is remote here, so the sender pays o_send_us).
        p = armci.params
        if p.o_send_us > 0.0:
            yield armci.env.timeout(p.o_send_us)
        armci.fabric.post(
            armci.rank, server_endpoint(node), req, src_node=armci.node
        )
        yield reply
    armci.dirty_nodes.discard(node)
    if monitor is not None:
        monitor.emit("fence_done", node=node)


def _confirm_with_watchdog(armci: "Armci", node: int, watchdog_us: float):
    """Confirm-mode fence round trip with timeout-driven retransmission.

    Each attempt is a fresh FenceRequest with its own reply event, so a
    straggling response to an earlier attempt is harmless (its event simply
    triggers with nobody waiting).
    """
    p = armci.params
    membership = armci.membership
    attempts = 0
    while True:
        if membership is not None and membership.node_dead(node):
            # The target machine was declared dead while we were retrying;
            # the caller's degraded path would have caught this up front.
            armci.stats["fence_writeoffs"] = (
                armci.stats.get("fence_writeoffs", 0) + 1
            )
            return
        reply = armci.env.event()
        req = FenceRequest(src_rank=armci.rank, reply=reply)
        yield from armci.fabric.send(armci.rank, server_endpoint(node), req)
        backoff = p.retry_backoff ** min(attempts, p.max_retries)
        deadline = armci.env.timeout(watchdog_us * backoff)
        yield reply | deadline
        if reply.triggered:
            return
        attempts += 1
        armci.stats["fence_retries"] = armci.stats.get("fence_retries", 0) + 1
        if attempts > p.max_retries and membership is None:
            raise SimulationError(
                f"fence to node {node} unanswered after {attempts} attempts "
                f"(watchdog {watchdog_us}us, max_retries={p.max_retries})"
            )


def allfence_linear(armci: "Armci"):
    """The original ``ARMCI_AllFence``: serial per-server confirmation.

    Walks nodes in ascending order — as the original implementation's
    ``for (p = 0; p < nproc; p++) ARMCI_Fence(p)`` loop does — which is
    precisely what makes concurrent AllFences convoy at each server in turn
    and scale linearly (the behaviour Figure 7 measures).
    """
    for node in range(armci.topology.nnodes):
        yield from fence_node(armci, node)
