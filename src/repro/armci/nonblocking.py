"""Non-blocking ARMCI operations with explicit completion handles.

ARMCI's implicit non-blocking puts (the paper's default) return as soon as
the message is injected; completion is only observable through fences.
Real ARMCI additionally offers *explicit* handles (``ARMCI_NbPut`` /
``ARMCI_NbGet`` + ``ARMCI_Wait``/``ARMCI_Test``), which let an application
overlap a specific transfer with computation and then wait for just that
transfer.  This module provides that interface on top of the same
request protocol.

A non-blocking *get* ships the request and exposes the reply event; a
non-blocking *put* requests a completion acknowledgement for that specific
operation (this works in both fence modes — the per-op ack rides alongside
the normal accounting, like ARMCI's handle-based completion on GM).
"""

from __future__ import annotations

from typing import Any, List, Optional, TYPE_CHECKING

from ..net.message import server_endpoint
from ..runtime.memory import GlobalAddress, Region
from ..sim.core import Event
from .requests import GetRequest, PutRequest

if TYPE_CHECKING:  # pragma: no cover
    from .api import Armci

__all__ = ["NbHandle", "nb_put", "nb_get"]


class NbHandle:
    """Completion handle for one explicit non-blocking operation."""

    def __init__(self, armci: "Armci", event: Optional[Event], kind: str):
        self.armci = armci
        self._event = event
        #: "put" or "get".
        self.kind = kind
        self._done = event is None
        self._value: Any = None

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return f"<NbHandle {self.kind} {state}>"

    @property
    def done(self) -> bool:
        """Non-blocking completion test (``ARMCI_Test``)."""
        if not self._done and self._event is not None and self._event.processed:
            self._value = self._event.value
            self._done = True
        return self._done

    def wait(self):
        """Sub-generator: block until the operation completes (``ARMCI_Wait``).

        For a get, returns the fetched values; for a put, returns None.
        """
        if self.armci.params.api_call_us > 0.0:
            yield self.armci.env.timeout(self.armci.params.api_call_us)
        if self._event is not None and not self.done:
            self._value = yield self._event
            self._done = True
        return self._value if self.kind == "get" else None


def nb_put(armci: "Armci", dst: GlobalAddress, values) -> Any:
    """Sub-generator: explicit non-blocking put; returns an :class:`NbHandle`.

    Local (same-node) puts complete immediately.  Remote puts request a
    per-operation acknowledgement so the handle can be waited on without a
    full fence.
    """
    values = list(values)
    yield from armci._api()
    p = armci.params
    if not values:
        return NbHandle(armci, None, "put")
    if armci.is_local(dst):
        region = armci.regions[dst.rank]
        cost = p.shm_access_us + len(values) * Region.CELL_BYTES * p.mem_copy_per_byte_us
        yield from armci._shm(cost)
        region.write_many(dst.addr, values)
        armci.stats["puts_local"] += 1
        return NbHandle(armci, None, "put")
    node = armci.topology.node_of(dst.rank)
    yield from armci._take_credit(node)
    # Keep the normal fence accounting AND expose per-op completion.  In ack
    # mode the implicit accounting event doubles as the handle's event (its
    # bookkeeping callback was registered first, so by the time a waiter
    # resumes, the outstanding-ack counter is already settled).
    implicit_ack = armci._account_remote_op(dst.rank, node)
    handle_ev = implicit_ack if implicit_ack is not None else armci.env.event()
    handle_ev = armci._attach_credit_return(node, handle_ev)
    req = PutRequest(
        src_rank=armci.rank, dst_rank=dst.rank, addr=dst.addr,
        values=values, ack=handle_ev,
    )
    armci.stats["puts_remote"] += 1
    yield from armci.fabric.send(
        armci.rank, server_endpoint(node), req,
        payload_bytes=len(values) * Region.CELL_BYTES,
    )
    return NbHandle(armci, handle_ev, "put")


def nb_get(armci: "Armci", src: GlobalAddress, count: int = 1) -> Any:
    """Sub-generator: explicit non-blocking get; returns an :class:`NbHandle`.

    ``handle.wait()`` yields the fetched list of values.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    yield from armci._api()
    p = armci.params
    if armci.is_local(src):
        region = armci.regions[src.rank]
        cost = p.shm_access_us + count * Region.CELL_BYTES * p.mem_copy_per_byte_us
        yield from armci._shm(cost)
        armci.stats["gets_local"] += 1
        handle = NbHandle(armci, None, "get")
        handle._value = region.read_many(src.addr, count)
        return handle
    node = armci.topology.node_of(src.rank)
    yield from armci._take_credit(node)
    reply = armci.env.event()
    reply.callbacks.append(lambda _ev: armci._return_credit(node))
    req = GetRequest(
        src_rank=armci.rank, dst_rank=src.rank, addr=src.addr,
        count=count, reply=reply,
    )
    armci.stats["gets_remote"] += 1
    yield from armci.fabric.send(armci.rank, server_endpoint(node), req)
    return NbHandle(armci, reply, "get")
