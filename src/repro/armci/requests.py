"""Request/response protocol between user processes and server threads.

These dataclasses are the payloads carried by fabric envelopes to
``("srv", node)`` endpoints.  Requests that need a response carry a ``reply``
event; the requester blocks on it and the server triggers it through
:meth:`repro.net.fabric.Fabric.post_reply` (so the response pays the return
path's cost).  Fire-and-forget requests (non-blocking put, accumulate,
unlock) have no reply event — the essence of ARMCI's one-sided progress
rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from ..sim.core import Event

__all__ = [
    "PutRequest",
    "GetRequest",
    "AccRequest",
    "RmwRequest",
    "FenceRequest",
    "LockRequest",
    "UnlockRequest",
    "RMW_OPS",
]

#: Read-modify-write opcodes the server understands.  ``swap_pair`` and
#: ``cas_pair`` are the operations the paper added for (rank, address)
#: global pointers; ``cas`` is the added plain compare&swap.
RMW_OPS = (
    "fetch_add",
    "swap",
    "cas",
    "swap_pair",
    "cas_pair",
    "read_pair",
)


@dataclass(slots=True)
class PutRequest:
    """Non-blocking put: write ``values`` at ``(dst_rank, addr)``.

    ARMCI is optimized for non-contiguous transfers (paper §2): a single
    request may carry multiple ``segments`` — ``(addr, values)`` runs all
    written in one server visit (a strided/vector put).  When ``segments``
    is given, ``addr``/``values`` are ignored.
    """

    src_rank: int
    dst_rank: int
    addr: int = 0
    values: List[Any] = field(default_factory=list)
    segments: Optional[List[Tuple[int, List[Any]]]] = None
    #: In ack-mode subsystems (LAPI/VIA) the server acknowledges completion
    #: by succeeding this event; in GM-style confirm mode it is None.
    ack: Optional[Event] = None
    #: RMCSan operation id (None when no monitor is installed).  Lives on
    #: the request object, so retransmitted envelopes keep the same id.
    san_id: Optional[int] = None

    def total_cells(self) -> int:
        if self.segments is not None:
            return sum(len(vals) for _addr, vals in self.segments)
        return len(self.values)


@dataclass(slots=True)
class GetRequest:
    """Blocking get from ``(dst_rank, addr)``.

    Either a contiguous run of ``count`` cells, or — for ARMCI's
    non-contiguous transfers — a list of ``(addr, count)`` ``segments``
    fetched in one server visit (reply carries the concatenated values).
    """

    src_rank: int
    dst_rank: int
    addr: int = 0
    count: int = 0
    segments: Optional[List[Tuple[int, int]]] = None
    reply: Event = field(repr=False, default=None)  # type: ignore[assignment]
    #: RMCSan operation id (None when no monitor is installed).
    san_id: Optional[int] = None

    def total_cells(self) -> int:
        if self.segments is not None:
            return sum(count for _addr, count in self.segments)
        return self.count


@dataclass(slots=True)
class AccRequest:
    """Atomic accumulate: ``mem[addr+i] += scale * values[i]``."""

    src_rank: int
    dst_rank: int
    addr: int
    values: List[Any]
    scale: Any = 1
    ack: Optional[Event] = None
    #: RMCSan operation id (None when no monitor is installed).
    san_id: Optional[int] = None


@dataclass(slots=True)
class RmwRequest:
    """Atomic read-modify-write executed by the server on local memory."""

    src_rank: int
    dst_rank: int
    addr: int
    op: str
    args: Tuple[Any, ...] = ()
    reply: Event = field(repr=False, default=None)  # type: ignore[assignment]
    #: RMCSan operation id (None when no monitor is installed).
    san_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.op not in RMW_OPS:
            raise ValueError(f"unknown rmw op {self.op!r}; known: {RMW_OPS}")


@dataclass(slots=True)
class FenceRequest:
    """GM-style fence confirmation request (paper §3.1.1).

    The server replies once all previously received memory operations from
    ``src_rank`` have completed; with in-order delivery, FIFO request
    processing makes "when this request is processed" exactly that point.
    """

    src_rank: int
    reply: Event = field(repr=False, default=None)  # type: ignore[assignment]


@dataclass(slots=True)
class LockRequest:
    """Hybrid-algorithm remote lock request (server takes a ticket for us)."""

    src_rank: int
    #: Rank owning the lock's memory (must live on the server's node).
    home_rank: int
    #: Base address of the [ticket, counter] cell pair in the home region.
    base_addr: int
    reply: Event = field(repr=False, default=None)  # type: ignore[assignment]


@dataclass(slots=True)
class UnlockRequest:
    """Hybrid-algorithm unlock: server increments counter, grants next.

    Fire-and-forget — the paper notes the releasing process "simply has to
    initiate sending a message to the server and need not wait for a reply".
    """

    src_rank: int
    home_rank: int
    base_addr: int
