"""Per-operation latency profiling for the ARMCI client.

ARMCI ships with a profiling build (``ARMCI_PROFILE``) that histograms
every operation's latency; this module is the equivalent for the
simulation.  Enable per-process with :func:`install`; every public
operation then records its virtual duration, and :class:`OpProfile`
renders the summary table (count / mean / p50 / p95 / max per op type).

The profiler wraps the public sub-generator methods, so it composes with
everything else (locks, GA, experiments) without touching their code.

Besides the data-movement operations, the percentile table covers the
synchronization surface:

* ``notify`` / ``notify_wait`` — the pairwise producer/consumer
  primitives; ``notify_wait`` samples include the *waiting* time, so its
  p95/max columns directly expose consumer stall (a large gap between p50
  and p95 usually means the producer's data puts, not the notify itself,
  are the bottleneck).
* ``lock.acquire:<name>`` / ``lock.release:<name>`` — per-lock handle
  timings, opt-in via :func:`profile_lock`; acquire samples include queue
  wait, so under contention the p95 column approximates the lock hand-off
  chain depth times the per-handoff cost (Figures 9/10's metrics, as
  percentiles instead of means).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["OpProfile", "install", "profile_lock", "PROFILED_OPS"]

#: Public Armci sub-generator methods wrapped by the profiler.
PROFILED_OPS = (
    "put",
    "put_segments",
    "get",
    "get_segments",
    "acc",
    "rmw",
    "fence",
    "allfence",
    "barrier",
    "load",
    "store",
    "load_pair",
    "store_pair",
    "notify",
    "notify_wait",
)


def _percentile(samples: List[float], q: float) -> float:
    if not (0.0 <= q <= 1.0):
        raise ValueError(f"percentile q must be in [0, 1], got {q}")
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    idx = min(int(q * (len(ordered) - 1) + 0.5), len(ordered) - 1)
    return ordered[idx]


@dataclass
class OpProfile:
    """Collected latency samples per operation type (one process)."""

    rank: int
    samples: Dict[str, List[float]] = field(default_factory=dict)

    def record(self, op: str, duration_us: float) -> None:
        self.samples.setdefault(op, []).append(duration_us)

    def count(self, op: str) -> int:
        return len(self.samples.get(op, []))

    def mean(self, op: str) -> float:
        values = self.samples.get(op, [])
        return sum(values) / len(values) if values else float("nan")

    def p50(self, op: str) -> float:
        return _percentile(self.samples.get(op, []), 0.50)

    def p95(self, op: str) -> float:
        return _percentile(self.samples.get(op, []), 0.95)

    def max(self, op: str) -> float:
        values = self.samples.get(op, [])
        return max(values) if values else float("nan")

    def merge(self, other: "OpProfile") -> "OpProfile":
        """Pool another process's samples into this profile (for reports)."""
        for op, values in other.samples.items():
            self.samples.setdefault(op, []).extend(values)
        return self

    def render(self) -> str:
        from ..experiments.common import format_table

        rows = [["op", "count", "mean (us)", "p50", "p95", "max"]]
        for op in sorted(self.samples):
            rows.append(
                [
                    op,
                    str(self.count(op)),
                    f"{self.mean(op):.2f}",
                    f"{self.p50(op):.2f}",
                    f"{self.p95(op):.2f}",
                    f"{self.max(op):.2f}",
                ]
            )
        return f"== ARMCI op profile (rank {self.rank}) ==\n" + format_table(rows)


def install(armci: Any) -> OpProfile:
    """Wrap ``armci``'s public operations with latency recording.

    Returns the :class:`OpProfile` receiving the samples.  Idempotent per
    client: installing twice returns the existing profile.
    """
    existing = getattr(armci, "_op_profile", None)
    if existing is not None:
        return existing
    profile = OpProfile(rank=armci.rank)
    armci._op_profile = profile
    env = armci.env

    def wrap(name: str):
        original = getattr(armci, name)

        def profiled(*args: Any, **kwargs: Any):
            start = env.now
            result = yield from original(*args, **kwargs)
            profile.record(name, env.now - start)
            return result

        profiled.__name__ = f"profiled_{name}"
        profiled.__doc__ = original.__doc__
        setattr(armci, name, profiled)

    for name in PROFILED_OPS:
        wrap(name)
    return profile


def profile_lock(lock: Any, profile: OpProfile) -> Any:
    """Record a lock handle's acquire/release latencies into ``profile``.

    Samples land under ``lock.acquire:<name>`` / ``lock.release:<name>``
    so several handles stay distinguishable in one table.  Idempotent per
    handle; returns the lock.
    """
    if getattr(lock, "_op_profile", None) is profile:
        return lock
    lock._op_profile = profile
    env = lock.env

    def wrap(name: str):
        original = getattr(lock, name)
        key = f"lock.{name}:{lock.name}"

        def profiled(*args: Any, **kwargs: Any):
            start = env.now
            result = yield from original(*args, **kwargs)
            profile.record(key, env.now - start)
            return result

        profiled.__name__ = f"profiled_{name}"
        profiled.__doc__ = original.__doc__
        setattr(lock, name, profiled)

    for name in ("acquire", "release"):
        wrap(name)
    return lock
