"""Per-process ARMCI client API.

:class:`Armci` is the facade a simulated user process programs against.  It
follows ARMCI's rules:

* remote memory is addressed by ``(rank, address)`` tuples
  (:class:`~repro.runtime.memory.GlobalAddress`);
* **local fast path** — get/put/atomic operations on memory hosted on the
  caller's own SMP node are performed directly on the shared region (no
  server involvement, shared-memory costs only);
* remote operations are shipped to the target node's server thread; puts and
  accumulates are **non-blocking and one-sided** (they return once injected;
  completion is observed through fences), gets and read-modify-writes are
  blocking round trips;
* fences come in the two flavors of §3.1.1 — ``confirm`` (GM: a fence sends
  an explicit confirmation request) and ``ack`` (LAPI/VIA: every put is
  acknowledged and a fence just drains outstanding acks);
* :meth:`allfence` is the paper's *original* linear algorithm (contact every
  server in rank order — the convoy this produces is what the new operation
  removes); :meth:`barrier` is the paper's new combined fence+barrier.

All public operations are sub-generators (``yield from armci.put(...)``),
and each charges the configured per-call library overhead.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..net.fabric import Fabric
from ..net.message import server_endpoint
from ..net.params import SMALL_MSG_BYTES, NetworkParams
from ..net.topology import Topology
from ..runtime import atomics
from ..runtime.memory import GlobalAddress, Region
from ..sim.core import Environment, Event
from ..sim.primitives import Broadcast
from . import barrier as barrier_mod
from . import fence as fence_mod
from .requests import AccRequest, GetRequest, PutRequest, RmwRequest

__all__ = ["Armci", "FENCE_MODES"]

#: Supported fence subsystems: ``confirm`` models GM (no put acks; fences
#: request explicit confirmation), ``ack`` models LAPI/VIA (every put is
#: acknowledged for flow control; fences wait for acks).
FENCE_MODES = ("confirm", "ack")


class Armci:
    """ARMCI client endpoint for one user process."""

    def __init__(
        self,
        env: Environment,
        rank: int,
        topology: Topology,
        fabric: Fabric,
        params: NetworkParams,
        regions: Dict[int, Region],
        servers: Dict[int, Any],
        comm: Optional[Any] = None,
        fence_mode: str = "confirm",
    ):
        if fence_mode not in FENCE_MODES:
            raise ValueError(
                f"fence_mode must be one of {FENCE_MODES}, got {fence_mode!r}"
            )
        self.env = env
        self.rank = rank
        self.topology = topology
        self.fabric = fabric
        self.params = params
        self.regions = regions
        self.servers = servers
        #: The message-passing communicator (needed by :meth:`barrier`).
        self.comm = comm
        self.fence_mode = fence_mode
        self.node = topology.node_of(rank)
        self.server = servers[self.node]
        nprocs = topology.nprocs
        #: Cumulative count of server-shipped memory ops per target rank —
        #: the paper's ``op_init[]`` array.
        self.op_init: List[int] = [0] * nprocs
        #: Nodes with ops issued since the last fence covering them.
        self._dirty_nodes: set = set()
        #: Ack-mode: outstanding unacknowledged ops per node.
        self._outstanding: Dict[int, int] = {}
        self._ack_signal = Broadcast(env, name=f"armci[{rank}].acks")
        #: Cumulative notify counts sent per peer (see armci.collective).
        self._notify_sent: Dict[int, int] = {}
        #: GM-style send credits per destination node (params.send_credits).
        self._credits: Dict[int, Any] = {}
        #: RMCSan monitor (installed on env before the runtime was wired);
        #: None keeps every operation on the uninstrumented fast path.
        self._monitor = getattr(env, "_sync_monitor", None)
        #: Client-side barrier epoch counter for RMCSan (SPMD programs call
        #: barriers collectively, so equal counts identify the same epoch).
        self._san_barrier_epoch = 0
        #: Crash-stop membership service (None unless the fault plan has
        #: ProcessCrash events); None keeps barriers/fences construct-free.
        self.membership = getattr(fabric, "_membership", None)
        #: Collective-instance counter for crash-aware barriers (SPMD call
        #: order makes equal counts identify the same instance across ranks).
        self._chaos_barrier_seq = 0
        #: Extra barrier_exit event data from the last resilient barrier.
        self._chaos_barrier_info: Optional[Dict[str, int]] = None
        #: NIC-offloaded barrier epoch counter (same SPMD-order contract).
        self._nic_barrier_seq = 0
        #: Topology-aware barrier sequence (kary/dissemination/twolevel);
        #: one bump per barrier keeps successive barriers' tags distinct
        #: across every rank regardless of its role in the algorithm.
        self._topo_barrier_seq = 0
        #: Operation counters (diagnostics / tests).
        self.stats: Dict[str, int] = {
            "puts_local": 0,
            "puts_remote": 0,
            "gets_local": 0,
            "gets_remote": 0,
            "accs_local": 0,
            "accs_remote": 0,
            "rmws_local": 0,
            "rmws_remote": 0,
            "fences": 0,
            "allfences": 0,
            "barriers": 0,
            #: Watchdog activity (stays 0 with watchdog_timeout_us == 0).
            "fence_retries": 0,
            "barrier_fallbacks": 0,
        }

    def __repr__(self) -> str:
        return f"<Armci rank={self.rank} node={self.node} mode={self.fence_mode}>"

    # -- helpers ---------------------------------------------------------------

    @property
    def region(self) -> Region:
        """The caller's own memory region."""
        return self.regions[self.rank]

    @property
    def nprocs(self) -> int:
        return self.topology.nprocs

    def is_local(self, ga: GlobalAddress) -> bool:
        """True if ``ga`` is on the caller's node (direct-access eligible)."""
        return self.topology.node_of(ga.rank) == self.node

    def _api(self):
        if self.params.api_call_us > 0.0:
            yield self.env.timeout(self.params.api_call_us)

    def _shm(self, cost: float):
        if cost > 0.0:
            yield self.env.timeout(cost)

    def _credit_pool(self, node: int):
        from ..sim.primitives import Resource

        pool = self._credits.get(node)
        if pool is None:
            pool = Resource(
                self.env, capacity=self.params.send_credits,
                name=f"credits[{self.rank}->{node}]",
            )
            self._credits[node] = pool
        return pool

    def _take_credit(self, node: int):
        """Sub-generator: block until a send credit for ``node`` is free.

        Models GM/LAPI/VIA sender-side flow control (§3.1.1): a limited
        number of outstanding requests per (process, server) pair; the
        completion acknowledgement returns the token.
        """
        if self.params.send_credits <= 0:
            return
        pool = self._credit_pool(node)
        if pool.in_use >= pool.capacity:
            self.stats["credit_stalls"] = self.stats.get("credit_stalls", 0) + 1
        yield pool.acquire()

    def _return_credit(self, node: int) -> None:
        if self.params.send_credits <= 0:
            return
        self._credit_pool(node).release()

    def _credit_returning_event(self, node: int) -> Event:
        """An event whose completion returns a send credit."""
        ev = self.env.event()
        ev.callbacks.append(lambda _ev: self._return_credit(node))
        return ev

    def _attach_credit_return(
        self, node: int, ack: Optional[Event]
    ) -> Optional[Event]:
        """Ensure a write op's completion returns its send credit.

        Reuses the fence-mode ack when there is one; otherwise (confirm
        mode with credits enabled) creates a dedicated flow-control ack.
        """
        if self.params.send_credits <= 0:
            return ack
        if ack is not None:
            ack.callbacks.append(lambda _ev: self._return_credit(node))
            return ack
        return self._credit_returning_event(node)

    def _san_issue(self, op: str, req, dst_rank: int, node: int) -> None:
        """RMCSan: tag a shipped request and record its issue point."""
        mon = self._monitor
        if mon is None:
            return
        req.san_id = mon.next_op_id()
        mon.emit("issue", op=op, op_id=req.san_id, dst_rank=dst_rank, node=node)

    def _san_complete(self, req) -> None:
        """RMCSan: record the blocking completion (reply received)."""
        mon = self._monitor
        if mon is not None and req.san_id is not None:
            mon.emit("complete", op_id=req.san_id)

    def _account_remote_op(self, dst_rank: int, node: int) -> Optional[Event]:
        """op_init / dirty / ack bookkeeping for a shipped write op."""
        self.op_init[dst_rank] += 1
        self._dirty_nodes.add(node)
        if self.fence_mode != "ack":
            return None
        ack = self.env.event()
        self._outstanding[node] = self._outstanding.get(node, 0) + 1

        def _on_ack(_ev: Event) -> None:
            self._outstanding[node] -= 1
            if self._outstanding[node] == 0:
                self._ack_signal.fire(node)

        ack.callbacks.append(_on_ack)
        return ack

    # -- data movement -----------------------------------------------------------

    def put(self, dst: GlobalAddress, values: Sequence[Any]):
        """Non-blocking put of ``values`` starting at ``dst``.

        Returns once the operation is injected (locally complete); use
        :meth:`fence`/:meth:`allfence`/:meth:`barrier` for remote completion.
        """
        values = list(values)
        if not values:
            return
        yield from self._api()
        p = self.params
        if self.is_local(dst):
            region = self.regions[dst.rank]
            cost = p.shm_access_us + len(values) * Region.CELL_BYTES * p.mem_copy_per_byte_us
            yield from self._shm(cost)
            region.write_many(dst.addr, values)
            self.stats["puts_local"] += 1
            return
        node = self.topology.node_of(dst.rank)
        yield from self._take_credit(node)
        ack = self._attach_credit_return(node, self._account_remote_op(dst.rank, node))
        req = PutRequest(
            src_rank=self.rank, dst_rank=dst.rank, addr=dst.addr, values=values, ack=ack
        )
        self._san_issue("put", req, dst.rank, node)
        self.stats["puts_remote"] += 1
        yield from self.fabric.send(
            self.rank,
            server_endpoint(node),
            req,
            payload_bytes=len(values) * Region.CELL_BYTES,
        )

    def put_segments(
        self, dst_rank: int, segments: List[Tuple[int, Sequence[Any]]]
    ):
        """Vector (non-contiguous) put: several ``(addr, values)`` runs in one op.

        This is ARMCI's strided-transfer strength — one message, one server
        visit, regardless of the number of runs.

        Ownership of the per-segment value lists transfers to the call (the
        request ships them as-is; callers build fresh lists, so a defensive
        copy here would only burn the hot path).
        """
        # One pass: normalize non-list values, drop empty runs, and total
        # the cells (vector puts dominate the GA workloads).
        norm = []
        total = 0
        for addr, vals in segments:
            if type(vals) is not list:
                vals = list(vals)
            if vals:
                norm.append((addr, vals))
                total += len(vals)
        segments = norm
        if not segments:
            return
        # The paths below are the _api/_shm/_take_credit/fabric.send helpers
        # inlined: every delegated sub-generator is one more frame each
        # resume must traverse.
        env = self.env
        p = self.params
        if p.api_call_us > 0.0:
            yield env.timeout(p.api_call_us)
        node = self.topology.node_of(dst_rank)
        if node == self.node:
            region = self.regions[dst_rank]
            cost = p.shm_access_us + total * Region.CELL_BYTES * p.mem_copy_per_byte_us
            if cost > 0.0:
                yield env.timeout(cost)
            for addr, vals in segments:
                region.write_many(addr, vals)
            self.stats["puts_local"] += 1
            return
        if p.send_credits > 0:
            yield from self._take_credit(node)
        ack = self._attach_credit_return(node, self._account_remote_op(dst_rank, node))
        req = PutRequest(
            src_rank=self.rank, dst_rank=dst_rank, segments=segments, ack=ack
        )
        self._san_issue("put", req, dst_rank, node)
        self.stats["puts_remote"] += 1
        if p.o_send_us > 0.0:
            yield env.timeout(p.o_send_us)
        self.fabric.post(
            self.rank,
            server_endpoint(node),
            req,
            payload_bytes=total * Region.CELL_BYTES,
            src_node=self.node,
        )

    def get(self, src: GlobalAddress, count: int = 1):
        """Blocking get of ``count`` cells; returns the list of values."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        yield from self._api()
        p = self.params
        if self.is_local(src):
            region = self.regions[src.rank]
            cost = p.shm_access_us + count * Region.CELL_BYTES * p.mem_copy_per_byte_us
            yield from self._shm(cost)
            self.stats["gets_local"] += 1
            return region.read_many(src.addr, count)
        node = self.topology.node_of(src.rank)
        yield from self._take_credit(node)
        reply = self.env.event()
        req = GetRequest(
            src_rank=self.rank, dst_rank=src.rank, addr=src.addr, count=count, reply=reply
        )
        self._san_issue("get", req, src.rank, node)
        self.stats["gets_remote"] += 1
        yield from self.fabric.send(self.rank, server_endpoint(node), req)
        values = yield reply
        self._san_complete(req)
        self._return_credit(node)
        return values

    def get_segments(self, src_rank: int, segments: List[Tuple[int, int]]):
        """Vector (non-contiguous) get: several ``(addr, count)`` runs in one op.

        Returns the concatenated values in segment order.
        """
        segments = [(addr, count) for addr, count in segments if count > 0]
        if not segments:
            return []
        yield from self._api()
        p = self.params
        total = sum(count for _a, count in segments)
        if self.topology.node_of(src_rank) == self.node:
            region = self.regions[src_rank]
            cost = p.shm_access_us + total * Region.CELL_BYTES * p.mem_copy_per_byte_us
            yield from self._shm(cost)
            self.stats["gets_local"] += 1
            values: List[Any] = []
            for addr, count in segments:
                values.extend(region.read_many(addr, count))
            return values
        node = self.topology.node_of(src_rank)
        yield from self._take_credit(node)
        reply = self.env.event()
        req = GetRequest(
            src_rank=self.rank, dst_rank=src_rank, segments=segments, reply=reply
        )
        self._san_issue("get", req, src_rank, node)
        self.stats["gets_remote"] += 1
        yield from self.fabric.send(self.rank, server_endpoint(node), req)
        values = yield reply
        self._san_complete(req)
        self._return_credit(node)
        return values

    def acc(self, dst: GlobalAddress, values: Sequence[Any], scale: Any = 1):
        """Non-blocking atomic accumulate: ``mem[dst+i] += scale * values[i]``."""
        values = list(values)
        if not values:
            return
        yield from self._api()
        p = self.params
        if self.is_local(dst):
            region = self.regions[dst.rank]
            cost = (
                p.shm_atomic_us
                + 2 * len(values) * Region.CELL_BYTES * p.mem_copy_per_byte_us
            )
            yield from self._shm(cost)
            atomics.accumulate(region, dst.addr, values, scale)
            self.stats["accs_local"] += 1
            return
        node = self.topology.node_of(dst.rank)
        yield from self._take_credit(node)
        ack = self._attach_credit_return(node, self._account_remote_op(dst.rank, node))
        req = AccRequest(
            src_rank=self.rank,
            dst_rank=dst.rank,
            addr=dst.addr,
            values=values,
            scale=scale,
            ack=ack,
        )
        self._san_issue("acc", req, dst.rank, node)
        self.stats["accs_remote"] += 1
        yield from self.fabric.send(
            self.rank,
            server_endpoint(node),
            req,
            payload_bytes=len(values) * Region.CELL_BYTES,
        )

    # -- atomics -------------------------------------------------------------------

    def rmw(self, op: str, dst: GlobalAddress, *args: Any):
        """Blocking atomic read-modify-write at ``dst``; returns the result.

        ``op`` is one of :data:`repro.armci.requests.RMW_OPS`; the pair
        operations and ``cas`` are the ones the paper added for the MCS
        lock's global pointers.
        """
        yield from self._api()
        p = self.params
        if self.is_local(dst):
            region = self.regions[dst.rank]
            yield from self._shm(p.shm_atomic_us)
            self.stats["rmws_local"] += 1
            return _apply_rmw(region, dst.addr, op, args)
        node = self.topology.node_of(dst.rank)
        yield from self._take_credit(node)
        reply = self.env.event()
        req = RmwRequest(
            src_rank=self.rank, dst_rank=dst.rank, addr=dst.addr, op=op, args=args, reply=reply
        )
        self._san_issue("rmw", req, dst.rank, node)
        self.stats["rmws_remote"] += 1
        yield from self.fabric.send(self.rank, server_endpoint(node), req)
        result = yield reply
        self._san_complete(req)
        self._return_credit(node)
        return result

    # -- raw same-node access (lock fast paths) -------------------------------------

    def load(self, ga: GlobalAddress):
        """Direct same-node read of one cell (asserts locality)."""
        if not self.is_local(ga):
            raise ValueError(f"load of non-local address {ga}")
        yield from self._shm(self.params.shm_access_us)
        return self.regions[ga.rank].read(ga.addr)

    def store(self, ga: GlobalAddress, value: Any):
        """Direct same-node write of one cell (asserts locality)."""
        if not self.is_local(ga):
            raise ValueError(f"store to non-local address {ga}")
        yield from self._shm(self.params.shm_access_us)
        self.regions[ga.rank].write(ga.addr, value)

    def load_pair(self, ga: GlobalAddress):
        """Read a (long, long) pair — direct if same-node, atomic rmw if remote."""
        if self.is_local(ga):
            yield from self._shm(self.params.shm_access_us)
            region = self.regions[ga.rank]
            return (region.read(ga.addr), region.read(ga.addr + 1))
        result = yield from self.rmw("read_pair", ga)
        return tuple(result)

    def store_pair(self, ga: GlobalAddress, pair):
        """Write a (long, long) pair — direct if same-node, one put if remote."""
        first, second = pair
        if self.is_local(ga):
            yield from self._shm(self.params.shm_access_us)
            region = self.regions[ga.rank]
            region.write(ga.addr, first)
            region.write(ga.addr + 1, second)
            return
        yield from self.put(ga, [first, second])

    # -- synchronization -------------------------------------------------------------

    def fence(self, rank: int):
        """ARMCI_Fence: wait until all prior puts to ``rank``'s server completed."""
        yield from self._api()
        self.stats["fences"] += 1
        yield from fence_mod.fence_node(self, self.topology.node_of(rank))

    def allfence(self):
        """ARMCI_AllFence: the paper's original linear global fence."""
        yield from self._api()
        self.stats["allfences"] += 1
        yield from fence_mod.allfence_linear(self)

    def barrier(self, algorithm: str = "exchange"):
        """ARMCI_Barrier: the paper's combined global fence + barrier.

        ``algorithm`` selects between the new 3-stage binary-exchange
        operation (``"exchange"``), the original ``allfence`` + MPI barrier
        (``"linear"``), or the paper's suggested programmer-selectable
        ``"auto"`` which picks linear when puts touched fewer than
        ``log2(N)/2`` servers (§3.1.2's crossover note).
        """
        yield from self._api()
        self.stats["barriers"] += 1
        yield from barrier_mod.armci_barrier(self, algorithm=algorithm)

    # -- extended API (explicit non-blocking, strided, collective, notify) -----------

    def nb_put(self, dst: GlobalAddress, values):
        """Explicit non-blocking put; returns an ``NbHandle`` (ARMCI_NbPut)."""
        from . import nonblocking

        handle = yield from nonblocking.nb_put(self, dst, values)
        return handle

    def nb_get(self, src: GlobalAddress, count: int = 1):
        """Explicit non-blocking get; returns an ``NbHandle`` (ARMCI_NbGet)."""
        from . import nonblocking

        handle = yield from nonblocking.nb_get(self, src, count)
        return handle

    def put_strided(self, dst_rank, base_addr, strides, counts, values):
        """Strided put (ARMCI_PutS): one message for the whole patch."""
        from . import strided

        yield from strided.put_strided(
            self, dst_rank, base_addr, strides, counts, values
        )

    def get_strided(self, src_rank, base_addr, strides, counts):
        """Strided get (ARMCI_GetS); returns cells in run order."""
        from . import strided

        values = yield from strided.get_strided(
            self, src_rank, base_addr, strides, counts
        )
        return values

    def malloc(self, count: int, key: str):
        """Collective allocation (ARMCI_Malloc); returns the address table."""
        from . import collective

        table = yield from collective.armci_malloc(self, count, key)
        return table

    def notify(self, peer: int):
        """Pairwise notify: bump this rank's counter at ``peer``."""
        from . import collective

        yield from collective.notify(self, peer)

    def notify_wait(self, peer: int, count: int = 1):
        """Block until ``peer`` has notified ``count`` times (cumulative)."""
        from . import collective

        yield from collective.notify_wait(self, peer, count)

    # -- internals shared with fence/barrier modules ----------------------------------

    @property
    def dirty_nodes(self) -> set:
        return self._dirty_nodes

    def outstanding_acks(self, node: int) -> int:
        return self._outstanding.get(node, 0)

    def wait_acks_drained(self, node: int):
        """Ack-mode: block until no unacknowledged ops remain for ``node``."""
        while self._outstanding.get(node, 0) > 0:
            yield self._ack_signal.wait()


def _apply_rmw(region: Region, addr: int, op: str, args: Tuple[Any, ...]):
    """Execute an rmw opcode directly on a region (same-node fast path)."""
    if op == "fetch_add":
        return atomics.fetch_and_add(region, addr, *args)
    if op == "swap":
        return atomics.swap(region, addr, *args)
    if op == "cas":
        return atomics.compare_and_swap(region, addr, *args)
    if op == "swap_pair":
        return atomics.swap_pair(region, addr, *args)
    if op == "cas_pair":
        return atomics.compare_and_swap_pair(region, addr, *args)
    if op == "read_pair":
        return atomics.read_pair(region, addr)
    raise ValueError(f"unknown rmw op {op!r}")
