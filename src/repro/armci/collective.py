"""Collective ARMCI memory management and pairwise notify/wait.

* :func:`armci_malloc` — the moral ``ARMCI_Malloc``: a collective that
  allocates ``count`` cells in *every* process's region and returns the
  full table of global addresses (every rank gets the same table), so
  processes can address each other's slabs.
* :func:`notify` / :func:`notify_wait` — ARMCI's pairwise point-to-point
  synchronization: ``notify(p)`` bumps a counter in *p*'s memory with an
  ordinary (fence-covered) put; ``notify_wait(p, n)`` polls until *p* has
  notified at least ``n`` times.  Built entirely from one-sided puts and
  local polling — no two-sided messages — which is how ARMCI layers
  producer/consumer patterns over pure RMA.
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

from ..mp import collectives
from ..runtime.memory import GlobalAddress

if TYPE_CHECKING:  # pragma: no cover
    from .api import Armci

__all__ = ["armci_malloc", "notify", "notify_wait"]


def armci_malloc(armci: "Armci", count: int, key: str) -> List[GlobalAddress]:
    """Sub-generator: collective allocation of ``count`` cells per process.

    ``key`` names the allocation (SPMD-stable); returns
    ``[GlobalAddress(rank, base_rank) for rank in range(nprocs)]`` on every
    caller.  Must be called by all ranks (it allgathers the bases).
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if armci.comm is None:
        raise RuntimeError("armci_malloc requires a communicator")
    yield from armci._api()
    my_base = armci.region.alloc_named(f"malloc:{key}", count, initial=0)
    bases = yield from collectives.allgather(armci.comm, my_base)
    return [GlobalAddress(rank, base) for rank, base in enumerate(bases)]


def _notify_cell(armci: "Armci", owner_rank: int, peer_rank: int) -> int:
    """Address (in owner's region) of the peer->owner notification counter."""
    region = armci.regions[owner_rank]
    base = region.alloc_named(f"notify:{peer_rank}", 1, initial=0)
    if armci._monitor is not None:
        # Notify counters are release/acquire cells: the waiter's read
        # synchronizes with the notifier's (server-applied) bump.
        armci._monitor.mark_sync(region, base)
    return base


def notify(armci: "Armci", peer: int):
    """Sub-generator: bump this rank's notification counter at ``peer``.

    Completion of all *data* puts issued before the notify is guaranteed to
    the waiter because GM-style delivery and FIFO server processing apply
    the data before the counter bump (the standard ARMCI notify contract);
    on ack-mode subsystems we fence first to get the same guarantee.
    """
    if armci.fence_mode == "ack":
        yield from armci.fence(peer)
    cell = _notify_cell(armci, peer, armci.rank)
    current = armci._notify_sent.get(peer, 0) + 1
    armci._notify_sent[peer] = current
    yield from armci.put(GlobalAddress(peer, cell), [current])


def notify_wait(armci: "Armci", peer: int, count: int = 1):
    """Sub-generator: block until ``peer`` has notified ``count`` times
    (cumulative over the process lifetime)."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    cell = _notify_cell(armci, armci.rank, peer)
    region = armci.region
    yield from region.wait_until(
        cell, lambda v: v >= count, poll_detect_us=armci.params.poll_detect_us
    )
