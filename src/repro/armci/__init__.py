"""ARMCI core: client API, request protocol, fence and barrier algorithms."""

from .api import FENCE_MODES, Armci
from .barrier import ALGORITHMS as BARRIER_ALGORITHMS
from .nonblocking import NbHandle
from .strided import stride_runs
from .requests import (
    AccRequest,
    FenceRequest,
    GetRequest,
    LockRequest,
    PutRequest,
    RmwRequest,
    UnlockRequest,
    RMW_OPS,
)

__all__ = [
    "Armci",
    "AccRequest",
    "BARRIER_ALGORITHMS",
    "FENCE_MODES",
    "FenceRequest",
    "GetRequest",
    "LockRequest",
    "NbHandle",
    "stride_runs",
    "PutRequest",
    "RMW_OPS",
    "RmwRequest",
    "UnlockRequest",
]
