"""The paper's new ``ARMCI_Barrier()`` — combined global fence + barrier.

Semantically equivalent to ``ARMCI_AllFence()`` followed by
``MPI_Barrier()``, but executed in three stages (paper §3.1.2):

1. **Distribute the issue counts.**  Every process keeps ``op_init[i]`` =
   number of memory operations it shipped to process *i*'s server.  A
   binary-exchange elementwise-sum (Figure 2; recursive-doubling allreduce)
   leaves each process *i* holding the system-wide total of operations
   destined for it — ``log2(N)`` overlapped exchange phases.

2. **Wait for local completion.**  Each process polls its server thread's
   shared-memory ``op_done`` counter until it reaches the stage-1 total for
   its own slot.  The server increments the counter as it completes
   incoming requests; no messages are exchanged.

3. **Barrier synchronization.**  A binary-exchange barrier (another
   ``log2(N)`` phases) ensures no process continues until every process
   passed stage 2 — i.e. until *all* puts completed at *all* servers.

Total communication: ``2 * log2(N)`` one-way latencies, versus the original
``2(N-1) + log2(N)``.

Both counters are *cumulative* over the process lifetime, so repeated
barriers need no reset protocol and the comparison in stage 2 is monotone
(``op_done >= target``).

With ``params.watchdog_timeout_us > 0`` the stage-2 wait is guarded: if the
``op_done`` counter makes no progress for a full window (stalled server,
or a lost operation on an unreliable network), the rank degrades to the
conservative AllFence confirmation path and counts the fallback in
``armci.stats["barrier_fallbacks"]`` — liveness over latency (see
``docs/fault_model.md``).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from ..mp import collectives
from ..net.params import MSG_HEADER_BYTES, SMALL_MSG_BYTES
from ..sim.core import Event

if TYPE_CHECKING:  # pragma: no cover
    from .api import Armci

__all__ = [
    "armci_barrier",
    "ALGORITHMS",
    "estimate_linear_us",
    "estimate_exchange_us",
    "estimate_nic_us",
    "estimate_kary_us",
    "estimate_dissemination_us",
    "estimate_twolevel_us",
    "predicted_crossover_targets",
]

ALGORITHMS = (
    "exchange", "linear", "auto", "nic", "kary", "dissemination", "twolevel"
)


def armci_barrier(armci: "Armci", algorithm: str = "exchange"):
    """Run the combined fence+barrier using the selected algorithm.

    ``"exchange"`` is the paper's new operation; ``"linear"`` is the
    original AllFence + message-passing barrier; ``"nic"`` offloads all
    three stages to the programmable NIC co-processors (see
    :mod:`repro.nic.engine`); ``"kary"``, ``"dissemination"``, and
    ``"twolevel"`` are the topology-aware host algorithms of
    :mod:`repro.topo.algorithms`; ``"auto"`` implements the paper's closing
    suggestion — compare the calibrated cost-model estimates of the
    candidate algorithms (see :func:`estimate_linear_us` and friends) and
    pick the cheapest.  The NIC path joins the comparison only when
    ``params.nic_offload`` is set; it can always be requested explicitly.

    .. warning::
       ``"auto"`` decides from the *local* count of servers touched since
       the last fence, with no extra communication (any agreement round
       would cost the log2(N) latencies the linear path is trying to
       save).  It therefore carries the same contract as the paper's
       "allow the programmer to choose": the communication pattern must be
       symmetric enough that every rank reaches the same decision.  With
       asymmetric patterns — including hidden asymmetry from MCS-lock
       protocol traffic — ranks may pick different algorithms and deadlock
       in the collective; pick ``"exchange"`` or ``"linear"`` explicitly
       there.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"algorithm must be one of {ALGORITHMS}, got {algorithm!r}")
    comm = armci.comm
    if comm is None:
        raise RuntimeError(
            "ARMCI_Barrier requires a message-passing communicator "
            "(construct Armci with comm=...)"
        )
    if algorithm == "auto":
        algorithm = _auto_select(armci)
    if armci.membership is not None:
        # Partition tolerance: a minority-side rank queues here (it does
        # not fail) until it is back in a majority view and resynced.
        # Immediate no-op under crash-only plans.
        yield from armci.membership.freeze_gate(armci.rank)

    monitor = armci._monitor
    epoch = 0
    if monitor is not None:
        # SPMD programs reach their N-th barrier together, so the per-rank
        # count identifies the epoch across ranks.
        armci._san_barrier_epoch += 1
        epoch = armci._san_barrier_epoch
        monitor.emit("barrier_enter", epoch=epoch)
    if algorithm == "nic":
        # The NIC path owns its crash handling: it degrades to the
        # resilient host exchange when a view change interrupts it.
        yield from _nic(armci)
    elif armci.membership is not None:
        # Crash-stop fault plan active: every host algorithm routes to the
        # resilient exchange (the linear path's MPI barrier has no
        # survivor handling and would wedge on a dead rank).  This covers
        # the topology-aware algorithms too: their fixed tree/leader roles
        # have no survivor compaction story of their own.
        yield from _exchange_resilient(armci)
    elif algorithm == "linear":
        yield from _linear(armci)
    elif algorithm in ("kary", "dissemination", "twolevel"):
        from ..topo import algorithms as topo_algorithms

        sync = {
            "kary": topo_algorithms.kary_sync,
            "dissemination": topo_algorithms.dissemination_sync,
            "twolevel": topo_algorithms.twolevel_sync,
        }[algorithm]
        yield from sync(armci)
    else:
        yield from _exchange(armci)
    # After stage 3 every operation in the system has completed; all fence
    # state is clean.
    armci.dirty_nodes.clear()
    if monitor is not None:
        extra = armci._chaos_barrier_info or {}
        armci._chaos_barrier_info = None
        monitor.emit("barrier_exit", epoch=epoch, **extra)


def _mp_barrier_estimate_us(params, nprocs: int) -> float:
    """Handbook cost of the log2(N)-phase message-passing barrier."""
    if nprocs < 2:
        return 0.0
    phases = math.ceil(math.log2(nprocs))
    return phases * (2 * params.mp_call_us + params.one_way(SMALL_MSG_BYTES))


def estimate_linear_us(params, nprocs: int, dirty_count: int) -> float:
    """Analytic estimate of AllFence + MPI_Barrier (µs).

    One serial confirmation round trip per dirty server (the server pays
    wake-up + dispatch + per-client fence verification), then the
    message-passing barrier.  This is the §3.1.2 cost the crossover
    trades against :func:`estimate_exchange_us`.
    """
    fence_rt = (
        2 * params.api_call_us
        + 2 * params.one_way(SMALL_MSG_BYTES)
        + params.server_wake_us
        + params.server_proc_us
        + params.server_fence_check_us
    )
    return (
        params.api_call_us
        + dirty_count * fence_rt
        + _mp_barrier_estimate_us(params, nprocs)
    )


def _level_link(params, node_a: int, node_b: int):
    """Analytic ``(latency_us, per_byte_us)`` for a node pair's link.

    Resolves the pair's crossing level when a hierarchy is configured;
    flat params return the single inter-node figures.  Same-node pairs
    are the caller's responsibility (intra-node costs differ in kind).
    """
    h = params.hierarchy
    if h is None or node_a == node_b:
        return params.inter_latency_us, params.per_byte_us
    lat, per_byte = h.resolve(params.inter_latency_us, params.per_byte_us)
    level = h.crossing_level(node_a, node_b)
    return lat[level], per_byte[level]


def estimate_exchange_us(params, nprocs: int, ppn: int = 1) -> float:
    """Analytic estimate of the host three-stage barrier (µs).

    The default (flat, one rank per node) keeps the exact historical
    closed form, so existing auto-selections are byte-identical.  With
    ``ppn > 1`` or a hierarchy, each phase is priced from the partner
    distance: phases below ``ppn`` stay intra-node; inter-node phases
    charge the crossing level's latency and — the effect that dominates
    at scale — the convoy of ``ppn`` per-rank vectors serializing on
    each node's one NIC.
    """
    vec_bytes = 8 * nprocs
    if ppn <= 1 and params.hierarchy is None:
        allreduce = 0.0
        if nprocs >= 2:
            phases = math.ceil(math.log2(nprocs))
            allreduce = phases * (2 * params.mp_call_us + params.one_way(vec_bytes))
        stage2 = params.poll_detect_us
        return allreduce + stage2 + _mp_barrier_estimate_us(params, nprocs)
    ppn = max(1, ppn)
    total = params.poll_detect_us
    for stage_bytes in (vec_bytes, SMALL_MSG_BYTES):
        distance = 1
        while distance < nprocs:
            if distance < ppn:
                total += (
                    2 * params.mp_call_us
                    + params.shm_access_us
                    + params.intra_latency_us
                )
            else:
                lat, per_byte = _level_link(params, 0, distance // ppn)
                xfer = ppn * (stage_bytes + MSG_HEADER_BYTES) * per_byte
                total += (
                    2 * params.mp_call_us
                    + params.o_send_us
                    + xfer
                    + lat
                    + params.o_recv_us
                )
            distance *= 2
    return total


def estimate_dissemination_us(params, nprocs: int, ppn: int = 1) -> float:
    """Analytic estimate of the dissemination barrier (µs).

    Topology-oblivious: the shifted ``rank + d`` pattern makes some rank
    cross a node boundary in *every* round (the critical path), with up
    to ``min(d, ppn)`` vectors convoying per NIC.
    """
    if nprocs < 2:
        return params.poll_detect_us
    ppn = max(1, ppn)
    vec_bytes = 8 * nprocs
    total = params.poll_detect_us
    for stage_bytes in (vec_bytes, SMALL_MSG_BYTES):
        distance = 1
        while distance < nprocs:
            node_off = max(1, distance // ppn)
            lat, per_byte = _level_link(params, 0, node_off)
            xfer = min(distance, ppn) * (stage_bytes + MSG_HEADER_BYTES) * per_byte
            total += (
                2 * params.mp_call_us
                + params.o_send_us
                + xfer
                + lat
                + params.o_recv_us
            )
            distance *= 2
    return total


def estimate_kary_us(params, nprocs: int, ppn: int = 1) -> float:
    """Analytic estimate of the k-ary combining-tree barrier (µs).

    Per tree tier: the parent serializes ``k`` receives (reduce) and
    ``k`` sends (broadcast) of the totals vector, then the same shape on
    control messages for stage 3.  Tiers whose subtree fits in one SMP
    node ride the intra-node queue.
    """
    if nprocs < 2:
        return params.poll_detect_us
    ppn = max(1, ppn)
    k = params.tree_radix
    vec = 8 * nprocs + MSG_HEADER_BYTES
    ctl = SMALL_MSG_BYTES + MSG_HEADER_BYTES
    total = params.poll_detect_us
    span = 1
    while span < nprocs:
        node_off = span // ppn
        if node_off == 0:
            hop_lat = params.intra_latency_us + params.shm_access_us
            vec_xfer = 0.0
            ctl_xfer = 0.0
        else:
            lat, per_byte = _level_link(params, 0, node_off)
            hop_lat = lat + params.o_send_us + params.o_recv_us
            vec_xfer = vec * per_byte
            ctl_xfer = ctl * per_byte
        total += 2 * (k + 1) * params.mp_call_us + 2 * (k * vec_xfer + hop_lat)
        total += 2 * (k + 1) * params.mp_call_us + 2 * (k * ctl_xfer + hop_lat)
        span *= k
    return total


def estimate_twolevel_us(params, nprocs: int, ppn: int = 1) -> float:
    """Analytic estimate of the two-level leader barrier (µs).

    Intra-node phases are bounded by the leader serializing ``ppn - 1``
    queue operations; the inter-node exchange and stage-3 barrier run
    over one leader per node — a single vector per NIC, no convoy.
    """
    ppn = max(1, ppn)
    nnodes = math.ceil(nprocs / ppn)
    vec = 8 * nprocs + MSG_HEADER_BYTES
    ctl = SMALL_MSG_BYTES + MSG_HEADER_BYTES
    local_hop = params.mp_call_us + params.shm_access_us
    local_round = (ppn - 1) * local_hop + params.intra_latency_us
    # gather + scatter (stage 1) and signal + release (stage 3).
    total = 4 * local_round + params.poll_detect_us
    for stage_bytes in (vec, ctl):
        distance = 1
        while distance < nnodes:
            lat, per_byte = _level_link(params, 0, distance)
            total += (
                2 * params.mp_call_us
                + params.o_send_us
                + stage_bytes * per_byte
                + lat
                + params.o_recv_us
            )
            distance *= 2
    return total


def estimate_nic_us(params, nprocs: int, nnodes: int, ppn: int = 1) -> float:
    """Analytic estimate of the NIC-offloaded barrier (µs).

    Doorbell + DMA down, per-hosted-rank NIC folds, two log2(nnodes)
    frame waves (sum + barrier) at NIC processing cost instead of host
    MPI calls, and the completion DMA back up.
    """
    vec_bytes = 8 * nprocs
    doorbell = (
        params.nic_doorbell_us
        + params.nic_dma_us
        + vec_bytes * params.nic_dma_per_byte_us
    )
    hop_v = (
        2 * params.nic_proc_us
        + params.xfer_time(vec_bytes + MSG_HEADER_BYTES)
        + params.nic_wire_latency_us
    )
    hop_c = (
        2 * params.nic_proc_us
        + params.xfer_time(8 + MSG_HEADER_BYTES)
        + params.nic_wire_latency_us
    )
    phases = math.ceil(math.log2(nnodes)) if nnodes >= 2 else 0
    local = 3 * ppn * params.nic_proc_us  # fold + mirror check + release
    release = params.nic_dma_us + params.poll_detect_us
    return doorbell + local + phases * (hop_v + hop_c) + release


def predicted_crossover_targets(params, nprocs: int) -> int:
    """Smallest dirty-server count where the exchange beats AllFence."""
    exchange = estimate_exchange_us(params, nprocs)
    for targets in range(nprocs + 1):
        if estimate_linear_us(params, nprocs, targets) >= exchange:
            return targets
    return nprocs


def _auto_select(armci: "Armci") -> str:
    """Pick the cheapest algorithm from the calibrated cost model.

    The exchange and NIC estimates depend only on globally-agreed values
    (params, nprocs, node layout), and the linear estimate on the local
    dirty-server count — the same symmetric-pattern contract the previous
    fixed threshold carried (see the warning on :func:`armci_barrier`).
    """
    params = armci.params
    nprocs = armci.nprocs
    estimates = {
        "linear": estimate_linear_us(params, nprocs, len(armci.dirty_nodes)),
        "exchange": estimate_exchange_us(params, nprocs),
    }
    if params.nic_offload:
        topology = armci.topology
        ppn = max(len(topology.ranks_on(n)) for n in range(topology.nnodes))
        estimates["nic"] = estimate_nic_us(params, nprocs, topology.nnodes, ppn)
    if params.hierarchy is not None:
        # Topology-aware candidates join the comparison only under a
        # hierarchy, so flat auto-selections stay byte-identical.  ppn
        # and the hierarchy are globally agreed, preserving the
        # symmetric-decision contract.
        topology = armci.topology
        ppn = max(len(topology.ranks_on(n)) for n in range(topology.nnodes))
        estimates["exchange"] = estimate_exchange_us(params, nprocs, ppn=ppn)
        estimates["kary"] = estimate_kary_us(params, nprocs, ppn=ppn)
        estimates["dissemination"] = estimate_dissemination_us(
            params, nprocs, ppn=ppn
        )
        if ppn > 1:
            estimates["twolevel"] = estimate_twolevel_us(params, nprocs, ppn=ppn)
    return min(sorted(estimates), key=estimates.get)


def _nic(armci: "Armci"):
    """The NIC-offloaded barrier: doorbell down, completion DMA back up.

    The host posts its ``op_init`` row in a single doorbell and blocks;
    the per-node NIC engines (built lazily on first use) execute all
    three stages among themselves — see :mod:`repro.nic.engine`.  Under a
    crash-stop fault plan the path degrades to the resilient host
    exchange: immediately once any death has been declared, or on the
    view change that interrupts an in-flight NIC barrier (crashed nodes'
    NICs are marked dead by the membership service, so surviving NICs'
    frames to them are refused rather than wedging the fabric).
    """
    from ..nic.engine import ensure_engines

    # The epoch counts this rank's NIC barriers; SPMD programs reach their
    # N-th barrier together, so it identifies the epoch across ranks.
    # Bumped before any degrade branch so ranks that race a view change
    # stay in step for later epochs.
    epoch = armci._nic_barrier_seq
    armci._nic_barrier_seq = epoch + 1
    membership = armci.membership
    if membership is not None and membership.epoch > 0:
        armci.stats["nic_degraded"] = armci.stats.get("nic_degraded", 0) + 1
        yield from _exchange_resilient(armci)
        return
    engines = ensure_engines(armci)
    engine = engines[armci.node]
    if engine.dead:
        # NIC-only crash of the local co-processor: the doorbell PIO has
        # nowhere to land, so the host notices immediately and falls back
        # to the resilient host exchange.  Peers with live NICs discover
        # the silence through retry exhaustion (-> view change) instead.
        armci.stats["nic_degraded"] = armci.stats.get("nic_degraded", 0) + 1
        yield from _exchange_resilient(armci)
        return
    params = armci.params
    if params.nic_doorbell_us > 0.0:
        yield armci.env.timeout(params.nic_doorbell_us)
    release = engine.post_doorbell(epoch, armci.rank, armci.op_init)
    if release is None:
        # Fenced at the doorbell: this rank is partition-excluded from the
        # current view.  Degrade to the resilient exchange, whose freeze
        # gate queues the rank until it rejoins.
        armci.stats["nic_degraded"] = armci.stats.get("nic_degraded", 0) + 1
        yield from _exchange_resilient(armci)
        return
    if membership is None:
        yield release
    else:
        view_changed = armci.env.event()

        def _on_view(_epoch=None):
            if not view_changed.triggered:
                view_changed.succeed()

        membership.subscribe(_on_view)
        if membership.epoch > 0:  # declared between entry check and here
            _on_view()
        yield release | view_changed
        if not release.triggered:
            armci.stats["nic_degraded"] = armci.stats.get("nic_degraded", 0) + 1
            yield from _exchange_resilient(armci)
            return
    armci._chaos_barrier_info = {"nic_epoch": epoch}


def _linear(armci: "Armci"):
    """Original semantics: AllFence, then the message-passing barrier."""
    from . import fence as fence_mod  # local import to avoid cycle at import time

    yield from fence_mod.allfence_linear(armci)
    yield from collectives.barrier(armci.comm)


def _exchange(armci: "Armci"):
    """The new three-stage operation."""
    # Stage 1: binary-exchange sum of op_init[] (Figure 2).
    totals = yield from collectives.allreduce_sum(armci.comm, armci.op_init)

    # Stage 2: poll the server's op_done counter for our own slot.
    region, addr = armci.server.op_done_cell(armci.rank)
    target = totals[armci.rank]
    watchdog_us = armci.params.watchdog_timeout_us
    if watchdog_us > 0.0:
        done = yield from _stage2_wait_with_watchdog(
            armci, region, addr, target, watchdog_us
        )
        if not done:
            # The op_done counter stopped making progress for a full
            # watchdog window: a server is stalled, or (on an unreliable
            # network without the retransmit layer) an operation was lost
            # and the counter will never reach the target.  Degrade to the
            # conservative path — explicit per-server confirmation round
            # trips, which do not depend on the counter — and count it.
            from . import fence as fence_mod

            armci.stats["barrier_fallbacks"] = (
                armci.stats.get("barrier_fallbacks", 0) + 1
            )
            yield from fence_mod.allfence_linear(armci)
    else:
        yield from region.wait_until(
            addr, lambda v: v >= target, poll_detect_us=armci.params.poll_detect_us
        )

    # Stage 3: binary-exchange barrier synchronization.  Ranks that fell
    # back in stage 2 still join the same collective, so mixed outcomes
    # cannot deadlock.
    yield from collectives.barrier(armci.comm)


def _exchange_resilient(armci: "Armci"):
    """The three-stage barrier under a crash-stop fault plan.

    Stage 1 runs the allreduce compacted over the survivor view (restarting
    on view changes; the lowest survivor folds in dead ranks' kill-time
    ``op_init`` snapshots so totals stay cumulative over the original
    universe).  Stage 2 subtracts dead ranks' issued-but-never-applied
    operations from the target, re-checking every poll because deaths may
    be declared while waiting.  Stage 3 is a survivor-only dissemination
    barrier.  Completed stages are recorded in the membership ledger so a
    rank that finishes before a view change cannot strand restarted peers.
    """
    membership = armci.membership
    # Entered both directly and as the degrade target of the NIC path, so
    # the freeze gate runs here too: an excluded rank must rejoin before
    # it may participate in (or adopt results of) the collective.
    yield from membership.freeze_gate(armci.rank)
    inst = armci._chaos_barrier_seq
    armci._chaos_barrier_seq = inst + 1
    if membership._transient:
        entry = membership.ledger_get(("allreduce", inst))
        if entry is not None and entry[1] < membership.epoch:
            # This instance completed in the majority while we were cut
            # off: we will adopt its recorded result instead of re-running
            # the exchange, so the collective cannot transitively fence
            # *our* outstanding operations (nobody waits on our op_init).
            # Fence them explicitly to keep the barrier's fence-inclusion
            # guarantee for the rejoined rank.
            from .fence import allfence_linear

            yield from allfence_linear(armci)
    totals, result_epoch = yield from collectives.resilient_allreduce_sum(
        armci.comm, membership, armci.op_init, inst
    )
    region, addr = armci.server.op_done_cell(armci.rank)
    counted = yield from _stage2_wait_resilient(armci, region, addr, totals)
    yield from collectives.resilient_barrier(armci.comm, membership, inst)
    armci._chaos_barrier_info = {
        "view_epoch": membership.epoch,
        "result_epoch": result_epoch,
        "counted": counted,
        "written_off": totals[armci.rank] - counted,
    }


def _stage2_wait_resilient(armci: "Armci", region, addr, totals):
    """Stage-2 poll with crash write-offs; returns the final target."""
    env = armci.env
    membership = armci.membership
    me = armci.rank
    poll_detect_us = armci.params.poll_detect_us
    poll_us = membership.params.membership_poll_us
    while True:
        target = totals[me] - membership.written_off(me)
        if region.read(addr) >= target:
            return target
        wake = region.watcher(addr).wait()
        deadline = env.timeout(poll_us)
        yield wake | deadline
        if wake.triggered and poll_detect_us > 0.0:
            yield env.timeout(poll_detect_us)


def _stage2_wait_with_watchdog(armci: "Armci", region, addr, target, watchdog_us):
    """Stage-2 poll that gives up when the counter stops progressing.

    Returns True once ``op_done >= target``; returns False if a full
    watchdog window elapses with *no forward progress* (a slow-but-moving
    counter keeps re-arming the watchdog rather than tripping it).
    """
    env = armci.env
    poll_detect_us = armci.params.poll_detect_us
    value = region.read(addr)
    last_seen = value
    while value < target:
        wake = region.watcher(addr).wait()
        deadline = env.timeout(watchdog_us)
        yield wake | deadline
        if wake.triggered and poll_detect_us > 0.0:
            yield env.timeout(poll_detect_us)
        value = region.read(addr)
        if value >= target:
            break
        if not wake.triggered and value <= last_seen:
            return False
        last_seen = value
    return True
