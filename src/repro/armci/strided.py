"""Strided (multi-dimensional) ARMCI transfers.

The paper's §2 motivation: "In scientific computing, applications require
transfer of non-contiguous data.  With remote copy APIs which support only
contiguous data transfer, it is necessary to transfer non-contiguous data
using multiple communication operations.  ARMCI, however, is optimized for
non-contiguous data transfer."

These helpers implement ``ARMCI_PutS``/``ARMCI_GetS``-style strided
operations: a hyper-rectangular patch described by a base address, a
per-level stride, and per-level counts, moved with a *single* message (one
server visit) regardless of how many contiguous runs it decomposes into.
The Global Arrays layer's section transfers are the 2-D special case.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, TYPE_CHECKING

from ..runtime.memory import GlobalAddress

if TYPE_CHECKING:  # pragma: no cover
    from .api import Armci

__all__ = ["stride_runs", "put_strided", "get_strided"]


def stride_runs(
    base_addr: int,
    strides: Sequence[int],
    counts: Sequence[int],
) -> List[Tuple[int, int]]:
    """Decompose a strided patch into contiguous ``(addr, run_length)`` runs.

    ``counts[0]`` is the length of the innermost contiguous run (in cells);
    ``counts[k]`` (k >= 1) is the number of blocks at level k, and
    ``strides[k-1]`` is the cell distance between consecutive level-k
    blocks.  This mirrors ARMCI's stride_levels convention:
    ``len(strides) == len(counts) - 1``.
    """
    if not counts:
        raise ValueError("counts must be non-empty")
    if len(strides) != len(counts) - 1:
        raise ValueError(
            f"need len(strides) == len(counts) - 1, got {len(strides)} and "
            f"{len(counts)}"
        )
    if any(c < 1 for c in counts):
        raise ValueError(f"counts must be positive, got {counts}")
    if any(s < 1 for s in strides):
        raise ValueError(f"strides must be positive, got {strides}")
    runs = [(base_addr, counts[0])]
    for level in range(1, len(counts)):
        stride = strides[level - 1]
        runs = [
            (addr + block * stride, length)
            for block in range(counts[level])
            for addr, length in runs
        ]
    runs.sort()
    return runs


def put_strided(
    armci: "Armci",
    dst_rank: int,
    base_addr: int,
    strides: Sequence[int],
    counts: Sequence[int],
    values: Sequence,
):
    """Sub-generator: strided put (``ARMCI_PutS``); one message per call.

    ``values`` supplies the cells in run order (innermost dimension
    fastest), exactly ``prod(counts)`` of them.
    """
    runs = stride_runs(base_addr, strides, counts)
    total = sum(length for _addr, length in runs)
    values = list(values)
    if len(values) != total:
        raise ValueError(f"need {total} values, got {len(values)}")
    segments = []
    pos = 0
    for addr, length in runs:
        segments.append((addr, values[pos : pos + length]))
        pos += length
    yield from armci.put_segments(dst_rank, segments)


def get_strided(
    armci: "Armci",
    src_rank: int,
    base_addr: int,
    strides: Sequence[int],
    counts: Sequence[int],
):
    """Sub-generator: strided get (``ARMCI_GetS``); returns cells in run order."""
    runs = stride_runs(base_addr, strides, counts)
    values = yield from armci.get_segments(src_rank, runs)
    return values
