"""Common lock interface and timing instrumentation.

Every lock implementation exposes generator methods ``acquire()`` and
``release()``; the base class wraps them with virtual-time stopwatches so
the Figure 8/9/10 experiments can report *time to request and acquire* and
*time to release* separately, exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict

from ..sim.trace import SampleStats, Stopwatch

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.context import ProcessContext

__all__ = ["BaseLock", "LockStats"]


@dataclass
class LockStats:
    """Counters + timing for one lock handle (one process's view)."""

    acquires: int = 0
    releases: int = 0
    #: Acquisitions satisfied without waiting (lock was free).
    uncontended_acquires: int = 0
    #: Releases that found a waiter to hand the lock to.
    handoffs: int = 0
    counters: Dict[str, int] = field(default_factory=dict)

    def bump(self, key: str, by: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + by


class BaseLock:
    """Abstract distributed lock bound to one process's context.

    Subclasses implement ``_acquire()`` / ``_release()`` as sub-generators.
    The public wrappers charge the per-call library overhead and record
    timing.  A handle must not be re-acquired before release (no recursive
    locking, as in ARMCI).
    """

    #: Short algorithm tag used in reports ("hybrid", "mcs", ...).
    kind: str = "base"

    def __init__(self, ctx: "ProcessContext", home_rank: int, name: str = "lock"):
        if not (0 <= home_rank < ctx.nprocs):
            raise ValueError(f"home_rank {home_rank} out of range")
        self.ctx = ctx
        self.env = ctx.env
        self.armci = ctx.armci
        self.params = ctx.params
        self.home_rank = home_rank
        self.home_node = ctx.topology.node_of(home_rank)
        self.name = name
        self.stats = LockStats()
        self.acquire_sw = Stopwatch(ctx.env, name=f"{name}.acquire")
        self.release_sw = Stopwatch(ctx.env, name=f"{name}.release")
        self.total_sw = Stopwatch(ctx.env, name=f"{name}.total")
        self._held = False
        #: RMCSan monitor (None when no sanitizer is installed).
        self._monitor = getattr(ctx.env, "_sync_monitor", None)
        self._san_key = f"{self.kind}:{name}@{home_rank}"
        #: Crash-stop membership service (None on a fault-free runtime):
        #: registers the handle for lease tracking and holder-death
        #: recovery.  Every hook below is a single ``is None`` check.
        self._membership_svc = getattr(ctx, "membership", None)
        #: Fencing token snapshotted at grant time; a mismatch at release
        #: means the lease was revoked (crash recovery or partition
        #: exclusion regenerated the lock) and the release is rejected.
        self._acq_fence = 0
        if self._membership_svc is not None:
            self._membership_svc.register_lock(self)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name!r} home={self.home_rank} "
            f"rank={self.ctx.rank} held={self._held}>"
        )

    @property
    def held(self) -> bool:
        """True while this process holds the lock."""
        return self._held

    @property
    def is_home_local(self) -> bool:
        """True if the lock's memory lives on this process's node."""
        return self.home_node == self.ctx.node

    # -- public API -----------------------------------------------------------

    def acquire(self):
        """Sub-generator: block until the lock is held."""
        if self._held:
            raise RuntimeError(f"{self!r}: recursive acquire")
        if self._membership_svc is not None:
            # Partition tolerance: a minority-side (or mid-rejoin) rank
            # queues here until it is back in a majority view and
            # resynced.  Immediate no-op on crash-only and healthy runs.
            yield from self._membership_svc.freeze_gate(self.ctx.rank)
        if self.params.api_call_us > 0.0:
            yield self.env.timeout(self.params.api_call_us)
        if self._monitor is not None:
            self._monitor.emit("lock_req", lock=self._san_key)
        self.acquire_sw.start()
        self.total_sw.start()
        yield from self._acquire()
        self.acquire_sw.stop()
        self._held = True
        self.stats.acquires += 1
        if self._membership_svc is not None:
            # Lease: record holder + grant ticket so crash recovery can
            # revoke the acquisition if this process dies in its CS.
            # The fencing token is snapshotted at the same instant: a
            # revocation after this point bumps it, and the release-side
            # check below rejects the then-stale holder.
            self._acq_fence = self._membership_svc.fence_token(
                self._membership_svc.lock_key(self)
            )
            self._membership_svc.lease_acquire(self, self._san_ticket())
        if self._monitor is not None:
            self._monitor.emit(
                "lock_acq", lock=self._san_key, ticket=self._san_ticket()
            )

    def release(self):
        """Sub-generator: release the lock (must be held)."""
        if not self._held:
            raise RuntimeError(f"{self!r}: release without acquire")
        if self.params.api_call_us > 0.0:
            yield self.env.timeout(self.params.api_call_us)
        if self._membership_svc is not None:
            current = self._membership_svc.fence_token(
                self._membership_svc.lock_key(self)
            )
            if current != self._acq_fence:
                # Fenced: our lease was revoked while we held the lock —
                # we were excluded by a partition (or stalled past the
                # suspicion window) and the view regenerated the lock for
                # the survivors.  Touching the protocol again would hand
                # a second grant into a chain that has moved on, so the
                # release is rejected and local state reset to idle.
                self._held = False
                self.stats.bump("fenced_releases")
                self._fence_reset()
                self.release_sw.start()
                self.release_sw.stop()
                self.total_sw.stop()
                if self._monitor is not None:
                    self._monitor.emit(
                        "lock_fence_rejected",
                        lock=self._san_key,
                        expected=self._acq_fence,
                        current=current,
                    )
                return
        self.release_sw.start()
        self._held = False
        yield from self._release()
        if self._membership_svc is not None:
            # Only after the handoff landed: a holder that dies *inside*
            # ``_release()`` must still be covered by its lease, so the
            # declaration revokes it and recovery finishes the handoff
            # (releasing up front left mid-release deaths unrecoverable).
            # ``lease_release`` no-ops if a successor already re-leased.
            self._membership_svc.lease_release(self)
        self.release_sw.stop()
        self.total_sw.stop()
        self.stats.releases += 1
        if self._monitor is not None:
            # Emitted before any successor can run: the segment from the
            # end of _release() to here has no yields, and every handoff
            # path (counter write, MCS flag put, server grant) wakes the
            # next holder strictly later, so release precedes the matching
            # acquire in the event stream.
            self._monitor.emit("lock_rel", lock=self._san_key)

    def _fence_reset(self) -> None:
        """Drop local grant state after a fenced (rejected) release.

        The survivors' regeneration already handed the lock onward; this
        handle must land back in its idle state without touching shared
        words or sending protocol messages.  Resets are by-attribute so
        every flavor (ticket/_my_ticket, LH-MCS/_phase, Naimi/in_cs+
        requesting, Raymond/using) reaches idle through one generic hook.
        """
        for attr, value in (
            ("_phase", "idle"),
            ("in_cs", False),
            ("requesting", False),
            ("using", False),
            ("_my_ticket", -1),
        ):
            if hasattr(self, attr):
                setattr(self, attr, value)

    def _san_ticket(self):
        """FIFO-checkable grant number, for ticket-based algorithms."""
        ticket = getattr(self, "_my_ticket", None)
        if isinstance(ticket, int) and ticket >= 0:
            return ticket
        return None

    def _mark_sync_cells(self, region, addr: int, count: int = 1) -> None:
        """Tag lock protocol words as release/acquire cells for RMCSan."""
        if self._monitor is not None:
            self._monitor.mark_sync(region, addr, count)

    # -- timing accessors --------------------------------------------------------

    def acquire_stats(self) -> SampleStats:
        return self.acquire_sw.stats()

    def release_stats(self) -> SampleStats:
        return self.release_sw.stats()

    def total_stats(self) -> SampleStats:
        """Request+release round statistics (Figure 8's metric)."""
        return self.total_sw.stats()

    # -- to implement --------------------------------------------------------------

    def _acquire(self):  # pragma: no cover - abstract
        raise NotImplementedError
        yield  # make it a generator

    def _release(self):  # pragma: no cover - abstract
        raise NotImplementedError
        yield
