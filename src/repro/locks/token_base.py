"""Infrastructure for token-based distributed mutex algorithms.

The paper's related work (§3.2) lists several distributed mutual-exclusion
algorithms it chose *not* to adopt — Raymond's tree algorithm [18] and the
Naimi-Trehel log(N) algorithm [20] among them.  We implement both as
baselines (see :mod:`repro.locks.raymond` and :mod:`repro.locks.naimi`) so
the trade-off the authors made can be measured.

Token algorithms differ structurally from the ARMCI locks: a process must
*react* to protocol messages (requests, token transfers) even while its
application code is busy.  Real implementations service these in the
communication library's progress engine; here each lock handle spawns a
daemon process that owns a private tag on the message-passing mailbox.
The application side talks to its local daemon through the same mailbox
(self-addressed messages over the intra-node path), which models the
app-thread/progress-thread handoff queue.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Optional, TYPE_CHECKING

from ..sim.core import Event
from .base import BaseLock

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.context import ProcessContext

__all__ = ["TokenLockBase", "LockMessage"]

_TAG_TOKEN_LOCK = 9 << 24


@dataclass
class LockMessage:
    """Protocol message between lock daemons (or app -> own daemon)."""

    kind: str  # "local_request" | "local_release" | algorithm-specific
    src: int
    payload: Any = None


class TokenLockBase(BaseLock):
    """Daemon lifecycle + messaging shared by Raymond and Naimi-Trehel."""

    def __init__(self, ctx: "ProcessContext", home_rank: int, name: str):
        super().__init__(ctx, home_rank, name)
        self.comm = ctx.comm
        # Stable per-lock tag shared across ranks (same name -> same tag).
        self.tag = _TAG_TOKEN_LOCK + (zlib.crc32(name.encode()) % 65536)
        #: The application-side event fired by the daemon on grant.
        self._pending_grant: Optional[Event] = None
        #: Crash recovery: membership epoch of the last view change this
        #: daemon applied (stale pre-crash requests are discarded), and
        #: when the outstanding local request was made (survivor ordering).
        self._view_epoch = 0
        self._requested_at: Optional[float] = None
        #: Tokens tagged with an epoch below this floor are duplicates: a
        #: view change regenerated the token at this-or-a-later epoch while
        #: that copy was still in flight, and accepting it would create a
        #: second holder.  Only bumped when a regeneration actually happens
        #: (``token_lost``) — an in-flight token the recovery located and
        #: chose to keep must still be accepted under its old epoch.
        self._token_epoch_floor = 0
        self._daemon = ctx.env.process(
            self._daemon_loop(), name=f"{name}.daemon[{ctx.rank}]"
        )

    # -- messaging ---------------------------------------------------------------

    def _send(self, dst: int, kind: str, payload: Any = None):
        """Send a protocol message to ``dst``'s daemon for this lock."""
        self.stats.bump(f"sent_{kind}")
        yield from self.comm.send(
            dst, LockMessage(kind, self.ctx.rank, payload), tag=self.tag
        )

    def _recv(self):
        """Daemon side: next protocol message for this lock.

        The daemon models a *progress engine* inside the user process.  Like
        the ARMCI server thread, it sleeps when idle; a message that finds
        it blocked pays the same wake-up cost a sleeping server pays
        (otherwise the two-sided token algorithms would get a free,
        infinitely responsive progress thread the 2003 systems did not
        have).
        """
        # Peek without consuming: is a matching message already queued?
        was_idle = not any(
            self._is_mine(envelope) for envelope in self.comm.mailbox.items
        )
        msg = yield from self.comm.recv(tag=self.tag)
        if was_idle and self.params.server_wake_us > 0.0:
            self.stats.bump("daemon_wakes")
            yield self.env.timeout(self.params.server_wake_us)
        return msg.payload

    def _is_mine(self, envelope) -> bool:
        payload = getattr(envelope, "payload", None)
        return payload is not None and getattr(payload, "tag", None) == self.tag

    # -- app <-> daemon handshake ---------------------------------------------------

    def _acquire(self):
        grant = self.env.event()
        self._pending_grant = grant
        self._requested_at = self.env.now
        yield from self._send(self.ctx.rank, "local_request")
        yield grant

    def _release(self):
        # Fire-and-forget, like the hybrid's unlock: the daemon performs the
        # token passing asynchronously.
        yield from self._send(self.ctx.rank, "local_release")

    def _grant_local(self) -> None:
        """Daemon side: wake the blocked application acquire."""
        if self._pending_grant is None:  # pragma: no cover - protocol bug
            raise RuntimeError(f"{self!r}: grant with no pending local request")
        grant, self._pending_grant = self._pending_grant, None
        grant.succeed()

    # -- to implement ------------------------------------------------------------------

    def _daemon_loop(self):  # pragma: no cover - abstract
        raise NotImplementedError
        yield
