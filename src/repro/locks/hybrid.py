"""The original ARMCI hybrid lock (paper §3.2.1, Figures 3 & 4).

Local requesters use the ticket algorithm directly on shared memory;
remote requesters send a lock request to the home node's server thread,
which takes a ticket on their behalf and queues them until granted.

The properties the paper criticizes — and that the MCS lock removes — are
modeled faithfully:

* **every** release contacts the server (even for a local lock), because
  only the server knows whether a queued *remote* requester should now be
  granted;
* passing the lock to a remote waiter costs **two** message latencies
  (release -> server, server -> waiter), plus a server wake-up if it was
  idle;
* on the plus side, release is **fire-and-forget**: the releasing process
  "simply has to initiate sending a message to the server and need not
  wait for a reply" — which is why Figure 10 shows the original release
  as cheaper than the new one.
"""

from __future__ import annotations

from ..armci.requests import LockRequest, UnlockRequest
from ..net.message import server_endpoint
from ..sim.core import Event
from .base import BaseLock

__all__ = ["HybridLock"]


class HybridLock(BaseLock):
    """Original ARMCI ticket + server-queue hybrid lock."""

    kind = "hybrid"

    def __init__(self, ctx, home_rank: int, name: str = "hybrid"):
        super().__init__(ctx, home_rank, name)
        region = ctx.regions[home_rank]
        #: [ticket, counter] in the home process's region.
        self.base_addr = region.alloc_named(f"hybrid:{name}", 2, initial=0)
        self._mark_sync_cells(region, self.base_addr, 2)
        self._home_region = region
        self._my_ticket = -1

    def _acquire(self):
        if self.is_home_local:
            yield from self._acquire_local()
        else:
            yield from self._acquire_remote()

    def _acquire_local(self):
        """Figure 3, left: direct fetch&increment, then poll the counter."""
        p = self.params
        yield self.env.timeout(p.shm_atomic_us)
        ticket = self._home_region.read(self.base_addr)
        self._home_region.write(self.base_addr, ticket + 1)
        self._my_ticket = ticket
        yield self.env.timeout(p.shm_access_us)
        counter_addr = self.base_addr + 1
        if self._home_region.read(counter_addr) == ticket:
            self.stats.uncontended_acquires += 1
            return
        self.stats.bump("local_waits")
        yield from self._home_region.wait_until(
            counter_addr, lambda v: v == ticket, poll_detect_us=p.poll_detect_us
        )

    def _acquire_remote(self):
        """Figure 3, right: the server takes a ticket on our behalf."""
        reply = self.env.event()
        req = LockRequest(
            src_rank=self.ctx.rank,
            home_rank=self.home_rank,
            base_addr=self.base_addr,
            reply=reply,
        )
        self.stats.bump("remote_requests")
        yield from self.ctx.fabric.send(
            self.ctx.rank, server_endpoint(self.home_node), req
        )
        ticket = yield reply
        self._my_ticket = ticket

    def _release(self):
        """Figure 4: local or remote, contact the home server; no reply."""
        req = UnlockRequest(
            src_rank=self.ctx.rank,
            home_rank=self.home_rank,
            base_addr=self.base_addr,
        )
        self.stats.bump("unlock_messages")
        yield from self.ctx.fabric.send(
            self.ctx.rank, server_endpoint(self.home_node), req
        )
