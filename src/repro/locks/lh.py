"""The LH queue lock (paper reference [9]).

P. Magnusson, A. Landin, E. Hagersten, "Efficient software synchronization
on large cache coherent multiprocessors", SICS T94:07 — the "LH" of the
"LH and M" locks the paper's §3.2 survey mentions.

LH is a queue lock for cache-coherent shared memory: a global tail pointer
holds the address of the *previous* requester's flag cell; an acquirer

1. marks its own cell PENDING,
2. atomically swaps the tail with its cell's address,
3. spins on the *predecessor's* cell until it reads GRANTED.

Release writes GRANTED into the cell the releaser owned.  The subtlety is
cell recycling: after acquiring, a process takes ownership of the
predecessor's (now GRANTED) cell for its *next* acquisition, so exactly one
cell per process circulates regardless of lock count.

Like the ticket lock it requires all participants to map the lock's memory
— it is a *local* (single-node) algorithm here, the CC-NUMA counterpart of
the hybrid's ticket half.  Its advantage over tickets: each waiter spins
on a *different* cell, so a release invalidates one spinner's line instead
of all of them.  Our model charges per-write watcher wakeups either way,
which lets the bench below show the queue-vs-broadcast difference in
wakeup counts rather than time.
"""

from __future__ import annotations

from .base import BaseLock

__all__ = ["LHLock"]

_PENDING = 1
_GRANTED = 0


class LHLock(BaseLock):
    """LH queue lock on shared memory (all requesters on the home node)."""

    kind = "lh"

    def __init__(self, ctx, home_rank: int, name: str = "lh"):
        super().__init__(ctx, home_rank, name)
        if not self.is_home_local:
            raise ValueError(
                f"LH lock {name!r} homed on node {self.home_node} is not "
                f"mappable from rank {ctx.rank} on node {ctx.node}; LH is a "
                "shared-memory algorithm (use HybridLock/MCSLock remotely)"
            )
        region = ctx.regions[home_rank]
        # Cell pool: one cell per process + one initial dummy, all in the
        # home region, plus the tail pointer.  The dummy starts GRANTED so
        # the first acquirer proceeds immediately.
        self._region = region
        self._tail_addr = region.alloc_named(f"lh:{name}:tail", 1, initial=-1)
        dummy = region.alloc_named(f"lh:{name}:dummy", 1, initial=_GRANTED)
        if region.read(self._tail_addr) == -1:
            region.write(self._tail_addr, dummy)
        #: The flag cell this process currently owns (recycled on acquire).
        self.my_cell = region.alloc_named(
            f"lh:{name}:cell:{ctx.rank}", 1, initial=_GRANTED
        )
        # Tail, dummy, and every per-process flag cell are protocol words
        # (cells recycle between processes, so each rank marks its own).
        self._mark_sync_cells(region, self._tail_addr)
        self._mark_sync_cells(region, dummy)
        self._mark_sync_cells(region, self.my_cell)
        self._spin_cell = None
        # Crash-recovery bookkeeping: where this handle sits in the queue
        # ("idle" | "waiting" | "held"), which cell it spins on, and which
        # cell it published for its successor.
        self._phase = "idle"
        self._prev_cell = None
        self._published_cell = None

    def _acquire(self):
        p = self.params
        region = self._region
        # 1. my cell := PENDING  (successors will spin on it)
        yield self.env.timeout(p.shm_access_us)
        region.write(self.my_cell, _PENDING)
        # 2. prev := swap(tail, my cell)
        yield self.env.timeout(p.shm_atomic_us)
        prev = region.read(self._tail_addr)
        region.write(self._tail_addr, self.my_cell)
        self._published_cell = self.my_cell
        self._prev_cell = prev
        self._phase = "waiting"
        # 3. spin on the predecessor's cell.
        yield self.env.timeout(p.shm_access_us)
        if region.read(prev) != _GRANTED:
            self.stats.bump("spins")
            yield from region.wait_until(
                prev, lambda v: v == _GRANTED, poll_detect_us=p.poll_detect_us
            )
        else:
            self.stats.uncontended_acquires += 1
        # Cell recycling: I spun the predecessor's cell down; it becomes my
        # cell for the next round, and the cell I published (now queued
        # behind the tail) stays live for my successor.
        self._spin_cell = self.my_cell
        self.my_cell = prev
        self._phase = "held"

    def _release(self):
        # GRANTED into the cell my successor spins on (the one I published).
        yield self.env.timeout(self.params.shm_access_us)
        self._region.write(self._spin_cell, _GRANTED)
        self._phase = "idle"
        self.stats.handoffs += 1
