"""Software queuing lock — MCS on ARMCI atomics (paper §3.2.2, Figure 5).

Each process owns one *node structure* (``next`` pointer + ``locked`` flag);
a lock is a single ``Lock`` tail pointer in global memory.  Because ARMCI
global pointers are ``(rank, address)`` tuples, the ``Lock`` and ``next``
fields occupy *pairs of longs*, manipulated with the atomic pair operations
the paper added (swap on a pair, compare&swap on a pair).

Cost profile (what Figures 8-10 measure):

* **request**: one atomic ``swap`` on the Lock variable (round trip if the
  home is remote, shared-memory if local); if contended, one non-blocking
  put to set the predecessor's ``next``, then a local spin on ``locked``.
* **handoff**: the releaser writes the next waiter's ``locked`` flag
  directly — **one** message, or **zero** when the waiter shares the node.
* **release with no waiter**: an atomic ``compare&swap`` on the Lock
  variable — a *blocking round trip* when the home is remote.  This is the
  new algorithm's one regression (Figure 10) and the subject of the paper's
  future-work note; ``optimistic_release=True`` implements that future-work
  idea by issuing the compare&swap without waiting (a background completion
  finishes the protocol if the CAS turns out to have failed).

Per the paper, a process needs only one node structure regardless of how
many locks exist — which implies a process may wait on only one MCS lock at
a time; the implementation enforces this.
"""

from __future__ import annotations

from ..runtime.memory import NULL_PTR, GlobalAddress
from .base import BaseLock

__all__ = ["MCSLock"]

#: Cells in a node structure: next_rank, next_addr, locked.
_NODE_CELLS = 3
_OFF_NEXT = 0
_OFF_LOCKED = 2

_FALSE = 0
_TRUE = 1


class _NodeStruct:
    """The per-process MCS node structure (one per process, shared by locks)."""

    def __init__(self, ctx):
        self.base = ctx.region.alloc_named("mcs:node", _NODE_CELLS, initial=0)
        # next starts NULL.
        ctx.region.write(self.base + 0, NULL_PTR[0])
        ctx.region.write(self.base + 1, NULL_PTR[1])
        #: Held by the lock currently using the structure (None if free).
        self.in_use_by = None

    @classmethod
    def for_context(cls, ctx) -> "_NodeStruct":
        struct = getattr(ctx, "_mcs_node_struct", None)
        if struct is None:
            struct = cls(ctx)
            ctx._mcs_node_struct = struct
        return struct


class MCSLock(BaseLock):
    """The paper's software queuing lock."""

    kind = "mcs"

    def __init__(
        self,
        ctx,
        home_rank: int,
        name: str = "mcs",
        optimistic_release: bool = False,
    ):
        super().__init__(ctx, home_rank, name)
        home_region = ctx.regions[home_rank]
        #: The Lock tail-pointer pair in the home process's region.
        self.lock_addr = home_region.alloc_named(f"mcs:lock:{name}", 2, initial=-1)
        self.lock_ga = GlobalAddress(home_rank, self.lock_addr)
        self.node_struct = _NodeStruct.for_context(ctx)
        # The tail pair and the whole node structure (next pair + locked
        # flag) are protocol words: swap/CAS/handoff-put all synchronize.
        self._mark_sync_cells(home_region, self.lock_addr, 2)
        self._mark_sync_cells(ctx.region, self.node_struct.base, _NODE_CELLS)
        self.optimistic_release = optimistic_release
        #: Event tracking an in-flight optimistic release (None when idle).
        self._pending_release = None
        # Crash-recovery bookkeeping: queue position ("idle" | "waiting" |
        # "held" | "releasing") and the predecessor this handle enqueued
        # behind (needed to repair a half-finished enqueue).
        self._phase = "idle"
        self._prev_ptr = None

    # -- helpers ---------------------------------------------------------------

    @property
    def _my_ptr(self):
        """This process's node structure as a global pointer pair."""
        return (self.ctx.rank, self.node_struct.base)

    def _next_ga(self) -> GlobalAddress:
        return GlobalAddress(self.ctx.rank, self.node_struct.base + _OFF_NEXT)

    def _locked_ga(self) -> GlobalAddress:
        return GlobalAddress(self.ctx.rank, self.node_struct.base + _OFF_LOCKED)

    # -- algorithm ---------------------------------------------------------------

    def _acquire(self):
        # A previous optimistic release may still be completing; the node
        # structure cannot be reused until it finishes.
        if self._pending_release is not None:
            yield self._pending_release
            self._pending_release = None
        struct = self.node_struct
        if struct.in_use_by is not None:
            raise RuntimeError(
                f"rank {self.ctx.rank}: MCS node structure already in use by "
                f"lock {struct.in_use_by!r}; a process may wait on only one "
                "MCS lock at a time (paper: one node structure per process)"
            )
        struct.in_use_by = self.name
        self._phase = "waiting"
        self._prev_ptr = None
        armci = self.armci
        # mynode->next = NULL
        yield from armci.store_pair(self._next_ga(), NULL_PTR)
        # prev = swap(Lock, mynode)
        prev = yield from armci.rmw("swap_pair", self.lock_ga, self._my_ptr)
        prev = tuple(prev)
        self._prev_ptr = prev
        if prev == NULL_PTR:
            self._phase = "held"
            self.stats.uncontended_acquires += 1
            return
        # Contended: enqueue behind prev and spin on our locked flag.
        self.stats.bump("contended_acquires")
        yield from armci.store(self._locked_ga(), _TRUE)
        yield from armci.store_pair(
            GlobalAddress(prev[0], prev[1] + _OFF_NEXT), self._my_ptr
        )
        region = self.ctx.region
        yield from region.wait_until(
            struct.base + _OFF_LOCKED,
            lambda v: v == _FALSE,
            poll_detect_us=self.params.poll_detect_us,
        )
        self._phase = "held"

    def _release(self):
        armci = self.armci
        struct = self.node_struct
        self._phase = "releasing"
        next_ptr = yield from armci.load_pair(self._next_ga())
        if next_ptr == NULL_PTR:
            if self.optimistic_release:
                self._release_optimistic()
                return
            # compare&swap(Lock, mynode, NULL)
            ok = yield from armci.rmw("cas_pair", self.lock_ga, self._my_ptr, NULL_PTR)
            self.stats.bump("release_cas")
            if ok:
                struct.in_use_by = None
                self._phase = "idle"
                return
            # A requester swapped the Lock but has not linked itself yet;
            # wait for our next pointer, then hand off.
            self.stats.bump("release_cas_failed")
            next_ptr = yield from self._wait_for_successor()
        yield from self._handoff(next_ptr)
        struct.in_use_by = None
        self._phase = "idle"

    def _wait_for_successor(self):
        region = self.ctx.region
        base = self.node_struct.base
        yield from region.wait_until(
            base + _OFF_NEXT,
            lambda v: v != NULL_PTR[0],
            poll_detect_us=self.params.poll_detect_us,
        )
        return (region.read(base + _OFF_NEXT), region.read(base + _OFF_NEXT + 1))

    def _handoff(self, next_ptr):
        """next->locked = FALSE: one put (zero messages if same node)."""
        self.stats.handoffs += 1
        if self.ctx.topology.node_of(next_ptr[0]) == self.ctx.node:
            self.stats.bump("handoffs_same_node")
        yield from self.armci.put(
            GlobalAddress(next_ptr[0], next_ptr[1] + _OFF_LOCKED), [_FALSE]
        )

    # -- future-work variant --------------------------------------------------------

    def _release_optimistic(self) -> None:
        """Issue the uncontended-release CAS without blocking on its result.

        The paper's §5 notes work toward "eliminating the need for a
        compare&swap operation when releasing a lock"; this variant removes
        it from the *release critical path*: the CAS is sent, the release
        returns immediately, and a background completion handles the rare
        failure (a requester raced in) by waiting for the successor link
        and handing off.  The node structure stays busy until completion.
        """
        self.stats.bump("release_cas_optimistic")
        done = self.env.event()
        self._pending_release = done
        self.env.process(self._complete_optimistic(done), name=f"{self.name}.optrel")
        # The visible release cost is only the local bookkeeping already
        # charged by the caller; the CAS round trip happens off-path.

    def _complete_optimistic(self, done):
        struct = self.node_struct
        try:
            ok = yield from self.armci.rmw(
                "cas_pair", self.lock_ga, self._my_ptr, NULL_PTR
            )
            if not ok:
                self.stats.bump("release_cas_failed")
                next_ptr = yield from self._wait_for_successor()
                yield from self._handoff(next_ptr)
        finally:
            struct.in_use_by = None
            self._phase = "idle"
            if self._pending_release is done:
                self._pending_release = None
            done.succeed()
        return None
