"""Pure server-based queue lock (the *remote* half of the original hybrid).

Every requester — even one on the home node — sends a lock request to the
home server, which takes a ticket on its behalf and replies when granted;
every release likewise goes through the server.  This is the degenerate
configuration the hybrid improves on for local requesters ("server-based
locks require interaction with the server thread which can be reduced when
the lock is local", §3.2.1); it is included as a baseline for the ablation
studies and tests.
"""

from __future__ import annotations

from ..armci.requests import LockRequest, UnlockRequest
from ..net.message import server_endpoint
from ..sim.core import Event
from .base import BaseLock

__all__ = ["ServerQueueLock"]


class ServerQueueLock(BaseLock):
    """Server-mediated ticket queue lock, no shared-memory fast path."""

    kind = "server"

    def __init__(self, ctx, home_rank: int, name: str = "server"):
        super().__init__(ctx, home_rank, name)
        region = ctx.regions[home_rank]
        # Shares the [ticket, counter] layout (and server handlers) with the
        # hybrid lock.
        self.base_addr = region.alloc_named(f"hybrid:{name}", 2, initial=0)
        self._mark_sync_cells(region, self.base_addr, 2)
        self._my_ticket = -1

    def _acquire(self):
        reply = self.env.event()
        req = LockRequest(
            src_rank=self.ctx.rank,
            home_rank=self.home_rank,
            base_addr=self.base_addr,
            reply=reply,
        )
        self.stats.bump("server_requests")
        yield from self.ctx.fabric.send(
            self.ctx.rank, server_endpoint(self.home_node), req
        )
        self._my_ticket = yield reply

    def _release(self):
        req = UnlockRequest(
            src_rank=self.ctx.rank,
            home_rank=self.home_rank,
            base_addr=self.base_addr,
        )
        self.stats.bump("unlock_messages")
        yield from self.ctx.fabric.send(
            self.ctx.rank, server_endpoint(self.home_node), req
        )
