"""Ticket lock on shared memory (the *local* half of the original hybrid).

A lock is two variables at the home process, ``ticket`` and ``counter``,
both initially zero (paper §3.2.1).  A requester atomically
fetch-and-increments ``ticket`` and spins until ``counter`` equals its
ticket number; release writes ``ticket_number + 1`` into ``counter``.

Because it spins on a shared variable, this algorithm only works when every
participant can map the lock's memory — i.e. all on the home node.  The
constructor enforces that; the :class:`~repro.locks.hybrid.HybridLock`
composes it with the server-based queue for remote requesters.
"""

from __future__ import annotations

from .base import BaseLock

__all__ = ["TicketLock"]


class TicketLock(BaseLock):
    """Pure shared-memory ticket lock (all requesters on the home node)."""

    kind = "ticket"

    def __init__(self, ctx, home_rank: int, name: str = "ticket"):
        super().__init__(ctx, home_rank, name)
        if not self.is_home_local:
            raise ValueError(
                f"ticket lock {name!r} homed on node {self.home_node} is not "
                f"mappable from rank {ctx.rank} on node {ctx.node}; use "
                "HybridLock or MCSLock for remote locks"
            )
        region = ctx.regions[home_rank]
        #: [ticket, counter]
        self.base_addr = region.alloc_named(f"ticket:{name}", 2, initial=0)
        self._mark_sync_cells(region, self.base_addr, 2)
        self._region = region
        self._my_ticket = -1

    def _acquire(self):
        p = self.params
        # Atomic fetch&increment on ticket.
        yield self.env.timeout(p.shm_atomic_us)
        ticket = self._region.read(self.base_addr)
        self._region.write(self.base_addr, ticket + 1)
        self._my_ticket = ticket
        # Spin on counter.
        yield self.env.timeout(p.shm_access_us)
        counter_addr = self.base_addr + 1
        if self._region.read(counter_addr) == ticket:
            self.stats.uncontended_acquires += 1
            return
        yield from self._region.wait_until(
            counter_addr, lambda v: v == ticket, poll_detect_us=p.poll_detect_us
        )

    def _release(self):
        # Write ticket+1 into counter, passing the lock to the next waiter.
        yield self.env.timeout(self.params.shm_access_us)
        new_counter = self._my_ticket + 1
        if self._membership_svc is not None:
            # Skip ticket numbers revoked by crash recovery (dead waiters).
            new_counter = self._membership_svc.skip_revoked(
                self.home_rank, self.base_addr, new_counter
            )
        self._region.write(self.base_addr + 1, new_counter)
        self.stats.handoffs += 1
