"""Naimi-Trehel distributed mutual exclusion (paper reference [20]).

M. Trehel, M. Naimi, "An improvement of the log(n) distributed algorithm
for mutual exclusion", ICDCS 1987.  The second related-work algorithm the
paper surveys.

Path-compression token algorithm: each node keeps

* ``last`` — its *probable owner* (where to send a request; updated to the
  newest requester on every request seen, compressing the chain);
* ``next`` — the successor to hand the token to on release;
* ``has_token`` / ``requesting``.

A request is forwarded along the probable-owner chain until it reaches the
current tail; amortized O(log N) messages per acquire.  Under heavy
contention the token travels directly requester-to-requester — exactly the
one-message handoff the MCS lock achieves, but implemented with two-sided
forwarding instead of remote atomics.
"""

from __future__ import annotations

from typing import Optional

from .token_base import TokenLockBase

__all__ = ["NaimiTrehelLock"]


class NaimiTrehelLock(TokenLockBase):
    """Naimi-Trehel with the classic last/next pointer pair."""

    kind = "naimi"

    def __init__(self, ctx, home_rank: int, name: str = "naimi"):
        super().__init__(ctx, home_rank, name)
        #: Probable owner; initially everyone points at the token's home.
        self.last: int = home_rank
        self.next: Optional[int] = None
        self.has_token: bool = ctx.rank == home_rank
        self.requesting = False
        self.in_cs = False

    # -- daemon ----------------------------------------------------------------------

    def _daemon_loop(self):
        me = self.ctx.rank
        while True:
            msg = yield from self._recv()
            if msg.kind == "local_request":
                self.requesting = True
                if self.last == me:
                    # We are the tail; if we also hold the idle token, enter.
                    if self.has_token and not self.in_cs:
                        self.in_cs = True
                        self._grant_local()
                    # else: token will come to us via next of the holder.
                else:
                    yield from self._send(
                        self.last, "request", payload=(me, self._view_epoch)
                    )
                    self.last = me
            elif msg.kind == "request":
                requester, epoch = msg.payload
                if epoch < self._view_epoch:
                    # Sent before a crash reconfiguration: the requester
                    # re-issues under the new view, so drop the stale copy.
                    self.stats.bump("stale_requests_dropped")
                    continue
                if self.last == me:
                    # We are the current tail of the chain.
                    if self.requesting or self.in_cs:
                        # Token will pass through us; remember the successor.
                        self.next = requester
                    elif self.has_token:
                        # Idle token: hand it straight over.
                        self.has_token = False
                        self.stats.bump("token_passes")
                        yield from self._send(
                            requester, "token", payload=self._view_epoch
                        )
                    else:
                        # Tail without token and without interest can only
                        # happen transiently; queue as successor.
                        self.next = requester
                else:
                    # Forward along the probable-owner chain (compressing).
                    yield from self._send(
                        self.last, "request", payload=(requester, epoch)
                    )
                self.last = requester
            elif msg.kind == "token":
                if (msg.payload or 0) < self._token_epoch_floor:
                    # A crash reconfiguration regenerated the token while
                    # this copy was stalled in the fabric; accepting it
                    # would create a second holder.
                    self.stats.bump("stale_tokens_dropped")
                    continue
                self.has_token = True
                self.in_cs = True
                self._grant_local()
            elif msg.kind == "local_release":
                self.in_cs = False
                self.requesting = False
                if self.next is not None:
                    successor, self.next = self.next, None
                    self.has_token = False
                    self.stats.bump("token_passes")
                    yield from self._send(
                        successor, "token", payload=self._view_epoch
                    )
            elif msg.kind == "view_change":
                yield from self._apply_view_change(msg.payload)
            else:  # pragma: no cover - protocol bug
                raise ValueError(f"naimi: unknown message {msg!r}")

    # -- crash recovery ----------------------------------------------------------

    def _apply_view_change(self, info):
        """Crash reconfiguration injected by the membership service.

        Every survivor resets its probable-owner chain to point at the
        designated holder (regenerating the token there if it died with
        the crashed rank) and re-issues its outstanding request under the
        new epoch; the normal request handling then rebuilds the
        ``next``-chain in the order the re-requests arrive.
        """
        me = self.ctx.rank
        self._view_epoch = info["epoch"]
        new_holder = info["holder"]
        self.stats.bump("view_changes")
        # Drop the successor pointer wholesale — keeping a pre-crash
        # ``next`` while survivors re-request builds two inconsistent
        # chains (the release would feed the stale chain and strand the
        # holder's own next request).  The epoch-tagged re-requests below
        # rebuild the entire chain in arrival order.
        self.next = None
        if info["token_lost"]:
            self.has_token = me == new_holder
            # The regenerated token supersedes any copy still in flight;
            # a stale "token" arriving later is dropped by the epoch floor.
            self._token_epoch_floor = info["epoch"]
        if me == new_holder:
            self.last = me
            if self.has_token and self.requesting and not self.in_cs:
                self.in_cs = True
                self._grant_local()
        else:
            self.last = new_holder
            if self.requesting and not self.in_cs:
                yield from self._send(
                    new_holder, "request", payload=(me, self._view_epoch)
                )
                self.last = me
