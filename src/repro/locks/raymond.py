"""Raymond's tree-based distributed mutual exclusion (paper reference [18]).

K. Raymond, "A tree-based algorithm for distributed mutual exclusion",
ACM TOCS 7(1), 1989.  One of the algorithms the paper's related work
surveys before choosing the MCS software queuing lock.

Processes form a static spanning tree; a single *privilege token* moves
along tree edges.  Each node keeps:

* ``holder`` — the neighbor in whose direction the token lies (or ``self``);
* ``request_q`` — FIFO of neighbors (or ``self``) with outstanding requests;
* ``asked`` — whether a request was already forwarded toward the token.

Messages travel only between tree neighbors, so per-acquire message count
is O(diameter) = O(log N) on the balanced binary tree used here, and the
queue keeps it lower under contention (requests piggyback on the token's
path).  Compared with the ARMCI locks, every hop is a two-sided message
handled by the remote *user* process's progress engine rather than the
node's server thread.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Union

from .token_base import TokenLockBase

__all__ = ["RaymondLock", "tree_neighbors", "initial_holder"]

Self = "self"


def tree_neighbors(rank: int, nprocs: int) -> List[int]:
    """Neighbors of ``rank`` in the balanced binary heap tree over ranks."""
    neighbors = []
    if rank > 0:
        neighbors.append((rank - 1) // 2)
    for child in (2 * rank + 1, 2 * rank + 2):
        if child < nprocs:
            neighbors.append(child)
    return neighbors


def initial_holder(rank: int, home_rank: int, nprocs: int) -> Union[int, str]:
    """First hop from ``rank`` toward ``home_rank`` in the heap tree.

    The token starts at ``home_rank`` ("the lock located at one of the
    processes"), so every other node's ``holder`` must point one step along
    the unique tree path toward it.
    """
    if rank == home_rank:
        return Self
    # Walk home_rank's ancestor chain; if rank is an ancestor, the next hop
    # is rank's child on that chain.  Otherwise the next hop is rank's
    # parent.
    node = home_rank
    chain = [node]
    while node > 0:
        node = (node - 1) // 2
        chain.append(node)
    if rank in chain:
        return chain[chain.index(rank) - 1]
    return (rank - 1) // 2


class RaymondLock(TokenLockBase):
    """Raymond's algorithm, verbatim from the 1989 paper's four handlers."""

    kind = "raymond"

    def __init__(self, ctx, home_rank: int, name: str = "raymond"):
        super().__init__(ctx, home_rank, name)
        self.neighbors = tree_neighbors(ctx.rank, ctx.nprocs)
        self.holder: Union[int, str] = initial_holder(
            ctx.rank, home_rank, ctx.nprocs
        )
        self.using = False
        self.asked = False
        self.request_q: Deque[Union[int, str]] = deque()

    # -- the four state-machine procedures --------------------------------------------

    def _assign_privilege(self):
        if self.holder == Self and not self.using and self.request_q:
            self.holder = self.request_q.popleft()
            self.asked = False
            if self.holder == Self:
                self.using = True
                self._grant_local()
            else:
                self.stats.bump("token_passes")
                yield from self._send(
                    self.holder, "privilege", payload=self._view_epoch
                )

    def _make_request(self):
        if self.holder != Self and self.request_q and not self.asked:
            self.asked = True
            yield from self._send(self.holder, "request", payload=self._view_epoch)

    # -- daemon --------------------------------------------------------------------------

    def _daemon_loop(self):
        while True:
            msg = yield from self._recv()
            if msg.kind == "local_request":
                self.request_q.append(Self)
            elif msg.kind == "request":
                if (msg.payload or 0) < self._view_epoch:
                    # Sent before a crash reconfiguration; the sender
                    # re-issues under the new (star) topology.
                    self.stats.bump("stale_requests_dropped")
                    continue
                self.request_q.append(msg.src)
            elif msg.kind == "privilege":
                if (msg.payload or 0) < self._token_epoch_floor:
                    # Regenerated after a crash while this copy was still
                    # in flight; accepting it would create a second holder.
                    self.stats.bump("stale_privileges_dropped")
                    continue
                self.holder = Self
            elif msg.kind == "local_release":
                self.using = False
            elif msg.kind == "view_change":
                self._apply_view_change(msg.payload)
            else:  # pragma: no cover - protocol bug
                raise ValueError(f"raymond: unknown message {msg!r}")
            yield from self._assign_privilege()
            yield from self._make_request()

    # -- crash recovery ------------------------------------------------------------------

    def _apply_view_change(self, info) -> None:
        """Crash reconfiguration injected by the membership service.

        The static spanning tree may have lost interior nodes, so survivors
        abandon it and reform as a *star* rooted at the designated holder —
        a valid (depth-1) Raymond tree.  Neighbor requests queued on behalf
        of possibly-dead subtrees are pruned; live requesters re-issue under
        the new epoch (their pre-crash requests are epoch-filtered).  The
        daemon loop's trailing ``_assign_privilege``/``_make_request`` pair
        then regrants or re-requests as needed.
        """
        me = self.ctx.rank
        self._view_epoch = info["epoch"]
        new_holder = info["holder"]
        self.stats.bump("view_changes")
        # Keep only our own outstanding request; neighbor entries may route
        # through dead subtrees and their owners will re-request directly.
        self.request_q = deque(x for x in self.request_q if x == Self)
        self.asked = False
        if info["token_lost"]:
            # The regenerated privilege supersedes any copy still in
            # flight; a stale "privilege" arriving later is dropped by the
            # epoch floor.
            self._token_epoch_floor = info["epoch"]
        if me == new_holder:
            if info["token_lost"]:
                self.holder = Self
            # else: we already hold the token (holder == Self) or it is in
            # flight to us and "privilege" will arrive; leave holder as-is.
        else:
            self.holder = new_holder
