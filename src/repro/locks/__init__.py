"""Distributed lock algorithms.

The paper's pair: ``hybrid`` (the original ARMCI ticket + server-queue
algorithm) and ``mcs`` (the optimized software queuing lock).  Components
and related-work baselines: ``ticket`` and ``lh`` [9] (shared-memory,
single-node), ``server`` (pure server queue), ``raymond`` [18] and
``naimi`` [20] (token algorithms over message passing).
"""

from typing import Any

from .base import BaseLock, LockStats
from .hybrid import HybridLock
from .lh import LHLock
from .mcs import MCSLock
from .naimi import NaimiTrehelLock
from .raymond import RaymondLock
from .server_queue import ServerQueueLock
from .ticket import TicketLock

__all__ = [
    "BaseLock",
    "HybridLock",
    "LHLock",
    "LOCK_KINDS",
    "LockStats",
    "MCSLock",
    "NaimiTrehelLock",
    "RaymondLock",
    "ServerQueueLock",
    "TicketLock",
    "make_lock",
]

#: Registry of lock algorithms by short name (see module docstring).
LOCK_KINDS = {
    "ticket": TicketLock,
    "lh": LHLock,
    "server": ServerQueueLock,
    "hybrid": HybridLock,
    "mcs": MCSLock,
    "raymond": RaymondLock,
    "naimi": NaimiTrehelLock,
}


def make_lock(kind: str, ctx: Any, home_rank: int, name: str = "lock", **kwargs) -> BaseLock:
    """Construct a lock handle by algorithm name.

    ``kind`` is one of ``"ticket"``, ``"server"``, ``"hybrid"`` (the
    original ARMCI algorithm), or ``"mcs"`` (the paper's optimized
    software queuing lock).
    """
    try:
        cls = LOCK_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown lock kind {kind!r}; choose from {sorted(LOCK_KINDS)}"
        ) from None
    return cls(ctx, home_rank, name=name, **kwargs)
