"""Parse ``--topo`` command-line specs into a :class:`Hierarchy`.

Grammar (innermost level first, comma-separated)::

    SPEC  ::= LEVEL ("," LEVEL)*
    LEVEL ::= NAME ":" ARITY [":" LATENCY_US [":" PER_BYTE_US [":" CONTENTION]]]

Empty numeric fields inherit the base ``NetworkParams`` value, so
``switch:8,rack:16:26.0`` builds 8-node leaf switches at the flat
inter-node latency under racks whose uplinks cost 26 µs, and
``switch:8::0.008`` overrides only the per-byte cost.  Malformed specs
raise :class:`ValueError` with a one-line message; the CLI converts that
to its ``_CliError`` stderr + exit-code-2 convention.
"""

from __future__ import annotations

from typing import Optional

from .hierarchy import Hierarchy, LevelSpec

__all__ = ["parse_topo_spec"]


def _float_field(text: str, spec: str, what: str) -> Optional[float]:
    if text == "":
        return None
    try:
        return float(text)
    except ValueError:
        raise ValueError(
            f"bad --topo spec {spec!r}: {what} must be a number, got {text!r}"
        ) from None


def parse_topo_spec(spec: str) -> Hierarchy:
    """Parse a topology spec string; raises ``ValueError`` when malformed."""
    if not spec or not spec.strip():
        raise ValueError("bad --topo spec: empty")
    levels = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            raise ValueError(f"bad --topo spec {spec!r}: empty level entry")
        fields = part.split(":")
        if len(fields) < 2 or len(fields) > 5:
            raise ValueError(
                f"bad --topo spec {spec!r}: level {part!r} must be "
                "NAME:ARITY[:LATENCY_US[:PER_BYTE_US[:CONTENTION]]]"
            )
        name = fields[0].strip()
        if not name:
            raise ValueError(f"bad --topo spec {spec!r}: level needs a name")
        try:
            arity = int(fields[1])
        except ValueError:
            raise ValueError(
                f"bad --topo spec {spec!r}: arity must be an int, "
                f"got {fields[1]!r}"
            ) from None
        latency = _float_field(fields[2], spec, "latency_us") if len(fields) > 2 else None
        per_byte = _float_field(fields[3], spec, "per_byte_us") if len(fields) > 3 else None
        contention = (
            _float_field(fields[4], spec, "contention") if len(fields) > 4 else None
        )
        try:
            levels.append(
                LevelSpec(
                    name=name,
                    arity=arity,
                    latency_us=latency,
                    per_byte_us=per_byte,
                    contention=1.0 if contention is None else contention,
                )
            )
        except ValueError as exc:
            raise ValueError(f"bad --topo spec {spec!r}: {exc}") from None
    try:
        return Hierarchy(levels=tuple(levels))
    except ValueError as exc:
        raise ValueError(f"bad --topo spec {spec!r}: {exc}") from None
