"""Hierarchical topology subsystem: multi-level network model and
topology-aware synchronization algorithms.

* :mod:`repro.topo.hierarchy` — the multi-level model
  (:class:`Hierarchy` / :class:`LevelSpec`) consumed by the fabric.
* :mod:`repro.topo.spec` — ``--topo`` spec-string parsing.
* :mod:`repro.topo.algorithms` — k-ary combining tree, dissemination,
  and two-level leader-based combined fence+barriers (imported lazily
  by ``repro.armci.barrier``; do not import it here, it would cycle
  through ``net.params``).
* :mod:`repro.topo.coalesce` — per-node actor coalescing for scalebench
  runs at N=16384.
"""

from .hierarchy import Hierarchy, LevelSpec, two_level
from .spec import parse_topo_spec

__all__ = ["Hierarchy", "LevelSpec", "two_level", "parse_topo_spec"]
