"""Per-node actor coalescing: one generator drives a node's ranks.

At N=16384 a faithful per-rank simulation is dominated by work that is
*homogeneous within a node*: every rank's intra-node put rides the same
shared-memory fast path, and the two-level barrier's intra-node
gather/scatter/signal/release phases serialize at the node leader with
per-rank costs that are pure arithmetic.  Coalescing replaces the
``procs_per_node`` generators of a node with **one actor per node** that

* charges the homogeneous intra-node phases analytically (one
  ``timeout`` with the same per-rank cost formulas the calibrated
  estimates use), and
* runs the *inter-node* phases for real: the actor is a rank in an
  ``nnodes``-process runtime (one rank per node, so actor rank == fabric
  node id and the hierarchy prices links exactly as in the full run),
  issuing the node's boundary put and the leaders' exchange/barrier as
  genuine simulated messages — NIC serialization, queueing, faults, and
  per-level latencies all still come from the fabric.

What is *not* simulated per-rank: the intra-node queue occupancy of
individual non-leader ranks, and the per-rank ``op_done`` polls for
operations that complete locally in shared memory (local puts need no
fence).  The leaders' exchange also carries per-*node* totals (vector
length ``nnodes``) where the full run carries per-*rank* totals (length
N); :func:`vector_inflation_us` charges the difference in serialization
time analytically so coalesced sync times stay comparable with the full
two-level run (accuracy asserted in tests).

Simulated event counts and memory then scale with ``nnodes`` instead of
N — the difference between N=16384 being a CI smoke test and being
infeasible.
"""

from __future__ import annotations

from ..armci.barrier import _level_link

__all__ = [
    "intra_puts_charge_us",
    "gather_charge_us",
    "local_round_charge_us",
    "vector_inflation_us",
    "coalesced_scale_workload",
]


def intra_puts_charge_us(params, ppn: int, cells: int) -> float:
    """CPU time of the node's ``ppn - 1`` virtual intra-node puts.

    Each is a local shared-memory put: API entry, one queue access, and
    the payload memcpy.  Local puts complete synchronously and generate
    no fence traffic, matching the full run's ``puts_local`` path.
    """
    per_put = (
        params.api_call_us
        + params.shm_access_us
        + cells * 8 * params.mem_copy_per_byte_us
    )
    return (ppn - 1) * per_put


def local_round_charge_us(params, ppn: int) -> float:
    """One intra-node leader round: gather, scatter, signal, or release.

    The leader serializes ``ppn - 1`` queue operations (an MPI-layer
    call plus the shared-memory access each), after one intra-node
    delivery latency — the same formula ``estimate_twolevel_us`` prices.
    """
    return (ppn - 1) * (params.mp_call_us + params.shm_access_us) + params.intra_latency_us


def gather_charge_us(params, ppn: int) -> float:
    """Stage-1 intra-node gather of ``op_init`` vectors to the leader."""
    return local_round_charge_us(params, ppn)


def vector_inflation_us(params, nprocs: int, nnodes: int) -> float:
    """Serialization time the leaders' exchange saves by carrying
    per-node totals (length ``nnodes``) instead of per-rank totals
    (length ``nprocs``): the per-phase byte difference priced at each
    phase's crossing-level per-byte cost."""
    extra_bytes = 8 * (nprocs - nnodes)
    if extra_bytes <= 0:
        return 0.0
    total = 0.0
    distance = 1
    while distance < nnodes:
        _lat, per_byte = _level_link(params, 0, distance)
        total += extra_bytes * per_byte
        distance *= 2
    return total


def coalesced_scale_workload(ctx, leaders_algorithm: str, cfg, ppn: int):
    """Scalebench program for one per-node actor (see module docstring).

    ``ctx`` is a rank in an ``nnodes``-process runtime.  Each iteration:
    charge the node's virtual intra-node puts, issue the real boundary
    put to the next node's leader, then run the two-level barrier with
    analytic intra-node phases around a real ``leaders_algorithm``
    barrier among the actors.
    """
    params = ctx.armci.params
    env = ctx.env
    nnodes = ctx.nprocs
    nprocs = nnodes * ppn
    right = (ctx.rank + 1) % nnodes
    addr = ctx.regions[right].alloc_named(
        "scalebench", max(cfg.put_cells, 1), initial=0.0
    )
    values = [float(ctx.rank)] * cfg.put_cells
    puts_charge = intra_puts_charge_us(params, ppn, cfg.put_cells)
    # gather before the leaders' exchange; scatter + signal + release after
    # (the serialized leader work is the same total either side of the
    # inter-node phases, and stage 2 for virtual local ops is free: local
    # puts complete synchronously in shared memory).
    pre_charge = gather_charge_us(params, ppn)
    post_charge = 3 * local_round_charge_us(params, ppn)
    inflation = vector_inflation_us(params, nprocs, nnodes)
    sw = ctx.stopwatch("ga_sync")
    for _iteration in range(cfg.iterations):
        if cfg.put_cells > 0:
            if puts_charge > 0.0:
                yield env.timeout(puts_charge)
            yield from ctx.armci.put_segments(right, [(addr, values)])
        sw.start()
        if pre_charge > 0.0:
            yield env.timeout(pre_charge)
        yield from ctx.armci.barrier(algorithm=leaders_algorithm)
        if post_charge + inflation > 0.0:
            yield env.timeout(post_charge + inflation)
        sw.stop()
    return sw.samples
