"""Topology-aware combined fence+barrier algorithms.

Three first-class alternatives to the paper's flat binary exchange
(:func:`repro.armci.barrier._exchange`), all with the same three-stage
semantics — distribute ``op_init[]`` totals, wait for local ``op_done``
completion, synchronize — and the same fence-inclusion guarantee:

* ``kary`` — a k-ary combining tree (radix ``params.tree_radix``).
  Stage 1 reduces the ``op_init`` vectors up the tree and broadcasts the
  totals back down; stage 3 gathers and releases over the same tree.
  With radix = procs_per_node and block placement, each leaf group is
  one SMP node, so the widest tier of the tree stays on intra-node
  links.

* ``dissemination`` — stage 1 runs a dissemination *sum* (each round
  ``d`` sends the partial vector to ``rank + d`` and adds the one from
  ``rank - d``; for power-of-two N every contribution is counted exactly
  once).  Non-power-of-two N falls back to the binary exchange with the
  standard fold.  Stage 3 is the dissemination barrier.  Included as
  the topology-*oblivious* log-depth baseline: every round crosses
  node boundaries, so it prices what hierarchy-awareness buys.

* ``twolevel`` — the node-leader algorithm of the 1024-core barrier
  literature: non-leaders ship their ``op_init`` vectors to the node
  leader over intra-node (shared-memory queue) messages, the leaders
  alone run the inter-node exchange — one vector per *node* on the wire
  instead of one per rank, which removes the per-NIC serialization
  convoy that saturates the flat exchange at scale — and leaders
  release their locals after a leaders-only dissemination barrier.
  Stage 2 stays per-rank: every rank polls its own server's
  ``op_done`` counter.

All three run over the :class:`~repro.mp.comm.Comm` point-to-point layer
(so link faults and the reliable delivery layer apply unchanged) and are
only entered crash-free: under an active membership service
``armci_barrier`` routes every host algorithm to the resilient exchange,
exactly as it does for ``linear``.  SPMD call order is assumed; a
per-Armci sequence number (``_topo_barrier_seq``) keeps successive
barriers' messages from cross-matching, with distinct round offsets per
stage inside one barrier.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

from ..mp import collectives

if TYPE_CHECKING:  # pragma: no cover
    from ..armci.api import Armci

__all__ = ["kary_sync", "dissemination_sync", "twolevel_sync"]

_TAG_TWOLEVEL = 8 << 24
_TAG_KARY = 9 << 24
_TAG_DISSEM = 10 << 24

# Round-offset map within one barrier's 64-round tag window (stride 64,
# see repro.mp.collectives._tag): gather, then up to 31 allreduce rounds,
# scatter/signal, then up to 29 stage-3 rounds, release.
_R_GATHER = 0
_R_ALLREDUCE = 1
_R_SCATTER = 32
_R_SIGNAL = 33
_R_STAGE3 = 34
_R_RELEASE = 63


def _tag(base: int, seq: int, round_no: int) -> int:
    return base + (seq % 4096) * 64 + round_no


def _bump_seq(armci: "Armci") -> int:
    seq = armci._topo_barrier_seq
    armci._topo_barrier_seq = seq + 1
    return seq


def _stage2_wait(armci: "Armci", target: int):
    """Per-rank stage 2: poll the local server's op_done counter.

    Identical contract to the flat exchange's stage 2, including the
    watchdog degrade to the conservative AllFence path.
    """
    from ..armci.barrier import _stage2_wait_with_watchdog

    region, addr = armci.server.op_done_cell(armci.rank)
    watchdog_us = armci.params.watchdog_timeout_us
    if watchdog_us > 0.0:
        done = yield from _stage2_wait_with_watchdog(
            armci, region, addr, target, watchdog_us
        )
        if not done:
            from ..armci import fence as fence_mod

            armci.stats["barrier_fallbacks"] = (
                armci.stats.get("barrier_fallbacks", 0) + 1
            )
            yield from fence_mod.allfence_linear(armci)
    else:
        yield from region.wait_until(
            addr, lambda v: v >= target, poll_detect_us=armci.params.poll_detect_us
        )


# -- generic subset collectives ----------------------------------------------------


def _allreduce_over(
    comm,
    values: Sequence,
    ranks: Sequence[int],
    base: int,
    seq: int,
    round0: int,
):
    """Recursive-doubling elementwise sum over the ``ranks`` subset.

    Mirrors :func:`repro.mp.collectives.allreduce_sum` (power-of-two
    core plus fold for the remainder), but over an arbitrary agreed rank
    list — the leaders of the two-level barrier.  Only members call it.
    """
    n = len(ranks)
    acc = list(values)
    if n == 1:
        return acc
    vrank = ranks.index(comm.rank)
    nbytes = 8 * len(acc)

    pof2 = 1
    while pof2 * 2 <= n:
        pof2 *= 2
    rem = n - pof2

    round_no = round0
    in_core = True
    if rem:
        if vrank >= pof2:
            yield from comm.send(
                ranks[vrank - pof2], acc,
                tag=_tag(base, seq, round_no), payload_bytes=nbytes,
            )
            in_core = False
        elif vrank < rem:
            msg = yield from comm.recv(
                source=ranks[vrank + pof2], tag=_tag(base, seq, round_no)
            )
            acc = [a + b for a, b in zip(acc, msg.payload)]
        round_no += 1

    x = 1
    while x < pof2:
        if in_core:
            partner = ranks[vrank ^ x]
            msg = yield from comm.sendrecv(
                partner, acc, tag=_tag(base, seq, round_no), payload_bytes=nbytes
            )
            acc = [a + b for a, b in zip(acc, msg.payload)]
        x *= 2
        round_no += 1

    if rem:
        tag = _tag(base, seq, round_no)
        if vrank < rem:
            yield from comm.send(
                ranks[vrank + pof2], acc, tag=tag, payload_bytes=nbytes
            )
        elif vrank >= pof2:
            msg = yield from comm.recv(source=ranks[vrank - pof2], tag=tag)
            acc = list(msg.payload)
    return acc


def _barrier_over(comm, ranks: Sequence[int], base: int, seq: int, round0: int):
    """Dissemination barrier over the ``ranks`` subset."""
    n = len(ranks)
    if n <= 1:
        return
    vrank = ranks.index(comm.rank)
    distance = 1
    round_no = round0
    while distance < n:
        tag = _tag(base, seq, round_no)
        yield from comm.sendrecv(
            ranks[(vrank + distance) % n],
            None,
            source=ranks[(vrank - distance) % n],
            tag=tag,
            payload_bytes=0,
        )
        distance *= 2
        round_no += 1


# -- k-ary combining tree ----------------------------------------------------------


def _kary_children(rank: int, radix: int, nprocs: int) -> List[int]:
    first = radix * rank + 1
    return list(range(first, min(first + radix, nprocs)))


def kary_sync(armci: "Armci"):
    """Three-stage barrier over a k-ary combining tree rooted at rank 0."""
    comm = armci.comm
    rank = armci.rank
    n = armci.nprocs
    radix = armci.params.tree_radix
    seq = _bump_seq(armci)
    monitor = armci._monitor
    if monitor is not None:
        # All-to-all dependence holds (it is a full barrier), so joining
        # every enter at each exit is sound for the happens-before engine.
        monitor.emit("coll_enter", coll="kary", epoch=seq)
    children = _kary_children(rank, radix, n)
    parent = (rank - 1) // radix
    nbytes = 8 * n

    # Stage 1a: reduce op_init vectors up the tree.
    acc = list(armci.op_init)
    for child in children:
        msg = yield from comm.recv(
            source=child, tag=_tag(_TAG_KARY, seq, _R_GATHER)
        )
        acc = [a + b for a, b in zip(acc, msg.payload)]
    if rank != 0:
        yield from comm.send(
            parent, acc, tag=_tag(_TAG_KARY, seq, _R_GATHER), payload_bytes=nbytes
        )
        # Stage 1b: totals come back down.
        msg = yield from comm.recv(
            source=parent, tag=_tag(_TAG_KARY, seq, _R_ALLREDUCE)
        )
        totals = msg.payload
    else:
        totals = acc
    for child in children:
        yield from comm.send(
            child, totals, tag=_tag(_TAG_KARY, seq, _R_ALLREDUCE), payload_bytes=nbytes
        )

    # Stage 2: local completion.
    yield from _stage2_wait(armci, totals[rank])

    # Stage 3: zero-byte gather + release over the same tree.
    for child in children:
        yield from comm.recv(source=child, tag=_tag(_TAG_KARY, seq, _R_STAGE3))
    if rank != 0:
        yield from comm.send(
            parent, None, tag=_tag(_TAG_KARY, seq, _R_STAGE3), payload_bytes=0
        )
        yield from comm.recv(source=parent, tag=_tag(_TAG_KARY, seq, _R_RELEASE))
    for child in children:
        yield from comm.send(
            child, None, tag=_tag(_TAG_KARY, seq, _R_RELEASE), payload_bytes=0
        )
    if monitor is not None:
        monitor.emit("coll_exit", coll="kary", epoch=seq)


# -- dissemination ----------------------------------------------------------------


def dissemination_sync(armci: "Armci"):
    """Three-stage barrier with a dissemination-sum stage 1.

    For power-of-two N the dissemination pattern computes the exact
    elementwise sum in ``log2 N`` rounds with no separate broadcast; any
    other N falls back to the binary exchange with the standard fold
    (same asymptotics, two extra latencies).
    """
    comm = armci.comm
    rank = armci.rank
    n = armci.nprocs
    seq = _bump_seq(armci)
    monitor = armci._monitor
    if monitor is not None:
        monitor.emit("coll_enter", coll="dissemination", epoch=seq)
    if n & (n - 1):
        totals = yield from collectives.allreduce_sum(comm, armci.op_init)
    else:
        acc = list(armci.op_init)
        nbytes = 8 * n
        distance = 1
        round_no = _R_ALLREDUCE
        while distance < n:
            msg = yield from comm.sendrecv(
                (rank + distance) % n,
                acc,
                source=(rank - distance) % n,
                tag=_tag(_TAG_DISSEM, seq, round_no),
                payload_bytes=nbytes,
            )
            acc = [a + b for a, b in zip(acc, msg.payload)]
            distance *= 2
            round_no += 1
        totals = acc

    yield from _stage2_wait(armci, totals[rank])

    yield from collectives.barrier(comm)
    if monitor is not None:
        monitor.emit("coll_exit", coll="dissemination", epoch=seq)


# -- two-level leader-based --------------------------------------------------------


def twolevel_sync(armci: "Armci"):
    """Node-leader gathers locally, leaders exchange, leaders release.

    Stage 1: non-leaders ship ``op_init`` to their node leader over the
    intra-node queue; leaders sum and run a recursive-doubling exchange
    among themselves (one vector per node on the wire), then hand each
    local rank its own slot of the totals.  Stage 2 is per-rank.  Stage
    3: locals signal the leader, leaders run a dissemination barrier,
    leaders release locals.
    """
    comm = armci.comm
    topology = armci.topology
    rank = armci.rank
    seq = _bump_seq(armci)
    monitor = armci._monitor
    if monitor is not None:
        monitor.emit("coll_enter", coll="twolevel", epoch=seq)
    locals_ = topology.ranks_on(armci.node)
    leader = locals_[0]
    nbytes = 8 * armci.nprocs

    if rank == leader:
        acc = list(armci.op_init)
        for _ in range(len(locals_) - 1):
            msg = yield from comm.recv(tag=_tag(_TAG_TWOLEVEL, seq, _R_GATHER))
            acc = [a + b for a, b in zip(acc, msg.payload)]
        leaders = [topology.ranks_on(node)[0] for node in range(topology.nnodes)]
        totals = yield from _allreduce_over(
            comm, acc, leaders, _TAG_TWOLEVEL, seq, _R_ALLREDUCE
        )
        for r in locals_:
            if r != leader:
                yield from comm.send(
                    r, totals[r], tag=_tag(_TAG_TWOLEVEL, seq, _R_SCATTER),
                    payload_bytes=8,
                )
        target = totals[rank]
    else:
        yield from comm.send(
            leader, armci.op_init, tag=_tag(_TAG_TWOLEVEL, seq, _R_GATHER),
            payload_bytes=nbytes,
        )
        msg = yield from comm.recv(
            source=leader, tag=_tag(_TAG_TWOLEVEL, seq, _R_SCATTER)
        )
        target = msg.payload

    yield from _stage2_wait(armci, target)

    if rank == leader:
        for _ in range(len(locals_) - 1):
            yield from comm.recv(tag=_tag(_TAG_TWOLEVEL, seq, _R_SIGNAL))
        leaders = [topology.ranks_on(node)[0] for node in range(topology.nnodes)]
        yield from _barrier_over(comm, leaders, _TAG_TWOLEVEL, seq, _R_STAGE3)
        for r in locals_:
            if r != leader:
                yield from comm.send(
                    r, None, tag=_tag(_TAG_TWOLEVEL, seq, _R_RELEASE),
                    payload_bytes=0,
                )
    else:
        yield from comm.send(
            leader, None, tag=_tag(_TAG_TWOLEVEL, seq, _R_SIGNAL), payload_bytes=0
        )
        yield from comm.recv(source=leader, tag=_tag(_TAG_TWOLEVEL, seq, _R_RELEASE))
    if monitor is not None:
        monitor.emit("coll_exit", coll="twolevel", epoch=seq)
