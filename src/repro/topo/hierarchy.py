"""Multi-level network hierarchy: core -> SMP node -> switch -> cluster.

The flat model charges every inter-node message the same
``inter_latency_us``.  Real clusters are not flat: a pair of nodes under
the same leaf switch exchange messages in a few microseconds, while a
pair in different racks crosses one or more uplinks, each adding latency
and (over oversubscribed links) contention.  A :class:`Hierarchy`
describes that structure as an ordered tuple of :class:`LevelSpec`
entries, innermost first:

::

    levels[0]  "switch"   groups of  arity_0             nodes
    levels[1]  "rack"     groups of  arity_0 * arity_1   nodes
    ...
    levels[-1] outermost  everything else

The *crossing level* of a node pair ``(a, b)`` is the innermost level
whose group contains both: with block node numbering, level ``i`` covers
groups of ``cap_i = arity_0 * ... * arity_i`` consecutive nodes, so the
crossing level is the smallest ``i`` with ``a // cap_i == b // cap_i``
(pairs beyond the outermost capacity charge the outermost level).  The
fabric then prices the message from that level's ``(latency_us,
per_byte_us, contention)`` instead of the single flat wire latency.

Per-level parameters *inherit* from the base :class:`NetworkParams`:
``latency_us=None`` means "this level costs the flat
``inter_latency_us``", and ``per_byte_us=None`` likewise inherits the
flat serialization cost; ``contention`` multiplies the effective
per-byte cost to model oversubscribed uplinks.  A degenerate single
level with both fields inherited therefore reproduces the flat model's
arithmetic exactly (asserted byte-for-byte in tests).

The model intentionally stays below ``Topology`` (which maps *ranks* to
*nodes*); a hierarchy groups *nodes*.  The innermost "core -> SMP node"
tier of the paper's machines is already modeled by
``procs_per_node``/``intra_latency_us`` and is not repeated here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["LevelSpec", "Hierarchy", "two_level"]


@dataclass(frozen=True)
class LevelSpec:
    """One tier of the hierarchy (see module docstring for semantics).

    ``arity`` is how many groups of the previous tier one group of this
    tier contains (for the innermost level: how many nodes per group).
    ``latency_us``/``per_byte_us`` of ``None`` inherit the base
    ``NetworkParams`` values; ``contention >= 1`` scales the effective
    per-byte cost of links crossing this level.
    """

    name: str
    arity: int
    latency_us: Optional[float] = None
    per_byte_us: Optional[float] = None
    contention: float = 1.0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"level name must be a non-empty string, got {self.name!r}")
        if self.arity < 2:
            raise ValueError(
                f"level {self.name!r}: arity must be >= 2, got {self.arity}"
            )
        if self.latency_us is not None and self.latency_us < 0:
            raise ValueError(
                f"level {self.name!r}: latency_us must be non-negative, "
                f"got {self.latency_us}"
            )
        if self.per_byte_us is not None and self.per_byte_us < 0:
            raise ValueError(
                f"level {self.name!r}: per_byte_us must be non-negative, "
                f"got {self.per_byte_us}"
            )
        if self.contention < 1.0:
            raise ValueError(
                f"level {self.name!r}: contention must be >= 1, "
                f"got {self.contention}"
            )


@dataclass(frozen=True)
class Hierarchy:
    """An ordered multi-level topology, innermost level first."""

    levels: Tuple[LevelSpec, ...]
    #: Cumulative group sizes (nodes per group at each level), derived.
    caps: Tuple[int, ...] = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("hierarchy needs at least one level")
        if not all(isinstance(lv, LevelSpec) for lv in self.levels):
            raise TypeError("hierarchy levels must be LevelSpec instances")
        names = [lv.name for lv in self.levels]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate level names: {names}")
        caps: List[int] = []
        cap = 1
        for lv in self.levels:
            cap *= lv.arity
            caps.append(cap)
        object.__setattr__(self, "caps", tuple(caps))

    @property
    def nlevels(self) -> int:
        return len(self.levels)

    def crossing_level(self, node_a: int, node_b: int) -> int:
        """Index of the innermost level whose group holds both nodes.

        Pairs in no common group (ids beyond the outermost capacity)
        charge the outermost level.  Same-node pairs are the caller's
        fast path (intra-node never consults the hierarchy).
        """
        for i, cap in enumerate(self.caps):
            if node_a // cap == node_b // cap:
                return i
        return len(self.caps) - 1

    def resolve(self, base_latency_us: float, base_per_byte_us: float):
        """Per-level ``(latency_us, per_byte_us)`` with inheritance applied.

        Returns two tuples indexed by level; ``contention`` is folded
        into the per-byte figure (an oversubscribed uplink serializes
        proportionally more per payload byte).
        """
        lat = tuple(
            lv.latency_us if lv.latency_us is not None else base_latency_us
            for lv in self.levels
        )
        per_byte = tuple(
            (lv.per_byte_us if lv.per_byte_us is not None else base_per_byte_us)
            * lv.contention
            for lv in self.levels
        )
        return lat, per_byte

    def label(self) -> str:
        """Compact single-line form, e.g. ``switch:8 > cluster:4096``."""
        return " > ".join(f"{lv.name}:{lv.arity}" for lv in self.levels)

    def describe(self) -> str:
        """One line per level, for CLI/doc output."""
        lines = []
        for lv, cap in zip(self.levels, self.caps):
            lat = "inherit" if lv.latency_us is None else f"{lv.latency_us}us"
            pb = "inherit" if lv.per_byte_us is None else f"{lv.per_byte_us}us/B"
            lines.append(
                f"{lv.name}: {cap} nodes/group, latency {lat}, "
                f"per-byte {pb}, contention x{lv.contention}"
            )
        return "\n".join(lines)


def two_level(
    switch_arity: int,
    uplink_latency_us: float = 26.0,
    uplink_contention: float = 1.0,
    cluster_arity: int = 4096,
) -> Hierarchy:
    """Convenience: leaf switches of ``switch_arity`` nodes under one spine.

    The leaf level inherits the flat inter-node parameters; crossing the
    spine costs ``uplink_latency_us`` with optional per-byte contention.
    """
    return Hierarchy(
        levels=(
            LevelSpec(name="switch", arity=switch_arity),
            LevelSpec(
                name="cluster",
                arity=cluster_arity,
                latency_us=uplink_latency_us,
                contention=uplink_contention,
            ),
        )
    )
