"""MPI-like point-to-point messaging over the simulated fabric.

ARMCI is designed to coexist with a message-passing library (MPI or PVM);
the paper's combined barrier explicitly reuses the message-passing layer's
binary-exchange communication.  :class:`Comm` provides the two-sided
primitives those algorithms need: tagged ``send``/``recv`` with
source/tag matching (MPI semantics: arrival order within a matching set),
plus ``sendrecv`` whose send and receive overlap — the property that makes a
binary-exchange phase cost one latency instead of two (paper §3.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..net.fabric import Fabric
from ..net.message import Envelope, mp_endpoint
from ..net.params import SMALL_MSG_BYTES, NetworkParams
from ..net.topology import Topology
from ..sim.core import Environment
from ..sim.primitives import FilterStore

__all__ = ["Comm", "MPMessage", "ANY_SOURCE", "ANY_TAG"]

#: Wildcard source for :meth:`Comm.recv`.
ANY_SOURCE = -1
#: Wildcard tag for :meth:`Comm.recv`.
ANY_TAG = -1


@dataclass(slots=True)
class MPMessage:
    """A two-sided message."""

    src: int
    dst: int
    tag: int
    payload: Any


class Comm:
    """Per-process communicator endpoint."""

    def __init__(
        self,
        env: Environment,
        rank: int,
        topology: Topology,
        fabric: Fabric,
        params: NetworkParams,
    ):
        if not (0 <= rank < topology.nprocs):
            raise ValueError(f"rank {rank} out of range")
        self.env = env
        self.rank = rank
        self.nprocs = topology.nprocs
        self.topology = topology
        self.fabric = fabric
        self.params = params
        self.mailbox = FilterStore(env, name=f"mp[{rank}]")
        fabric.register(mp_endpoint(rank), self.mailbox)
        #: Messages sent / received (diagnostics).
        self.sent = 0
        self.received = 0

    def __repr__(self) -> str:
        return f"<Comm rank={self.rank}/{self.nprocs}>"

    # -- point to point --------------------------------------------------------

    def send(self, dst: int, payload: Any, tag: int = 0, payload_bytes: Optional[int] = None):
        """Sub-generator: send ``payload`` to rank ``dst``.

        Charges the sender's per-message CPU overhead and returns once the
        message is handed to the transport (eager protocol: small-message
        sends complete locally, like MPI eager sends and GM sends).
        """
        if not (0 <= dst < self.nprocs):
            raise ValueError(f"destination rank {dst} out of range")
        if payload_bytes is None:
            payload_bytes = _estimate_bytes(payload)
        msg = MPMessage(src=self.rank, dst=dst, tag=tag, payload=payload)
        self.sent += 1
        p = self.params
        if p.mp_call_us > 0.0:
            yield self.env.timeout(p.mp_call_us)
        # fabric.send, inlined (sends sit under every collective phase and
        # each delegated frame taxes every later resume of the caller).
        fabric = self.fabric
        rank_node = fabric._rank_node
        src_node = rank_node[self.rank]
        overhead = p.shm_access_us if src_node == rank_node[dst] else p.o_send_us
        if overhead > 0.0:
            yield self.env.timeout(overhead)
        fabric.post(
            self.rank, mp_endpoint(dst), msg,
            payload_bytes=payload_bytes, src_node=src_node,
        )

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Sub-generator: receive a matching message; returns the MPMessage."""

        def matches(envelope: Envelope) -> bool:
            msg = envelope.payload
            return (source == ANY_SOURCE or msg.src == source) and (
                tag == ANY_TAG or msg.tag == tag
            )

        if self.params.mp_call_us > 0.0:
            yield self.env.timeout(self.params.mp_call_us)
        envelope = yield self.mailbox.get(matches)
        p = self.params
        cost = p.shm_access_us if envelope.intra_node else p.o_recv_us
        if cost > 0.0:
            yield self.env.timeout(cost)
        self.received += 1
        return envelope.payload

    def sendrecv(
        self,
        dst: int,
        payload: Any,
        source: Optional[int] = None,
        tag: int = 0,
        payload_bytes: Optional[int] = None,
    ):
        """Sub-generator: overlapped send + receive (one latency per phase).

        Sends to ``dst`` and receives from ``source`` (default: ``dst``).
        Returns the received :class:`MPMessage`.
        """
        if source is None:
            source = dst
        yield from self.send(dst, payload, tag=tag, payload_bytes=payload_bytes)
        msg = yield from self.recv(source=source, tag=tag)
        return msg


def _estimate_bytes(payload: Any) -> int:
    """Rough wire size of a payload: 8 bytes per scalar element."""
    if payload is None:
        return 0
    if isinstance(payload, (list, tuple)):
        return max(8 * len(payload), 8)
    if isinstance(payload, (int, float, bool)):
        return 8
    if isinstance(payload, bytes):
        return len(payload)
    return SMALL_MSG_BYTES
