"""Collective operations built from point-to-point messages.

The paper's new ``ARMCI_Barrier()`` leans on two collectives:

* a **binary-exchange elementwise sum** of the ``op_init[]`` arrays
  (Figure 2 of the paper — a recursive-doubling allreduce); and
* a **binary-exchange barrier** (the ``MPI_Barrier`` pattern of §3.1.2),
  realized here as a dissemination barrier, which has the identical
  ``ceil(log2 N)`` one-latency phases and also handles non-powers-of-two.

All collectives are sub-generators over a :class:`~repro.mp.comm.Comm` and
assume SPMD call order (every rank invokes the same collectives in the same
order); a per-communicator sequence number keeps concurrent invocations'
messages from cross-matching.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from .comm import Comm

__all__ = [
    "barrier",
    "allreduce_sum",
    "allreduce_sum_fig2",
    "bcast",
    "gather",
    "allgather",
    "alltoall",
]

_TAG_BARRIER = 1 << 24
_TAG_ALLREDUCE = 2 << 24
_TAG_BCAST = 3 << 24
_TAG_GATHER = 4 << 24
_TAG_ALLGATHER = 5 << 24
_TAG_ALLTOALL = 6 << 24
_ROUND_STRIDE = 64


def _next_seq(comm: Comm) -> int:
    seq = getattr(comm, "_coll_seq", 0)
    comm._coll_seq = seq + 1
    return seq


def _san_monitor(comm: Comm):
    """RMCSan monitor, if one is installed on the communicator's env.

    Only collectives with *all-to-all* dependence (every rank's exit
    transitively depends on every rank's enter) emit enter/exit events —
    joining all enters at an exit would be unsound for rooted collectives
    like bcast/gather.
    """
    return getattr(comm.env, "_sync_monitor", None)


def _tag(base: int, seq: int, round_no: int) -> int:
    return base + (seq % 4096) * _ROUND_STRIDE + round_no


def barrier(comm: Comm):
    """Dissemination barrier: ceil(log2 N) overlapped sendrecv phases.

    Equivalent in cost to the paper's binary-exchange ``MPI_Barrier``:
    each phase is one overlapped exchange, so the communication time is
    ``log2(N)`` one-way latencies.
    """
    n = comm.nprocs
    if n == 1:
        return
    seq = _next_seq(comm)
    monitor = _san_monitor(comm)
    if monitor is not None:
        monitor.emit("coll_enter", coll="barrier", epoch=seq)
    rank = comm.rank
    distance = 1
    round_no = 0
    while distance < n:
        dst = (rank + distance) % n
        src = (rank - distance) % n
        tag = _tag(_TAG_BARRIER, seq, round_no)
        yield from comm.sendrecv(dst, None, source=src, tag=tag, payload_bytes=0)
        distance *= 2
        round_no += 1
    if monitor is not None:
        monitor.emit("coll_exit", coll="barrier", epoch=seq)


def allreduce_sum(comm: Comm, values: Sequence[Any]) -> Any:
    """Elementwise-sum allreduce of a vector (paper Figure 2).

    For powers of two this is exactly the paper's binary exchange: in phase
    ``x`` every process exchanges its partial vector with ``rank XOR x`` and
    adds.  Non-powers-of-two use the standard fold: the ``rem = N - 2**k``
    highest "extra" ranks first fold their vectors into a partner, the
    power-of-two core runs binary exchange, then results are copied back
    out to the extras (two extra latencies, preserving O(log N)).
    Returns the fully reduced vector (a new list).
    """
    n = comm.nprocs
    acc = list(values)
    if n == 1:
        return acc
    seq = _next_seq(comm)
    monitor = _san_monitor(comm)
    if monitor is not None:
        monitor.emit("coll_enter", coll="allreduce", epoch=seq)
    rank = comm.rank
    nbytes = 8 * len(acc)

    pof2 = 1
    while pof2 * 2 <= n:
        pof2 *= 2
    rem = n - pof2

    round_no = 0
    core_rank: Optional[int] = rank  # rank within the power-of-two core
    if rem:
        # Extras are ranks [pof2, n); extra i folds into partner i - pof2.
        if rank >= pof2:
            partner = rank - pof2
            yield from comm.send(
                partner, acc, tag=_tag(_TAG_ALLREDUCE, seq, round_no), payload_bytes=nbytes
            )
            core_rank = None
        elif rank < rem:
            msg = yield from comm.recv(
                source=rank + pof2, tag=_tag(_TAG_ALLREDUCE, seq, round_no)
            )
            acc = [a + b for a, b in zip(acc, msg.payload)]
        round_no += 1

    if core_rank is not None:
        x = 1
        while x < pof2:
            partner = rank ^ x
            msg = yield from comm.sendrecv(
                partner,
                acc,
                tag=_tag(_TAG_ALLREDUCE, seq, round_no),
                payload_bytes=nbytes,
            )
            acc = [a + b for a, b in zip(acc, msg.payload)]
            x *= 2
            round_no += 1
    else:
        # Extras skip the core's log2(pof2) rounds.
        x = 1
        while x < pof2:
            x *= 2
            round_no += 1

    if rem:
        if rank < rem:
            yield from comm.send(
                rank + pof2,
                acc,
                tag=_tag(_TAG_ALLREDUCE, seq, round_no),
                payload_bytes=nbytes,
            )
        elif rank >= pof2:
            msg = yield from comm.recv(
                source=rank - pof2, tag=_tag(_TAG_ALLREDUCE, seq, round_no)
            )
            acc = list(msg.payload)
    if monitor is not None:
        monitor.emit("coll_exit", coll="allreduce", epoch=seq)
    return acc


def allreduce_sum_fig2(comm: Comm, values: Sequence[Any]) -> Any:
    """The paper's Figure 2, line by line (power-of-two process counts).

    ::

        x = N / 2;
        while (x > 0) {
            send op_init[0..N-1] to process (my_id XOR x);
            receive into temp[0..N-1] from process (my_id XOR x);
            op_init[0..N-1] = op_init[0..N-1] + temp[0..N-1];
            x = x / 2;
        }

    Provided for fidelity and property-testing; :func:`allreduce_sum` is
    the general-N production version (same exchanges in the power-of-two
    case, just walked in the opposite mask order).
    """
    n = comm.nprocs
    if n & (n - 1):
        raise ValueError(f"Figure 2 requires a power-of-two process count, got {n}")
    acc = list(values)
    if n == 1:
        return acc
    seq = _next_seq(comm)
    monitor = _san_monitor(comm)
    if monitor is not None:
        monitor.emit("coll_enter", coll="allreduce", epoch=seq)
    nbytes = 8 * len(acc)
    x = n // 2
    round_no = 0
    while x > 0:
        partner = comm.rank ^ x
        msg = yield from comm.sendrecv(
            partner, acc, tag=_tag(_TAG_ALLREDUCE, seq, round_no),
            payload_bytes=nbytes,
        )
        acc = [a + b for a, b in zip(acc, msg.payload)]
        x //= 2
        round_no += 1
    if monitor is not None:
        monitor.emit("coll_exit", coll="allreduce", epoch=seq)
    return acc


def bcast(comm: Comm, value: Any = None, root: int = 0) -> Any:
    """Binomial-tree broadcast; returns the broadcast value on every rank.

    Standard MPICH formulation in the space where ``root`` is virtual rank
    0: each rank receives from the peer that clears its lowest set bit,
    then relays down its subtree.
    """
    n = comm.nprocs
    if not (0 <= root < n):
        raise ValueError(f"root {root} out of range")
    if n == 1:
        return value
    seq = _next_seq(comm)
    tag = _tag(_TAG_BCAST, seq, 0)
    vrank = (comm.rank - root) % n
    result = value
    # Receive phase: walk masks upward until this rank's lowest set bit.
    mask = 1
    while mask < n:
        if vrank & mask:
            src = ((vrank - mask) + root) % n
            msg = yield from comm.recv(source=src, tag=tag)
            result = msg.payload
            break
        mask *= 2
    # Send phase: relay to vrank + m for each m below the receive mask.
    mask //= 2
    while mask >= 1:
        peer = vrank + mask
        if peer < n:
            dst = (peer + root) % n
            yield from comm.send(dst, result, tag=tag)
        mask //= 2
    return result


def gather(comm: Comm, value: Any, root: int = 0) -> Optional[List[Any]]:
    """Gather one value per rank to ``root`` (flat, N-1 messages).

    Returns the list ordered by rank on the root, ``None`` elsewhere.
    """
    n = comm.nprocs
    if not (0 <= root < n):
        raise ValueError(f"root {root} out of range")
    seq = _next_seq(comm)
    tag = _tag(_TAG_GATHER, seq, 0)
    if comm.rank == root:
        result: List[Any] = [None] * n
        result[root] = value
        for _ in range(n - 1):
            msg = yield from comm.recv(tag=tag)
            result[msg.src] = msg.payload
        return result
    yield from comm.send(root, value, tag=tag)
    return None


def allgather(comm: Comm, value: Any) -> List[Any]:
    """Gather one value per rank to every rank (ring algorithm)."""
    n = comm.nprocs
    result: List[Any] = [None] * n
    result[comm.rank] = value
    if n == 1:
        return result
    seq = _next_seq(comm)
    monitor = _san_monitor(comm)
    if monitor is not None:
        monitor.emit("coll_enter", coll="allgather", epoch=seq)
    right = (comm.rank + 1) % n
    left = (comm.rank - 1) % n
    carried = (comm.rank, value)
    for step in range(n - 1):
        tag = _tag(_TAG_ALLGATHER, seq, step)
        msg = yield from comm.sendrecv(right, carried, source=left, tag=tag)
        src_rank, src_value = msg.payload
        result[src_rank] = src_value
        carried = (src_rank, src_value)
    if monitor is not None:
        monitor.emit("coll_exit", coll="allgather", epoch=seq)
    return result


def alltoall(comm: Comm, values: Sequence[Any]) -> List[Any]:
    """Personalized all-to-all: ``values[i]`` goes to rank ``i``.

    Pairwise-exchange algorithm (N-1 overlapped phases).  Returns the list
    of received items indexed by source rank.
    """
    n = comm.nprocs
    if len(values) != n:
        raise ValueError(f"need {n} items, got {len(values)}")
    result: List[Any] = [None] * n
    result[comm.rank] = values[comm.rank]
    if n == 1:
        return result
    seq = _next_seq(comm)
    monitor = _san_monitor(comm)
    if monitor is not None:
        monitor.emit("coll_enter", coll="alltoall", epoch=seq)
    for step in range(1, n):
        if n & (n - 1) == 0:
            partner = comm.rank ^ step
        else:
            partner = (comm.rank + step) % n
        recv_from = partner if n & (n - 1) == 0 else (comm.rank - step) % n
        tag = _tag(_TAG_ALLTOALL, seq, step - 1)
        yield from comm.send(partner, values[partner], tag=tag)
        msg = yield from comm.recv(source=recv_from, tag=tag)
        result[msg.src] = msg.payload
    if monitor is not None:
        monitor.emit("coll_exit", coll="alltoall", epoch=seq)
    return result
