"""Collective operations built from point-to-point messages.

The paper's new ``ARMCI_Barrier()`` leans on two collectives:

* a **binary-exchange elementwise sum** of the ``op_init[]`` arrays
  (Figure 2 of the paper — a recursive-doubling allreduce); and
* a **binary-exchange barrier** (the ``MPI_Barrier`` pattern of §3.1.2),
  realized here as a dissemination barrier, which has the identical
  ``ceil(log2 N)`` one-latency phases and also handles non-powers-of-two.

All collectives are sub-generators over a :class:`~repro.mp.comm.Comm` and
assume SPMD call order (every rank invokes the same collectives in the same
order); a per-communicator sequence number keeps concurrent invocations'
messages from cross-matching.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from .comm import Comm

__all__ = [
    "barrier",
    "allreduce_sum",
    "allreduce_sum_fig2",
    "bcast",
    "gather",
    "allgather",
    "alltoall",
    "resilient_allreduce_sum",
    "resilient_barrier",
]

_TAG_BARRIER = 1 << 24
_TAG_ALLREDUCE = 2 << 24
_TAG_BCAST = 3 << 24
_TAG_GATHER = 4 << 24
_TAG_ALLGATHER = 5 << 24
_TAG_ALLTOALL = 6 << 24
_ROUND_STRIDE = 64


def _next_seq(comm: Comm) -> int:
    seq = getattr(comm, "_coll_seq", 0)
    comm._coll_seq = seq + 1
    return seq


def _san_monitor(comm: Comm):
    """RMCSan monitor, if one is installed on the communicator's env.

    Only collectives with *all-to-all* dependence (every rank's exit
    transitively depends on every rank's enter) emit enter/exit events —
    joining all enters at an exit would be unsound for rooted collectives
    like bcast/gather.
    """
    return getattr(comm.env, "_sync_monitor", None)


def _tag(base: int, seq: int, round_no: int) -> int:
    return base + (seq % 4096) * _ROUND_STRIDE + round_no


def barrier(comm: Comm):
    """Dissemination barrier: ceil(log2 N) overlapped sendrecv phases.

    Equivalent in cost to the paper's binary-exchange ``MPI_Barrier``:
    each phase is one overlapped exchange, so the communication time is
    ``log2(N)`` one-way latencies.
    """
    n = comm.nprocs
    if n == 1:
        return
    seq = _next_seq(comm)
    monitor = _san_monitor(comm)
    if monitor is not None:
        monitor.emit("coll_enter", coll="barrier", epoch=seq)
    rank = comm.rank
    distance = 1
    round_no = 0
    while distance < n:
        dst = (rank + distance) % n
        src = (rank - distance) % n
        tag = _tag(_TAG_BARRIER, seq, round_no)
        yield from comm.sendrecv(dst, None, source=src, tag=tag, payload_bytes=0)
        distance *= 2
        round_no += 1
    if monitor is not None:
        monitor.emit("coll_exit", coll="barrier", epoch=seq)


def allreduce_sum(comm: Comm, values: Sequence[Any]) -> Any:
    """Elementwise-sum allreduce of a vector (paper Figure 2).

    For powers of two this is exactly the paper's binary exchange: in phase
    ``x`` every process exchanges its partial vector with ``rank XOR x`` and
    adds.  Non-powers-of-two use the standard fold: the ``rem = N - 2**k``
    highest "extra" ranks first fold their vectors into a partner, the
    power-of-two core runs binary exchange, then results are copied back
    out to the extras (two extra latencies, preserving O(log N)).
    Returns the fully reduced vector (a new list).
    """
    n = comm.nprocs
    acc = list(values)
    if n == 1:
        return acc
    seq = _next_seq(comm)
    monitor = _san_monitor(comm)
    if monitor is not None:
        monitor.emit("coll_enter", coll="allreduce", epoch=seq)
    rank = comm.rank
    nbytes = 8 * len(acc)

    pof2 = 1
    while pof2 * 2 <= n:
        pof2 *= 2
    rem = n - pof2

    round_no = 0
    core_rank: Optional[int] = rank  # rank within the power-of-two core
    if rem:
        # Extras are ranks [pof2, n); extra i folds into partner i - pof2.
        if rank >= pof2:
            partner = rank - pof2
            yield from comm.send(
                partner, acc, tag=_tag(_TAG_ALLREDUCE, seq, round_no), payload_bytes=nbytes
            )
            core_rank = None
        elif rank < rem:
            msg = yield from comm.recv(
                source=rank + pof2, tag=_tag(_TAG_ALLREDUCE, seq, round_no)
            )
            acc = [a + b for a, b in zip(acc, msg.payload)]
        round_no += 1

    if core_rank is not None:
        x = 1
        while x < pof2:
            partner = rank ^ x
            msg = yield from comm.sendrecv(
                partner,
                acc,
                tag=_tag(_TAG_ALLREDUCE, seq, round_no),
                payload_bytes=nbytes,
            )
            acc = [a + b for a, b in zip(acc, msg.payload)]
            x *= 2
            round_no += 1
    else:
        # Extras skip the core's log2(pof2) rounds.
        x = 1
        while x < pof2:
            x *= 2
            round_no += 1

    if rem:
        if rank < rem:
            yield from comm.send(
                rank + pof2,
                acc,
                tag=_tag(_TAG_ALLREDUCE, seq, round_no),
                payload_bytes=nbytes,
            )
        elif rank >= pof2:
            msg = yield from comm.recv(
                source=rank - pof2, tag=_tag(_TAG_ALLREDUCE, seq, round_no)
            )
            acc = list(msg.payload)
    if monitor is not None:
        monitor.emit("coll_exit", coll="allreduce", epoch=seq)
    return acc


def allreduce_sum_fig2(comm: Comm, values: Sequence[Any]) -> Any:
    """The paper's Figure 2, line by line (power-of-two process counts).

    ::

        x = N / 2;
        while (x > 0) {
            send op_init[0..N-1] to process (my_id XOR x);
            receive into temp[0..N-1] from process (my_id XOR x);
            op_init[0..N-1] = op_init[0..N-1] + temp[0..N-1];
            x = x / 2;
        }

    Provided for fidelity and property-testing; :func:`allreduce_sum` is
    the general-N production version (same exchanges in the power-of-two
    case, just walked in the opposite mask order).
    """
    n = comm.nprocs
    if n & (n - 1):
        raise ValueError(f"Figure 2 requires a power-of-two process count, got {n}")
    acc = list(values)
    if n == 1:
        return acc
    seq = _next_seq(comm)
    monitor = _san_monitor(comm)
    if monitor is not None:
        monitor.emit("coll_enter", coll="allreduce", epoch=seq)
    nbytes = 8 * len(acc)
    x = n // 2
    round_no = 0
    while x > 0:
        partner = comm.rank ^ x
        msg = yield from comm.sendrecv(
            partner, acc, tag=_tag(_TAG_ALLREDUCE, seq, round_no),
            payload_bytes=nbytes,
        )
        acc = [a + b for a, b in zip(acc, msg.payload)]
        x //= 2
        round_no += 1
    if monitor is not None:
        monitor.emit("coll_exit", coll="allreduce", epoch=seq)
    return acc


def bcast(comm: Comm, value: Any = None, root: int = 0) -> Any:
    """Binomial-tree broadcast; returns the broadcast value on every rank.

    Standard MPICH formulation in the space where ``root`` is virtual rank
    0: each rank receives from the peer that clears its lowest set bit,
    then relays down its subtree.
    """
    n = comm.nprocs
    if not (0 <= root < n):
        raise ValueError(f"root {root} out of range")
    if n == 1:
        return value
    seq = _next_seq(comm)
    tag = _tag(_TAG_BCAST, seq, 0)
    vrank = (comm.rank - root) % n
    result = value
    # Receive phase: walk masks upward until this rank's lowest set bit.
    mask = 1
    while mask < n:
        if vrank & mask:
            src = ((vrank - mask) + root) % n
            msg = yield from comm.recv(source=src, tag=tag)
            result = msg.payload
            break
        mask *= 2
    # Send phase: relay to vrank + m for each m below the receive mask.
    mask //= 2
    while mask >= 1:
        peer = vrank + mask
        if peer < n:
            dst = (peer + root) % n
            yield from comm.send(dst, result, tag=tag)
        mask //= 2
    return result


def gather(comm: Comm, value: Any, root: int = 0) -> Optional[List[Any]]:
    """Gather one value per rank to ``root`` (flat, N-1 messages).

    Returns the list ordered by rank on the root, ``None`` elsewhere.
    """
    n = comm.nprocs
    if not (0 <= root < n):
        raise ValueError(f"root {root} out of range")
    seq = _next_seq(comm)
    tag = _tag(_TAG_GATHER, seq, 0)
    if comm.rank == root:
        result: List[Any] = [None] * n
        result[root] = value
        for _ in range(n - 1):
            msg = yield from comm.recv(tag=tag)
            result[msg.src] = msg.payload
        return result
    yield from comm.send(root, value, tag=tag)
    return None


def allgather(comm: Comm, value: Any) -> List[Any]:
    """Gather one value per rank to every rank (ring algorithm)."""
    n = comm.nprocs
    result: List[Any] = [None] * n
    result[comm.rank] = value
    if n == 1:
        return result
    seq = _next_seq(comm)
    monitor = _san_monitor(comm)
    if monitor is not None:
        monitor.emit("coll_enter", coll="allgather", epoch=seq)
    right = (comm.rank + 1) % n
    left = (comm.rank - 1) % n
    carried = (comm.rank, value)
    for step in range(n - 1):
        tag = _tag(_TAG_ALLGATHER, seq, step)
        msg = yield from comm.sendrecv(right, carried, source=left, tag=tag)
        src_rank, src_value = msg.payload
        result[src_rank] = src_value
        carried = (src_rank, src_value)
    if monitor is not None:
        monitor.emit("coll_exit", coll="allgather", epoch=seq)
    return result


def alltoall(comm: Comm, values: Sequence[Any]) -> List[Any]:
    """Personalized all-to-all: ``values[i]`` goes to rank ``i``.

    Pairwise-exchange algorithm (N-1 overlapped phases).  Returns the list
    of received items indexed by source rank.
    """
    n = comm.nprocs
    if len(values) != n:
        raise ValueError(f"need {n} items, got {len(values)}")
    result: List[Any] = [None] * n
    result[comm.rank] = values[comm.rank]
    if n == 1:
        return result
    seq = _next_seq(comm)
    monitor = _san_monitor(comm)
    if monitor is not None:
        monitor.emit("coll_enter", coll="alltoall", epoch=seq)
    for step in range(1, n):
        if n & (n - 1) == 0:
            partner = comm.rank ^ step
        else:
            partner = (comm.rank + step) % n
        recv_from = partner if n & (n - 1) == 0 else (comm.rank - step) % n
        tag = _tag(_TAG_ALLTOALL, seq, step - 1)
        yield from comm.send(partner, values[partner], tag=tag)
        msg = yield from comm.recv(source=recv_from, tag=tag)
        result[msg.src] = msg.payload
    if monitor is not None:
        monitor.emit("coll_exit", coll="alltoall", epoch=seq)
    return result


# -- crash-resilient variants ------------------------------------------------------
#
# Used only when a crash-stop fault plan installs a MembershipService (see
# repro.runtime.membership); fault-free runs never construct any of this.
# The protocol per instance:
#
# 1. run the usual recursive exchange, but *compacted over the survivor
#    view* and with the membership epoch encoded in the tag;
# 2. every receive is a peek-poll loop, so a partner's death cannot wedge
#    the collective — when the view changes, all blocked survivors abandon
#    the exchange and restart it under the new view (stale pre-crash
#    messages no longer match: different epoch bits in the tag);
# 3. a survivor that *completes* the instance records the result in the
#    membership's completion ledger.  Restarting peers adopt the recorded
#    result instead of waiting for the finished rank to re-participate
#    (it never will) — the one coordination step that cannot be rebuilt
#    from messages alone after a failure.

_TAG_CHAOS = 7 << 24


class _EpochChanged(Exception):
    """The membership view moved while blocked in a resilient collective."""


def _chaos_tag(inst: int, epoch: int, round_no: int) -> int:
    """Tag for crash-aware collectives: instance + view epoch + round.

    The epoch bits keep messages from an abandoned pre-crash attempt from
    matching the restarted exchange's receives.  Eight epoch bits mean a
    single instance would need 256 view changes (e.g. a node crash taking
    256 hosted ranks with it) before a stale message's tag could alias the
    restarted exchange and corrupt its sums.
    """
    return _TAG_CHAOS | ((inst % 1024) << 14) | ((epoch % 256) << 6) | (round_no % 64)


def _adoption_check(membership, key, epoch0):
    """True once the instance completed under an epoch older than ours."""

    def check() -> bool:
        entry = membership.ledger_get(key)
        return entry is not None and entry[1] < epoch0

    return check


def _resilient_recv(comm: Comm, membership, source: int, tag: int, epoch0: int, restart_check):
    """Receive that polls liveness instead of blocking indefinitely.

    Raises :class:`_EpochChanged` if the membership epoch moves past
    ``epoch0`` — or if ``restart_check`` reports the whole instance already
    completed — while no matching message has arrived.
    """
    env = comm.env
    poll_us = membership.params.membership_poll_us
    while True:
        for envelope in comm.mailbox.items:
            msg = envelope.payload
            if getattr(msg, "tag", None) == tag and getattr(msg, "src", None) == source:
                received = yield from comm.recv(source=source, tag=tag)
                return received
        if membership.epoch != epoch0 or restart_check():
            raise _EpochChanged()
        yield env.timeout(poll_us)


def resilient_allreduce_sum(comm: Comm, membership, values: Sequence[Any], inst: int):
    """Crash-aware elementwise-sum allreduce over the survivor view.

    ``inst`` must be agreed across ranks (SPMD call order).  Returns
    ``(totals, epoch)`` where ``epoch`` is the membership epoch the totals
    were computed under.  The totals stay cumulative over the *original*
    universe: the lowest survivor folds in dead ranks' kill-time snapshot
    contributions, and the caller subtracts their never-applied operations
    via ``membership.written_off``.
    """
    key = ("allreduce", inst)
    while True:
        if not membership.in_view(comm.rank):
            # Excluded (partition minority): wait out the freeze instead of
            # spinning on a view that omits us.  The rejoin advances the
            # epoch, so the adoption check below picks up the instance the
            # majority completed in the meantime.  No-op for crash plans —
            # a dead rank's process never runs.
            yield from membership.freeze_gate(comm.rank)
            continue
        epoch0 = membership.epoch
        entry = membership.ledger_get(key)
        if entry is not None and entry[1] < epoch0:
            return list(entry[0]), entry[1]
        try:
            totals = yield from _allreduce_survivors(
                comm, membership, values, inst, epoch0
            )
        except _EpochChanged:
            continue
        membership.ledger_put(key, list(totals), epoch=epoch0)
        return totals, epoch0


def _allreduce_survivors(comm: Comm, membership, values, inst: int, epoch0: int):
    ranks = membership.view(epoch0)
    me = comm.rank
    if me not in ranks:  # pragma: no cover - dead ranks' processes are killed
        raise _EpochChanged()
    acc = list(values)
    vrank = ranks.index(me)
    if vrank == 0:
        # The lowest survivor contributes the dead ranks' snapshots so the
        # totals remain comparable with the targets' cumulative op_done.
        extra = membership.dead_contribution(epoch0)
        acc = [a + b for a, b in zip(acc, extra)]
    n = len(ranks)
    if n == 1:
        return acc
    restart = _adoption_check(membership, ("allreduce", inst), epoch0)
    nbytes = 8 * len(acc)
    chan = 2 * inst  # distinct tag channel from this instance's barrier

    pof2 = 1
    while pof2 * 2 <= n:
        pof2 *= 2
    rem = n - pof2

    round_no = 0
    in_core = True
    if rem:
        if vrank >= pof2:
            yield from comm.send(
                ranks[vrank - pof2], acc,
                tag=_chaos_tag(chan, epoch0, round_no), payload_bytes=nbytes,
            )
            in_core = False
        elif vrank < rem:
            msg = yield from _resilient_recv(
                comm, membership, ranks[vrank + pof2],
                _chaos_tag(chan, epoch0, round_no), epoch0, restart,
            )
            acc = [a + b for a, b in zip(acc, msg.payload)]
        round_no += 1

    x = 1
    while x < pof2:
        if in_core:
            partner = ranks[vrank ^ x]
            tag = _chaos_tag(chan, epoch0, round_no)
            yield from comm.send(partner, acc, tag=tag, payload_bytes=nbytes)
            msg = yield from _resilient_recv(
                comm, membership, partner, tag, epoch0, restart
            )
            acc = [a + b for a, b in zip(acc, msg.payload)]
        x *= 2
        round_no += 1

    if rem:
        tag = _chaos_tag(chan, epoch0, round_no)
        if vrank < rem:
            yield from comm.send(
                ranks[vrank + pof2], acc, tag=tag, payload_bytes=nbytes
            )
        elif vrank >= pof2:
            msg = yield from _resilient_recv(
                comm, membership, ranks[vrank - pof2], tag, epoch0, restart
            )
            acc = list(msg.payload)
    return acc


def resilient_barrier(comm: Comm, membership, inst: int):
    """Crash-aware dissemination barrier over the survivor view."""
    key = ("barrier", inst)
    while True:
        if not membership.in_view(comm.rank):
            # See resilient_allreduce_sum: an excluded rank freezes here
            # rather than busy-looping on a view it is not part of.
            yield from membership.freeze_gate(comm.rank)
            continue
        epoch0 = membership.epoch
        entry = membership.ledger_get(key)
        if entry is not None and entry[1] < epoch0:
            return
        try:
            yield from _barrier_survivors(comm, membership, inst, epoch0)
        except _EpochChanged:
            continue
        membership.ledger_put(key, True, epoch=epoch0)
        return


def _barrier_survivors(comm: Comm, membership, inst: int, epoch0: int):
    ranks = membership.view(epoch0)
    me = comm.rank
    if me not in ranks:  # pragma: no cover - dead ranks' processes are killed
        raise _EpochChanged()
    n = len(ranks)
    if n <= 1:
        return
    restart = _adoption_check(membership, ("barrier", inst), epoch0)
    vrank = ranks.index(me)
    chan = 2 * inst + 1
    distance = 1
    round_no = 0
    while distance < n:
        tag = _chaos_tag(chan, epoch0, round_no)
        yield from comm.send(
            ranks[(vrank + distance) % n], None, tag=tag, payload_bytes=0
        )
        yield from _resilient_recv(
            comm, membership, ranks[(vrank - distance) % n], tag, epoch0, restart
        )
        distance *= 2
        round_no += 1
