"""MPI-like message passing over the simulated fabric."""

from .collectives import allgather, allreduce_sum, alltoall, barrier, bcast, gather
from .comm import ANY_SOURCE, ANY_TAG, Comm, MPMessage

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Comm",
    "MPMessage",
    "allgather",
    "allreduce_sum",
    "alltoall",
    "barrier",
    "bcast",
    "gather",
]
