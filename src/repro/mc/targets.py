"""First-class model-checking targets: the protocols RMCheck guards.

Each target is a hand-built minimal scenario (N=2..4) exercising one
synchronization protocol end to end, plus the exploration parameters
that make its schedule space both interesting and exhaustible:

* ``nic-barrier`` — the paper's combined fence+barrier offloaded to the
  per-node NIC co-processors (PR 4), crash-free at N=3.  The doorbell,
  inter-NIC exchange, and DMA-completion deliveries all race; the
  commit-or-abort bug the fuzzer found lived exactly here.
* ``nic-barrier-crash`` — the same protocol with one rank crashing
  mid-run: exercises the view-change/commit interaction.  Heartbeat
  traffic makes full exhaustion infeasible; this target is explicitly
  budget-bounded.
* ``ticket-handoff`` — ticket lock grant handoff, single node (the
  algorithm requires it), N=3.  The ticket lock is pure shared memory —
  no fabric deliveries, hence no labeled transitions — so its schedule
  space is the single deterministic run.  Keeping it as a target asserts
  exactly that: the controlled scheduler must not perturb local locks,
  and any future fabric traffic appearing here widens the space visibly.
* ``mcs-handoff`` — MCS queue lock handoff across nodes at N=3 with two
  lock/unlock rounds per rank (one round is contention-free under the
  workload's request stagger), including the ghost-release path hardened
  in the PR 3 review fix.
* ``reliable`` — the ACK/retransmit/resequence layer under a dropping
  link: frame, duplicate, and ACK deliveries interleave.
* ``twolevel-barrier`` — the topology-aware node-leader fence+barrier
  (PR 9) on a two-node SMP hierarchy at N=4: the intra-node gathers,
  leaders' inter-node exchange, scatter, and release signals race with
  the outstanding put's completion across two fabric levels.  The
  four-rank space does not exhaust tractably; budget-bounded.
* ``partition-heal`` — a two-node cut across a token-lock workload: the
  minority holder is excluded, its lease fenced and the token
  regenerated in the majority, then the cut heals and the rank rejoins
  with a state resync.  The suspension flush, heal executor, rejoin
  view_change, and post-heal lock traffic all race; the stale-token
  release and the resync/local-request FIFO ordering are exactly the
  schedules this target explores.  Detector heartbeats bound the space,
  so like ``nic-barrier-crash`` it is budget-bounded, not exhaustive.

``window`` choices: the fault-free network is deterministic with zero
jitter, so most interesting races are *near*-ties (deliveries a few
microseconds apart, ordered only by serialization); a window of a few
microseconds lets the explorer commute them.  Crash/fault targets keep a
smaller window to contain the schedule tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..fuzz.scenario import Scenario

__all__ = ["MCTarget", "TARGETS", "get_target"]


@dataclass(frozen=True)
class MCTarget:
    name: str
    description: str
    scenario: Scenario
    #: Commutation window (µs) handed to the scheduler strategy.
    window: float
    #: Default run budget; targets marked non-exhaustible keep it low.
    budget: int
    #: Simulated-time cap per run (µs).
    sim_cap_us: float
    #: Whether exhaustion inside the budget is expected (and asserted in
    #: tests / CI).
    expect_exhaustive: bool


def _t(name, description, scenario, window, budget, sim_cap_us, exhaustive):
    return MCTarget(
        name=name,
        description=description,
        scenario=scenario,
        window=window,
        budget=budget,
        sim_cap_us=sim_cap_us,
        expect_exhaustive=exhaustive,
    )


TARGETS: Dict[str, MCTarget] = {
    t.name: t
    for t in (
        _t(
            "nic-barrier",
            "NIC-offloaded combined fence+barrier, N=3, crash-free",
            Scenario(
                seed=0,
                nprocs=3,
                procs_per_node=1,
                workload="strips",
                barrier_algorithm="nic",
                nic_algorithm="exchange",
                lock_kind=None,
                phases=("puts", "barrier"),
                cells=1,
            ),
            window=3.0,
            budget=4000,
            sim_cap_us=5_000.0,
            exhaustive=True,
        ),
        _t(
            "nic-barrier-crash",
            "NIC fence+barrier with one rank crashing mid-run, N=3",
            Scenario(
                seed=0,
                nprocs=3,
                procs_per_node=1,
                workload="strips",
                barrier_algorithm="nic",
                nic_algorithm="exchange",
                lock_kind=None,
                phases=("puts", "barrier"),
                cells=1,
                crashes=(("rank", 2, 30.0),),
            ),
            window=1.0,
            budget=400,
            sim_cap_us=8_000.0,
            exhaustive=False,
        ),
        _t(
            "ticket-handoff",
            "ticket lock grant handoff, single node, N=3",
            Scenario(
                seed=0,
                nprocs=3,
                procs_per_node=3,
                workload="locks",
                barrier_algorithm="exchange",
                lock_kind="ticket",
                phases=("lock", "barrier"),
                cells=1,
                lock_iters=1,
            ),
            window=2.0,
            budget=50,
            sim_cap_us=5_000.0,
            exhaustive=True,
        ),
        _t(
            "mcs-handoff",
            "MCS queue lock handoff across nodes, N=3",
            Scenario(
                seed=0,
                nprocs=3,
                procs_per_node=1,
                workload="locks",
                barrier_algorithm="exchange",
                lock_kind="mcs",
                phases=("lock", "barrier"),
                cells=1,
                lock_iters=2,
            ),
            window=2.0,
            budget=500,
            sim_cap_us=5_000.0,
            exhaustive=True,
        ),
        _t(
            "reliable",
            "ACK/retransmit/resequence layer on a dropping link, N=3",
            Scenario(
                seed=0,
                nprocs=3,
                procs_per_node=1,
                workload="strips",
                barrier_algorithm="exchange",
                lock_kind=None,
                phases=("puts", "barrier"),
                cells=1,
                drop_rate=0.15,
            ),
            window=1.0,
            budget=600,
            sim_cap_us=8_000.0,
            exhaustive=False,
        ),
        _t(
            "twolevel-barrier",
            "two-level node-leader fence+barrier on a 2x2 hierarchy, N=4",
            Scenario(
                seed=0,
                nprocs=4,
                procs_per_node=2,
                workload="strips",
                barrier_algorithm="twolevel",
                lock_kind=None,
                phases=("puts", "barrier"),
                cells=1,
                hier_arity=2,
            ),
            # Four ranks' puts, gathers, the leaders' exchange, and the
            # release fan-out race across two fabric levels — the space
            # does not exhaust at any tractable budget, so this target is
            # budget-bounded like nic-barrier-crash.
            window=3.0,
            budget=400,
            sim_cap_us=5_000.0,
            exhaustive=False,
        ),
        _t(
            "partition-heal",
            "token lock across a healing two-node cut with rejoin resync, N=4",
            Scenario(
                seed=0,
                nprocs=4,
                procs_per_node=1,
                workload="mixed",
                barrier_algorithm="exchange",
                lock_kind="naimi",
                phases=("lock", "barrier"),
                cells=1,
                lock_iters=1,
                partitions=(((3,), 60.0, 600.0),),
            ),
            window=1.0,
            budget=400,
            sim_cap_us=30_000.0,
            exhaustive=False,
        ),
    )
}


def get_target(name: str) -> MCTarget:
    try:
        return TARGETS[name]
    except KeyError:
        known = ", ".join(sorted(TARGETS))
        raise KeyError(f"unknown mc target {name!r} (known: {known})") from None
