"""Exploration strategy for the controlled scheduler.

The simulator labels every message-delivery event with a transition
label ``(kind, dst_key, uid)`` (see :class:`repro.sim.core.Event`):

* ``kind`` — ``"msg"`` (mailbox envelope), ``"rep"`` (reply to a blocked
  requester), ``"frame"`` (reliable-layer transmission attempt) or
  ``"ack"`` (reliable-layer acknowledgement);
* ``dst_key`` — the destination: an endpoint tuple ``("srv"|"mp"|"nic",
  index)`` for deliveries, or ``("ack-ch", channel_key)`` for ACKs;
* ``uid`` — the schedule sequence number the delivery timeout consumed,
  unique within a run and deterministic given the forced-choice prefix.

**Dependence relation.**  Two deliveries commute unless they target the
same destination key: handlers for different ranks/nodes/NIC endpoints
touch disjoint protocol state (sync cells live behind the server or NIC
endpoint that owns them, so same-cell conflicts imply the same
``dst_key``).  ACKs are dependent per reliable channel — they race on the
frame's ``acked`` flag and the retransmit timer.  This is exactly the
relation the explorer's sleep sets and the canonical trace form use.

A :class:`RecordingStrategy` drives one simulation run: it replays a
tuple of forced choices (the DFS prefix), then resolves every further
choice point first-come-first-served among candidates *not* in its sleep
set, recording the options it saw so the explorer can enqueue the
siblings afterwards.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable, List, Optional, Tuple

from ..sim.core import SchedulerStrategy

__all__ = [
    "RecordingStrategy",
    "canonical_trace_hash",
    "independent",
    "label_key",
]

Label = Tuple[Any, ...]


def independent(a: Label, b: Label) -> bool:
    """True when the two labeled transitions commute (different dst_key)."""
    return a[1] != b[1]


def label_key(label: Label) -> str:
    """Canonical string form of a label (serialization + forced matching)."""
    return repr(label)


def canonical_trace_hash(trace: Iterable[Label]) -> str:
    """Digest of the run's Mazurkiewicz-canonical delivery trace.

    Labels carry interleaving-stable identities (per-sender stream
    ordinals, reliable-channel sequence numbers — see the transport
    layers), so equivalent traces contain the *same* label multiset in
    orders differing only by swaps of adjacent independent deliveries.
    Bubble-sorting those swaps into a fixed order yields a canonical
    representative: equivalent schedules hash identically, inequivalent
    ones (same-destination deliveries reordered) differ.  The explorer
    uses this for *reporting* redundantly explored schedules, never for
    pruning — sleep sets are the sound reduction mechanism.
    """
    t: List[Label] = list(trace)
    changed = True
    while changed:
        changed = False
        for i in range(len(t) - 1):
            a, b = t[i], t[i + 1]
            if a[1] != b[1] and repr(b) < repr(a):
                t[i], t[i + 1] = b, a
                changed = True
    blob = repr(t).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class RecordingStrategy(SchedulerStrategy):
    """One DFS run: forced prefix, then sleep-set-guided free exploration.

    A *choice point* is a scheduler step whose queue head is a labeled
    delivery with at least one other labeled delivery co-enabled.  Choice
    points are a deterministic function of the forced prefix (they never
    depend on the sleep set), so a prefix recorded in one run replays
    bit-for-bit in the next.

    * At choice point ``d < len(prefix)``: pick the candidate whose label
      matches ``prefix[d]`` (divergence aborts the run — it only happens
      when a minimization edit produced an unreachable schedule).
    * Beyond the prefix: pick the first labeled candidate not in the
      sleep set; if every labeled candidate sleeps, the continuation is
      covered by a sibling in the DFS — mark the run ``redundant`` and
      abort.

    After the prefix is consumed, every executed labeled transition
    filters the sleep set down to the labels independent of it (the
    standard sleep-set update); during prefix replay the stored set is
    left untouched because it was computed *at* the branch state.
    """

    def __init__(
        self,
        prefix: Tuple[str, ...] = (),
        sleep: Iterable[Label] = (),
        window: float = 0.0,
    ):
        self.window = float(window)
        self.abort = False
        self.prefix = tuple(prefix)
        self.sleep = set(sleep)
        #: Per choice point: (options, chosen_label, sleep_at_state).
        self.decisions: List[Tuple[List[Label], Label, Tuple[Label, ...]]] = []
        #: Every executed labeled transition, in order.
        self.trace: List[Label] = []
        self.depth = 0
        self.redundant = False
        self.diverged = False

    # -- SchedulerStrategy interface --------------------------------------

    def choose(self, now: float, candidates: list) -> int:
        root_label = candidates[0][3]._mc_label
        if root_label is None:
            return 0
        labeled = [
            (i, entry[3]._mc_label)
            for i, entry in enumerate(candidates)
            if entry[3]._mc_label is not None
        ]
        if len(labeled) < 2:
            # Not a choice point — but executing a *sleeping* transition
            # means this whole continuation is covered by a sibling run
            # (after the branch the sole legal next step was explored
            # under the other order).  Prune instead of duplicating it.
            if root_label in self.sleep and self.depth >= len(self.prefix):
                self.redundant = True
                self.abort = True
            return 0
        options = [label for _i, label in labeled]
        d = self.depth
        sleep_snapshot = tuple(self.sleep)
        if d < len(self.prefix):
            want = self.prefix[d]
            for i, label in labeled:
                if label_key(label) == want:
                    self.depth = d + 1
                    self.decisions.append((options, label, sleep_snapshot))
                    return i
            self.diverged = True
            self.abort = True
            return 0
        for i, label in labeled:
            if label not in self.sleep:
                self.depth = d + 1
                self.decisions.append((options, label, sleep_snapshot))
                return i
        self.redundant = True
        self.abort = True
        return 0

    def executed(self, label: Label) -> None:
        self.trace.append(label)
        if self.depth >= len(self.prefix) and self.sleep:
            dst = label[1]
            self.sleep = {u for u in self.sleep if u[1] != dst}

    # -- explorer helpers -------------------------------------------------

    def chosen_schedule(self) -> Tuple[str, ...]:
        """The schedule this run actually took, as forced-choice keys."""
        return tuple(label_key(chosen) for _opts, chosen, _z in self.decisions)

    def branching_product(self) -> int:
        """Naive interleaving count along this run (Π branching factors)."""
        naive = 1
        for options, _chosen, _z in self.decisions:
            naive *= len(options)
        return naive
