"""DFS schedule exploration with sleep-set partial-order reduction.

Stateless model checking in the Godefroid style: each schedule is a
fresh from-scratch simulation run steered by a
:class:`~repro.mc.strategy.RecordingStrategy`.  The explorer maintains a
work stack of ``(prefix, sleep)`` items; running one yields the choice
points it passed, and every not-yet-covered sibling choice becomes a new
work item whose sleep set carries the transitions already explored at
that state (filtered to those independent of the branch taken).  The
sleep sets are what collapse the exponential tail: two deliveries to
different endpoints commute, so only one of their two orders is ever
run.

Outcomes are judged by the full fuzz oracle
(:func:`repro.fuzz.runner.run_scenario`): RMCSan plus the end-state
invariants.  The first failing schedule becomes a counterexample,
greedily minimized (shortest failing truncation, then single-choice
deletions) and serialized to JSON for deterministic replay via
``repro mc --schedule``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..fuzz.runner import FuzzOutcome, run_scenario
from ..fuzz.scenario import Scenario, scenario_from_json, scenario_to_json
from .strategy import (
    RecordingStrategy,
    canonical_trace_hash,
    independent,
    label_key,
)

__all__ = [
    "MCResult",
    "explore",
    "load_counterexample",
    "replay_counterexample",
]

#: Default simulated-time cap for explored runs: explored scenarios are
#: tiny, and crash variants would otherwise idle through heartbeat
#: traffic all the way to the fuzzer's 50ms cap on every single run.
MC_SIM_CAP_US = 20_000.0

COUNTEREXAMPLE_FORMAT = "rmcheck-counterexample-v1"

#: Safety valve on counterexample minimization (each probe is a full run).
_MINIMIZE_BUDGET = 64


@dataclass
class MCResult:
    """Everything one exploration produced."""

    scenario: Scenario
    target: Optional[str] = None
    window: float = 0.0
    sim_cap_us: float = MC_SIM_CAP_US
    budget: int = 0
    #: Complete schedules executed and judged.
    schedules_run: int = 0
    #: Runs pruned by the sleep set (continuation covered elsewhere).
    pruned: int = 0
    #: Runs whose canonical delivery trace matched an earlier run.
    trace_dups: int = 0
    #: Forced prefixes that diverged (minimization probes only).
    diverged: int = 0
    #: Distinct timing-independent end states observed.
    distinct_end_states: int = 0
    #: Max choice-point depth over all runs.
    max_depth: int = 0
    #: Naive interleaving count: max over runs of the product of choice
    #: branching factors — what enumerating without POR would cost.
    naive_bound: int = 1
    #: True when the work stack drained inside the budget.
    exhausted: bool = False
    elapsed_s: float = 0.0
    #: Serialized minimal counterexample (None when every schedule is ok).
    counterexample: Optional[Dict[str, Any]] = None
    #: Violation kinds of the (minimized) counterexample.
    violation_kinds: Tuple[str, ...] = ()

    def ok(self) -> bool:
        return self.counterexample is None

    def reduction_factor(self) -> float:
        if self.schedules_run == 0:
            return 1.0
        return self.naive_bound / self.schedules_run

    def to_json(self) -> str:
        data = {
            "target": self.target,
            "scenario": json.loads(scenario_to_json(self.scenario)),
            "window": self.window,
            "sim_cap_us": self.sim_cap_us,
            "budget": self.budget,
            "schedules_run": self.schedules_run,
            "pruned": self.pruned,
            "trace_dups": self.trace_dups,
            "diverged": self.diverged,
            "distinct_end_states": self.distinct_end_states,
            "max_depth": self.max_depth,
            "naive_bound": self.naive_bound,
            "reduction_factor": round(self.reduction_factor(), 2),
            "exhausted": self.exhausted,
            "elapsed_s": round(self.elapsed_s, 3),
            "ok": self.ok(),
            "violation_kinds": list(self.violation_kinds),
            "counterexample": self.counterexample,
        }
        return json.dumps(data, sort_keys=True)

    def render(self) -> str:
        name = self.target or f"seed {self.scenario.seed}"
        status = "exhausted" if self.exhausted else "budget-bounded"
        lines = [
            f"== RMCheck {name}: {self.schedules_run} schedule(s) "
            f"explored ({status}), naive bound {self.naive_bound}, "
            f"reduction {self.reduction_factor():.1f}x =="
        ]
        lines.append(
            f"   depth<={self.max_depth}, {self.distinct_end_states} distinct "
            f"end state(s), {self.pruned} sleep-pruned, "
            f"{self.trace_dups} trace dup(s), {self.elapsed_s:.1f}s"
        )
        if self.ok():
            lines.append("   OK: every explored schedule satisfies the oracle")
        else:
            ce = self.counterexample or {}
            lines.append(
                f"   COUNTEREXAMPLE ({len(ce.get('schedule', []))} forced "
                f"choice(s)): {', '.join(self.violation_kinds)}"
            )
        return "\n".join(lines)


def _run_once(
    scenario: Scenario,
    prefix: Tuple[str, ...],
    sleep: Tuple,
    window: float,
    sim_cap_us: float,
) -> Tuple[RecordingStrategy, FuzzOutcome]:
    strategy = RecordingStrategy(prefix=prefix, sleep=sleep, window=window)
    outcome = run_scenario(scenario, strategy=strategy, sim_cap_us=sim_cap_us)
    return strategy, outcome


def explore(
    scenario: Scenario,
    *,
    window: float = 0.0,
    budget: int = 2000,
    sim_cap_us: float = MC_SIM_CAP_US,
    target: Optional[str] = None,
    progress: Optional[Any] = None,
) -> MCResult:
    """Explore every inequivalent schedule of ``scenario`` (up to budget).

    ``budget`` bounds the number of *complete* judged runs; sleep-pruned
    runs (aborted early) are not charged against it.  ``window`` is the
    commutation window handed to the scheduler strategy: 0 explores only
    exact co-enabled ties, a few microseconds additionally reorders
    near-tie deliveries (see ``docs/model_checking.md``).
    """
    result = MCResult(
        scenario=scenario,
        target=target,
        window=window,
        sim_cap_us=sim_cap_us,
        budget=budget,
    )
    started = time.perf_counter()
    # DFS work stack of (forced prefix, sleep set at the branch state).
    stack: List[Tuple[Tuple[str, ...], Tuple]] = [((), ())]
    seen_traces: set = set()
    end_states: set = set()
    first_failure: Optional[Tuple[Tuple[str, ...], FuzzOutcome]] = None

    while stack and result.schedules_run < budget:
        prefix, sleep = stack.pop()
        strategy, outcome = _run_once(
            scenario, prefix, sleep, window, sim_cap_us
        )
        if strategy.diverged:
            result.diverged += 1
            continue
        if strategy.redundant:
            result.pruned += 1
            continue
        result.schedules_run += 1
        result.max_depth = max(result.max_depth, strategy.depth)
        result.naive_bound = max(
            result.naive_bound, strategy.branching_product()
        )
        trace_hash = canonical_trace_hash(strategy.trace)
        if trace_hash in seen_traces:
            result.trace_dups += 1
        seen_traces.add(trace_hash)
        end_states.add(outcome.end_state_hash)
        if progress is not None and result.schedules_run % 200 == 0:
            progress(result)
        if not outcome.ok() and first_failure is None:
            first_failure = (strategy.chosen_schedule(), outcome)
            break  # counterexample found: stop exploring, go minimize

        # Enqueue the uncovered siblings of every fresh choice point.
        # Reverse order keeps the DFS visiting the first alternative of
        # the deepest choice point next.
        children: List[Tuple[Tuple[str, ...], Tuple]] = []
        chosen_keys = strategy.chosen_schedule()
        for d in range(len(prefix), len(strategy.decisions)):
            options, chosen, sleep_at_state = strategy.decisions[d]
            done: List = [chosen]
            base = set(sleep_at_state)
            for alt in options:
                if alt == chosen or alt in base:
                    continue
                child_sleep = tuple(
                    u
                    for u in (base | set(done))
                    if independent(u, alt)
                )
                children.append(
                    (chosen_keys[:d] + (label_key(alt),), child_sleep)
                )
                done.append(alt)
        for child in reversed(children):
            stack.append(child)

    result.exhausted = not stack
    result.distinct_end_states = len(end_states)

    if first_failure is not None:
        schedule, outcome = first_failure
        schedule = _minimize(scenario, schedule, window, sim_cap_us)
        _, final = _run_once(scenario, schedule, (), window, sim_cap_us)
        result.violation_kinds = final.kinds() or outcome.kinds()
        result.counterexample = {
            "format": COUNTEREXAMPLE_FORMAT,
            "target": target,
            "scenario": json.loads(scenario_to_json(scenario)),
            "window": window,
            "sim_cap_us": sim_cap_us,
            "schedule": list(schedule),
            "violation_kinds": list(result.violation_kinds),
        }
    result.elapsed_s = time.perf_counter() - started
    return result


def _fails(
    scenario: Scenario,
    schedule: Tuple[str, ...],
    window: float,
    sim_cap_us: float,
) -> bool:
    strategy, outcome = _run_once(scenario, schedule, (), window, sim_cap_us)
    return not strategy.diverged and not outcome.ok()


def _minimize(
    scenario: Scenario,
    schedule: Tuple[str, ...],
    window: float,
    sim_cap_us: float,
) -> Tuple[str, ...]:
    """Greedy minimization: shortest failing truncation, then deletions.

    Mirrors the fuzzer's shrinker: every probe is a deterministic full
    run, capped at :data:`_MINIMIZE_BUDGET` probes so minimization can
    never dominate the exploration budget.
    """
    probes = 0
    # Shortest failing prefix (unforced choices fall back to FIFO order).
    for cut in range(len(schedule) + 1):
        if probes >= _MINIMIZE_BUDGET:
            return schedule
        probes += 1
        if _fails(scenario, schedule[:cut], window, sim_cap_us):
            schedule = schedule[:cut]
            break
    # Single-choice deletions, restarting after each success.
    improved = True
    while improved and probes < _MINIMIZE_BUDGET:
        improved = False
        for i in range(len(schedule)):
            if probes >= _MINIMIZE_BUDGET:
                break
            candidate = schedule[:i] + schedule[i + 1 :]
            probes += 1
            if _fails(scenario, candidate, window, sim_cap_us):
                schedule = candidate
                improved = True
                break
    return schedule


# -- counterexample replay -------------------------------------------------


def load_counterexample(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("format") != COUNTEREXAMPLE_FORMAT:
        raise ValueError(
            f"{path}: not an RMCheck counterexample "
            f"(format={data.get('format')!r})"
        )
    return data


def replay_counterexample(data: Dict[str, Any]) -> FuzzOutcome:
    """Deterministically re-execute a serialized counterexample."""
    scenario = scenario_from_json(json.dumps(data["scenario"]))
    strategy = RecordingStrategy(
        prefix=tuple(data["schedule"]),
        sleep=(),
        window=float(data.get("window", 0.0)),
    )
    return run_scenario(
        scenario,
        strategy=strategy,
        sim_cap_us=float(data.get("sim_cap_us", MC_SIM_CAP_US)),
    )
