"""RMCheck oracle validation: the fuzzer's seeded mutants, model-checked.

``repro fuzz --self-test`` validates the *oracle* by fuzzing seeds until
each planted mutant trips.  This module promotes the same three mutants
(:data:`repro.fuzz.selftest.MUTANTS`) into *exploration* oracle tests:
each is pinned to the minimal process count at which the bug manifests
at all, and RMCheck must find a failing schedule there, minimize it, and
produce a counterexample that

* **replays to a failure** under the mutant patch (determinism), and
* **replays clean** without the patch (attribution: the schedule itself
  is legal; only the mutant breaks under it).

Pinned configurations (found empirically, fixed for reproducibility):

* ``hasty-nic`` at **N=2** — the smallest offloaded barrier; the very
  first schedule releases with a retried put in flight.
* ``skipped-writeoff`` at **N=4** — below four ranks no put to the
  crashing rank is ever dropped pre-crash, so the ledger never drifts;
  at N=4 the survivors deadlock waiting for credits the write-off
  should have cancelled.
* ``stale-token-epoch`` at **N=3** — the smallest ring where a delayed
  token copy can cross a crash-recovery epoch.

Chasing ``skipped-writeoff`` below N=4 is also what exposed the
``dst``-crashed oracle gap in :mod:`repro.analysis.hb` (see the
destination write-off exoneration in ``_finish``): exploration reordered
a put's delivery across the crash declaration, a path no default
schedule reaches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..fuzz.selftest import MUTANTS, Mutant
from ..fuzz.scenario import Scenario, generate
from .explore import MCResult, explore, replay_counterexample

__all__ = [
    "MC_MUTANT_PINS",
    "McMutantPin",
    "McMutantResult",
    "McSelfTestResult",
    "run_mc_self_test",
]


@dataclass(frozen=True)
class McMutantPin:
    """Where and how RMCheck hunts one seeded mutant."""

    mutant: str
    nprocs: int
    seed: int
    window: float
    budget: int
    sim_cap_us: float


MC_MUTANT_PINS: Tuple[McMutantPin, ...] = (
    McMutantPin("hasty-nic", nprocs=2, seed=0, window=1.0, budget=80,
                sim_cap_us=20_000.0),
    McMutantPin("skipped-writeoff", nprocs=4, seed=2, window=1.0, budget=80,
                sim_cap_us=20_000.0),
    McMutantPin("stale-token-epoch", nprocs=3, seed=1, window=1.0, budget=80,
                sim_cap_us=50_000.0),
)


def _mutant(name: str) -> Mutant:
    for m in MUTANTS:
        if m.name == name:
            return m
    raise KeyError(f"unknown fuzz mutant {name!r}")


def pin_scenario(pin: McMutantPin) -> Scenario:
    return generate(
        pin.seed, constrain={**_mutant(pin.mutant).constrain, "nprocs": pin.nprocs}
    )


@dataclass
class McMutantResult:
    mutant: str
    nprocs: int
    caught: bool = False
    schedules_run: int = 0
    schedule_len: int = 0
    violation_kinds: Tuple[str, ...] = ()
    #: Counterexample replay fails under the patch.
    replay_confirmed: bool = False
    #: The same schedule is clean without the patch (attribution).
    clean_schedule_ok: bool = False
    counterexample: Optional[Dict] = None

    def render(self) -> str:
        if self.caught:
            return (
                f"[caught] {self.mutant} @ N={self.nprocs}: "
                f"{self.schedules_run} schedule(s) to counterexample "
                f"({self.schedule_len} forced choice(s)) -> "
                f"{', '.join(self.violation_kinds)}; replay confirmed, "
                f"clean twin ok"
            )
        return (
            f"[MISSED] {self.mutant} @ N={self.nprocs}: "
            f"{self.schedules_run} schedule(s), no attributable "
            f"counterexample"
        )


@dataclass
class McSelfTestResult:
    results: List[McMutantResult] = field(default_factory=list)

    def all_caught(self) -> bool:
        return bool(self.results) and all(r.caught for r in self.results)

    def render(self) -> str:
        lines = [
            f"== RMCheck self-test: {len(self.results)} seeded mutant(s), "
            "exploration at minimal N =="
        ]
        lines.extend(r.render() for r in self.results)
        lines.append(
            "ORACLE VALIDATED: every mutant found by exploration"
            if self.all_caught()
            else "ORACLE GAP: some mutants survived exploration"
        )
        return "\n".join(lines)


def check_pin(pin: McMutantPin) -> McMutantResult:
    """Explore one pinned mutant and judge the catch end to end."""
    mutant = _mutant(pin.mutant)
    scenario = pin_scenario(pin)
    result = McMutantResult(mutant=pin.mutant, nprocs=pin.nprocs)
    with mutant.patch():
        explored: MCResult = explore(
            scenario,
            window=pin.window,
            budget=pin.budget,
            sim_cap_us=pin.sim_cap_us,
            target=f"mutant:{pin.mutant}",
        )
    result.schedules_run = explored.schedules_run
    ce = explored.counterexample
    if ce is None:
        return result
    result.counterexample = ce
    result.schedule_len = len(ce["schedule"])
    result.violation_kinds = explored.violation_kinds
    with mutant.patch():
        patched_replay = replay_counterexample(ce)
    result.replay_confirmed = not patched_replay.ok()
    result.clean_schedule_ok = replay_counterexample(ce).ok()
    result.caught = result.replay_confirmed and result.clean_schedule_ok
    return result


def run_mc_self_test() -> McSelfTestResult:
    out = McSelfTestResult()
    for pin in MC_MUTANT_PINS:
        out.results.append(check_pin(pin))
    return out
