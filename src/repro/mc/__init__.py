"""RMCheck: stateless model checking for the synchronization protocols.

RMCheck drives the existing simulator through *all* inequivalent message
delivery schedules of a small scenario (N=2..4, a few ops) and runs
RMCSan plus the fuzzer's end-state invariants on every one.  Where the
fuzzer (:mod:`repro.fuzz`) samples random fault timings, RMCheck
systematically enumerates delivery *orders* — the interleaving bugs the
fuzzer only hits by luck.

Three pieces:

* :mod:`repro.mc.strategy` — the :class:`RecordingStrategy` plugged into
  the simulator's controlled-scheduler hook
  (:class:`repro.sim.core.SchedulerStrategy`): it replays a forced
  choice prefix, then explores fresh choices first-come while carrying a
  sleep set for partial-order reduction.
* :mod:`repro.mc.explore` — the DFS explorer: schedule tree walk with
  sleep-set + dependence-based POR, per-run budget, end-state and trace
  deduplication, and minimal counterexample extraction/replay.
* :mod:`repro.mc.targets` — the first-class checked protocols (NIC
  fence+barrier crash-free and 1-crash, ticket/MCS lock handoff, the
  reliable-delivery layer) as named small scenarios.
* :mod:`repro.mc.selftest` — the fuzzer's three seeded mutants promoted
  into exploration oracle tests at minimal N.

See ``docs/model_checking.md`` for the exploration semantics and the
dependence relation.
"""

from .explore import MCResult, explore, load_counterexample, replay_counterexample
from .selftest import MC_MUTANT_PINS, run_mc_self_test
from .strategy import RecordingStrategy, canonical_trace_hash, independent, label_key
from .targets import TARGETS, get_target

__all__ = [
    "MCResult",
    "MC_MUTANT_PINS",
    "RecordingStrategy",
    "TARGETS",
    "canonical_trace_hash",
    "explore",
    "get_target",
    "independent",
    "label_key",
    "load_counterexample",
    "replay_counterexample",
    "run_mc_self_test",
]
