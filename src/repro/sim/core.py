"""Discrete-event simulation kernel.

This module implements a small, deterministic, generator-coroutine based
discrete-event simulator in the style of SimPy, specialized for the needs of
the ARMCI reproduction:

* **Deterministic ordering.** Events scheduled for the same simulated time are
  processed in a stable order: first by an explicit integer *priority*, then
  by schedule sequence number.  Repeated runs of the same program produce
  byte-identical traces, which the experiment harness relies on.

  The exact *co-enabled event ordering contract* (relied on by RMCheck's
  controlled scheduler, see :mod:`repro.mc`): every triggered event is
  keyed by the tuple ``(time, priority, seq)`` where ``seq`` is a plain
  int drawn from ``Environment._seq`` — incremented exactly once per
  scheduling, in program order, with no gaps and no reuse within a run.
  Two events are *co-enabled* when their ``(time, priority)`` keys are
  equal; the default tie-break among co-enabled events is FIFO by
  ``seq`` (i.e. scheduling order).  A :class:`SchedulerStrategy`
  installed on the environment intercepts exactly these ties (plus,
  optionally, labeled message deliveries within a commutation window)
  and may pick any co-enabled candidate; the default strategy picks the
  minimal ``seq`` and therefore reproduces the uncontrolled order
  byte-identically.

* **Virtual time in microseconds.** All delays in this code base are expressed
  in microseconds of simulated time, matching the units the paper reports.

* **Processes are generators.** A simulated activity is an ordinary Python
  generator that ``yield``\\ s :class:`Event` objects; composition is done
  with ``yield from`` sub-generators, which keeps protocol code (fence,
  barrier, lock algorithms) readable and close to the paper's pseudocode.

* **A fast hot path.** ``Environment.run`` drives an inlined pop/dispatch
  loop (no per-event ``peek()``/``step()`` call pair), keeps the schedule
  sequence as a plain int, skips the ``on_event`` trace branch entirely when
  no tracer is attached, and recycles :class:`Event`/:class:`Timeout`
  objects through per-environment free lists (see ``docs/performance.md``).

The kernel knows nothing about networks, servers, or ARMCI; those live in
:mod:`repro.net` and :mod:`repro.runtime`.
"""

from __future__ import annotations

import heapq
import sys
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "Condition",
    "AllOf",
    "AnyOf",
    "ConditionValue",
    "SchedulerStrategy",
    "SimulationError",
    "StopProcess",
    "CRASHED",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "PRIORITY_LAZY",
]

#: Priority for events that must run before ordinary events at the same time
#: (e.g. interrupts).
PRIORITY_URGENT = 0
#: Default event priority.
PRIORITY_NORMAL = 1
#: Priority for events that should run after ordinary events at the same time.
PRIORITY_LAZY = 2

_PENDING = object()

_heappush = heapq.heappush
_heappop = heapq.heappop

# CPython exposes reference counts; the run loop uses them to prove that a
# just-processed Event/Timeout is unreachable and can be recycled.  On other
# interpreters recycling is simply disabled.
_getrefcount = getattr(sys, "getrefcount", None)

#: Cap on each per-environment free list (slab) of recycled events.
_POOL_LIMIT = 1024


class _Crashed:
    """Sentinel value of a process terminated by :meth:`Process.kill`."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "CRASHED"

    def __bool__(self) -> bool:
        return False


#: Result value of a process killed by a crash-stop fault (see
#: :meth:`Process.kill`).  Falsy, so ``if result:`` treats a crashed rank
#: like "no result".
CRASHED = _Crashed()


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (not for modeled failures)."""


class StopProcess(Exception):
    """Raised inside a process generator to exit early with a value.

    ``raise StopProcess(value)`` is equivalent to ``return value`` but can be
    used from inside nested helpers.
    """

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process may catch it and continue; ``cause`` carries the
    value passed to ``interrupt``.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class SchedulerStrategy:
    """Tie-break policy for co-enabled events (RMCheck's controlled scheduler).

    Install an instance as ``env._mc_strategy`` (or via
    ``Environment.strategy_factory``) *before* ``run()`` to route every
    co-enabled choice through :meth:`choose`.  Two events are co-enabled
    when their ``(time, priority)`` heap keys are equal; additionally, when
    ``window > 0`` and the queue head is a *labeled* message delivery, all
    labeled ``PRIORITY_NORMAL`` deliveries within ``window`` microseconds of
    the head are treated as co-enabled (the chosen one is processed clamped
    to the head's timestamp, preserving time monotonicity).

    The base class is the identity policy: ``window = 0.0`` and
    ``choose() == 0`` always picks the minimal ``(time, priority, seq)``
    entry, reproducing the uncontrolled FIFO order byte-identically (see
    ``tests/mc/test_strategy.py``).
    """

    #: Commutation window (µs) for near-tie labeled deliveries; 0 disables.
    window: float = 0.0
    #: Set True (e.g. from :meth:`choose`/:meth:`executed`) to abandon the
    #: run after the current event; the controlled loop checks it each step.
    abort: bool = False

    def choose(self, now: float, candidates: list) -> int:
        """Pick the index of the candidate to process next.

        ``candidates`` is a list of heap entries ``(time, priority, seq,
        event)`` — index 0 is always the entry the uncontrolled scheduler
        would pick; labels (if any) are on ``entry[3]._mc_label``.
        """
        return 0

    def executed(self, label: object) -> None:
        """Called after each *labeled* event is processed, with its label."""


class Event:
    """A happening at a point in simulated time.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    *triggers* it, scheduling it on the environment's queue.  When the
    environment pops it, the event is *processed*: its callbacks run, which is
    how waiting processes get resumed.

    ``_mc_label`` is RMCheck metadata: message-delivery events get a
    hashable label ``(kind, dst_key, uid)`` (set by the transport layers
    only when a :class:`SchedulerStrategy` is installed) identifying the
    transition for dependence analysis; ``None`` for all other events.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused", "_mc_label")

    def __init__(self, env: "Environment"):
        self.env = env
        #: Callables invoked with this event when it is processed; ``None``
        #: once processed.
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._defused: bool = False
        self._mc_label = None

    def __repr__(self) -> str:
        state = (
            "pending"
            if self._value is _PENDING
            else ("ok" if self._ok else "failed")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed`/:meth:`fail` has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if self._value is _PENDING:
            raise SimulationError("event is not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception) once triggered."""
        if self._value is _PENDING:
            raise SimulationError("event is not yet triggered")
        return self._value

    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # env.schedule(self, 0.0, priority), inlined: succeed() triggers
        # nearly every non-timeout event in a run.
        env = self.env
        seq = env._seq
        env._seq = seq + 1
        _heappush(env._queue, (env._now, priority, seq, self))
        return self

    def fail(self, exception: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self, 0.0, priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the same outcome as another (triggered) event."""
        if event._value is _PENDING:
            raise SimulationError("source event is not triggered")
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- composition -------------------------------------------------------

    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_done, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_done, [self, other])


class Timeout(Event):
    """An event that fires ``delay`` time units after it is created."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Field-by-field init (no super() chain): Timeouts are the single
        # most allocated object in a simulation.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self._mc_label = None
        self.delay = delay
        seq = env._seq
        env._seq = seq + 1
        _heappush(env._queue, (env._now + delay, PRIORITY_NORMAL, seq, self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Initialize(Event):
    """Internal event that starts a new :class:`Process`."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env.schedule(self, 0.0, PRIORITY_URGENT)


class Process(Event):
    """A running generator coroutine.

    The process itself is an :class:`Event` that triggers when the generator
    returns (value = return value) or raises (failure).  Other processes can
    therefore ``yield proc`` to join it.
    """

    __slots__ = ("_generator", "name", "_target", "started_at")

    def __init__(
        self,
        env: "Environment",
        generator: Generator,
        name: Optional[str] = None,
    ):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None if runnable).
        self._target: Optional[Event] = None
        self.started_at = env.now
        Initialize(env, self)

    def __repr__(self) -> str:
        return f"<Process {self.name} at {id(self):#x}>"

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_ev = self.env.event()
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev._defused = True
        interrupt_ev.callbacks.append(self._resume)
        self.env.schedule(interrupt_ev, 0.0, PRIORITY_URGENT)

    def kill(self, value: Any = CRASHED) -> None:
        """Terminate the process immediately (crash-stop semantics).

        Unlike :meth:`interrupt`, the generator is never resumed: it is
        closed in place (running any ``finally`` blocks) and the process
        event succeeds with ``value`` so joiners observe a terminated —
        not failed — process.  Killing a finished process is a no-op.
        """
        if not self.is_alive:
            return
        if self is self.env.active_process:
            raise SimulationError("a process cannot kill itself")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self._generator.close()
        self._ok = True
        self._value = value
        self.env.schedule(self, 0.0, PRIORITY_URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``.

        Runs a loop rather than a single step: when the generator yields an
        *already-processed* event, the process continues immediately with
        that event's outcome instead of allocating a shim event and paying
        an extra PRIORITY_URGENT queue round trip per occurrence.
        """
        if self._value is not _PENDING:
            # Killed (or otherwise finished) before this wakeup landed:
            # the generator is closed, there is nothing to advance.
            return
        env = self.env
        generator = self._generator
        send = generator.send
        while True:
            env._active_proc = self
            # Detach from the old target: if we were interrupted while
            # waiting, the original target may still fire later; drop our
            # callback.
            target = self._target
            if (
                target is not event
                and target is not None
                and target.callbacks is not None
            ):
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:
                    pass
            self._target = None
            try:
                if event._ok:
                    next_ev = send(event._value)
                else:
                    event._defused = True
                    next_ev = generator.throw(event._value)
            except StopIteration as exc:
                env._active_proc = None
                self._ok = True
                self._value = getattr(exc, "value", None)
                env.schedule(self, 0.0, PRIORITY_NORMAL)
                return
            except StopProcess as exc:
                env._active_proc = None
                generator.close()
                self._ok = True
                self._value = exc.value
                env.schedule(self, 0.0, PRIORITY_NORMAL)
                return
            except BaseException as exc:
                env._active_proc = None
                self._ok = False
                self._value = exc
                env.schedule(self, 0.0, PRIORITY_NORMAL)
                return
            env._active_proc = None

            if not isinstance(next_ev, Event):
                generator.throw(
                    SimulationError(
                        f"process {self.name!r} yielded {next_ev!r}, which is not "
                        "an Event; protocol helpers must be delegated to with "
                        "'yield from'"
                    )
                )
                return
            if next_ev.env is not env:
                generator.throw(
                    SimulationError("yielded an event from a different environment")
                )
                return
            callbacks = next_ev.callbacks
            if callbacks is not None:
                callbacks.append(self._resume)
                self._target = next_ev
                return
            # Already processed: continue immediately at the current time
            # with that event's outcome (the fast resume path).
            event = next_ev


class ConditionValue:
    """Mapping-like result of a :class:`Condition` (events -> values)."""

    __slots__ = ("events", "_todict")

    def __init__(self, events: list):
        self.events = events
        self._todict = None

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(event)
        return event._value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"

    def todict(self) -> dict:
        if self._todict is None:
            self._todict = {ev: ev._value for ev in self.events}
        return self._todict


class Condition(Event):
    """Composite event over a list of sub-events.

    Succeeds (with a :class:`ConditionValue` of the *processed* sub-events,
    in completion order) when ``evaluate(events, n_done)`` returns True;
    fails immediately if any sub-event fails.  Completion tracking is O(1)
    per sub-event: done events are appended incrementally instead of
    rescanning ``self._events`` on every callback, which kept wide
    :class:`AllOf` barriers linear instead of quadratic.
    """

    __slots__ = ("_evaluate", "_events", "_count", "_done")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list, int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        #: Sub-events that have been *processed* (callbacks ran) and
        #: succeeded, in completion order.  "Done" means processed, not
        #: merely triggered: a Timeout is triggered at creation but has not
        #: happened yet.
        self._done: list = []
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("events from different environments")
        if not self._events:
            self.succeed(ConditionValue([]))
            return
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        else:
            self._done.append(event)
            if self._evaluate(self._events, self._count):
                self.succeed(ConditionValue(self._done))

    @staticmethod
    def all_done(events: list, count: int) -> bool:
        return count == len(events)

    @staticmethod
    def any_done(events: list, count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Succeeds when all sub-events have succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.all_done, events)


class AnyOf(Condition):
    """Succeeds as soon as any sub-event has succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.any_done, events)


class Environment:
    """The simulation environment: a clock and a priority event queue."""

    __slots__ = (
        "_now",
        "_queue",
        "_seq",
        "_active_proc",
        "on_event",
        "events_processed",
        "_sync_monitor",
        "_process_factory",
        "_event_pool",
        "_timeout_pool",
        "_mc_strategy",
    )

    #: Class-level hook: when set to a zero-argument callable, every new
    #: Environment installs ``strategy_factory()`` as its scheduler
    #: strategy.  Lets RMCheck reach environments constructed deep inside
    #: experiment harnesses without threading a parameter through.
    strategy_factory: Optional[Callable[[], "SchedulerStrategy"]] = None

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []
        self._seq = 0
        self._active_proc: Optional[Process] = None
        #: Optional callable ``(time, event)`` invoked on every processed
        #: event; used by :mod:`repro.sim.trace`.  Sampled at the top of
        #: :meth:`run`: attach tracers before calling ``run``.
        self.on_event: Optional[Callable[[float, Event], None]] = None
        #: Count of processed events (cheap global progress metric).
        self.events_processed = 0
        #: RMCSan monitor hook (see :mod:`repro.analysis.monitor`).
        self._sync_monitor = None
        #: Optional override for :meth:`process` (monitors wrap process
        #: creation to inherit actor labels).
        self._process_factory: Optional[Callable] = None
        # Free lists of recycled plain Events / Timeouts (slab reuse; see
        # the run loop).
        self._event_pool: list = []
        self._timeout_pool: list = []
        #: Controlled-scheduler hook (see :class:`SchedulerStrategy`).
        factory = type(self).strategy_factory
        self._mc_strategy: Optional[SchedulerStrategy] = (
            factory() if factory is not None else None
        )

    # -- clock & queue -----------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time (microseconds by convention)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = PRIORITY_NORMAL
    ) -> None:
        """Enqueue a triggered event ``delay`` time units from now."""
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._queue, (self._now + delay, priority, seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process one event; raises :class:`EmptySchedule` if none left."""
        try:
            when, _prio, _seq, event = _heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        self.events_processed += 1
        if self.on_event is not None:
            self.on_event(when, event)
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            exc = event._value
            raise exc

    def _recycle(self, event: Event, callbacks: list) -> None:
        """Return a processed, provably unreferenced event to its free list.

        Only called from the run loop, and only for plain ``Event`` /
        ``Timeout`` instances whose refcount proves nothing else can ever
        observe them again.  The detached callbacks list is cleared and
        reattached so the recycled event is indistinguishable from a fresh
        pending one.
        """
        if event.__class__ is Timeout:
            pool = self._timeout_pool
        else:
            pool = self._event_pool
        if len(pool) < _POOL_LIMIT:
            callbacks.clear()
            event.callbacks = callbacks
            event._value = _PENDING
            event._ok = True
            event._defused = False
            event._mc_label = None
            pool.append(event)

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a number
        (run until that simulated time), or an :class:`Event` (run until it
        is processed; its value is returned).
        """
        if self._mc_strategy is not None:
            return self._run_controlled(until)
        stop_at: Optional[float] = None
        stop_ev: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_ev = until
                if stop_ev.callbacks is None:
                    if not stop_ev._ok:
                        raise stop_ev._value
                    return stop_ev._value
            else:
                stop_at = float(until)
                if stop_at < self._now:
                    raise ValueError(
                        f"until={stop_at} is in the past (now={self._now})"
                    )

        queue = self._queue
        pop = _heappop
        on_event = self.on_event
        refcount = _getrefcount

        if stop_ev is None and stop_at is None and on_event is None:
            # No-trace fast path: drain the queue with an inlined step loop
            # (no peek()/step() call pair, no on_event branch) and recycle
            # unreachable Event/Timeout objects through the free lists.
            event_pool = self._event_pool
            timeout_pool = self._timeout_pool
            processed = 0
            try:
                while queue:
                    when, _prio, _seq, event = pop(queue)
                    self._now = when
                    callbacks = event.callbacks
                    event.callbacks = None
                    processed += 1
                    for cb in callbacks:
                        cb(event)
                    if not event._ok and not event._defused:
                        raise event._value
                    cls = event.__class__
                    if (
                        (cls is Timeout or cls is Event)
                        and refcount is not None
                        # 2 == the loop local + getrefcount's argument:
                        # nothing else references the event, so it is safe
                        # to reuse.
                        and refcount(event) == 2
                    ):
                        # _recycle(), inlined: this runs once per event.
                        pool = timeout_pool if cls is Timeout else event_pool
                        if len(pool) < _POOL_LIMIT:
                            callbacks.clear()
                            event.callbacks = callbacks
                            event._value = _PENDING
                            event._ok = True
                            event._defused = False
                            event._mc_label = None
                            pool.append(event)
            finally:
                # The counter is only observed between run() calls; batching
                # the per-event increment out of the loop is measurable.
                self.events_processed += processed
            return None

        hit: list = []
        if stop_ev is not None:
            stop_ev.callbacks.append(hit.append)
        while True:
            if stop_ev is not None and hit:
                break
            if not queue:
                if stop_ev is not None:
                    raise SimulationError(
                        "simulation queue drained before the awaited event "
                        f"{stop_ev!r} triggered (deadlock?)"
                    )
                if stop_at is not None:
                    self._now = stop_at
                break
            if stop_at is not None and queue[0][0] > stop_at:
                self._now = stop_at
                break
            when, _prio, _seq, event = pop(queue)
            self._now = when
            callbacks = event.callbacks
            event.callbacks = None
            self.events_processed += 1
            if on_event is not None:
                on_event(when, event)
            for cb in callbacks:
                cb(event)
            if not event._ok and not event._defused:
                raise event._value
        if stop_ev is not None:
            if not stop_ev.triggered:
                return None
            if not stop_ev._ok:
                raise stop_ev._value
            return stop_ev._value
        return None

    def _run_controlled(self, until: Any = None) -> Any:
        """Run loop with the :class:`SchedulerStrategy` hook engaged.

        Semantics match :meth:`run` except: (1) at each step all co-enabled
        heap entries (equal ``(time, priority)``; plus, when the head is a
        labeled delivery and ``strategy.window > 0``, labeled
        ``PRIORITY_NORMAL`` deliveries within the window) are collected and
        the strategy picks which one to process; (2) a window pick with a
        later timestamp is processed clamped to the head's timestamp, so
        simulated time never runs backwards; (3) no event recycling, so
        labels and identities stay stable for the exploring strategy;
        (4) ``strategy.executed(label)`` fires after each labeled event and
        ``strategy.abort`` abandons the run.

        With the base strategy (window 0, choose→0) the processed event
        sequence is identical to :meth:`run`'s.
        """
        strategy = self._mc_strategy
        stop_at: Optional[float] = None
        stop_ev: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_ev = until
                if stop_ev.callbacks is None:
                    if not stop_ev._ok:
                        raise stop_ev._value
                    return stop_ev._value
            else:
                stop_at = float(until)
                if stop_at < self._now:
                    raise ValueError(
                        f"until={stop_at} is in the past (now={self._now})"
                    )

        queue = self._queue
        pop = _heappop
        push = _heappush
        on_event = self.on_event
        hit: list = []
        if stop_ev is not None:
            stop_ev.callbacks.append(hit.append)
        window = strategy.window
        while True:
            if stop_ev is not None and hit:
                break
            if not queue:
                if stop_ev is not None:
                    raise SimulationError(
                        "simulation queue drained before the awaited event "
                        f"{stop_ev!r} triggered (deadlock?)"
                    )
                if stop_at is not None:
                    self._now = stop_at
                break
            if stop_at is not None and queue[0][0] > stop_at:
                self._now = stop_at
                break
            root = pop(queue)
            t0 = root[0]
            prio0 = root[1]
            candidates = [root]
            # Exact (time, priority) ties are always co-enabled.
            while queue and queue[0][0] == t0 and queue[0][1] == prio0:
                candidates.append(pop(queue))
            # Commutation window: near-tie labeled deliveries are co-enabled
            # too, but only when the head itself is a labeled delivery —
            # pulling a delivery ahead of an unlabeled internal step would
            # not correspond to a legal reordering of the network.
            if window > 0.0 and root[3]._mc_label is not None:
                horizon = t0 + window
                spill = []
                while queue and queue[0][0] <= horizon:
                    entry = pop(queue)
                    if entry[1] == PRIORITY_NORMAL and entry[3]._mc_label is not None:
                        candidates.append(entry)
                    else:
                        spill.append(entry)
                for entry in spill:
                    push(queue, entry)
            if len(candidates) > 1:
                idx = strategy.choose(t0, candidates)
                chosen = candidates[idx]
                for i, entry in enumerate(candidates):
                    if i != idx:
                        push(queue, entry)
            else:
                chosen = root
            event = chosen[3]
            # Clamp window picks to the head timestamp (monotonic time).
            self._now = t0
            callbacks = event.callbacks
            event.callbacks = None
            self.events_processed += 1
            if on_event is not None:
                on_event(t0, event)
            label = event._mc_label
            if label is not None:
                strategy.executed(label)
            for cb in callbacks:
                cb(event)
            if not event._ok and not event._defused:
                raise event._value
            if strategy.abort:
                break
        if stop_ev is not None:
            if not stop_ev.triggered:
                return None
            if not stop_ev._ok:
                raise stop_ev._value
            return stop_ev._value
        return None

    # -- factories ---------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event (recycled from the slab if possible)."""
        pool = self._event_pool
        if pool:
            return pool.pop()
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` time units from now."""
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            t = pool.pop()
            t.delay = delay
            t._value = value
            seq = self._seq
            self._seq = seq + 1
            _heappush(self._queue, (self._now + delay, PRIORITY_NORMAL, seq, t))
            return t
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process driving ``generator``."""
        factory = self._process_factory
        if factory is not None:
            return factory(generator, name=name)
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)


class EmptySchedule(Exception):
    """Internal: the event queue is empty."""
