"""Discrete-event simulation kernel.

This module implements a small, deterministic, generator-coroutine based
discrete-event simulator in the style of SimPy, specialized for the needs of
the ARMCI reproduction:

* **Deterministic ordering.** Events scheduled for the same simulated time are
  processed in a stable order: first by an explicit integer *priority*, then
  by schedule sequence number.  Repeated runs of the same program produce
  byte-identical traces, which the experiment harness relies on.

* **Virtual time in microseconds.** All delays in this code base are expressed
  in microseconds of simulated time, matching the units the paper reports.

* **Processes are generators.** A simulated activity is an ordinary Python
  generator that ``yield``\\ s :class:`Event` objects; composition is done
  with ``yield from`` sub-generators, which keeps protocol code (fence,
  barrier, lock algorithms) readable and close to the paper's pseudocode.

The kernel knows nothing about networks, servers, or ARMCI; those live in
:mod:`repro.net` and :mod:`repro.runtime`.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "Condition",
    "AllOf",
    "AnyOf",
    "ConditionValue",
    "SimulationError",
    "StopProcess",
    "CRASHED",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "PRIORITY_LAZY",
]

#: Priority for events that must run before ordinary events at the same time
#: (e.g. interrupts).
PRIORITY_URGENT = 0
#: Default event priority.
PRIORITY_NORMAL = 1
#: Priority for events that should run after ordinary events at the same time.
PRIORITY_LAZY = 2

_PENDING = object()


class _Crashed:
    """Sentinel value of a process terminated by :meth:`Process.kill`."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "CRASHED"

    def __bool__(self) -> bool:
        return False


#: Result value of a process killed by a crash-stop fault (see
#: :meth:`Process.kill`).  Falsy, so ``if result:`` treats a crashed rank
#: like "no result".
CRASHED = _Crashed()


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (not for modeled failures)."""


class StopProcess(Exception):
    """Raised inside a process generator to exit early with a value.

    ``raise StopProcess(value)`` is equivalent to ``return value`` but can be
    used from inside nested helpers.
    """

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process may catch it and continue; ``cause`` carries the
    value passed to ``interrupt``.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """A happening at a point in simulated time.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    *triggers* it, scheduling it on the environment's queue.  When the
    environment pops it, the event is *processed*: its callbacks run, which is
    how waiting processes get resumed.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        #: Callables invoked with this event when it is processed; ``None``
        #: once processed.
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._defused: bool = False

    def __repr__(self) -> str:
        state = (
            "pending"
            if self._value is _PENDING
            else ("ok" if self._ok else "failed")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed`/:meth:`fail` has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if self._value is _PENDING:
            raise SimulationError("event is not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception) once triggered."""
        if self._value is _PENDING:
            raise SimulationError("event is not yet triggered")
        return self._value

    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, 0.0, priority)
        return self

    def fail(self, exception: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self, 0.0, priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the same outcome as another (triggered) event."""
        if event._value is _PENDING:
            raise SimulationError("source event is not triggered")
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- composition -------------------------------------------------------

    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_done, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_done, [self, other])


class Timeout(Event):
    """An event that fires ``delay`` time units after it is created."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay, PRIORITY_NORMAL)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Initialize(Event):
    """Internal event that starts a new :class:`Process`."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env.schedule(self, 0.0, PRIORITY_URGENT)


class Process(Event):
    """A running generator coroutine.

    The process itself is an :class:`Event` that triggers when the generator
    returns (value = return value) or raises (failure).  Other processes can
    therefore ``yield proc`` to join it.
    """

    __slots__ = ("_generator", "name", "_target", "started_at")

    def __init__(
        self,
        env: "Environment",
        generator: Generator,
        name: Optional[str] = None,
    ):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None if runnable).
        self._target: Optional[Event] = None
        self.started_at = env.now
        Initialize(env, self)

    def __repr__(self) -> str:
        return f"<Process {self.name} at {id(self):#x}>"

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_ev = Event(self.env)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev._defused = True
        interrupt_ev.callbacks.append(self._resume)
        self.env.schedule(interrupt_ev, 0.0, PRIORITY_URGENT)

    def kill(self, value: Any = CRASHED) -> None:
        """Terminate the process immediately (crash-stop semantics).

        Unlike :meth:`interrupt`, the generator is never resumed: it is
        closed in place (running any ``finally`` blocks) and the process
        event succeeds with ``value`` so joiners observe a terminated —
        not failed — process.  Killing a finished process is a no-op.
        """
        if not self.is_alive:
            return
        if self is self.env.active_process:
            raise SimulationError("a process cannot kill itself")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self._generator.close()
        self._ok = True
        self._value = value
        self.env.schedule(self, 0.0, PRIORITY_URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        if self._value is not _PENDING:
            # Killed (or otherwise finished) before this wakeup landed:
            # the generator is closed, there is nothing to advance.
            return
        env = self.env
        env._active_proc = self
        # Detach from the old target: if we were interrupted while waiting,
        # the original target may still fire later; drop our callback.
        if (
            self._target is not None
            and self._target is not event
            and self._target.callbacks is not None
        ):
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        try:
            if event._ok:
                next_ev = self._generator.send(event._value)
            else:
                event._defused = True
                next_ev = self._generator.throw(event._value)
        except StopIteration as exc:
            env._active_proc = None
            self._ok = True
            self._value = getattr(exc, "value", None)
            env.schedule(self, 0.0, PRIORITY_NORMAL)
            return
        except StopProcess as exc:
            env._active_proc = None
            self._generator.close()
            self._ok = True
            self._value = exc.value
            env.schedule(self, 0.0, PRIORITY_NORMAL)
            return
        except BaseException as exc:
            env._active_proc = None
            self._ok = False
            self._value = exc
            env.schedule(self, 0.0, PRIORITY_NORMAL)
            return
        env._active_proc = None

        if not isinstance(next_ev, Event):
            self._generator.throw(
                SimulationError(
                    f"process {self.name!r} yielded {next_ev!r}, which is not "
                    "an Event; protocol helpers must be delegated to with "
                    "'yield from'"
                )
            )
            return
        if next_ev.env is not env:
            self._generator.throw(
                SimulationError("yielded an event from a different environment")
            )
            return
        if next_ev.callbacks is not None:
            next_ev.callbacks.append(self._resume)
            self._target = next_ev
        else:
            # Already processed: resume immediately at the current time.
            resume_ev = Event(env)
            resume_ev._ok = next_ev._ok
            resume_ev._value = next_ev._value
            if not next_ev._ok:
                next_ev._defused = True
                resume_ev._defused = True
            resume_ev.callbacks.append(self._resume)
            env.schedule(resume_ev, 0.0, PRIORITY_URGENT)
            self._target = resume_ev


class ConditionValue:
    """Mapping-like result of a :class:`Condition` (events -> values)."""

    __slots__ = ("events", "_todict")

    def __init__(self, events: list):
        self.events = events
        self._todict = None

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(event)
        return event._value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"

    def todict(self) -> dict:
        if self._todict is None:
            self._todict = {ev: ev._value for ev in self.events}
        return self._todict


class Condition(Event):
    """Composite event over a list of sub-events.

    Succeeds (with a :class:`ConditionValue` of the *triggered* sub-events)
    when ``evaluate(events, n_done)`` returns True; fails immediately if any
    sub-event fails.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list, int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("events from different environments")
        if not self._events:
            self.succeed(ConditionValue([]))
            return
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            # "Done" means *processed* (callbacks ran), not merely triggered:
            # a Timeout is triggered at creation but has not happened yet.
            done = [ev for ev in self._events if ev.callbacks is None and ev._ok]
            self.succeed(ConditionValue(done))

    @staticmethod
    def all_done(events: list, count: int) -> bool:
        return count == len(events)

    @staticmethod
    def any_done(events: list, count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Succeeds when all sub-events have succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.all_done, events)


class AnyOf(Condition):
    """Succeeds as soon as any sub-event has succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.any_done, events)


class Environment:
    """The simulation environment: a clock and a priority event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []
        self._seq = count()
        self._active_proc: Optional[Process] = None
        #: Optional callable ``(time, event)`` invoked on every processed
        #: event; used by :mod:`repro.sim.trace`.
        self.on_event: Optional[Callable[[float, Event], None]] = None
        #: Count of processed events (cheap global progress metric).
        self.events_processed = 0

    # -- clock & queue -----------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time (microseconds by convention)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = PRIORITY_NORMAL
    ) -> None:
        """Enqueue a triggered event ``delay`` time units from now."""
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._seq), event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process one event; raises :class:`EmptySchedule` if none left."""
        try:
            when, _prio, _seq, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        self.events_processed += 1
        if self.on_event is not None:
            self.on_event(when, event)
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            exc = event._value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a number
        (run until that simulated time), or an :class:`Event` (run until it
        is processed; its value is returned).
        """
        stop_at: Optional[float] = None
        stop_ev: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_ev = until
                if stop_ev.callbacks is None:
                    return stop_ev._value
            else:
                stop_at = float(until)
                if stop_at < self._now:
                    raise ValueError(
                        f"until={stop_at} is in the past (now={self._now})"
                    )
        hit = []
        if stop_ev is not None:
            stop_ev.callbacks.append(hit.append)
        try:
            while True:
                if stop_ev is not None and hit:
                    break
                nxt = self.peek()
                if nxt == float("inf"):
                    if stop_ev is not None:
                        raise SimulationError(
                            "simulation queue drained before the awaited event "
                            f"{stop_ev!r} triggered (deadlock?)"
                        )
                    if stop_at is not None:
                        self._now = stop_at
                    break
                if stop_at is not None and nxt > stop_at:
                    self._now = stop_at
                    break
                self.step()
        except EmptySchedule:
            pass
        if stop_ev is not None:
            if not stop_ev.triggered:
                return None
            if not stop_ev._ok:
                raise stop_ev._value
            return stop_ev._value
        return None

    # -- factories ---------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)


class EmptySchedule(Exception):
    """Internal: the event queue is empty."""
