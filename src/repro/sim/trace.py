"""Lightweight tracing and measurement helpers for simulations.

The experiment harness measures *simulated* time.  :class:`Stopwatch`
accumulates interval samples in virtual microseconds; :class:`Tracer`
optionally records every processed kernel event for debugging.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from .core import Environment, Event

__all__ = ["Stopwatch", "SampleStats", "Tracer", "TraceRecord"]


@dataclass
class SampleStats:
    """Summary statistics over a set of duration samples (microseconds)."""

    count: int
    mean: float
    minimum: float
    maximum: float
    stddev: float
    total: float

    @classmethod
    def from_samples(cls, samples: List[float]) -> "SampleStats":
        if not samples:
            return cls(0, float("nan"), float("nan"), float("nan"), float("nan"), 0.0)
        n = len(samples)
        total = sum(samples)
        mean = total / n
        if n > 1:
            # Sample (n-1) variance: these are measurements drawn from the
            # run, not the whole population of possible intervals.
            var = sum((s - mean) ** 2 for s in samples) / (n - 1)
            stddev = math.sqrt(var)
        else:
            stddev = 0.0
        return cls(n, mean, min(samples), max(samples), stddev, total)


class Stopwatch:
    """Accumulates interval samples of simulated time.

    Usage inside a process::

        sw.start()
        ...  # yield some events
        sw.stop()
    """

    def __init__(self, env: Environment, name: str = "stopwatch"):
        self.env = env
        self.name = name
        self.samples: List[float] = []
        self._started_at: Optional[float] = None

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError(f"stopwatch {self.name!r} already running")
        self._started_at = self.env.now

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError(f"stopwatch {self.name!r} is not running")
        dt = self.env.now - self._started_at
        self._started_at = None
        self.samples.append(dt)
        return dt

    def discard(self) -> None:
        """Abort the current interval without recording it."""
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def stats(self) -> SampleStats:
        return SampleStats.from_samples(self.samples)

    def mean(self) -> float:
        return self.stats().mean

    def reset(self) -> None:
        self.samples.clear()
        self._started_at = None


@dataclass
class TraceRecord:
    """One processed kernel event."""

    time: float
    kind: str
    detail: str


@dataclass
class Tracer:
    """Records every processed event via ``Environment.on_event``.

    Intended for debugging small runs; do not enable for full benchmarks.

    Besides raw kernel events (:class:`TraceRecord`), a tracer can collect
    *structured protocol events* — objects with ``kind``/``time``/``actor``
    attributes and a ``to_dict()`` method (see ``repro.analysis.events``) —
    pushed explicitly via :meth:`emit`.  These feed the RMCSan
    happens-before engine and the ``--trace-out`` JSONL dump.
    """

    records: List[TraceRecord] = field(default_factory=list)
    limit: int = 100_000
    events: List[Any] = field(default_factory=list)
    event_limit: int = 2_000_000

    def install(self, env: Environment) -> None:
        env.on_event = self._on_event

    def _on_event(self, when: float, event: Event) -> None:
        if len(self.records) >= self.limit:
            return
        self.records.append(
            TraceRecord(when, type(event).__name__, repr(event))
        )

    def of_kind(self, kind: str) -> List[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def between(self, t0: float, t1: float) -> List[TraceRecord]:
        return [r for r in self.records if t0 <= r.time <= t1]

    # -- structured protocol events -----------------------------------------

    def emit(self, event: Any) -> None:
        """Append one structured protocol event (order = emission order)."""
        if len(self.events) >= self.event_limit:
            return
        self.events.append(event)

    def events_of(self, kind: str) -> List[Any]:
        return [e for e in self.events if e.kind == kind]

    def dump_jsonl(self, path: str, header: Optional[dict] = None) -> int:
        """Append the structured events to ``path`` as JSON lines.

        Returns the number of event lines written.  ``header``, when given,
        is written first as its own line (used to delimit runs in a file
        shared by several experiments).
        """
        import json

        with open(path, "a", encoding="utf-8") as fh:
            if header is not None:
                fh.write(json.dumps(header) + "\n")
            for event in self.events:
                fh.write(json.dumps(event.to_dict()) + "\n")
        return len(self.events)
