"""Waitable synchronization primitives built on the simulation kernel.

These are the building blocks the cluster runtime uses:

* :class:`Store` — an unbounded FIFO of items with blocking ``get``; this is
  the mailbox type used for server request queues and MPI-style message
  queues.
* :class:`FilterStore` — a store whose ``get`` takes a predicate, used for
  tag/source matching in :mod:`repro.mp`.
* :class:`Resource` — a counted resource with FIFO granting, used to model
  NIC send-side serialization (one DMA engine per node).
* :class:`Broadcast` — a re-armable "condition variable" that wakes *all*
  waiters, used by memory write-watchers to model processes polling a flag.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from .core import Environment, Event, SimulationError

__all__ = ["Store", "FilterStore", "Resource", "Broadcast"]


class Store:
    """Unbounded FIFO message store.

    ``put`` never blocks (the fabric models all back-pressure as time, not
    as blocking); ``get`` returns an :class:`Event` that fires with the next
    item, preserving both item order and waiter order.
    """

    def __init__(self, env: Environment, name: str = "store"):
        self.env = env
        self.name = name
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        #: Total number of items ever put (for tracing/tests).
        self.total_put = 0

    def __repr__(self) -> str:
        return f"<Store {self.name} items={len(self.items)} waiters={len(self._getters)}>"

    def __len__(self) -> int:
        return len(self.items)

    @property
    def idle_waiters(self) -> int:
        """Number of processes currently blocked in ``get``."""
        return len(self._getters)

    def put(self, item: Any) -> None:
        """Deposit ``item``, waking the oldest waiting getter if any."""
        self.total_put += 1
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self.items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        ev = self.env.event()
        if self.items:
            ev.succeed(self.items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get: the next item, or ``None`` if empty."""
        if self.items:
            return self.items.popleft()
        return None

    def cancel_get(self, event: Event) -> bool:
        """Withdraw a pending ``get`` so it can never consume an item.

        Returns True if the event was still waiting (and was removed);
        False if it already fired (the caller then owns the item) or was
        never queued.
        """
        try:
            self._getters.remove(event)
            return True
        except ValueError:
            return False


class FilterStore:
    """A store whose getters select items with a predicate.

    Matching follows MPI semantics: a getter scans queued items in arrival
    order and takes the first match; an arriving item is offered to blocked
    getters in their arrival order.
    """

    def __init__(self, env: Environment, name: str = "filterstore"):
        self.env = env
        self.name = name
        self.items: list = []
        self._getters: list = []  # (event, predicate)
        self.total_put = 0

    def __repr__(self) -> str:
        return (
            f"<FilterStore {self.name} items={len(self.items)} "
            f"waiters={len(self._getters)}>"
        )

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> None:
        self.total_put += 1
        for i, (ev, pred) in enumerate(self._getters):
            if pred(item):
                del self._getters[i]
                ev.succeed(item)
                return
        self.items.append(item)

    def get(self, predicate: Callable[[Any], bool]) -> Event:
        ev = self.env.event()
        for i, item in enumerate(self.items):
            if predicate(item):
                del self.items[i]
                ev.succeed(item)
                return ev
        self._getters.append((ev, predicate))
        return ev

    def try_get(self, predicate: Callable[[Any], bool]) -> Optional[Any]:
        for i, item in enumerate(self.items):
            if predicate(item):
                del self.items[i]
                return item
        return None


class Resource:
    """A counted resource granted FIFO.

    Usage from a process::

        yield resource.acquire()
        try:
            ...
        finally:
            resource.release()
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    def __repr__(self) -> str:
        return (
            f"<Resource {self.name} {self.in_use}/{self.capacity} "
            f"queued={len(self._waiters)}>"
        )

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        ev = self.env.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError(f"release of idle {self!r}")
        if self._waiters:
            ev = self._waiters.popleft()
            ev.succeed()
        else:
            self.in_use -= 1

    def hold(self, duration: float):
        """Sub-generator: acquire, hold for ``duration``, release.

        Models occupying the resource for a fixed service time::

            yield from nic.hold(xfer_time)
        """
        yield self.acquire()
        try:
            yield self.env.timeout(duration)
        finally:
            self.release()


class Broadcast:
    """Re-armable broadcast signal.

    ``wait()`` returns an event that fires at the next ``fire()``.  Unlike a
    plain :class:`Event`, a Broadcast can fire many times; each ``fire``
    wakes exactly the waiters registered before it.
    """

    def __init__(self, env: Environment, name: str = "broadcast"):
        self.env = env
        self.name = name
        self._waiters: list = []
        #: Number of times fired (handy for tests).
        self.fired = 0

    def __repr__(self) -> str:
        return f"<Broadcast {self.name} waiters={len(self._waiters)} fired={self.fired}>"

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def wait(self) -> Event:
        ev = self.env.event()
        self._waiters.append(ev)
        return ev

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        self.fired += 1
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed(value)
        return len(waiters)
