"""Per-process activity timelines with ASCII Gantt rendering.

A debugging/teaching aid: programs (or instrumented primitives) record
labeled intervals per rank; :meth:`Timeline.render` draws the interleaving
as one lane per rank, which makes convoys (Figure 7's AllFence) and lock
handoff chains (Figures 8-10) visible at a glance.

Usage::

    tl = Timeline(env)
    ...
    tl.begin(rank, "fence")
    ...  # simulated time passes
    tl.end(rank)
    print(tl.render(width=100))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .core import Environment

__all__ = ["Timeline", "Interval"]


@dataclass(frozen=True)
class Interval:
    rank: int
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """Collects labeled per-rank intervals in virtual time."""

    def __init__(self, env: Environment):
        self.env = env
        self.intervals: List[Interval] = []
        self._open: Dict[int, Tuple[str, float]] = {}

    def begin(self, rank: int, label: str) -> None:
        """Open an interval for ``rank`` (closing any still-open one)."""
        if rank in self._open:
            self.end(rank)
        self._open[rank] = (label, self.env.now)

    def end(self, rank: int) -> Optional[Interval]:
        """Close ``rank``'s open interval; returns it (or None)."""
        entry = self._open.pop(rank, None)
        if entry is None:
            return None
        label, start = entry
        interval = Interval(rank, label, start, self.env.now)
        if interval.duration > 0:
            self.intervals.append(interval)
        return interval

    def close_all(self) -> None:
        for rank in list(self._open):
            self.end(rank)

    # -- queries -----------------------------------------------------------------

    def by_rank(self, rank: int) -> List[Interval]:
        return [iv for iv in self.intervals if iv.rank == rank]

    def total(self, rank: int, label: str) -> float:
        """Total time ``rank`` spent in intervals labeled ``label``."""
        return sum(
            iv.duration for iv in self.intervals
            if iv.rank == rank and iv.label == label
        )

    def span(self) -> Tuple[float, float]:
        if not self.intervals:
            return (0.0, 0.0)
        return (
            min(iv.start for iv in self.intervals),
            max(iv.end for iv in self.intervals),
        )

    # -- rendering ------------------------------------------------------------------

    def render(
        self,
        width: int = 80,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
    ) -> str:
        """ASCII Gantt: one lane per rank; each label gets a stable glyph."""
        if not self.intervals:
            return "(empty timeline)"
        lo, hi = self.span()
        t0 = lo if t0 is None else t0
        t1 = hi if t1 is None else t1
        if t1 <= t0:
            return "(empty window)"
        glyphs = "#*+=o%@&$~"
        labels = sorted({iv.label for iv in self.intervals})
        glyph_of = {
            label: glyphs[i % len(glyphs)] for i, label in enumerate(labels)
        }
        scale = width / (t1 - t0)
        ranks = sorted({iv.rank for iv in self.intervals})
        lines = []
        for rank in ranks:
            lane = [" "] * width
            for iv in self.by_rank(rank):
                a = max(int((iv.start - t0) * scale), 0)
                b = min(max(int((iv.end - t0) * scale), a + 1), width)
                for x in range(a, b):
                    lane[x] = glyph_of[iv.label]
            lines.append(f"r{rank:<3}|{''.join(lane)}|")
        legend = "  ".join(f"{glyph_of[l]}={l}" for l in labels)
        header = f"t=[{t0:.1f}, {t1:.1f}]us  {legend}"
        return "\n".join([header] + lines)
