"""Deterministic discrete-event simulation kernel (generator coroutines).

See :mod:`repro.sim.core` for the event loop and process model,
:mod:`repro.sim.primitives` for stores/resources/broadcasts, and
:mod:`repro.sim.trace` for measurement helpers.
"""

from .core import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    StopProcess,
    Timeout,
    PRIORITY_LAZY,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
)
from .primitives import Broadcast, FilterStore, Resource, Store
from .timeline import Interval, Timeline
from .trace import SampleStats, Stopwatch, Tracer, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "Broadcast",
    "Condition",
    "ConditionValue",
    "Environment",
    "Event",
    "FilterStore",
    "Interrupt",
    "Interval",
    "Timeline",
    "Process",
    "Resource",
    "SampleStats",
    "SimulationError",
    "StopProcess",
    "Stopwatch",
    "Store",
    "Timeout",
    "Tracer",
    "TraceRecord",
    "PRIORITY_LAZY",
    "PRIORITY_NORMAL",
    "PRIORITY_URGENT",
]
