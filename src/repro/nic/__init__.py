"""Programmable NIC co-processor model (the NIC-offloaded barrier).

Myrinet's LANai (and Quadrics' Elan) expose a user-programmable embedded
processor on the NIC.  Follow-on work to the paper (Yu/Buntinas/Graham/
Panda) runs the whole combining protocol there: the host posts a single
doorbell and the NICs execute the barrier among themselves, paying neither
MPI software-stack calls nor host wake-ups per phase.

:class:`~repro.nic.engine.NicEngine` models one such co-processor per node.
Engines are constructed lazily, on the first ``armci.barrier(algorithm=
"nic")`` call — runs that never request the NIC path construct nothing and
stay byte-identical.
"""

from .engine import NicEngine, NicFrame, ensure_engines

__all__ = ["NicEngine", "NicFrame", "ensure_engines"]
