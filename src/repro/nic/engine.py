"""Per-node programmable NIC co-processor running the offloaded barrier.

One :class:`NicEngine` models the LANai-style embedded processor on a
node's NIC.  The host side of ``armci.barrier(algorithm="nic")`` posts a
single *doorbell* carrying its cumulative ``op_init`` row and then blocks
on a completion event — it never spins on remote progress.  The NICs run
the three stages of the combined fence+barrier among themselves:

1. each NIC folds the doorbell rows of its hosted ranks and runs an
   elementwise-sum over nodes (pairwise recursive doubling, or a binary
   combining tree with ``nic_algorithm="tree"``);
2. stage 2 is satisfied against a NIC-resident *mirror* of the server's
   ``op_done`` counters, pushed down over DMA by the server thread on
   every completion (see :meth:`mirror_push`);
3. a node-level barrier (dissemination or tree), after which each hosted
   rank's completion event is written back over DMA.

Every protocol step charges ``nic_proc_us``; host<->NIC crossings charge
``nic_doorbell_us`` / ``nic_dma_us`` (+ per-byte).  NIC-to-NIC frames ride
the ordinary fabric — including the fault injector and the reliable
ACK/retransmit layer when those are configured — addressed to the
``("nic", node)`` endpoint, so NIC-level retransmit state comes from the
same transport machinery the host protocols use.

Engines are built lazily by :func:`ensure_engines`; configurations that
never request the NIC path construct nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from ..net.message import nic_endpoint
from ..sim.core import Event
from ..sim.primitives import Broadcast, FilterStore

if TYPE_CHECKING:  # pragma: no cover
    from ..armci.api import Armci

__all__ = ["NicEngine", "NicFrame", "ensure_engines"]

#: Bytes per counter slot in a doorbell/frame vector (one long each).
SLOT_BYTES = 8


@dataclass
class NicFrame:
    """One NIC-to-NIC protocol frame of the offloaded barrier."""

    epoch: int
    phase: str
    src_node: int
    values: Optional[List[int]] = None


class _EpochState:
    """Per-barrier-epoch NIC state: doorbell rows and release events."""

    __slots__ = ("rows", "release", "all_rows", "proc", "totals")

    def __init__(self, env):
        self.rows: Dict[int, List[int]] = {}
        self.release: Dict[int, Event] = {}
        self.all_rows = env.event()
        self.proc = None
        #: Stage-1 result, published so crash recovery can complete a
        #: committed epoch on behalf of an engine wedged in stage 3.
        self.totals: Optional[List[int]] = None


def ensure_engines(armci: "Armci") -> Dict[int, "NicEngine"]:
    """Build (once) and return the per-node NIC engines for this fabric.

    Construction is synchronous — no virtual time passes — so the op_done
    mirror seeds and the server hooks cannot race with in-flight bumps.
    """
    fabric = armci.fabric
    engines = getattr(fabric, "_nic_engines", None)
    if engines is None:
        engines = {}
        for node in range(armci.topology.nnodes):
            engine = NicEngine(
                armci.env,
                fabric,
                armci.topology,
                armci.params,
                node,
                armci.servers[node],
                monitor=armci._monitor,
            )
            # A node that crashed before the first NIC barrier has a dead
            # NIC from the start: the co-processor never runs an epoch.
            if fabric.endpoint_dead(nic_endpoint(node)):
                engine.dead = True
            engines[node] = engine
        fabric._nic_engines = engines
    return engines


class NicEngine:
    """The programmable NIC co-processor of one node."""

    def __init__(self, env, fabric, topology, params, node, server, monitor=None):
        self.env = env
        self.fabric = fabric
        self.topology = topology
        self.params = params
        self.node = node
        self.server = server
        self.nprocs = topology.nprocs
        self.hosted = tuple(topology.ranks_on(node))
        self._monitor = monitor
        self.dead = False
        self.mailbox = FilterStore(env, name=f"nic{node}.rx")
        fabric.register(nic_endpoint(node), self.mailbox)
        # NIC-resident mirror of the server's op_done counters, seeded from
        # the live values and pushed forward by the server on every bump.
        self.mirror: Dict[int, int] = {
            rank: server.op_done(rank) for rank in self.hosted
        }
        self._mirror_signal = Broadcast(env, name=f"nic{node}.mirror")
        server._nic_engine = self
        self._epochs: Dict[int, _EpochState] = {}
        #: Epochs this engine finished (stage 3 done, releases issued).
        #: Commit evidence for view-change resolution: once *any* engine
        #: committed an epoch, every engine had drained stage 2, so peers
        #: wedged in stage 3 by a crashed NIC can be released too.
        self.committed: set = set()
        self._procs: list = []

    def __repr__(self) -> str:
        return f"<NicEngine node={self.node} hosted={self.hosted}>"

    # -- host side -----------------------------------------------------------

    def post_doorbell(self, epoch: int, rank: int, row) -> Event:
        """Ring the doorbell for ``rank``'s barrier ``epoch``.

        Called from the host process after it charged ``nic_doorbell_us``.
        The ``op_init`` row crosses the PCI bus by DMA (``nic_dma_us`` +
        per-byte); the returned event fires when the NIC writes back the
        barrier completion.  The host never polls remote state.
        """
        p = self.params
        membership = getattr(self.fabric, "_membership", None)
        if (
            membership is not None
            and getattr(membership, "_transient", False)
            and not membership.in_view(rank)
        ):
            # Fencing at the doorbell: a partition-excluded rank must not
            # seed a barrier epoch the majority view is running without
            # it.  The host sees ``None`` and degrades to the resilient
            # exchange, whose freeze gate queues it until rejoin.
            if self._monitor is not None:
                self._monitor.emit(
                    "nic_doorbell_rejected", epoch=epoch, rank=rank,
                    node=self.node,
                )
            return None
        if self._monitor is not None:
            self._monitor.emit(
                "nic_doorbell", epoch=epoch, rank=rank, node=self.node,
                n=self.nprocs,
            )
        state = self._epoch_state(epoch)
        release = self.env.event()
        state.release[rank] = release
        row_copy = list(row)
        delay = p.nic_dma_us + SLOT_BYTES * len(row_copy) * p.nic_dma_per_byte_us
        arrive = self.env.timeout(delay)
        arrive.callbacks.append(
            lambda _ev, r=rank, v=row_copy: self._row_arrived(epoch, r, v)
        )
        if state.proc is None:
            state.proc = self.env.process(
                self._run_epoch(epoch, state), name=f"nic{self.node}.e{epoch}"
            )
            if self._monitor is not None:
                self._monitor.register_process(state.proc, f"n{self.node}")
            self._procs.append(state.proc)
        return release

    def mirror_push(self, rank: int, value: int) -> None:
        """Server-side hook: DMA a fresh ``op_done`` value down to the NIC."""
        if self.dead:
            return
        p = self.params
        delay = p.nic_dma_us + SLOT_BYTES * p.nic_dma_per_byte_us
        push = self.env.timeout(delay)
        push.callbacks.append(lambda _ev: self._mirror_arrived(rank, value))

    def shutdown(self) -> None:
        """Node/NIC crash: stop the co-processor, abandon in-flight epochs.

        Epoch *state* (release events, stage-1 totals) is kept so that
        :meth:`force_release` can still complete a globally-committed
        epoch for hosted ranks that survive a NIC-only crash.
        """
        self.dead = True
        for proc in self._procs:
            if proc.is_alive:
                proc.kill()
        self._procs.clear()

    def force_release(self, epoch: int) -> None:
        """Complete ``epoch`` on behalf of the (wedged or dead) engine.

        Called by membership recovery when a view change interrupted the
        epoch but some engine already committed it: commitment implies the
        inter-NIC barrier was *entered* by every engine, i.e. every rank's
        remote operations had drained, so releasing the hosts is safe.
        """
        state = self._epochs.get(epoch)
        if state is None or state.totals is None:
            return
        self.committed.add(epoch)
        for rank, release in state.release.items():
            if not release.triggered:
                self._emit(
                    "nic_release", epoch=epoch, node=self.node, rank=rank,
                    n=self.nprocs, forced=True,
                )
                release.succeed(state.totals[rank])

    # -- NIC-internal --------------------------------------------------------

    def _epoch_state(self, epoch: int) -> _EpochState:
        state = self._epochs.get(epoch)
        if state is None:
            state = self._epochs[epoch] = _EpochState(self.env)
        return state

    def _row_arrived(self, epoch: int, rank: int, row: List[int]) -> None:
        if self.dead:
            return
        state = self._epochs.get(epoch)
        if state is None:
            return
        state.rows[rank] = row
        if len(state.rows) == len(self.hosted) and not state.all_rows.triggered:
            state.all_rows.succeed()

    def _mirror_arrived(self, rank: int, value: int) -> None:
        if self.dead:
            return
        if value > self.mirror.get(rank, 0):
            self.mirror[rank] = value
            self._mirror_signal.fire((rank, value))

    def _emit(self, kind: str, **data) -> None:
        if self._monitor is not None:
            self._monitor.emit(kind, **data)

    def _proc_step(self):
        if self.params.nic_proc_us > 0.0:
            yield self.env.timeout(self.params.nic_proc_us)

    def _run_epoch(self, epoch: int, state: _EpochState):
        """Coordinator for one barrier epoch on this node's NIC."""
        p = self.params
        yield state.all_rows

        # Local combine: fold each hosted rank's doorbell row.
        partial = [0] * self.nprocs
        for rank in sorted(state.rows):
            yield from self._proc_step()
            row = state.rows[rank]
            for i, v in enumerate(row):
                partial[i] += v
            self._emit(
                "nic_combine", epoch=epoch, node=self.node,
                src="doorbell", rank=rank,
            )

        # Stage 1: elementwise sum over nodes.
        if p.nic_algorithm == "tree":
            totals = yield from self._tree_sum(epoch, partial)
        else:
            totals = yield from self._exchange_sum(epoch, partial)
        state.totals = list(totals)

        # Stage 2: wait on the op_done mirror for every hosted rank.
        for rank in self.hosted:
            target = totals[rank]
            while self.mirror[rank] < target:
                yield self._mirror_signal.wait()
            yield from self._proc_step()
            self._emit(
                "nic_combine", epoch=epoch, node=self.node,
                src="mirror", rank=rank, value=self.mirror[rank],
            )

        # Stage 3: node-level barrier among the NICs.
        if p.nic_algorithm == "tree":
            yield from self._tree_barrier(epoch)
        else:
            yield from self._dissemination_barrier(epoch)

        # Release: DMA the completion back to each hosted rank.  Committing
        # first means a view change landing inside the DMA window still
        # resolves this epoch as completed everywhere (see force_release).
        self.committed.add(epoch)
        self._emit("nic_commit", epoch=epoch, node=self.node, n=self.nprocs)
        for rank in self.hosted:
            yield from self._proc_step()
            self._emit(
                "nic_release", epoch=epoch, node=self.node, rank=rank,
                n=self.nprocs,
            )
            self._schedule_release(
                state.release[rank], totals[rank],
                p.nic_dma_us + p.poll_detect_us,
            )

    def _schedule_release(self, release: Event, value: int, delay: float) -> None:
        done = self.env.timeout(delay)

        def _fire(_ev, ev=release, val=value):
            if not ev.triggered:
                ev.succeed(val)

        done.callbacks.append(_fire)

    # -- NIC-to-NIC transport ------------------------------------------------

    def _send_frame(self, epoch: int, phase: str, dst_node: int, values=None):
        """Build a descriptor (``nic_proc_us``) and inject one frame."""
        yield from self._proc_step()
        self._emit(
            "nic_combine", epoch=epoch, node=self.node,
            src="send", phase=phase, peer=dst_node,
        )
        payload = NicFrame(
            epoch, phase, self.node,
            list(values) if values is not None else None,
        )
        nbytes = SLOT_BYTES * (len(values) if values is not None else 1)
        # src identity ("nic", node) keeps reliable-delivery channels (and
        # their retransmit state) distinct per sending NIC, and is invisible
        # to rank-liveness bookkeeping.
        self.fabric.post(
            ("nic", self.node), nic_endpoint(dst_node), payload,
            payload_bytes=nbytes, src_node=self.node,
        )

    def _recv_frame(self, epoch: int, phase: str, src_node: int):
        """Match one frame (MPI-style on epoch/phase/source) and dequeue it."""

        def match(envelope):
            f = envelope.payload
            return (
                isinstance(f, NicFrame)
                and f.epoch == epoch
                and f.phase == phase
                and f.src_node == src_node
            )

        envelope = yield self.mailbox.get(match)
        yield from self._proc_step()
        self._emit(
            "nic_combine", epoch=epoch, node=self.node,
            src="recv", phase=phase, peer=src_node,
        )
        return envelope.payload

    # -- stage-1 / stage-3 algorithms ----------------------------------------

    def _exchange_sum(self, epoch: int, values: List[int]):
        """Recursive-doubling elementwise sum over nodes (non-pow2 folds)."""
        nodes = self.topology.nnodes
        me = self.node
        vec = list(values)
        if nodes == 1:
            return vec
        pow2 = 1 << (nodes.bit_length() - 1)
        rem = nodes - pow2
        if me >= pow2:
            yield from self._send_frame(epoch, "s1-fold", me - pow2, vec)
            frame = yield from self._recv_frame(epoch, "s1-res", me - pow2)
            return list(frame.values)
        if me < rem:
            frame = yield from self._recv_frame(epoch, "s1-fold", me + pow2)
            vec = [a + b for a, b in zip(vec, frame.values)]
        dist, phase = 1, 0
        while dist < pow2:
            peer = me ^ dist
            yield from self._send_frame(epoch, f"s1-x{phase}", peer, vec)
            frame = yield from self._recv_frame(epoch, f"s1-x{phase}", peer)
            vec = [a + b for a, b in zip(vec, frame.values)]
            dist <<= 1
            phase += 1
        if me < rem:
            yield from self._send_frame(epoch, "s1-res", me + pow2, vec)
        return vec

    def _dissemination_barrier(self, epoch: int):
        nodes = self.topology.nnodes
        me = self.node
        dist, phase = 1, 0
        while dist < nodes:
            yield from self._send_frame(epoch, f"s3-d{phase}", (me + dist) % nodes)
            yield from self._recv_frame(epoch, f"s3-d{phase}", (me - dist) % nodes)
            dist <<= 1
            phase += 1

    def _children(self) -> List[int]:
        nodes = self.topology.nnodes
        return [c for c in (2 * self.node + 1, 2 * self.node + 2) if c < nodes]

    def _tree_sum(self, epoch: int, values: List[int]):
        """Binary combining tree (heap order, root = node 0): up then down."""
        me = self.node
        vec = list(values)
        for child in self._children():
            frame = yield from self._recv_frame(epoch, "t-up", child)
            vec = [a + b for a, b in zip(vec, frame.values)]
        if me != 0:
            parent = (me - 1) // 2
            yield from self._send_frame(epoch, "t-up", parent, vec)
            frame = yield from self._recv_frame(epoch, "t-dn", parent)
            vec = list(frame.values)
        for child in self._children():
            yield from self._send_frame(epoch, "t-dn", child, vec)
        return vec

    def _tree_barrier(self, epoch: int):
        me = self.node
        for child in self._children():
            yield from self._recv_frame(epoch, "t-rdy", child)
        if me != 0:
            parent = (me - 1) // 2
            yield from self._send_frame(epoch, "t-rdy", parent)
            yield from self._recv_frame(epoch, "t-go", parent)
        for child in self._children():
            yield from self._send_frame(epoch, "t-go", child)
