"""Global Arrays: block-distributed 2-D arrays over ARMCI.

A minimal Global-Arrays-style layer sufficient for the paper's evaluation
workload and the examples: collective creation, one-sided section
``put``/``get``/``acc`` decomposed into per-owner ARMCI vector transfers,
and :meth:`GlobalArray.sync` — the ``GA_Sync()`` the paper modified, with
selectable ``current`` (AllFence + message-passing barrier) and ``new``
(combined ``ARMCI_Barrier``) implementations.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..runtime.memory import GlobalAddress
from .distribution import BlockDistribution, Section, default_pgrid

__all__ = ["GlobalArray", "PreparedPut", "SYNC_MODES"]

#: ``current``: original GA_Sync (linear AllFence, then MP barrier).
#: ``new``: the paper's combined operation.  ``auto``: §3.1.2's suggestion.
SYNC_MODES = ("current", "new", "auto")


class GlobalArray:
    """One rank's handle on a block-distributed 2-D array of doubles."""

    def __init__(
        self,
        ctx,
        name: str,
        shape: Tuple[int, int],
        pgrid: Optional[Tuple[int, int]] = None,
    ):
        if pgrid is None:
            pgrid = default_pgrid(ctx.nprocs)
        if pgrid[0] * pgrid[1] != ctx.nprocs:
            raise ValueError(
                f"process grid {pgrid} does not cover {ctx.nprocs} processes"
            )
        self.ctx = ctx
        self.name = name
        self.dist = BlockDistribution(shape, pgrid)
        self.shape = self.dist.shape
        # Collective-style creation: every rank allocates its own block in
        # its region under a stable name (the moral ARMCI_Malloc).
        my_block = self.dist.block(ctx.rank)
        self.base_addr = ctx.region.alloc_named(
            f"ga:{name}", max(my_block.cells, 1), initial=0.0
        )
        self._base_by_rank = {ctx.rank: self.base_addr}
        # Per-section transfer plans (decompose() output + resolved bases).
        # Sections repeat every iteration in the paper's workloads; the
        # decomposition is a pure function of the section, so caching it
        # cannot change what gets transferred.
        self._plan_cache: dict = {}

    def __repr__(self) -> str:
        return f"<GlobalArray {self.name!r} {self.shape} pgrid={self.dist.pgrid}>"

    def _base_of(self, rank: int) -> int:
        """Base address of ``rank``'s block (same named allocation)."""
        base = self._base_by_rank.get(rank)
        if base is None:
            blk = self.dist.block(rank)
            base = self.ctx.regions[rank].alloc_named(
                f"ga:{self.name}", max(blk.cells, 1), initial=0.0
            )
            self._base_by_rank[rank] = base
        return base

    # -- one-sided section transfers --------------------------------------------

    def put(self, section: Section, data):
        """Non-blocking one-sided write of ``data`` into ``section``.

        ``data`` is array-like of shape ``(r1-r0, c1-c0)``.  One ARMCI
        vector put per owning process.  Completion is observed via
        :meth:`sync` (or an explicit fence).
        """
        section = tuple(section)
        plan = self._plan_cache.get(section)
        if plan is None:
            plan = self._build_plan(section)
        r0, r1, c0, c1 = section
        data = np.asarray(data, dtype=float)
        expected = (r1 - r0, c1 - c0)
        if data.shape != expected:
            raise ValueError(f"data shape {data.shape} != section shape {expected}")
        for rank, runs in plan:
            segments = [
                (dest, data[li, lj0:lj1].tolist()) for dest, li, lj0, lj1 in runs
            ]
            yield from self.ctx.armci.put_segments(rank, segments)

    def prepare_put(self, section: Section, data) -> "PreparedPut":
        """Precompute a repeatable put of ``data`` into ``section``.

        Iterative workloads (the Figure 7 loop, stencil sweeps) re-issue
        the identical transfer every iteration; a :class:`PreparedPut`
        fronts the decomposition, slicing, and float conversion once so
        each :meth:`PreparedPut.issue` only pays the transport.  The
        simulated traffic is exactly that of :meth:`put` with the same
        arguments.
        """
        return PreparedPut(self, section, data)

    def _build_plan(self, section: Section):
        """Resolve a section's per-owner runs to absolute destination cells.

        Entries are ``(rank, [(dest_addr, local_row, local_c0, local_c1)])``
        with the data indices pre-shifted into section-local coordinates.
        """
        r0, _r1, c0, _c1 = self.dist.check_section(section)
        plan = []
        for rank, runs in self.dist.decompose(section).items():
            base = self._base_of(rank)
            plan.append(
                (
                    rank,
                    [
                        (base + addr, i - r0, j0 - c0, j1 - c0)
                        for addr, _count, (i, _i1, j0, j1) in runs
                    ],
                )
            )
        self._plan_cache[section] = plan
        return plan

    def _prepared_transfers(self, section: Section, data):
        """The per-owner ``(rank, segments)`` list a put of ``data`` ships."""
        section = tuple(section)
        plan = self._plan_cache.get(section)
        if plan is None:
            plan = self._build_plan(section)
        r0, r1, c0, c1 = section
        data = np.asarray(data, dtype=float)
        expected = (r1 - r0, c1 - c0)
        if data.shape != expected:
            raise ValueError(f"data shape {data.shape} != section shape {expected}")
        return [
            (
                rank,
                [(dest, data[li, lj0:lj1].tolist()) for dest, li, lj0, lj1 in runs],
            )
            for rank, runs in plan
        ]

    def get(self, section: Section):
        """Blocking one-sided read of ``section``; returns a numpy array."""
        r0, r1, c0, c1 = self.dist.check_section(section)
        out = np.zeros((r1 - r0, c1 - c0), dtype=float)
        for rank, runs in self.dist.decompose(section).items():
            base = self._base_of(rank)
            segments = [(base + addr, count) for addr, count, _sec in runs]
            values = yield from self.ctx.armci.get_segments(rank, segments)
            pos = 0
            for _addr, count, (i, _i1, j0, j1) in runs:
                out[i - r0, j0 - c0 : j1 - c0] = values[pos : pos + count]
                pos += count
        return out

    def acc(self, section: Section, data, scale: float = 1.0):
        """Non-blocking atomic accumulate of ``scale * data`` into ``section``."""
        r0, r1, c0, c1 = self.dist.check_section(section)
        data = np.asarray(data, dtype=float)
        expected = (r1 - r0, c1 - c0)
        if data.shape != expected:
            raise ValueError(f"data shape {data.shape} != section shape {expected}")
        for rank, runs in self.dist.decompose(section).items():
            base = self._base_of(rank)
            for addr, count, (i, _i1, j0, j1) in runs:
                yield from self.ctx.armci.acc(
                    GlobalAddress(rank, base + addr),
                    data[i - r0, j0 - c0 : j1 - c0].tolist(),
                    scale,
                )

    def read_inc(self, i: int, j: int, inc: int = 1):
        """Atomic fetch-and-add on element ``(i, j)`` (GA_Read_inc).

        The backbone of Global Arrays' dynamic load balancing (the NXTVAL
        task counter): workers draw monotonically increasing task ids from
        a shared element with one atomic op — no locks.  Returns the value
        *before* the increment.
        """
        rank = self.dist.owner(i, j)
        addr = self._base_of(rank) + self.dist.local_offset(rank, i, j)
        old = yield from self.ctx.armci.rmw(
            "fetch_add", GlobalAddress(rank, addr), inc
        )
        return old

    # -- synchronization -----------------------------------------------------------

    def sync(self, mode: str = "new"):
        """GA_Sync(): complete all outstanding operations + barrier.

        ``mode="current"`` is the original implementation (linear
        ``ARMCI_AllFence`` followed by the message-passing barrier);
        ``mode="new"`` is the paper's combined ``ARMCI_Barrier``;
        ``mode="auto"`` picks per the §3.1.2 crossover heuristic.
        """
        from .sync import ga_sync  # local import: sync also usable standalone

        yield from ga_sync(self.ctx, mode)

    # -- local views -----------------------------------------------------------------

    def my_block_section(self) -> Section:
        blk = self.dist.block(self.ctx.rank)
        return (blk.row0, blk.row1, blk.col0, blk.col1)

    def local_block(self) -> np.ndarray:
        """Copy of this rank's own block (direct memory read, no messages)."""
        blk = self.dist.block(self.ctx.rank)
        values = self.ctx.region.read_many(self.base_addr, blk.cells)
        return np.asarray(values, dtype=float).reshape(blk.nrows, blk.ncols)

    def to_numpy_via_gets(self):
        """Gather the whole array with one-sided gets (tests/examples)."""
        rows, cols = self.shape
        result = yield from self.get((0, rows, 0, cols))
        return result


class PreparedPut:
    """A reusable one-sided put: decomposition and data conversion done once.

    Built by :meth:`GlobalArray.prepare_put`.  :meth:`issue` ships the same
    per-owner vector transfers as ``GlobalArray.put(section, data)`` —
    one ARMCI vector put per owning process, identical addresses and
    values — so replacing a put inside a loop with a prepared one cannot
    change simulated results.  The prepared segment lists are shipped
    read-only (the server copies cell values out of them); do not mutate
    the snapshot between issues.
    """

    __slots__ = ("ga", "section", "transfers")

    def __init__(self, ga: GlobalArray, section: Section, data):
        self.ga = ga
        self.section = tuple(section)
        self.transfers = ga._prepared_transfers(self.section, data)

    def __repr__(self) -> str:
        return f"<PreparedPut {self.ga.name!r} {self.section}>"

    def issue(self):
        """Sub-generator: perform the prepared put (repeatable)."""
        armci = self.ga.ctx.armci
        for rank, segments in self.transfers:
            yield from armci.put_segments(rank, segments)
