"""GA_Sync(): the operation the paper's Figure 7 measures.

``GA_Sync`` guarantees that all outstanding one-sided operations in the
system have completed and that all processes have reached the same point.

* ``current`` — the original Global Arrays implementation:
  ``ARMCI_AllFence()`` (every process serially confirms with every server)
  followed by the message-passing barrier.
* ``new`` — the paper's combined ``ARMCI_Barrier()`` (3-stage binary
  exchange).
* ``auto`` — the paper's §3.1.2 suggestion: choose per communication
  pattern (linear when few servers were touched).
* ``nic`` — the NIC-offloaded barrier: the programmable NIC co-processors
  run all three stages without host involvement (``repro.nic``).
* ``kary`` / ``dissemination`` / ``twolevel`` — the topology-aware host
  algorithms of :mod:`repro.topo.algorithms` (k-ary combining tree,
  dissemination sum, node-leader two-level).
"""

from __future__ import annotations

from ..mp import collectives

__all__ = ["ga_sync"]


def ga_sync(ctx, mode: str = "new"):
    """Sub-generator implementing GA_Sync in the selected mode."""
    if mode == "current":
        yield from ctx.armci.allfence()
        yield from collectives.barrier(ctx.comm)
    elif mode == "new":
        yield from ctx.armci.barrier(algorithm="exchange")
    elif mode == "auto":
        yield from ctx.armci.barrier(algorithm="auto")
    elif mode == "nic":
        yield from ctx.armci.barrier(algorithm="nic")
    elif mode in ("kary", "dissemination", "twolevel"):
        yield from ctx.armci.barrier(algorithm=mode)
    else:
        raise ValueError(
            f"unknown GA_Sync mode {mode!r}; use "
            "current/new/auto/nic/kary/dissemination/twolevel"
        )
