"""2-D block distribution for Global Arrays.

Global Arrays distributes a 2-D array over a logical process grid in
contiguous blocks ("distributed uniformly over the set of processes", as in
the paper's Figure 7 workload).  This module computes block ownership and
decomposes rectangular sections into per-owner runs of local addresses,
which the ARMCI layer then moves with single vector put/get operations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

__all__ = ["BlockDistribution", "Section", "default_pgrid"]

#: A rectangular section [row0, row1) x [col0, col1).
Section = Tuple[int, int, int, int]


def default_pgrid(nprocs: int) -> Tuple[int, int]:
    """Near-square process grid factorization of ``nprocs``.

    Returns ``(pr, pc)`` with ``pr * pc == nprocs`` and ``pr <= pc``,
    ``pr`` the largest divisor not exceeding ``sqrt(nprocs)``.
    """
    if nprocs < 1:
        raise ValueError(f"nprocs must be >= 1, got {nprocs}")
    pr = int(math.isqrt(nprocs))
    while nprocs % pr:
        pr -= 1
    return pr, nprocs // pr


@dataclass(frozen=True)
class _Block:
    row0: int
    row1: int
    col0: int
    col1: int

    @property
    def nrows(self) -> int:
        return self.row1 - self.row0

    @property
    def ncols(self) -> int:
        return self.col1 - self.col0

    @property
    def cells(self) -> int:
        return self.nrows * self.ncols


class BlockDistribution:
    """Block ownership map for an ``rows x cols`` array on a ``pr x pc`` grid.

    Rank ``r`` owns grid coordinates ``(r // pc, r % pc)`` (row-major rank
    ordering), and its block is stored row-major in its region.
    """

    def __init__(self, shape: Tuple[int, int], pgrid: Tuple[int, int]):
        rows, cols = shape
        pr, pc = pgrid
        if rows < 1 or cols < 1:
            raise ValueError(f"invalid shape {shape}")
        if pr < 1 or pc < 1:
            raise ValueError(f"invalid pgrid {pgrid}")
        if pr > rows or pc > cols:
            raise ValueError(
                f"process grid {pgrid} larger than array shape {shape}"
            )
        self.shape = (rows, cols)
        self.pgrid = (pr, pc)
        self.nprocs = pr * pc
        self._row_bounds = _split(rows, pr)
        self._col_bounds = _split(cols, pc)

    def __repr__(self) -> str:
        return f"<BlockDistribution {self.shape} over {self.pgrid}>"

    # -- ownership ------------------------------------------------------------

    def grid_coords(self, rank: int) -> Tuple[int, int]:
        self._check_rank(rank)
        pc = self.pgrid[1]
        return rank // pc, rank % pc

    def block(self, rank: int) -> _Block:
        """The block owned by ``rank`` as (row0, row1, col0, col1)."""
        pi, pj = self.grid_coords(rank)
        r0, r1 = self._row_bounds[pi], self._row_bounds[pi + 1]
        c0, c1 = self._col_bounds[pj], self._col_bounds[pj + 1]
        return _Block(r0, r1, c0, c1)

    def owner(self, i: int, j: int) -> int:
        """Rank owning element ``(i, j)``."""
        rows, cols = self.shape
        if not (0 <= i < rows and 0 <= j < cols):
            raise IndexError(f"({i}, {j}) outside {self.shape}")
        pi = _bisect_bounds(self._row_bounds, i)
        pj = _bisect_bounds(self._col_bounds, j)
        return pi * self.pgrid[1] + pj

    def local_offset(self, rank: int, i: int, j: int) -> int:
        """Row-major offset of global ``(i, j)`` inside ``rank``'s block."""
        blk = self.block(rank)
        if not (blk.row0 <= i < blk.row1 and blk.col0 <= j < blk.col1):
            raise IndexError(f"({i}, {j}) not owned by rank {rank}")
        return (i - blk.row0) * blk.ncols + (j - blk.col0)

    # -- section decomposition ---------------------------------------------------

    def check_section(self, section: Section) -> Section:
        r0, r1, c0, c1 = section
        rows, cols = self.shape
        if not (0 <= r0 <= r1 <= rows and 0 <= c0 <= c1 <= cols):
            raise IndexError(f"section {section} outside array {self.shape}")
        return section

    def decompose(self, section: Section) -> Dict[int, List[Tuple[int, int, Section]]]:
        """Split a section into per-owner row runs.

        Returns ``{rank: [(local_addr, count, sub_section_row), ...]}`` where
        each entry is one contiguous run in the owner's block (one row of
        the intersection), and ``sub_section_row`` is its global
        ``(i, i+1, j0, j1)`` rectangle — used by callers to slice the data
        they are moving.
        """
        r0, r1, c0, c1 = self.check_section(section)
        result: Dict[int, List[Tuple[int, int, Section]]] = {}
        if r0 == r1 or c0 == c1:
            return result
        pr, pc = self.pgrid
        for pi in range(pr):
            br0, br1 = self._row_bounds[pi], self._row_bounds[pi + 1]
            ir0, ir1 = max(r0, br0), min(r1, br1)
            if ir0 >= ir1:
                continue
            for pj in range(pc):
                bc0, bc1 = self._col_bounds[pj], self._col_bounds[pj + 1]
                jc0, jc1 = max(c0, bc0), min(c1, bc1)
                if jc0 >= jc1:
                    continue
                rank = pi * pc + pj
                ncols = bc1 - bc0
                runs = result.setdefault(rank, [])
                for i in range(ir0, ir1):
                    addr = (i - br0) * ncols + (jc0 - bc0)
                    runs.append((addr, jc1 - jc0, (i, i + 1, jc0, jc1)))
        return result

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.nprocs):
            raise ValueError(f"rank {rank} out of range [0, {self.nprocs})")


def _split(n: int, parts: int) -> List[int]:
    """Bounds of a near-equal split of ``range(n)`` into ``parts`` pieces."""
    base, extra = divmod(n, parts)
    bounds = [0]
    for p in range(parts):
        bounds.append(bounds[-1] + base + (1 if p < extra else 0))
    return bounds


def _bisect_bounds(bounds: List[int], x: int) -> int:
    """Index ``k`` with ``bounds[k] <= x < bounds[k+1]``."""
    lo, hi = 0, len(bounds) - 2
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if bounds[mid] <= x:
            lo = mid
        else:
            hi = mid - 1
    return lo
