"""Ghost (halo) cells for Global Arrays.

Global Arrays 3.x added *ghost cells*: each process's local block is
surrounded by a halo of copies of its neighbors' boundary elements, and a
collective ``update_ghosts`` refreshes every halo with one-sided puts —
the canonical way GA applications run stencils without hand-written halo
bookkeeping.

:class:`GhostArray` wraps a :class:`~repro.ga.array.GlobalArray` with a
halo of configurable width.  The ghost region lives in each owner's region
right after the block; ``update_ghosts()`` has every process *push* its
boundary strips into its neighbors' halos (one vector put per neighbor)
followed by a GA_Sync — so its cost profile is exactly the paper's
fence+barrier territory.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .array import GlobalArray

__all__ = ["GhostArray"]


class GhostArray:
    """A block-distributed 2-D array with ghost-cell halos.

    Boundary semantics: halos outside the global array stay at
    ``boundary`` (default 0.0) — fixed-value (Dirichlet) borders.
    """

    def __init__(
        self,
        ctx,
        name: str,
        shape: Tuple[int, int],
        width: int = 1,
        boundary: float = 0.0,
        pgrid: Optional[Tuple[int, int]] = None,
    ):
        if width < 1:
            raise ValueError(f"ghost width must be >= 1, got {width}")
        self.ctx = ctx
        self.name = name
        self.width = width
        self.boundary = float(boundary)
        self.ga = GlobalArray(ctx, f"{name}:core", shape, pgrid=pgrid)
        self.dist = self.ga.dist
        self.shape = self.ga.shape
        blk = self.dist.block(ctx.rank)
        #: Halo-extended local dimensions.
        self.hrows = blk.nrows + 2 * width
        self.hcols = blk.ncols + 2 * width
        #: The halo-extended buffer, allocated after the core block.
        self.halo_base = ctx.region.alloc_named(
            f"ga:{name}:halo", self.hrows * self.hcols, initial=self.boundary
        )
        self._halo_base_by_rank: Dict[int, int] = {ctx.rank: self.halo_base}

    def __repr__(self) -> str:
        return f"<GhostArray {self.name!r} {self.shape} width={self.width}>"

    # -- addressing -------------------------------------------------------------

    def _halo_base_of(self, rank: int) -> int:
        base = self._halo_base_by_rank.get(rank)
        if base is None:
            blk = self.dist.block(rank)
            hrows = blk.nrows + 2 * self.width
            hcols = blk.ncols + 2 * self.width
            base = self.ctx.regions[rank].alloc_named(
                f"ga:{self.name}:halo", hrows * hcols, initial=self.boundary
            )
            self._halo_base_by_rank[rank] = base
        return base

    def _halo_addr(self, rank: int, li: int, lj: int) -> int:
        """Address of halo-buffer cell (li, lj) in halo-local coordinates."""
        blk = self.dist.block(rank)
        hcols = blk.ncols + 2 * self.width
        return self._halo_base_of(rank) + li * hcols + lj

    # -- local views ---------------------------------------------------------------

    def local_with_ghosts(self) -> np.ndarray:
        """Copy of this rank's halo-extended buffer as a 2-D array."""
        values = self.ctx.region.read_many(self.halo_base, self.hrows * self.hcols)
        return np.asarray(values, dtype=float).reshape(self.hrows, self.hcols)

    def local_interior(self) -> np.ndarray:
        """This rank's owned block (the interior of the halo buffer)."""
        w = self.width
        return self.local_with_ghosts()[w:-w, w:-w]

    def set_local(self, block: np.ndarray):
        """Sub-generator: overwrite this rank's owned block (local write)."""
        blk = self.dist.block(self.ctx.rank)
        block = np.asarray(block, dtype=float)
        if block.shape != (blk.nrows, blk.ncols):
            raise ValueError(
                f"block shape {block.shape} != {(blk.nrows, blk.ncols)}"
            )
        ctx = self.ctx
        cost = (
            ctx.params.shm_access_us
            + block.size * 8 * ctx.params.mem_copy_per_byte_us
        )
        if cost > 0.0:
            yield ctx.env.timeout(cost)
        w = self.width
        for r in range(blk.nrows):
            ctx.region.write_many(
                self._halo_addr(ctx.rank, r + w, w), block[r].tolist()
            )

    # -- the collective ----------------------------------------------------------------

    def update_ghosts(self, sync: str = "new"):
        """Collective: push boundary strips into all neighbors' halos.

        Eight-neighbor (Moore) exchange: each process sends edge strips and
        corner patches of its block into the adjacent processes' halo
        buffers with one vector put per neighbor, then runs GA_Sync in the
        selected mode — the operation whose two implementations the paper
        compares.
        """
        ctx = self.ctx
        w = self.width
        blk = self.dist.block(ctx.rank)
        mine = self.local_interior()
        pr, pc = self.dist.pgrid
        pi, pj = self.dist.grid_coords(ctx.rank)
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                if di == 0 and dj == 0:
                    continue
                ni, nj = pi + di, pj + dj
                if not (0 <= ni < pr and 0 <= nj < pc):
                    continue
                neighbor = ni * pc + nj
                nblk = self.dist.block(neighbor)
                # The strip of MY interior the neighbor needs (my side
                # facing it), in my block-local coordinates.
                rows = _edge_range(di, blk.nrows, w)
                cols = _edge_range(dj, blk.ncols, w)
                patch = mine[rows[0] : rows[1], cols[0] : cols[1]]
                # Its destination inside the neighbor's halo buffer.
                dst_rows = _halo_range(-di, nblk.nrows, w)
                dst_cols = _halo_range(-dj, nblk.ncols, w)
                segments = []
                for k, li in enumerate(range(dst_rows[0], dst_rows[1])):
                    addr = self._halo_addr(neighbor, li, dst_cols[0])
                    segments.append((addr, patch[k].tolist()))
                yield from ctx.armci.put_segments(neighbor, segments)
        yield from self.ga.sync(sync)


def _edge_range(direction: int, extent: int, width: int) -> Tuple[int, int]:
    """Block-local row/col range of the strip facing ``direction``."""
    if direction < 0:
        return (0, width)
    if direction > 0:
        return (extent - width, extent)
    return (0, extent)


def _halo_range(side: int, extent: int, width: int) -> Tuple[int, int]:
    """Halo-local row/col range of the ghost band on ``side`` of a block.

    ``side`` is the direction from the *receiving* block toward the sender
    (-1 = the low-index ghost band, +1 = high-index, 0 = the interior
    span).
    """
    if side < 0:
        return (0, width)
    if side > 0:
        return (width + extent, 2 * width + extent)
    return (width, width + extent)
