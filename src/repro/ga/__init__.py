"""Global Arrays layer: block-distributed 2-D arrays and GA_Sync."""

from .array import SYNC_MODES, GlobalArray
from .distribution import BlockDistribution, Section, default_pgrid
from .ghosts import GhostArray
from .operations import add, copy, dot, fill, scale
from .sync import ga_sync

__all__ = [
    "BlockDistribution",
    "GhostArray",
    "GlobalArray",
    "SYNC_MODES",
    "Section",
    "add",
    "copy",
    "default_pgrid",
    "dot",
    "fill",
    "ga_sync",
    "scale",
]
