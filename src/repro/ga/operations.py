"""Whole-array Global Arrays operations.

The Global Arrays toolkit layers collective whole-array operations over the
one-sided substrate: each process updates *its own block* in shared memory
and a ``GA_Sync`` makes the result globally visible.  These are the
operations the paper's motivating applications (NWChem-style codes) pepper
between the synchronizations it optimizes:

* :func:`fill`, :func:`scale`, :func:`add` — embarrassingly local updates;
* :func:`copy` — block-to-block copy between two identically distributed
  arrays;
* :func:`dot` — local partial dot product + elementwise-sum allreduce
  (reusing the paper's Figure 2 binary-exchange).

All are collective: every rank must call them, and they synchronize with
the selected GA_Sync implementation (``current``/``new``/``auto``) so the
experiments can compare application-level impact.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..mp import collectives

if TYPE_CHECKING:  # pragma: no cover
    from .array import GlobalArray

__all__ = ["fill", "scale", "add", "copy", "dot"]


def _write_own_block(ga: "GlobalArray", block: np.ndarray):
    """Store a new value for the caller's own block (direct, local)."""
    ctx = ga.ctx
    cells = block.reshape(-1).tolist()
    cost = (
        ctx.params.shm_access_us
        + len(cells) * 8 * ctx.params.mem_copy_per_byte_us
    )
    if cost > 0.0:
        yield ctx.env.timeout(cost)
    ctx.region.write_many(ga.base_addr, cells)


def fill(ga: "GlobalArray", value: float, sync: str = "new"):
    """Collective: set every element to ``value`` (GA_Fill)."""
    blk = ga.dist.block(ga.ctx.rank)
    yield from _write_own_block(ga, np.full((blk.nrows, blk.ncols), float(value)))
    yield from ga.sync(sync)


def scale(ga: "GlobalArray", factor: float, sync: str = "new"):
    """Collective: multiply every element by ``factor`` (GA_Scale)."""
    yield from _write_own_block(ga, ga.local_block() * float(factor))
    yield from ga.sync(sync)


def add(
    ga_out: "GlobalArray",
    ga_a: "GlobalArray",
    ga_b: "GlobalArray",
    alpha: float = 1.0,
    beta: float = 1.0,
    sync: str = "new",
):
    """Collective: ``out = alpha*a + beta*b`` elementwise (GA_Add).

    All three arrays must share shape and distribution.
    """
    for other in (ga_a, ga_b):
        if other.shape != ga_out.shape or other.dist.pgrid != ga_out.dist.pgrid:
            raise ValueError(
                f"distribution mismatch: {other!r} vs {ga_out!r}"
            )
    block = alpha * ga_a.local_block() + beta * ga_b.local_block()
    yield from _write_own_block(ga_out, block)
    yield from ga_out.sync(sync)


def copy(ga_src: "GlobalArray", ga_dst: "GlobalArray", sync: str = "new"):
    """Collective: ``dst = src`` (GA_Copy), identical distributions."""
    if ga_src.shape != ga_dst.shape or ga_src.dist.pgrid != ga_dst.dist.pgrid:
        raise ValueError(f"distribution mismatch: {ga_src!r} vs {ga_dst!r}")
    yield from _write_own_block(ga_dst, ga_src.local_block())
    yield from ga_dst.sync(sync)


def dot(ga_a: "GlobalArray", ga_b: "GlobalArray"):
    """Collective: global dot product (GA_Ddot).

    Local partial over the owned block, then the binary-exchange
    elementwise-sum allreduce (the same algorithm as the new barrier's
    stage 1).  Returns the same float on every rank.
    """
    if ga_a.shape != ga_b.shape or ga_a.dist.pgrid != ga_b.dist.pgrid:
        raise ValueError(f"distribution mismatch: {ga_a!r} vs {ga_b!r}")
    ctx = ga_a.ctx
    partial = float((ga_a.local_block() * ga_b.local_block()).sum())
    # Model the local multiply-accumulate cost.
    blk = ga_a.dist.block(ctx.rank)
    yield ctx.env.timeout(blk.cells * 8 * ctx.params.mem_copy_per_byte_us)
    total = yield from collectives.allreduce_sum(ctx.comm, [partial])
    return total[0]
