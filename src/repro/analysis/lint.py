"""Static lint for simulation-specific hazards (``repro check --lint``).

Three ``ast``-based rules, each targeting a bug class that the dynamic
checker cannot see (the buggy run never happens, or happens silently):

``missing-yield-from``
    A *bare expression statement* calling a known sub-generator —
    ``armci.put(dst, vals)`` instead of ``yield from armci.put(...)`` —
    creates and discards the generator without running a single step.  The
    operation silently never executes.  Generator-ness is established by a
    whole-package pre-pass (any ``def`` whose own body contains ``yield``
    or ``yield from``).

``unseeded-nondeterminism``
    The simulator's contract is byte-identical repeated runs.  Global-state
    RNG calls (``random.random()``, ``random.randint(...)``), unseeded
    ``random.Random()`` constructions, and wall-clock reads
    (``time.time()``, ``perf_counter`` ...) break it.  Seeded
    ``random.Random(seed)`` is fine anywhere; :mod:`repro.net.params` is
    exempt wholesale (it is the one place allowed to mint default seeds).

``op-done-mutation``
    The ``op_done`` completion counters are the barrier protocol's ground
    truth; only the server thread may credit them.  Any reference to
    ``_bump_op_done`` / ``_op_done_addr`` outside ``runtime/server.py``
    is flagged.

Four further *protocol-shape* rules (``send-unhandled-kind``,
``cs-yield-no-lease``, ``credit-mutation``, ``unguarded-view-read``) live
in :mod:`repro.analysis.protoshape` and run through the same entry
points; see that module's docstring for their rationale.

All rules operate on source text only — nothing is imported or executed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from .protoshape import check_tree, collect_handled_kinds

__all__ = [
    "LintFinding",
    "RULE_YIELD_FROM",
    "RULE_UNSEEDED",
    "RULE_OP_DONE",
    "collect_generator_names",
    "lint_source",
    "lint_paths",
    "run_lint",
    "render_findings",
]

RULE_YIELD_FROM = "missing-yield-from"
RULE_UNSEEDED = "unseeded-nondeterminism"
RULE_OP_DONE = "op-done-mutation"

#: ``(module, attribute)`` calls that read the wall clock.
_WALL_CLOCK: Set[Tuple[str, str]] = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
}

#: Attributes whose mere mention outside the server is an op_done mutation
#: hazard (the bump helper and the raw counter-address table).
_OP_DONE_ATTRS = {"_bump_op_done", "_op_done_addr"}

#: Files exempt from the nondeterminism rule (path suffix match):
#: ``net/params.py`` is the one place allowed to mint default seeds;
#: ``experiments/scalebench.py`` and ``fuzz/campaign.py`` read the wall
#: clock only *around* whole simulation runs (throughput reporting and
#: the campaign time budget — their simulated outputs stay deterministic).
_RNG_EXEMPT_SUFFIX = (
    "net/params.py",
    "experiments/scalebench.py",
    "fuzz/campaign.py",
    "mc/explore.py",
)

#: The only file allowed to touch the op_done machinery.
_OP_DONE_HOME_SUFFIX = "runtime/server.py"


@dataclass(frozen=True)
class LintFinding:
    """One static finding: where, which rule, and why."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def render_findings(findings: Sequence[LintFinding]) -> str:
    if not findings:
        return "lint: no findings"
    lines = [f.render() for f in findings]
    lines.append(f"lint: {len(findings)} finding(s)")
    return "\n".join(lines)


# -- generator-name pre-pass -----------------------------------------------


def _contains_yield(fn: ast.AST) -> bool:
    """True if the function's *own* body yields (nested defs excluded)."""
    stack: List[ast.AST] = list(getattr(fn, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False


def _collect_def_names(trees: Iterable[ast.AST]) -> Tuple[Set[str], Set[str]]:
    """``(generator_names, plain_names)`` over every ``def`` in the trees."""
    gens: Set[str] = set()
    plains: Set[str] = set()
    for tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef):
                (gens if _contains_yield(node) else plains).add(node.name)
    return gens, plains


def collect_generator_names(trees: Iterable[ast.AST]) -> Set[str]:
    """Names that *unambiguously* denote sub-generators across the trees.

    Matching is name-based, so a name is only flaggable when every ``def``
    of that name yields: ``release`` names both lock sub-generators and a
    semaphore's plain method, so a bare ``x.release()`` cannot be judged
    statically and is left alone (the dynamic checker covers the lock
    case); a bare ``armci.fence(...)`` is always a discarded generator.
    """
    gens, plains = _collect_def_names(trees)
    return gens - plains


def _call_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


# -- the checker ------------------------------------------------------------


class _Checker(ast.NodeVisitor):
    def __init__(self, path: str, generator_names: Set[str]):
        self.path = path
        self.generator_names = generator_names
        self.findings: List[LintFinding] = []
        norm = path.replace("\\", "/")
        self.rng_exempt = any(norm.endswith(s) for s in _RNG_EXEMPT_SUFFIX)
        self.op_done_home = norm.endswith(_OP_DONE_HOME_SUFFIX)

    def _add(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            LintFinding(self.path, getattr(node, "lineno", 0), rule, message)
        )

    # missing yield from: a discarded sub-generator call as a statement.
    def visit_Expr(self, node: ast.Expr) -> None:
        value = node.value
        if isinstance(value, ast.Call):
            name = _call_name(value.func)
            if name in self.generator_names:
                self._add(
                    node,
                    RULE_YIELD_FROM,
                    f"bare call to sub-generator {name}() discards it; "
                    f"use 'yield from {name}(...)'",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base, attr = func.value.id, func.attr
            if not self.rng_exempt:
                if base == "random":
                    if attr == "Random":
                        if not node.args and not node.keywords:
                            self._add(
                                node,
                                RULE_UNSEEDED,
                                "random.Random() without a seed is "
                                "nondeterministic; pass an explicit seed",
                            )
                    else:
                        self._add(
                            node,
                            RULE_UNSEEDED,
                            f"random.{attr}() uses the global RNG; construct "
                            "a seeded random.Random instead",
                        )
                elif (base, attr) in _WALL_CLOCK:
                    self._add(
                        node,
                        RULE_UNSEEDED,
                        f"{base}.{attr}() reads the wall clock inside the "
                        "deterministic simulator; use env.now",
                    )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in _OP_DONE_ATTRS and not self.op_done_home:
            self._add(
                node,
                RULE_OP_DONE,
                f"reference to {node.attr} outside runtime/server.py; only "
                "the server thread may credit op_done counters",
            )
        self.generic_visit(node)


# -- entry points ------------------------------------------------------------


def lint_source(
    source: str,
    path: str = "<memory>",
    generator_names: Optional[Set[str]] = None,
    handled_kinds: Optional[Set[str]] = None,
) -> List[LintFinding]:
    """Lint one source string (test/tooling entry point).

    ``generator_names`` extends the set discovered in ``source`` itself —
    pass names of sub-generators defined in other modules.
    ``handled_kinds`` likewise extends the message kinds considered
    handled for the protocol-shape pass.
    """
    tree = ast.parse(source, filename=path)
    names = collect_generator_names([tree])
    if generator_names:
        names |= set(generator_names)
    checker = _Checker(path, names)
    checker.visit(tree)
    kinds = collect_handled_kinds([tree])
    if handled_kinds:
        kinds |= set(handled_kinds)
    findings = checker.findings
    findings.extend(LintFinding(*raw) for raw in check_tree(path, tree, kinds))
    findings.sort(key=lambda f: (f.path, f.line))
    return findings


def lint_paths(paths: Sequence[str]) -> List[LintFinding]:
    """Lint a set of files with shared generator-name / kind pre-passes."""
    parsed = []
    for path in paths:
        text = Path(path).read_text(encoding="utf-8")
        parsed.append((str(path), ast.parse(text, filename=str(path))))
    names = collect_generator_names(tree for _, tree in parsed)
    kinds = collect_handled_kinds(tree for _, tree in parsed)
    findings: List[LintFinding] = []
    for path, tree in parsed:
        checker = _Checker(path, names)
        checker.visit(tree)
        findings.extend(checker.findings)
        findings.extend(
            LintFinding(*raw) for raw in check_tree(path, tree, kinds)
        )
    findings.sort(key=lambda f: (f.path, f.line))
    return findings


def run_lint(root: Optional[str] = None) -> List[LintFinding]:
    """Lint the whole ``repro`` package (default) or a directory tree."""
    base = Path(root) if root is not None else Path(__file__).resolve().parents[1]
    paths = sorted(str(p) for p in base.rglob("*.py"))
    return lint_paths(paths)
