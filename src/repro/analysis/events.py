"""Structured protocol events emitted by the RMCSan monitor.

Every event carries the simulated time, the *actor* that performed it, and
a kind-specific payload.  Actors are logical threads of the model:

* ``p{rank}`` — a user process (the rank's SPMD program and anything it
  spawns, e.g. a lock's optimistic-release helper),
* ``s{node}`` — the server thread hosting node ``node``'s memory,
* ``n{node}`` — the programmable NIC co-processor on node ``node`` (only
  present when the NIC-offloaded barrier runs).

The emission order of the events in the tracer *is* the global observation
order used by the happens-before engine: the simulation is sequential, so
an event appended later was observed later.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["ProtoEvent", "KINDS"]

#: Memory access to a region (``mode``: plain | atomic | sync).
MEM_READ = "mem_read"
MEM_WRITE = "mem_write"
#: Remote operation lifecycle (client issue -> server apply -> completion).
ISSUE = "issue"
APPLY = "apply"
APPLY_DONE = "apply_done"
COMPLETE = "complete"
#: Fence-counting protocol.
OP_DONE = "op_done"
FENCE_DONE = "fence_done"
#: Combined barrier (client-side enter/exit around the whole operation).
BARRIER_ENTER = "barrier_enter"
BARRIER_EXIT = "barrier_exit"
#: Message-passing collectives with all-to-all dependence.
COLL_ENTER = "coll_enter"
COLL_EXIT = "coll_exit"
#: Lock protocol (client-side request/acquire/release).
LOCK_REQ = "lock_req"
LOCK_ACQ = "lock_acq"
LOCK_REL = "lock_rel"
#: Crash-stop failures (emitted by the membership service).
PROC_CRASHED = "proc_crashed"
VIEW_CHANGE = "view_change"
LEASE_REVOKED = "lease_revoked"
#: NIC-offloaded barrier (host doorbell -> NIC combining -> NIC release).
NIC_DOORBELL = "nic_doorbell"
NIC_COMBINE = "nic_combine"
NIC_COMMIT = "nic_commit"
NIC_RELEASE = "nic_release"

KINDS = (
    MEM_READ,
    MEM_WRITE,
    ISSUE,
    APPLY,
    APPLY_DONE,
    COMPLETE,
    OP_DONE,
    FENCE_DONE,
    BARRIER_ENTER,
    BARRIER_EXIT,
    COLL_ENTER,
    COLL_EXIT,
    LOCK_REQ,
    LOCK_ACQ,
    LOCK_REL,
    PROC_CRASHED,
    VIEW_CHANGE,
    LEASE_REVOKED,
    NIC_DOORBELL,
    NIC_COMBINE,
    NIC_COMMIT,
    NIC_RELEASE,
)


@dataclass
class ProtoEvent:
    """One observed protocol event."""

    kind: str
    time: float
    actor: str
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out = {"kind": self.kind, "time": self.time, "actor": self.actor}
        out.update(self.data)
        return out

    def __repr__(self) -> str:
        payload = " ".join(f"{k}={v}" for k, v in self.data.items())
        return f"<{self.kind} t={self.time:.3f} {self.actor} {payload}>"
