"""Monitored ("sanitized") runs of representative workloads.

``repro check [target]`` runs scaled-down versions of the key experiment
workloads with a :class:`~repro.analysis.monitor.SyncMonitor` installed and
feeds the collected event stream to the happens-before engine.  A clean
tree reports zero violations on every target; CI runs all of them.

The configurations are deliberately small (a few ranks, a few iterations):
the checker's power comes from the *protocols* being exercised — fences,
the combined barrier, both lock families, the reliable-delivery layer under
injected faults — not from iteration counts, and event analysis is
quadratic-ish in trace length.

Experiment modules are imported lazily inside each runner so importing
:mod:`repro.analysis` stays cheap and cycle-free.
"""

from __future__ import annotations

from typing import List, Tuple

from .hb import SanReport
from .monitor import SyncMonitor

__all__ = ["TARGETS", "run_sanitized_target"]

#: Recognized ``repro check`` targets (``all`` expands to every entry).
TARGETS = ("fig7", "locks", "faultbench", "chaos", "nic", "partition", "topo")


def _sanitized_spmd(nprocs: int, main, *args, **runtime_kwargs):
    """Run one SPMD program under a fresh monitor; return its report."""
    from ..runtime.cluster import ClusterRuntime

    monitor = SyncMonitor()
    runtime = ClusterRuntime(nprocs, monitor=monitor, **runtime_kwargs)
    runtime.run_spmd(main, *args)
    return monitor.analyze()


def _check_fig7() -> List[Tuple[str, SanReport]]:
    """GA_Sync workload, both fence implementations (paper Figure 7)."""
    from ..experiments.common import default_params
    from ..experiments.fig7_sync import Fig7Config, sync_workload

    cfg = Fig7Config(iterations=2, shape=(16, 16), strip_rows=2)
    params = default_params(cfg.params)
    return [
        (
            f"fig7[{mode}]",
            _sanitized_spmd(4, sync_workload, mode, cfg, params=params),
        )
        for mode in ("current", "new")
    ]


def _check_locks() -> List[Tuple[str, SanReport]]:
    """Lock stress (Figures 8-10 workload), hybrid and MCS algorithms."""
    from ..experiments.common import default_params
    from ..experiments.lockbench import LockBenchConfig, lock_workload

    cfg = LockBenchConfig(iterations=6, warmup=2)
    params = default_params(cfg.params)
    return [
        (
            f"locks[{kind}]",
            _sanitized_spmd(4, lock_workload, kind, 0, cfg, params=params),
        )
        for kind in ("hybrid", "mcs")
    ]


def _check_faultbench() -> List[Tuple[str, SanReport]]:
    """Put/acc/barrier epochs over a faulty link (reliable delivery on)."""
    from ..experiments.faultbench import (
        FaultBenchConfig,
        _make_params,
        fault_workload,
    )

    cfg = FaultBenchConfig(nprocs=6, epochs=2, puts_per_peer=1, cells=4)
    out = []
    for drop in (0.0, 0.05):
        report = _sanitized_spmd(
            cfg.nprocs,
            fault_workload,
            cfg,
            procs_per_node=cfg.procs_per_node,
            params=_make_params(cfg, drop),
        )
        out.append((f"faultbench[drop={drop}]", report))
    return out


def _check_chaos() -> List[Tuple[str, SanReport]]:
    """Crash-stop kills during the barrier exchange and inside a lock CS.

    Exercises the crash event vocabulary end to end: ``proc_crashed`` /
    ``view_change`` / ``lease_revoked`` emissions, write-off accounting on
    ``barrier_exit``, and the revoked-ticket carve-out of the FIFO rule.
    """
    from ..experiments.chaosbench import (
        ChaosBenchConfig,
        _make_params,
        chaos_workload,
    )

    out = []
    for kind in ("hybrid", "mcs"):
        cfg = ChaosBenchConfig(
            nprocs=6,
            lock_kind=kind,
            barrier_kills=((4, 60.0),),
            lock_kills=((5, 900.0),),
            lock_iters=2,
        )
        shared = {
            "requests": [],
            "grants": [],
            "preemptions": [],
            "cs_owner": None,
            "mutex_ok": True,
        }
        report = _sanitized_spmd(
            cfg.nprocs,
            chaos_workload,
            cfg,
            shared,
            procs_per_node=cfg.procs_per_node,
            params=_make_params(cfg),
        )
        out.append((f"chaos[{kind}]", report))
    return out


def _check_nic() -> List[Tuple[str, SanReport]]:
    """GA_Sync via the NIC-offloaded barrier, both NIC algorithms.

    Exercises the ``nic_doorbell``/``nic_combine``/``nic_release`` event
    vocabulary and the no-early-release rule: every release must
    happen-after every participating rank's doorbell.

    The crashed variants kill a NIC (hosts survive on a dead device) and
    a whole node mid-run, covering the commit-or-abort protocol: a
    committed epoch is force-released at the view change, an uncommitted
    one degrades every host to the resilient exchange together.
    """
    from ..experiments.common import default_params
    from ..experiments.fig7_sync import Fig7Config, sync_workload
    from ..fuzz.runner import _fuzz_workload, _make_params
    from ..fuzz.scenario import Scenario

    cfg = Fig7Config(iterations=2, shape=(16, 16), strip_rows=2)
    out = []
    for nic_alg in ("exchange", "tree"):
        params = default_params(cfg.params).with_(nic_algorithm=nic_alg)
        report = _sanitized_spmd(4, sync_workload, "nic", cfg, params=params)
        out.append((f"nic[{nic_alg}]", report))
    for kind, target, label in (
        ("nic", 1, "nic[crash=nic]"),
        ("node", 2, "nic[crash=node]"),
    ):
        scenario = Scenario(
            seed=0,
            nprocs=6,
            procs_per_node=2,
            workload="strips",
            barrier_algorithm="nic",
            nic_algorithm="exchange",
            phases=("puts", "barrier", "puts", "barrier"),
            cells=4,
            crashes=((kind, target, 40.0),),
        )
        shared = {
            "requests": [],
            "grants": [],
            "preemptions": [],
            "cs_owner": None,
            "mutex_ok": True,
        }
        report = _sanitized_spmd(
            scenario.nprocs,
            _fuzz_workload,
            scenario,
            shared,
            procs_per_node=scenario.procs_per_node,
            params=_make_params(scenario),
        )
        out.append((label, report))
    return out


def _check_partition() -> List[Tuple[str, SanReport]]:
    """Partition windows cutting lock/barrier traffic, then healing.

    Exercises the quorum-membership vocabulary end to end:
    ``proc_excluded`` / ``partition_heal`` / ``proc_rejoined`` /
    ``sync_frozen`` emissions, live-lease revocation with fencing
    (``lease_revoked live=True`` followed by either a clean fenced
    release or the split-brain rule firing), and the minority-write
    quarantine in the race detector.  A clean tree reports zero
    violations: the fencing token rejects the stale release and the
    rejoin resync replays the regenerated token view, so no split-brain
    rule should ever fire here.
    """
    from ..fuzz.runner import _fuzz_workload, _make_params
    from ..fuzz.scenario import Scenario

    out = []
    for lock_kind, label in (("naimi", "partition[token]"), ("mcs", "partition[mcs]")):
        scenario = Scenario(
            seed=0,
            nprocs=6,
            procs_per_node=2,
            workload="mixed",
            barrier_algorithm="exchange",
            lock_kind=lock_kind,
            phases=("puts", "lock", "barrier", "puts", "barrier"),
            cells=4,
            lock_iters=2,
            partitions=(((2,), 80.0, 700.0),),
        )
        shared = {
            "requests": [],
            "grants": [],
            "preemptions": [],
            "cs_owner": None,
            "mutex_ok": True,
        }
        report = _sanitized_spmd(
            scenario.nprocs,
            _fuzz_workload,
            scenario,
            shared,
            procs_per_node=scenario.procs_per_node,
            params=_make_params(scenario),
        )
        out.append((label, report))
    return out


def _check_topo() -> List[Tuple[str, SanReport]]:
    """Topology-aware barriers on a two-level hierarchy (PR 9).

    Runs the put+barrier fuzz workload with each of the k-ary tree,
    dissemination, and two-level node-leader algorithms under a
    ``two_level(2)`` hierarchy at N=6 (ppn=2).  Each algorithm emits
    ``coll_enter``/``coll_exit`` plus the generic barrier bracketing, so
    the happens-before engine checks every put is fenced before the
    epoch's reads regardless of which level the completing message
    crossed.
    """
    from ..fuzz.runner import _fuzz_workload, _make_params
    from ..fuzz.scenario import Scenario

    out = []
    for algorithm in ("kary", "dissemination", "twolevel"):
        scenario = Scenario(
            seed=0,
            nprocs=6,
            procs_per_node=2,
            workload="strips",
            barrier_algorithm=algorithm,
            phases=("puts", "barrier", "puts", "barrier"),
            cells=4,
            hier_arity=2,
        )
        shared = {
            "requests": [],
            "grants": [],
            "preemptions": [],
            "cs_owner": None,
            "mutex_ok": True,
        }
        report = _sanitized_spmd(
            scenario.nprocs,
            _fuzz_workload,
            scenario,
            shared,
            procs_per_node=scenario.procs_per_node,
            params=_make_params(scenario),
        )
        out.append((f"topo[{algorithm}]", report))
    return out


_RUNNERS = {
    "fig7": _check_fig7,
    "locks": _check_locks,
    "faultbench": _check_faultbench,
    "chaos": _check_chaos,
    "nic": _check_nic,
    "partition": _check_partition,
    "topo": _check_topo,
}


def run_sanitized_target(target: str = "all") -> List[Tuple[str, SanReport]]:
    """Run the monitored workload(s) for ``target``.

    Returns ``[(label, report), ...]``; a clean tree has ``report.ok()``
    true for every label.
    """
    if target == "all":
        names = TARGETS
    elif target in _RUNNERS:
        names = (target,)
    else:
        raise ValueError(
            f"unknown check target {target!r}; expected one of "
            f"{TARGETS + ('all',)}"
        )
    results: List[Tuple[str, SanReport]] = []
    for name in names:
        results.extend(_RUNNERS[name]())
    return results
