"""Run-time event collection for the happens-before checker.

A :class:`SyncMonitor` is installed *on the environment* (attribute
``_sync_monitor``) before the cluster is wired up; the instrumented layers
(:mod:`repro.runtime.memory`, the server, the ARMCI client, locks,
collectives) look the attribute up with ``getattr`` and stay entirely
silent — one ``is None`` test per call site — when no monitor is present,
so sanitizer-off runs are byte-identical to uninstrumented ones.

The monitor never advances simulated time and never yields: it only
appends :class:`~repro.analysis.events.ProtoEvent` records to a
:class:`~repro.sim.trace.Tracer`, in observation order, for offline
analysis by :class:`~repro.analysis.hb.HBAnalyzer`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Optional, Set, Tuple

from ..sim.trace import Tracer
from .events import ProtoEvent

__all__ = ["SyncMonitor", "MONITOR_ATTR"]

#: Environment attribute under which the active monitor is published.
MONITOR_ATTR = "_sync_monitor"


class SyncMonitor:
    """Collects structured protocol events from an instrumented run."""

    def __init__(self, tracer: Optional[Tracer] = None):
        self.tracer = tracer if tracer is not None else Tracer(limit=0)
        self.env = None
        self._actors: Dict[Any, str] = {}
        self._next_op = 0
        #: Cells with release/acquire (C11-atomic-like) semantics: lock
        #: words, ``op_done`` counters, notify counters.  Exempt from race
        #: checking; their reads synchronize with their last write.
        self._sync_cells: Set[Tuple[str, int]] = set()
        self._atomic_depth = 0
        self._bulk_depth = 0

    # -- installation --------------------------------------------------------

    def install(self, env) -> "SyncMonitor":
        """Attach to ``env``.  Must run before regions/servers are built."""
        from ..sim.core import Process

        self.env = env
        setattr(env, MONITOR_ATTR, self)
        # Wrap process creation (via the environment's factory hook, since
        # Environment uses __slots__) so spawned helpers (optimistic-release
        # processes, token daemons) inherit their spawner's actor label.

        def process_with_inheritance(generator, name=None):
            parent = self._actors.get(env.active_process)
            proc = Process(env, generator, name=name)
            if parent is not None:
                self._actors.setdefault(proc, parent)
            return proc

        env._process_factory = process_with_inheritance
        return self

    @classmethod
    def of(cls, env) -> Optional["SyncMonitor"]:
        return getattr(env, MONITOR_ATTR, None)

    # -- actors --------------------------------------------------------------

    def register_process(self, proc, actor: str) -> None:
        """Name a process's actor explicitly (overrides inheritance)."""
        self._actors[proc] = actor

    def current_actor(self) -> Optional[str]:
        """Actor of the running process; ``None`` outside any process."""
        proc = self.env.active_process if self.env is not None else None
        if proc is None:
            return None
        actor = self._actors.get(proc)
        if actor is None:
            # Unregistered process: use its kernel name as a distinct actor
            # rather than guessing (sound: separate actor = no false order).
            actor = f"proc:{proc.name}"
            self._actors[proc] = actor
        return actor

    # -- event emission ------------------------------------------------------

    def next_op_id(self) -> int:
        self._next_op += 1
        return self._next_op

    def emit(self, kind: str, actor: Optional[str] = None, **data) -> None:
        if actor is None:
            actor = self.current_actor()
            if actor is None:
                return
        now = self.env.now if self.env is not None else 0.0
        self.tracer.emit(ProtoEvent(kind=kind, time=now, actor=actor, data=data))

    @property
    def events(self):
        return self.tracer.events

    @property
    def sync_cells(self):
        return frozenset(self._sync_cells)

    def analyze(self):
        """Run the happens-before engine over the collected events."""
        from .hb import HBAnalyzer

        return HBAnalyzer(sync_cells=set(self._sync_cells)).analyze(self.events)

    # -- sync cells & access modes ------------------------------------------

    def mark_sync(self, region, addr: int, count: int = 1) -> None:
        for offset in range(count):
            self._sync_cells.add((region.name, addr + offset))

    def is_sync(self, region_name: str, addr: int) -> bool:
        return (region_name, addr) in self._sync_cells

    @contextmanager
    def atomic(self):
        """Accesses inside this scope are atomic (acc/rmw application)."""
        self._atomic_depth += 1
        try:
            yield
        finally:
            self._atomic_depth -= 1

    @contextmanager
    def bulk(self):
        """Suppress per-cell events (a ranged event was already emitted)."""
        self._bulk_depth += 1
        try:
            yield
        finally:
            self._bulk_depth -= 1

    def _mode(self, region_name: str, addr: int, count: int) -> str:
        if count == 1 and self.is_sync(region_name, addr):
            return "sync"
        if self._atomic_depth > 0:
            return "atomic"
        return "plain"

    # -- region hooks --------------------------------------------------------

    def on_read(self, region, addr: int, count: int = 1) -> None:
        if self._bulk_depth:
            return
        self.emit(
            "mem_read",
            region=region.name,
            addr=addr,
            n=count,
            mode=self._mode(region.name, addr, count),
        )

    def on_write(self, region, addr: int, count: int = 1) -> None:
        if self._bulk_depth:
            return
        self.emit(
            "mem_write",
            region=region.name,
            addr=addr,
            n=count,
            mode=self._mode(region.name, addr, count),
        )
