"""RMCSan: dynamic happens-before checking and static lint for the sync stack.

Two engines:

* :mod:`repro.analysis.monitor` + :mod:`repro.analysis.hb` — a run-time
  monitor that collects structured protocol events (memory accesses,
  operation issue/apply/complete, fences, barriers, locks) into the
  simulation :class:`~repro.sim.trace.Tracer`, and an offline vector-clock
  engine that rebuilds the happens-before order and reports data races,
  fence-counting violations, lock-safety violations and deadlocks.
* :mod:`repro.analysis.lint` — an ``ast``-based static pass over the
  package flagging simulation-specific hazards (sub-generator calls missing
  ``yield from``, unseeded randomness / wall-clock reads, ``op_done``
  mutation outside the server).

Both are wired into the ``repro check`` CLI subcommand; see
``docs/analysis.md`` for the model and the violation taxonomy.
"""

from .events import ProtoEvent
from .hb import HBAnalyzer, SanReport, Violation
from .lint import LintFinding, lint_paths, lint_source, run_lint
from .monitor import SyncMonitor
from .sanitize import run_sanitized_target

__all__ = [
    "ProtoEvent",
    "HBAnalyzer",
    "SanReport",
    "Violation",
    "LintFinding",
    "lint_paths",
    "lint_source",
    "run_lint",
    "SyncMonitor",
    "run_sanitized_target",
]
